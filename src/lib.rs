//! # hcq — heterogeneous continuous-query scheduling
//!
//! A from-scratch Rust reproduction of **“Efficient Scheduling of
//! Heterogeneous Continuous Queries”** (Sharaf, Chrysanthis, Labrinidis,
//! Pruhs — VLDB 2006): slowdown-based scheduling of many continuous queries
//! in a data-stream management system, together with every substrate the
//! paper's evaluation needs — a deterministic DSMS simulator, a symmetric
//! hash join, bursty arrival generators, the §8 workload builder, and a
//! harness regenerating every table and figure of §9.
//!
//! This crate is the umbrella: it re-exports the workspace crates under one
//! name. Depend on the individual `hcq-*` crates if you want a narrower
//! dependency.
//!
//! ## The 60-second tour
//!
//! ```
//! use hcq::common::{Nanos, StreamId};
//! use hcq::core::PolicyKind;
//! use hcq::engine::{simulate, SimConfig};
//! use hcq::plan::{GlobalPlan, QueryBuilder, StreamRates};
//! use hcq::streams::PoissonSource;
//!
//! // Register two continuous queries of very different weight (the paper's
//! // GOOGLE vs ANALYSIS example): a cheap selective filter and an expensive
//! // productive analysis pipeline, both over one stock-tick stream.
//! let mut plan = GlobalPlan::default();
//! plan.add_query(
//!     QueryBuilder::on(StreamId::new(0))
//!         .select(Nanos::from_micros(50), 0.02) // "notify me about GOOGLE"
//!         .build()
//!         .unwrap(),
//! );
//! plan.add_query(
//!     QueryBuilder::on(StreamId::new(0))
//!         .select(Nanos::from_micros(400), 0.9) // full technical analysis
//!         .stored_join(Nanos::from_micros(400), 0.8)
//!         .project(Nanos::from_micros(200))
//!         .build()
//!         .unwrap(),
//! );
//!
//! // Drive it with Poisson ticks and schedule with HNR (the paper's
//! // average-slowdown policy).
//! let report = simulate(
//!     &plan,
//!     &StreamRates::none(),
//!     vec![Box::new(PoissonSource::new(Nanos::from_millis(1), 7))],
//!     PolicyKind::Hnr.build(),
//!     SimConfig::new(2_000),
//! )
//! .unwrap();
//! assert!(report.qos.avg_slowdown >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! | alias | crate | contents |
//! |---|---|---|
//! | [`common`] | `hcq-common` | virtual time, ids, deterministic coins |
//! | [`plan`] | `hcq-plan` | operators, plan trees, §2/§5 derived statistics |
//! | [`streams`] | `hcq-streams` | Poisson / constant / bursty on-off sources, trace replay |
//! | [`join`] | `hcq-join` | symmetric hash join over sliding windows |
//! | [`core`] | `hcq-core` | **the paper's policies**: HNR, BSD, LSF, HR, SRPT, FCFS, RR; §6 clustering + Fagin pruning; §7 PDT |
//! | [`metrics`] | `hcq-metrics` | slowdown/response accumulators, ℓ2, per-class |
//! | [`engine`] | `hcq-engine` | the discrete-event DSMS simulator |
//! | [`workload`] | `hcq-workload` | the §8 evaluation workloads + utilization calibration |
//! | [`aqsios`] | `hcq-aqsios` | an embeddable online mini-DSMS over real records, scheduled by these policies |
//! | [`runtime`] | `hcq-runtime` | wall-clock multicore executor: shards, lock-free rings, work stealing |
//! | [`check`] | `hcq-check` | seeded scenario fuzzing, the invariant suite, shrinking + replay artifacts |
//! | [`inspect`] | `hcq-inspect` | offline trace analysis: latency waterfalls, starvation diagnosis, decision diffs, Perfetto export |
//!
//! The `hcq-repro` crate (binary: `repro`) regenerates the paper's tables
//! and figures; see `EXPERIMENTS.md` for a recorded comparison.

pub use hcq_aqsios as aqsios;
pub use hcq_check as check;
pub use hcq_common as common;
pub use hcq_core as core;
pub use hcq_engine as engine;
pub use hcq_inspect as inspect;
pub use hcq_join as join;
pub use hcq_metrics as metrics;
pub use hcq_plan as plan;
pub use hcq_runtime as runtime;
pub use hcq_streams as streams;
pub use hcq_workload as workload;

/// Workspace version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
