//! End-to-end tests of the online mini-DSMS.

use hcq_aqsios::{
    Cmp, Dsms, DsmsConfig, ManualClock, Predicate, Record, RtJoin, RtOp, RtPlan, RuntimePolicy,
};
use hcq_common::{Nanos, StreamId};

fn us(n: u64) -> Nanos {
    Nanos::from_micros(n)
}

fn manual_dsms(policy: RuntimePolicy) -> (Dsms, ManualClock) {
    let clock = ManualClock::new();
    let dsms = Dsms::new(DsmsConfig::new(policy).with_clock(Box::new(clock.clone()))).unwrap();
    (dsms, clock)
}

#[test]
fn filter_project_pipeline() {
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Hnr);
    let q = dsms
        .register(RtPlan::single(
            StreamId::new(0),
            vec![
                RtOp::select(Predicate::new(0, Cmp::Ge, 100), us(5), 0.5),
                RtOp::project(vec![1], us(1)),
            ],
        ))
        .unwrap();
    dsms.push(StreamId::new(0), Record::new(vec![150, 7]));
    dsms.push(StreamId::new(0), Record::new(vec![50, 8]));
    dsms.push(StreamId::new(0), Record::new(vec![100, 9]));
    clock.advance(Nanos::from_millis(1));
    let out = dsms.run_until_idle();
    assert_eq!(out.len(), 2);
    assert!(out.iter().all(|e| e.query == q));
    assert_eq!(out[0].record.fields(), &[7]);
    assert_eq!(out[1].record.fields(), &[9]);
    // Arrived at t=0, emitted at t=1ms.
    assert_eq!(out[0].response, Nanos::from_millis(1));
    assert!(out[0].slowdown >= 1.0);
    let stats = dsms.stats();
    assert_eq!(stats.pushed, 3);
    assert_eq!(stats.emitted, 2);
    assert_eq!(stats.dropped, 1);
    assert_eq!(stats.qos.count, 2);
    assert_eq!(dsms.pending(), 0);
}

#[test]
fn hnr_orders_heterogeneous_queries_like_example1() {
    // Q0 expensive+productive, Q1 cheap+selective: HNR must run Q1 first,
    // HR must run Q0 first (the Example 1 contrast, now on real records).
    let register = |dsms: &mut Dsms| {
        dsms.register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Ge, 0), // passes everything
                Nanos::from_millis(5),
                1.0,
            )],
        ))
        .unwrap();
        dsms.register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Lt, 33),
                Nanos::from_millis(2),
                0.33,
            )],
        ))
        .unwrap();
    };
    for (policy, first_query) in [(RuntimePolicy::Hnr, 1u32), (RuntimePolicy::Hr, 0u32)] {
        let (mut dsms, clock) = manual_dsms(policy);
        register(&mut dsms);
        dsms.push(StreamId::new(0), Record::new(vec![10]));
        clock.advance(us(10));
        let first = dsms.run_once().unwrap();
        assert_eq!(
            first[0].query.index() as u32,
            first_query,
            "{policy:?} ran the wrong query first"
        );
    }
}

#[test]
fn window_equi_join_matches_keys_within_window() {
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Fcfs);
    dsms.register(RtPlan::Join {
        left_stream: StreamId::new(0),
        right_stream: StreamId::new(1),
        left_ops: vec![],
        right_ops: vec![],
        join: RtJoin::new(0, 0, Nanos::from_millis(100)),
        common_ops: vec![],
    })
    .unwrap();

    // key 7 on the left at t=0.
    dsms.push(StreamId::new(0), Record::new(vec![7, 111]));
    clock.advance(Nanos::from_millis(10));
    // key 7 on the right at t=10ms: inside the window.
    dsms.push(StreamId::new(1), Record::new(vec![7, 222]));
    // key 8: no partner.
    dsms.push(StreamId::new(1), Record::new(vec![8, 333]));
    let out = dsms.run_until_idle();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].record.fields(), &[7, 111, 7, 222]);
    // Composite arrival = the later constituent's arrival (Definition 5).
    assert_eq!(out[0].arrival, Nanos::from_millis(10));

    // A partner outside the window does not match.
    clock.advance(Nanos::from_millis(500));
    dsms.push(StreamId::new(1), Record::new(vec![7, 444]));
    let out = dsms.run_until_idle();
    assert!(out.is_empty(), "stale partner matched: {out:?}");
}

#[test]
fn join_respects_pre_filters() {
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Hnr);
    dsms.register(RtPlan::Join {
        left_stream: StreamId::new(0),
        right_stream: StreamId::new(1),
        left_ops: vec![RtOp::select(Predicate::new(1, Cmp::Gt, 50), us(2), 0.5)],
        right_ops: vec![],
        join: RtJoin::new(0, 0, Nanos::from_secs(1)),
        common_ops: vec![RtOp::project(vec![0, 1, 3], us(1))],
    })
    .unwrap();
    dsms.push(StreamId::new(0), Record::new(vec![1, 40])); // filtered out
    dsms.push(StreamId::new(0), Record::new(vec![1, 60])); // survives
    clock.advance(us(5));
    dsms.push(StreamId::new(1), Record::new(vec![1, 999]));
    let out = dsms.run_until_idle();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].record.fields(), &[1, 60, 999]);
}

#[test]
fn registration_after_push_is_rejected() {
    let (mut dsms, _clock) = manual_dsms(RuntimePolicy::Fcfs);
    dsms.register(RtPlan::single(
        StreamId::new(0),
        vec![RtOp::select(Predicate::new(0, Cmp::Ge, 0), us(1), 1.0)],
    ))
    .unwrap();
    dsms.push(StreamId::new(0), Record::new(vec![1]));
    let err = dsms
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(Predicate::new(0, Cmp::Ge, 0), us(1), 1.0)],
        ))
        .unwrap_err();
    assert!(err.to_string().contains("before pushing"));
    // After draining, registration works again.
    dsms.run_until_idle();
    assert!(dsms
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(Predicate::new(0, Cmp::Ge, 0), us(1), 1.0)],
        ))
        .is_ok());
}

#[test]
fn adaptive_refresh_tracks_selectivity_drift() {
    // Both queries start with identical estimates; the data make Q0's
    // predicate nearly always pass (expensive per emission) and Q1's almost
    // never. After observation + refresh, HNR must prefer Q1.
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Hnr);
    let q0 = dsms
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Ge, 10), // true for our feed
                Nanos::from_millis(5),
                0.5,
            )],
        ))
        .unwrap();
    let q1 = dsms
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Lt, 10), // false for our feed
                Nanos::from_millis(5),
                0.5,
            )],
        ))
        .unwrap();
    // Warm-up: 200 records, all with field ≥ 10.
    for i in 0..200 {
        dsms.push(StreamId::new(0), Record::new(vec![100 + i]));
        clock.advance(us(50));
        dsms.run_until_idle();
    }
    dsms.refresh_priorities().unwrap();
    // Both queries now have a pending tuple; under HNR the low-selectivity
    // (cheap per unit of T... identical costs, lower S ⇒ for equal C̄... )
    // priorities: S/(C̄·T): Q1's S ≈ 0 makes its numerator tiny but its C̄
    // is also tiny... verify via behaviour: HR (rate S/C̄) must now prefer
    // Q0; this asserts the estimates actually moved.
    let (mut hr, hr_clock) = manual_dsms(RuntimePolicy::Hr);
    let _ = (q0, q1);
    let a = hr
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Ge, 10),
                Nanos::from_millis(5),
                0.5,
            )],
        ))
        .unwrap();
    let b = hr
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Lt, 10),
                Nanos::from_millis(5),
                0.5,
            )],
        ))
        .unwrap();
    for i in 0..200 {
        hr.push(StreamId::new(0), Record::new(vec![100 + i]));
        hr_clock.advance(us(50));
        hr.run_until_idle();
    }
    hr.refresh_priorities().unwrap();
    hr.push(StreamId::new(0), Record::new(vec![100]));
    hr_clock.advance(us(10));
    let first = hr.run_once().unwrap();
    // HR’s rate S/C̄: Q(a) has S→1 (always passes), Q(b) S→~0; with equal
    // costs the productive query wins by a mile.
    assert_eq!(first[0].query, a);
    let _ = b;
}

#[test]
fn auto_refresh_runs_without_panicking() {
    let clock = ManualClock::new();
    let mut dsms = Dsms::new(
        DsmsConfig::new(RuntimePolicy::Bsd)
            .with_clock(Box::new(clock.clone()))
            .with_auto_refresh(10),
    )
    .unwrap();
    dsms.register(RtPlan::single(
        StreamId::new(0),
        vec![RtOp::select(Predicate::new(0, Cmp::Ge, 50), us(3), 0.5)],
    ))
    .unwrap();
    for i in 0..100i64 {
        dsms.push(StreamId::new(0), Record::new(vec![i % 100]));
        clock.advance(us(20));
        dsms.run_until_idle();
    }
    let stats = dsms.stats();
    assert_eq!(stats.pushed, 100);
    assert_eq!(stats.emitted + stats.dropped, 100);
    assert!(stats.decisions >= 100);
}

#[test]
fn fcfs_emits_in_arrival_order_across_queries() {
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Fcfs);
    for _ in 0..3 {
        dsms.register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(Predicate::new(0, Cmp::Ge, 0), us(1), 1.0)],
        ))
        .unwrap();
    }
    for v in 0..4i64 {
        dsms.push(StreamId::new(0), Record::new(vec![v]));
        clock.advance(us(100));
    }
    let out = dsms.run_until_idle();
    assert_eq!(out.len(), 12);
    // Arrival times never decrease along the emission sequence under FCFS.
    for w in out.windows(2) {
        assert!(w[0].arrival <= w[1].arrival);
    }
}

#[test]
fn introspection_reports_learned_estimates() {
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Hnr);
    let q = dsms
        .register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(0, Cmp::Lt, 25), // true for ~25% of 0..100
                us(5),
                0.9, // wrong initial estimate
            )],
        ))
        .unwrap();
    // Values stride through 0..100 out of order so the EWMA sees the 25%
    // pass rate interleaved rather than in long runs.
    for i in 0..400i64 {
        dsms.push(StreamId::new(0), Record::new(vec![(i * 37) % 100]));
        clock.advance(Nanos::from_millis(2));
        dsms.run_until_idle();
    }
    let est = dsms.estimates(q).unwrap();
    assert_eq!(est.len(), 1);
    let (_, sel) = est[0];
    assert!(
        (sel - 0.25).abs() < 0.08,
        "learned selectivity {sel}, expected ≈ 0.25"
    );
    // Stream gap was measured at ~2ms.
    let gap = dsms.measured_gap(StreamId::new(0)).unwrap();
    assert!(
        (gap.as_millis_f64() - 2.0).abs() < 0.2,
        "measured gap {gap}"
    );
    assert!(dsms.estimated_ideal_time(q).is_some());
    assert!(dsms.estimates(hcq_common::QueryId::new(9)).is_none());
}

#[test]
fn cql_queries_run_end_to_end() {
    use hcq_aqsios::parse_cql;
    let (mut dsms, clock) = manual_dsms(RuntimePolicy::Hnr);
    let alerts = dsms
        .register(parse_cql("SELECT f1 FROM s0 WHERE f0 >= 500").unwrap())
        .unwrap();
    let joined = dsms
        .register(
            parse_cql("SELECT f0, f3 FROM s0 JOIN s1 ON f1 = f0 WITHIN 1s WHERE s0.f0 >= 100")
                .unwrap(),
        )
        .unwrap();
    // s0 records: (price, merchant); s1 records: (merchant, flag).
    dsms.push(StreamId::new(0), Record::new(vec![700, 4])); // alert + join candidate
    dsms.push(StreamId::new(0), Record::new(vec![50, 4])); // neither
    clock.advance(Nanos::from_millis(5));
    dsms.push(StreamId::new(1), Record::new(vec![4, 1])); // join partner
    let out = dsms.run_until_idle();
    let alert_out: Vec<_> = out.iter().filter(|e| e.query == alerts).collect();
    let join_out: Vec<_> = out.iter().filter(|e| e.query == joined).collect();
    assert_eq!(alert_out.len(), 1);
    assert_eq!(alert_out[0].record.fields(), &[4]);
    assert_eq!(join_out.len(), 1);
    // Composite (700, 4, 4, 1) projected to f0, f3.
    assert_eq!(join_out[0].record.fields(), &[700, 1]);
}

#[test]
fn load_shedding_caps_pending_work() {
    let clock = ManualClock::new();
    let mut dsms = Dsms::new(
        DsmsConfig::new(RuntimePolicy::Fcfs)
            .with_clock(Box::new(clock.clone()))
            .with_max_pending(4),
    )
    .unwrap();
    for _ in 0..2 {
        dsms.register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(Predicate::new(0, Cmp::Ge, 0), us(1), 1.0)],
        ))
        .unwrap();
    }
    // Each push fans out to 2 queues; cap 4 admits only the first two.
    for v in 0..5i64 {
        dsms.push(StreamId::new(0), Record::new(vec![v]));
    }
    assert_eq!(dsms.pending(), 4);
    let stats = dsms.stats();
    assert_eq!(stats.pushed, 5);
    assert_eq!(stats.shed, 3);
    // Draining frees capacity for new admissions.
    clock.advance(us(100));
    let out = dsms.run_until_idle();
    assert_eq!(out.len(), 4, "two admitted tuples × two queries");
    dsms.push(StreamId::new(0), Record::new(vec![9]));
    assert_eq!(dsms.pending(), 2);
    assert_eq!(dsms.stats().shed, 3, "no shedding once drained");
}
