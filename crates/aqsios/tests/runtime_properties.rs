//! Property tests for the online runtime: filters behave like set
//! membership, accounting always balances, FIFO per queue holds.

use hcq_aqsios::{
    Cmp, Dsms, DsmsConfig, ManualClock, Predicate, Record, RtOp, RtPlan, RuntimePolicy,
};
use hcq_common::{Nanos, StreamId};
use proptest::prelude::*;

fn build(policy: RuntimePolicy, predicates: &[(usize, Cmp, i64)]) -> (Dsms, ManualClock) {
    let clock = ManualClock::new();
    let mut dsms = Dsms::new(DsmsConfig::new(policy).with_clock(Box::new(clock.clone()))).unwrap();
    for &(field, cmp, value) in predicates {
        dsms.register(RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(
                Predicate::new(field, cmp, value),
                Nanos::from_micros(3),
                0.5,
            )],
        ))
        .unwrap();
    }
    (dsms, clock)
}

fn cmp_from(idx: u8) -> Cmp {
    match idx % 6 {
        0 => Cmp::Lt,
        1 => Cmp::Le,
        2 => Cmp::Gt,
        3 => Cmp::Ge,
        4 => Cmp::Eq,
        _ => Cmp::Ne,
    }
}

fn eval(cmp: Cmp, v: i64, bound: i64) -> bool {
    match cmp {
        Cmp::Lt => v < bound,
        Cmp::Le => v <= bound,
        Cmp::Gt => v > bound,
        Cmp::Ge => v >= bound,
        Cmp::Eq => v == bound,
        Cmp::Ne => v != bound,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every policy, the set of emissions equals the predicate-by-
    /// predicate reference evaluation — scheduling never changes semantics.
    #[test]
    fn emissions_match_reference_semantics(
        preds in proptest::collection::vec((0u8..6, -50i64..50), 1..4),
        values in proptest::collection::vec(-60i64..60, 1..40),
        policy_idx in 0usize..4,
    ) {
        let policies = [
            RuntimePolicy::Fcfs,
            RuntimePolicy::Hnr,
            RuntimePolicy::Bsd,
            RuntimePolicy::Lsf,
        ];
        let predicates: Vec<(usize, Cmp, i64)> =
            preds.iter().map(|&(c, b)| (0usize, cmp_from(c), b)).collect();
        let (mut dsms, clock) = build(policies[policy_idx], &predicates);
        let mut expected = 0u64;
        for &v in &values {
            dsms.push(StreamId::new(0), Record::new(vec![v]));
            clock.advance(Nanos::from_micros(10));
            for &(_, cmp, bound) in &predicates {
                if eval(cmp, v, bound) {
                    expected += 1;
                }
            }
        }
        let out = dsms.run_until_idle();
        prop_assert_eq!(out.len() as u64, expected);
        let stats = dsms.stats();
        prop_assert_eq!(stats.emitted + stats.dropped,
            values.len() as u64 * predicates.len() as u64);
        prop_assert_eq!(stats.pushed, values.len() as u64);
        prop_assert_eq!(dsms.pending(), 0);
        // Every emission's slowdown is ≥ 1 and responses are non-negative.
        for e in &out {
            prop_assert!(e.slowdown >= 1.0);
            prop_assert!(e.emitted_at >= e.arrival);
        }
    }

    /// Per query, emissions preserve arrival order (queues are FIFO and
    /// segments run to completion).
    #[test]
    fn per_query_fifo(
        values in proptest::collection::vec(0i64..100, 2..40),
    ) {
        let (mut dsms, clock) = build(
            RuntimePolicy::Bsd,
            &[(0, Cmp::Ge, 0), (0, Cmp::Ge, 50)],
        );
        for &v in &values {
            dsms.push(StreamId::new(0), Record::new(vec![v]));
            clock.advance(Nanos::from_micros(7));
        }
        let out = dsms.run_until_idle();
        for q in 0..2u32 {
            let arrivals: Vec<_> = out
                .iter()
                .filter(|e| e.query.index() == q as usize)
                .map(|e| e.arrival)
                .collect();
            for w in arrivals.windows(2) {
                prop_assert!(w[0] <= w[1], "query {q} emitted out of order");
            }
        }
    }
}
