//! The runtime.

use std::collections::VecDeque;

use hcq_common::{HcqError, Nanos, QueryId, Result, StreamId, TupleId};
use hcq_core::{
    BsdPolicy, EwmaEstimator, FcfsPolicy, LsfPolicy, Policy, QueueView, RoundRobinPolicy,
    StaticPolicy, StaticRank, UnitId, UnitStatics,
};
use hcq_join::{JoinItem, Side, SymmetricHashJoin};
use hcq_metrics::{QosAccumulator, QosSummary};
use hcq_plan::{CompiledQuery, PlanStats, QueryBuilder, StreamRates};

use crate::clock::{Clock, SystemClock};
use crate::ops::{RtOp, RtPlan};
use crate::record::Record;

/// Which scheduling policy drives the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePolicy {
    /// First-come-first-served.
    Fcfs,
    /// Round-robin over ready segments.
    RoundRobin,
    /// Shortest ideal processing time.
    Srpt,
    /// Highest Rate (average response time).
    Hr,
    /// Highest Normalized Rate (average slowdown) — the paper's §3.3.
    Hnr,
    /// Longest Stretch First (maximum slowdown).
    Lsf,
    /// Balance Slowdown (ℓ2 norm) — the paper's §4.2.2.
    Bsd,
}

/// Runtime configuration.
pub struct DsmsConfig {
    /// The scheduling policy.
    pub policy: RuntimePolicy,
    /// EWMA smoothing factor for online cost/selectivity monitoring.
    pub ewma_alpha: f64,
    /// Refresh scheduling priorities from the monitors automatically every
    /// N scheduling decisions (`None` = only on explicit
    /// [`Dsms::refresh_priorities`] calls).
    pub auto_refresh_every: Option<u64>,
    /// Load shedding: cap on total pending tuples across all queues. When a
    /// push would exceed it, the new tuple is *shed* (dropped at admission,
    /// counted in [`RuntimeStats::shed`]) — the classic DSMS overload valve.
    /// `None` = unbounded queues.
    pub max_pending: Option<usize>,
    /// The time source.
    pub clock: Box<dyn Clock>,
}

impl DsmsConfig {
    /// Defaults: α = 0.05, no auto-refresh, wall clock.
    pub fn new(policy: RuntimePolicy) -> Self {
        DsmsConfig {
            policy,
            ewma_alpha: 0.05,
            auto_refresh_every: None,
            max_pending: None,
            clock: Box::new(SystemClock::new()),
        }
    }

    /// Enable load shedding with the given total-pending cap.
    pub fn with_max_pending(mut self, cap: usize) -> Self {
        self.max_pending = Some(cap);
        self
    }

    /// Use a custom clock (e.g. [`crate::ManualClock`] for tests).
    pub fn with_clock(mut self, clock: Box<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Enable periodic automatic priority refresh.
    pub fn with_auto_refresh(mut self, every: u64) -> Self {
        self.auto_refresh_every = Some(every);
        self
    }
}

/// One emitted result.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// The producing query.
    pub query: QueryId,
    /// The output record.
    pub record: Record,
    /// System arrival of the underlying tuple (max over constituents for
    /// join outputs).
    pub arrival: Nanos,
    /// Emission instant.
    pub emitted_at: Nanos,
    /// Response time.
    pub response: Nanos,
    /// Slowdown against the query's currently-estimated ideal processing
    /// time.
    pub slowdown: f64,
}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Records pushed across all streams.
    pub pushed: u64,
    /// Emissions produced.
    pub emitted: u64,
    /// Per-query-copy drops (filtered tuples).
    pub dropped: u64,
    /// Tuples shed at admission by the load-shedding valve.
    pub shed: u64,
    /// Scheduling decisions taken.
    pub decisions: u64,
    /// QoS over all emissions.
    pub qos: QosSummary,
}

/// A pending tuple in a segment queue.
#[derive(Debug, Clone)]
struct Pending {
    record: Record,
    arrival: Nanos,
}

/// Join-table entry.
#[derive(Debug, Clone)]
struct Keyed {
    key: u64,
    ts: Nanos,
    record: Record,
    arrival: Nanos,
}

impl JoinItem for Keyed {
    fn key(&self) -> u64 {
        self.key
    }
    fn timestamp(&self) -> Nanos {
        self.ts
    }
}

/// Per-operator online monitor slots: one per unary op (in plan order),
/// plus one for the join where present.
struct QueryRuntime {
    plan: RtPlan,
    monitors: Vec<EwmaEstimator>,
    join_monitor: Option<EwmaEstimator>,
    join: Option<SymmetricHashJoin<Keyed>>,
    /// Estimated ideal processing time (refreshed with priorities).
    ideal_time: Nanos,
    /// Estimated alone-path cost per leaf (join queries; single-stream uses
    /// `ideal_time`).
    alone: Vec<Nanos>,
}

enum PolicyImpl {
    Static(StaticPolicy, StaticRank),
    Bsd(BsdPolicy),
    Lsf(LsfPolicy),
    Fcfs(FcfsPolicy),
    Rr(RoundRobinPolicy),
}

impl PolicyImpl {
    fn new(kind: RuntimePolicy) -> Self {
        match kind {
            RuntimePolicy::Fcfs => PolicyImpl::Fcfs(FcfsPolicy::new()),
            RuntimePolicy::RoundRobin => PolicyImpl::Rr(RoundRobinPolicy::new()),
            RuntimePolicy::Srpt => PolicyImpl::Static(StaticPolicy::srpt(), StaticRank::Srpt),
            RuntimePolicy::Hr => PolicyImpl::Static(StaticPolicy::hr(), StaticRank::Hr),
            RuntimePolicy::Hnr => PolicyImpl::Static(StaticPolicy::hnr(), StaticRank::Hnr),
            RuntimePolicy::Lsf => PolicyImpl::Lsf(LsfPolicy::new()),
            RuntimePolicy::Bsd => PolicyImpl::Bsd(BsdPolicy::new()),
        }
    }

    fn as_policy(&mut self) -> &mut dyn Policy {
        match self {
            PolicyImpl::Static(p, _) => p,
            PolicyImpl::Bsd(p) => p,
            PolicyImpl::Lsf(p) => p,
            PolicyImpl::Fcfs(p) => p,
            PolicyImpl::Rr(p) => p,
        }
    }

    /// Install refreshed statics for one unit (static-priority policies and
    /// BSD only; the others read queue state directly).
    fn refresh_unit(&mut self, unit: UnitId, statics: &UnitStatics) {
        match self {
            PolicyImpl::Static(p, rank) => p.set_priority(unit, rank.priority(statics)),
            PolicyImpl::Bsd(p) => p.set_phi(unit, statics.bsd_static()),
            _ => {}
        }
    }
}

/// What a schedulable unit executes.
#[derive(Debug, Clone, Copy)]
enum RtUnit {
    Single { query: usize },
    JoinLeaf { query: usize, side: Side },
}

/// The FIFO queue set (mirrors the engine's `UnitQueues`, over records).
#[derive(Default)]
struct RtQueues {
    queues: Vec<VecDeque<Pending>>,
    nonempty: Vec<UnitId>,
}

impl RtQueues {
    fn add_unit(&mut self) {
        self.queues.push(VecDeque::new());
    }

    fn push(&mut self, unit: UnitId, pending: Pending) {
        let q = &mut self.queues[unit as usize];
        if q.is_empty() {
            self.nonempty.push(unit);
        }
        q.push_back(pending);
    }

    fn pop(&mut self, unit: UnitId) -> Pending {
        let q = &mut self.queues[unit as usize];
        let p = q.pop_front().expect("pop from empty runtime queue");
        if q.is_empty() {
            self.nonempty.retain(|&u| u != unit);
        }
        p
    }

    fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl QueueView for RtQueues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|p| p.arrival)
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// The online DSMS.
pub struct Dsms {
    clock: Box<dyn Clock>,
    ewma_alpha: f64,
    auto_refresh_every: Option<u64>,
    max_pending: Option<usize>,
    policy: PolicyImpl,
    queries: Vec<QueryRuntime>,
    units: Vec<RtUnit>,
    /// `(unit, ...)` fed by each stream index.
    routes: Vec<Vec<UnitId>>,
    queues: RtQueues,
    /// Per-stream inter-arrival EWMA (for §5 window-occupancy priorities).
    stream_gaps: Vec<Option<EwmaEstimator>>,
    last_arrival: Vec<Option<Nanos>>,
    tuple_counter: u64,
    pushed: u64,
    emitted: u64,
    dropped: u64,
    shed: u64,
    decisions: u64,
    qos: QosAccumulator,
}

impl Dsms {
    /// Create a runtime.
    pub fn new(cfg: DsmsConfig) -> Result<Self> {
        if !(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0) {
            return Err(HcqError::config("ewma_alpha must be in (0, 1]"));
        }
        Ok(Dsms {
            clock: cfg.clock,
            ewma_alpha: cfg.ewma_alpha,
            auto_refresh_every: cfg.auto_refresh_every,
            max_pending: cfg.max_pending,
            policy: PolicyImpl::new(cfg.policy),
            queries: Vec::new(),
            units: Vec::new(),
            routes: Vec::new(),
            queues: RtQueues::default(),
            stream_gaps: Vec::new(),
            last_arrival: Vec::new(),
            tuple_counter: 0,
            pushed: 0,
            emitted: 0,
            dropped: 0,
            shed: 0,
            decisions: 0,
            qos: QosAccumulator::new(),
        })
    }

    /// Register a continuous query. Must happen while no tuples are pending
    /// (registration re-derives the whole unit table).
    pub fn register(&mut self, plan: RtPlan) -> Result<QueryId> {
        plan.validate()?;
        if self.queues.pending() > 0 {
            return Err(HcqError::config(
                "register queries before pushing data (or after draining)",
            ));
        }
        let id = QueryId::new(self.queries.len());
        let alpha = self.ewma_alpha;
        let (monitors, join_monitor, join) = match &plan {
            RtPlan::Single { ops, .. } => (
                ops.iter()
                    .map(|op| EwmaEstimator::new(alpha, op.est_cost, op.est_selectivity))
                    .collect(),
                None,
                None,
            ),
            RtPlan::Join {
                left_ops,
                right_ops,
                common_ops,
                join,
                ..
            } => (
                left_ops
                    .iter()
                    .chain(right_ops)
                    .chain(common_ops)
                    .map(|op| EwmaEstimator::new(alpha, op.est_cost, op.est_selectivity))
                    .collect(),
                Some(EwmaEstimator::new(
                    alpha,
                    join.est_cost,
                    join.est_selectivity,
                )),
                Some(SymmetricHashJoin::new(join.window)),
            ),
        };
        for stream in plan.streams() {
            if self.stream_gaps.len() <= stream.index() {
                self.stream_gaps.resize_with(stream.index() + 1, || None);
                self.last_arrival.resize(stream.index() + 1, None);
                self.routes.resize(stream.index() + 1, Vec::new());
            }
        }
        // Units and routing.
        let qi = id.index();
        match &plan {
            RtPlan::Single { stream, .. } => {
                let unit = self.units.len() as UnitId;
                self.units.push(RtUnit::Single { query: qi });
                self.queues.add_unit();
                self.routes[stream.index()].push(unit);
            }
            RtPlan::Join {
                left_stream,
                right_stream,
                ..
            } => {
                let left = self.units.len() as UnitId;
                self.units.push(RtUnit::JoinLeaf {
                    query: qi,
                    side: Side::Left,
                });
                self.queues.add_unit();
                self.routes[left_stream.index()].push(left);
                let right = self.units.len() as UnitId;
                self.units.push(RtUnit::JoinLeaf {
                    query: qi,
                    side: Side::Right,
                });
                self.queues.add_unit();
                self.routes[right_stream.index()].push(right);
            }
        }
        self.queries.push(QueryRuntime {
            plan,
            monitors,
            join_monitor,
            join,
            ideal_time: Nanos(1),
            alone: Vec::new(),
        });
        // (Re-)derive statics and register with the policy.
        let statics = self.derive_statics()?;
        self.policy.as_policy().on_register(&statics);
        Ok(id)
    }

    /// Push a record onto a stream, stamped with the current clock time.
    pub fn push(&mut self, stream: StreamId, record: Record) {
        let now = self.clock.now();
        self.pushed += 1;
        // Update the stream's inter-arrival monitor.
        if stream.index() < self.stream_gaps.len() {
            if let Some(last) = self.last_arrival[stream.index()] {
                let gap = now.saturating_since(last);
                self.stream_gaps[stream.index()]
                    .get_or_insert_with(|| {
                        EwmaEstimator::new(self.ewma_alpha, gap.max(Nanos(1)), 1.0)
                    })
                    .observe(gap.max(Nanos(1)), 1.0);
            }
            self.last_arrival[stream.index()] = Some(now);
        }
        let Some(routes) = self.routes.get(stream.index()) else {
            return;
        };
        // Load shedding: admit the whole fan-out or none of it, so every
        // query sees a consistent sub-stream.
        if let Some(cap) = self.max_pending {
            if self.queues.pending() + routes.len() > cap {
                self.shed += 1;
                return;
            }
        }
        for &unit in routes {
            self.tuple_counter += 1;
            self.queues.push(
                unit,
                Pending {
                    record: record.clone(),
                    arrival: now,
                },
            );
            self.policy
                .as_policy()
                .on_enqueue(unit, TupleId::new(self.tuple_counter), now, now);
        }
    }

    /// Take one scheduling decision and execute it; returns the emissions it
    /// produced, or `None` when nothing is pending.
    pub fn run_once(&mut self) -> Option<Vec<Emission>> {
        let now = self.clock.now();
        if self.queues.nonempty.is_empty() {
            return None;
        }
        let selection = self
            .policy
            .as_policy()
            .select(&self.queues, now)
            .expect("work pending");
        self.decisions += 1;
        let mut out = Vec::new();
        for unit in selection.units {
            let pending = self.queues.pop(unit);
            match self.units[unit as usize] {
                RtUnit::Single { query } => self.run_single(query, pending, &mut out),
                RtUnit::JoinLeaf { query, side } => {
                    self.run_join_leaf(query, side, pending, &mut out)
                }
            }
        }
        if let Some(every) = self.auto_refresh_every {
            if self.decisions.is_multiple_of(every) {
                self.refresh_priorities()
                    .expect("registered plans stay valid");
            }
        }
        Some(out)
    }

    /// Run decisions until no work is pending; returns all emissions.
    pub fn run_until_idle(&mut self) -> Vec<Emission> {
        let mut all = Vec::new();
        while let Some(mut batch) = self.run_once() {
            all.append(&mut batch);
        }
        all
    }

    /// Recompute every unit's statics from the online monitors and install
    /// the resulting priorities (static-priority policies and BSD).
    pub fn refresh_priorities(&mut self) -> Result<()> {
        let statics = self.derive_statics()?;
        for (unit, s) in statics.iter().enumerate() {
            self.policy.refresh_unit(unit as UnitId, s);
        }
        Ok(())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            pushed: self.pushed,
            emitted: self.emitted,
            dropped: self.dropped,
            shed: self.shed,
            decisions: self.decisions,
            qos: self.qos.summary(),
        }
    }

    /// Tuples currently queued.
    pub fn pending(&self) -> usize {
        self.queues.pending()
    }

    /// Current online estimates for a query's unary operators, in plan
    /// order: `(cost, selectivity)` per operator. Exposes what the EWMA
    /// monitors have learned (introspection / debugging / dashboards).
    pub fn estimates(&self, query: QueryId) -> Option<Vec<(Nanos, f64)>> {
        self.queries.get(query.index()).map(|q| {
            q.monitors
                .iter()
                .map(|m| (m.cost(), m.selectivity()))
                .collect()
        })
    }

    /// Current estimated ideal processing time `T` for a query.
    pub fn estimated_ideal_time(&self, query: QueryId) -> Option<Nanos> {
        self.queries.get(query.index()).map(|q| q.ideal_time)
    }

    /// The measured mean inter-arrival time of a stream, once at least two
    /// pushes have been observed on it.
    pub fn measured_gap(&self, stream: StreamId) -> Option<Nanos> {
        self.stream_gaps
            .get(stream.index())
            .and_then(|g| g.as_ref())
            .map(|g| g.cost())
    }

    // ---------------------------------------------------------- internals

    /// Build plan-equivalent statistics from the current monitor estimates
    /// and derive per-unit statics plus per-query T / alone costs.
    fn derive_statics(&mut self) -> Result<Vec<UnitStatics>> {
        let mut statics = Vec::with_capacity(self.units.len());
        // Stream rates from monitors (joins need them; fall back to the
        // window length when unmeasured, a deliberately conservative guess).
        let mut rates = StreamRates::none();
        for (s, gap) in self.stream_gaps.iter().enumerate() {
            if let Some(g) = gap {
                rates.set(StreamId::new(s), g.cost().max(Nanos(1)));
            }
        }
        for q in &mut self.queries {
            let builder = plan_from_estimates(&q.plan, &q.monitors, &q.join_monitor);
            let compiled = CompiledQuery::compile(&builder);
            // For join plans with unmeasured streams, substitute the window
            // as τ so the occupancy estimate is defined.
            let mut local_rates = rates.clone();
            if let RtPlan::Join {
                left_stream,
                right_stream,
                join,
                ..
            } = &q.plan
            {
                for s in [left_stream, right_stream] {
                    if local_rates.tau(*s).is_none() {
                        local_rates.set(*s, join.window);
                    }
                }
            }
            let stats = PlanStats::compute(&compiled, &local_rates)?;
            q.ideal_time = stats.ideal_time;
            q.alone = (0..compiled.leaves.len())
                .map(|li| compiled.alone_cost(hcq_plan::LeafIndex(li)))
                .collect();
            for leaf in &stats.per_leaf {
                statics.push(UnitStatics::from_leaf(leaf));
            }
        }
        debug_assert_eq!(statics.len(), self.units.len());
        Ok(statics)
    }

    fn run_single(&mut self, query: usize, pending: Pending, out: &mut Vec<Emission>) {
        let q = &mut self.queries[query];
        let QueryRuntime {
            plan,
            monitors,
            ideal_time,
            ..
        } = q;
        let RtPlan::Single { ops, .. } = plan else {
            unreachable!("unit/plan mismatch");
        };
        let mut record = pending.record;
        let mut survived = true;
        for (i, op) in ops.iter().enumerate() {
            match op.apply(&record) {
                Some(next) => {
                    monitors[i].observe_selectivity(1.0);
                    record = next;
                }
                None => {
                    monitors[i].observe_selectivity(0.0);
                    survived = false;
                    break;
                }
            }
        }
        let ideal = *ideal_time;
        if survived {
            self.emit(query, record, pending.arrival, pending.arrival + ideal, out);
        } else {
            self.dropped += 1;
        }
    }

    fn run_join_leaf(
        &mut self,
        query: usize,
        side: Side,
        pending: Pending,
        out: &mut Vec<Emission>,
    ) {
        let q = &mut self.queries[query];
        let QueryRuntime {
            plan,
            monitors,
            join_monitor,
            join: join_table,
            alone,
            ..
        } = q;
        let RtPlan::Join {
            left_ops,
            right_ops,
            join,
            common_ops,
            ..
        } = plan
        else {
            unreachable!("unit/plan mismatch");
        };
        let n_left = left_ops.len();
        let (own_ops, key_field, mon_base) = match side {
            Side::Left => (&*left_ops, join.left_field, 0),
            Side::Right => (&*right_ops, join.right_field, n_left),
        };
        // Own chain.
        let mut record = pending.record;
        for (i, op) in own_ops.iter().enumerate() {
            let slot = mon_base + i;
            match op.apply(&record) {
                Some(next) => {
                    monitors[slot].observe_selectivity(1.0);
                    record = next;
                }
                None => {
                    monitors[slot].observe_selectivity(0.0);
                    self.dropped += 1;
                    return;
                }
            }
        }
        // Join: key from the post-chain record. A record lacking the key
        // field cannot match anything.
        let Some(key) = record.get(key_field) else {
            self.dropped += 1;
            return;
        };
        let entry = Keyed {
            key: key as u64,
            ts: pending.arrival,
            record: record.clone(),
            arrival: pending.arrival,
        };
        let matches = join_table
            .as_mut()
            .expect("join plan has a join table")
            .insert_probe(side, &entry);
        if let Some(jm) = join_monitor.as_mut() {
            jm.observe_selectivity(matches.len() as f64);
        }
        if matches.is_empty() {
            self.dropped += 1;
            return;
        }
        let common_base = n_left + right_ops.len();
        // Per §5.1: composite arrival = max of constituents; ideal departure
        // = max over constituents of (arrival + alone-path estimate).
        let (own_leaf, other_leaf) = match side {
            Side::Left => (0usize, 1usize),
            Side::Right => (1, 0),
        };
        let mut results = Vec::new();
        let mut dropped = 0u64;
        for partner in matches {
            let (left_rec, right_rec) = match side {
                Side::Left => (&record, &partner.record),
                Side::Right => (&partner.record, &record),
            };
            let mut composite = left_rec.concat(right_rec);
            let arrival = pending.arrival.max(partner.arrival);
            let ideal_depart =
                (pending.arrival + alone[own_leaf]).max(partner.arrival + alone[other_leaf]);
            let mut survived = true;
            for (i, op) in common_ops.iter().enumerate() {
                let slot = common_base + i;
                match op.apply(&composite) {
                    Some(next) => {
                        monitors[slot].observe_selectivity(1.0);
                        composite = next;
                    }
                    None => {
                        monitors[slot].observe_selectivity(0.0);
                        survived = false;
                        break;
                    }
                }
            }
            if survived {
                results.push((composite, arrival, ideal_depart));
            } else {
                dropped += 1;
            }
        }
        self.dropped += dropped;
        for (composite, arrival, ideal_depart) in results {
            self.emit(query, composite, arrival, ideal_depart, out);
        }
    }

    fn emit(
        &mut self,
        query: usize,
        record: Record,
        arrival: Nanos,
        ideal_depart: Nanos,
        out: &mut Vec<Emission>,
    ) {
        let now = self.clock.now();
        let ideal = self.queries[query].ideal_time;
        let response = now.saturating_since(arrival);
        // §5.1.2 form; with a manual clock `now` can precede the estimated
        // ideal departure, in which case the tuple was "faster than ideal"
        // and slowdown clamps at 1.
        let slowdown = if now > ideal_depart {
            1.0 + (now - ideal_depart).ratio(ideal)
        } else {
            1.0
        };
        self.qos.record(response, slowdown);
        self.emitted += 1;
        out.push(Emission {
            query: QueryId::new(query),
            record,
            arrival,
            emitted_at: now,
            response,
            slowdown,
        });
    }
}

/// Translate runtime estimates into an `hcq-plan` query so the §2/§5
/// statistics machinery derives the scheduling priorities.
fn plan_from_estimates(
    plan: &RtPlan,
    monitors: &[EwmaEstimator],
    join_monitor: &Option<EwmaEstimator>,
) -> hcq_plan::QueryPlan {
    let op_spec = |b: QueryBuilder, mon: &EwmaEstimator, op: &RtOp| -> QueryBuilder {
        match op.kind {
            crate::ops::RtOpKind::Select(_) => b.map(mon.cost(), mon.selectivity().min(1.0)),
            crate::ops::RtOpKind::Project(_) => b.project(mon.cost()),
        }
    };
    match plan {
        RtPlan::Single { stream, ops } => {
            let mut b = QueryBuilder::on(*stream);
            for (op, mon) in ops.iter().zip(monitors) {
                b = op_spec(b, mon, op);
            }
            b.build().expect("validated at registration")
        }
        RtPlan::Join {
            left_stream,
            right_stream,
            left_ops,
            right_ops,
            join,
            common_ops,
        } => {
            let mut left = QueryBuilder::on(*left_stream);
            for (op, mon) in left_ops.iter().zip(monitors) {
                left = op_spec(left, mon, op);
            }
            let mut right = QueryBuilder::on(*right_stream);
            for (op, mon) in right_ops.iter().zip(&monitors[left_ops.len()..]) {
                right = op_spec(right, mon, op);
            }
            let jm = join_monitor.as_ref().expect("join plan has a join monitor");
            let mut b = left.window_join(
                right,
                jm.cost(),
                // PlanStats wants the per-pair predicate selectivity in
                // (0,1]; the monitor tracks *matches per probe*, which the
                // occupancy term already models — keep the declared
                // estimate's role and clamp.
                jm.selectivity().clamp(1e-6, 1.0),
                join.window,
            );
            for (op, mon) in common_ops
                .iter()
                .zip(&monitors[left_ops.len() + right_ops.len()..])
            {
                b = op_spec(b, mon, op);
            }
            b.build().expect("validated at registration")
        }
    }
}
