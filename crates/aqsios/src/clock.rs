//! Pluggable time sources.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use hcq_common::Nanos;

/// A monotonic time source for the runtime.
///
/// Everything QoS-related (arrival stamps, response times, window
/// predicates, wait-based priorities) reads this clock, so swapping it
/// swaps the runtime between live operation and deterministic replay.
pub trait Clock {
    /// Current time. Must be monotone non-decreasing across calls.
    fn now(&self) -> Nanos;
}

/// Wall-clock time since construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock starting at zero now.
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A manually advanced clock for tests and replays. Cloning shares the
/// underlying time, so the test and the runtime see the same instant.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Rc<Cell<u64>>,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance by a duration.
    pub fn advance(&self, by: Nanos) {
        self.now.set(self.now.get() + by.as_nanos());
    }

    /// Jump to an absolute time (must not go backwards).
    pub fn set(&self, to: Nanos) {
        assert!(to.as_nanos() >= self.now.get(), "clock cannot go backwards");
        self.now.set(to.as_nanos());
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.now.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos::from_millis(5));
        assert_eq!(c.now(), Nanos::from_millis(5));
        c.set(Nanos::from_millis(9));
        assert_eq!(c.now(), Nanos::from_millis(9));
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance(Nanos::from_secs(1));
        assert_eq!(b.now(), Nanos::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_regression() {
        let c = ManualClock::new();
        c.set(Nanos::from_millis(5));
        c.set(Nanos::from_millis(1));
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
