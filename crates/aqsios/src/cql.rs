//! A tiny continuous-query language for the runtime.
//!
//! Registering plans programmatically is verbose; this module parses a
//! small SQL-like dialect into [`RtPlan`]s:
//!
//! ```text
//! SELECT f0, f2 FROM s0 WHERE f0 >= 100 AND f1 != 7
//! SELECT * FROM s0 JOIN s1 ON f0 = f2 WITHIN 5s WHERE s0.f1 > 10
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query    := SELECT cols FROM input [WHERE conds]
//! cols     := '*' | field (',' field)*
//! field    := 'f' <digits>
//! input    := stream
//!           | stream JOIN stream ON field '=' field WITHIN duration
//! stream   := 's' <digits>
//! conds    := cond (AND cond)*
//! cond     := [stream '.'] field op <integer>
//! op       := '<' | '<=' | '>' | '>=' | '=' | '!='
//! duration := <integer> ('ms' | 's' | 'us')
//! ```
//!
//! Semantics:
//! * For join queries, a condition qualified `s0.`/`s1.` filters the
//!   corresponding input *before* the join; unqualified conditions apply to
//!   the concatenated composite record (left fields first).
//! * The projection applies at the end of the plan (post-join for joins).
//! * Cost/selectivity estimates start at neutral defaults — the runtime's
//!   EWMA monitors learn the real values (§10's dynamic-environment hook).

use hcq_common::{HcqError, Nanos, Result, StreamId};

use crate::ops::{RtJoin, RtOp, RtPlan};
use crate::record::{Cmp, Predicate};

/// Default per-operator cost estimate for parsed queries.
const DEFAULT_COST: Nanos = Nanos(10_000); // 10 µs
/// Default selectivity estimate for parsed predicates.
const DEFAULT_SELECTIVITY: f64 = 0.5;

/// Parse one query.
pub fn parse(input: &str) -> Result<RtPlan> {
    Parser::new(input)?.query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Kw(&'static str),
    Field(usize),
    Stream(usize),
    Int(i64),
    Duration(Nanos),
    Op(Cmp),
    Star,
    Comma,
    Dot,
    EqSign,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

fn err(msg: impl Into<String>) -> HcqError {
    HcqError::config(format!("cql: {}", msg.into()))
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<()> {
        match self.next() {
            Some(Tok::Kw(k)) if k == kw => Ok(()),
            other => Err(err(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &'static str) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn query(&mut self) -> Result<RtPlan> {
        self.expect_kw("select")?;
        let projection = self.columns()?;
        self.expect_kw("from")?;
        let Some(Tok::Stream(first)) = self.next() else {
            return Err(err("expected a stream (sN) after FROM"));
        };
        if self.eat_kw("join") {
            self.join_query(first, projection)
        } else {
            self.single_query(first, projection)
        }
    }

    /// `None` = `*` (no projection).
    fn columns(&mut self) -> Result<Option<Vec<usize>>> {
        if matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            return Ok(None);
        }
        let mut cols = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Field(f)) => cols.push(f),
                other => return Err(err(format!("expected a field (fN), found {other:?}"))),
            }
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(Some(cols))
    }

    fn single_query(&mut self, stream: usize, projection: Option<Vec<usize>>) -> Result<RtPlan> {
        let mut ops = Vec::new();
        if self.eat_kw("where") {
            for (qualifier, pred) in self.conditions()? {
                if qualifier.is_some() {
                    return Err(err("stream-qualified conditions need a JOIN"));
                }
                ops.push(RtOp::select(pred, DEFAULT_COST, DEFAULT_SELECTIVITY));
            }
        }
        if let Some(keep) = projection {
            ops.push(RtOp::project(keep, DEFAULT_COST));
        }
        if ops.is_empty() {
            // Bare `SELECT * FROM s0` would be a no-op query; require some
            // work so `T_k > 0` and the slowdown metric is defined.
            return Err(err(
                "a single-stream query needs a WHERE clause or a projection",
            ));
        }
        self.end()?;
        Ok(RtPlan::single(StreamId::new(stream), ops))
    }

    fn join_query(&mut self, left: usize, projection: Option<Vec<usize>>) -> Result<RtPlan> {
        let Some(Tok::Stream(right)) = self.next() else {
            return Err(err("expected a stream (sN) after JOIN"));
        };
        self.expect_kw("on")?;
        let Some(Tok::Field(lf)) = self.next() else {
            return Err(err("expected a field (fN) after ON"));
        };
        match self.next() {
            Some(Tok::EqSign) | Some(Tok::Op(Cmp::Eq)) => {}
            other => return Err(err(format!("expected '=' in join key, found {other:?}"))),
        }
        let Some(Tok::Field(rf)) = self.next() else {
            return Err(err("expected a field (fN) as the right join key"));
        };
        self.expect_kw("within")?;
        let Some(Tok::Duration(window)) = self.next() else {
            return Err(err("expected a duration (e.g. 5s) after WITHIN"));
        };
        let mut left_ops = Vec::new();
        let mut right_ops = Vec::new();
        let mut common_ops = Vec::new();
        if self.eat_kw("where") {
            for (qualifier, pred) in self.conditions()? {
                match qualifier {
                    Some(s) if s == left => {
                        left_ops.push(RtOp::select(pred, DEFAULT_COST, DEFAULT_SELECTIVITY))
                    }
                    Some(s) if s == right => {
                        right_ops.push(RtOp::select(pred, DEFAULT_COST, DEFAULT_SELECTIVITY))
                    }
                    Some(s) => {
                        return Err(err(format!(
                            "condition qualifies s{s}, which is not an input of this join"
                        )))
                    }
                    None => common_ops.push(RtOp::select(pred, DEFAULT_COST, DEFAULT_SELECTIVITY)),
                }
            }
        }
        if let Some(keep) = projection {
            common_ops.push(RtOp::project(keep, DEFAULT_COST));
        }
        self.end()?;
        Ok(RtPlan::Join {
            left_stream: StreamId::new(left),
            right_stream: StreamId::new(right),
            left_ops,
            right_ops,
            join: RtJoin::new(lf, rf, window).with_est_cost(DEFAULT_COST),
            common_ops,
        })
    }

    fn conditions(&mut self) -> Result<Vec<(Option<usize>, Predicate)>> {
        let mut out = Vec::new();
        loop {
            let qualifier = if let Some(Tok::Stream(s)) = self.peek() {
                let s = *s;
                self.pos += 1;
                match self.next() {
                    Some(Tok::Dot) => {}
                    other => {
                        return Err(err(format!(
                            "expected '.' after stream qualifier, found {other:?}"
                        )))
                    }
                }
                Some(s)
            } else {
                None
            };
            let Some(Tok::Field(f)) = self.next() else {
                return Err(err("expected a field (fN) in condition"));
            };
            let cmp = match self.next() {
                Some(Tok::Op(c)) => c,
                Some(Tok::EqSign) => Cmp::Eq,
                other => return Err(err(format!("expected a comparison, found {other:?}"))),
            };
            let Some(Tok::Int(v)) = self.next() else {
                return Err(err("expected an integer constant in condition"));
            };
            out.push((qualifier, Predicate::new(f, cmp, v)));
            if !self.eat_kw("and") {
                break;
            }
        }
        Ok(out)
    }

    fn end(&mut self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(err(format!("unexpected trailing input: {t:?}"))),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '.' => {
                chars.next();
                toks.push(Tok::Dot);
            }
            '=' => {
                chars.next();
                toks.push(Tok::EqSign);
            }
            '!' => {
                chars.next();
                if chars.next_if_eq(&'=').is_some() {
                    toks.push(Tok::Op(Cmp::Ne));
                } else {
                    return Err(err("lone '!' (did you mean '!='?)"));
                }
            }
            '<' => {
                chars.next();
                if chars.next_if_eq(&'=').is_some() {
                    toks.push(Tok::Op(Cmp::Le));
                } else {
                    toks.push(Tok::Op(Cmp::Lt));
                }
            }
            '>' => {
                chars.next();
                if chars.next_if_eq(&'=').is_some() {
                    toks.push(Tok::Op(Cmp::Ge));
                } else {
                    toks.push(Tok::Op(Cmp::Gt));
                }
            }
            '-' | '0'..='9' => {
                let mut num = String::new();
                if c == '-' {
                    num.push(c);
                    chars.next();
                }
                while let Some(d) = chars.next_if(|d| d.is_ascii_digit()) {
                    num.push(d);
                }
                if num.is_empty() || num == "-" {
                    return Err(err("malformed number"));
                }
                // A unit suffix turns the number into a duration.
                let mut unit = String::new();
                while let Some(u) = chars.next_if(|u| u.is_ascii_alphabetic()) {
                    unit.push(u);
                }
                let value: i64 = num.parse().map_err(|_| err("integer out of range"))?;
                if unit.is_empty() {
                    toks.push(Tok::Int(value));
                } else {
                    if value < 0 {
                        return Err(err("durations must be non-negative"));
                    }
                    let nanos = match unit.to_ascii_lowercase().as_str() {
                        "us" => Nanos::from_micros(value as u64),
                        "ms" => Nanos::from_millis(value as u64),
                        "s" => Nanos::from_secs(value as u64),
                        other => return Err(err(format!("unknown duration unit '{other}'"))),
                    };
                    toks.push(Tok::Duration(nanos));
                }
            }
            c if c.is_ascii_alphabetic() => {
                let mut word = String::new();
                while let Some(w) = chars.next_if(|w| w.is_ascii_alphanumeric() || *w == '_') {
                    word.push(w);
                }
                let lower = word.to_ascii_lowercase();
                match lower.as_str() {
                    "select" | "from" | "where" | "and" | "join" | "on" | "within" => {
                        toks.push(Tok::Kw(match lower.as_str() {
                            "select" => "select",
                            "from" => "from",
                            "where" => "where",
                            "and" => "and",
                            "join" => "join",
                            "on" => "on",
                            _ => "within",
                        }));
                    }
                    _ if lower.starts_with('f')
                        && lower[1..].chars().all(|d| d.is_ascii_digit())
                        && lower.len() > 1 =>
                    {
                        toks.push(Tok::Field(lower[1..].parse().unwrap()));
                    }
                    _ if lower.starts_with('s')
                        && lower[1..].chars().all(|d| d.is_ascii_digit())
                        && lower.len() > 1 =>
                    {
                        toks.push(Tok::Stream(lower[1..].parse().unwrap()));
                    }
                    other => return Err(err(format!("unknown word '{other}'"))),
                }
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::RtOpKind;

    #[test]
    fn parses_single_stream_filter_and_projection() {
        let plan = parse("SELECT f0, f2 FROM s3 WHERE f0 >= 100 AND f1 != 7").unwrap();
        let RtPlan::Single { stream, ops } = plan else {
            panic!("expected single-stream plan");
        };
        assert_eq!(stream, StreamId::new(3));
        assert_eq!(ops.len(), 3);
        assert_eq!(
            ops[0].kind,
            RtOpKind::Select(Predicate::new(0, Cmp::Ge, 100))
        );
        assert_eq!(ops[1].kind, RtOpKind::Select(Predicate::new(1, Cmp::Ne, 7)));
        assert_eq!(ops[2].kind, RtOpKind::Project(vec![0, 2]));
    }

    #[test]
    fn parses_star_with_where() {
        let plan = parse("select * from s0 where f0 < -5").unwrap();
        let RtPlan::Single { ops, .. } = plan else {
            panic!()
        };
        assert_eq!(ops.len(), 1);
        assert_eq!(
            ops[0].kind,
            RtOpKind::Select(Predicate::new(0, Cmp::Lt, -5))
        );
    }

    #[test]
    fn parses_join_with_qualified_filters() {
        let plan = parse(
            "SELECT f0, f1, f3 FROM s0 JOIN s1 ON f0 = f2 WITHIN 5s \
             WHERE s0.f1 > 10 AND s1.f0 <= 99 AND f2 = 4",
        )
        .unwrap();
        let RtPlan::Join {
            left_stream,
            right_stream,
            left_ops,
            right_ops,
            join,
            common_ops,
        } = plan
        else {
            panic!("expected join plan");
        };
        assert_eq!(left_stream, StreamId::new(0));
        assert_eq!(right_stream, StreamId::new(1));
        assert_eq!(join.left_field, 0);
        assert_eq!(join.right_field, 2);
        assert_eq!(join.window, Nanos::from_secs(5));
        assert_eq!(left_ops.len(), 1);
        assert_eq!(
            left_ops[0].kind,
            RtOpKind::Select(Predicate::new(1, Cmp::Gt, 10))
        );
        assert_eq!(right_ops.len(), 1);
        // Unqualified condition + projection land on the common segment.
        assert_eq!(common_ops.len(), 2);
        assert_eq!(
            common_ops[0].kind,
            RtOpKind::Select(Predicate::new(2, Cmp::Eq, 4))
        );
        assert_eq!(common_ops[1].kind, RtOpKind::Project(vec![0, 1, 3]));
    }

    #[test]
    fn duration_units() {
        for (text, expect) in [
            ("7us", Nanos::from_micros(7)),
            ("250ms", Nanos::from_millis(250)),
            ("2s", Nanos::from_secs(2)),
        ] {
            let q = format!("SELECT * FROM s0 JOIN s1 ON f0 = f0 WITHIN {text}");
            let RtPlan::Join { join, .. } = parse(&q).unwrap() else {
                panic!()
            };
            assert_eq!(join.window, expect, "{text}");
        }
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (q, needle) in [
            ("SELECT FROM s0", "expected a field"),
            ("SELECT * FROM s0", "WHERE clause or a projection"),
            ("SELECT * FRUM s0", "unknown word"),
            ("SELECT * FROM s0 WHERE f0 < ", "expected an integer"),
            ("SELECT * FROM s0 WHERE s1.f0 < 5", "need a JOIN"),
            (
                "SELECT * FROM s0 JOIN s1 ON f0 = f1 WITHIN 1s WHERE s2.f0 < 5",
                "not an input",
            ),
            (
                "SELECT * FROM s0 JOIN s1 ON f0 = f1 WITHIN 1parsec",
                "duration unit",
            ),
            ("SELECT f1 FROM s0 WHERE f0 ! 5", "did you mean"),
            ("SELECT f1 FROM s0 WHERE f0 = 5 f9", "trailing"),
        ] {
            let e = parse(q).unwrap_err().to_string();
            assert!(e.contains(needle), "query {q:?}: error was {e:?}");
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("sElEcT f0 FrOm S0 wHeRe F0 > 1 AnD f1 < 9").is_ok());
    }

    #[test]
    fn parsed_plans_validate() {
        let plans = [
            parse("SELECT f0 FROM s0 WHERE f1 >= 3").unwrap(),
            parse("SELECT * FROM s0 JOIN s1 ON f0 = f0 WITHIN 1s").unwrap(),
        ];
        for p in plans {
            p.validate().unwrap();
        }
    }
}
