//! An embeddable online mini-DSMS.
//!
//! The simulator in `hcq-engine` reproduces the paper's *evaluation*; this
//! crate is the *system* the paper was building toward (its conclusion:
//! "our next step is to incorporate our policies in our AQSIOS DSMS
//! prototype"). It executes continuous queries over **real records** with
//! **real predicates**, scheduled by the paper's policies:
//!
//! * Callers [`Dsms::push`] records onto streams and call [`Dsms::run_once`]
//!   (one scheduling decision + one pipelined segment execution) or
//!   [`Dsms::run_until_idle`]; emissions come back with per-tuple response
//!   time and slowdown.
//! * Time comes from a pluggable [`Clock`] — [`SystemClock`] for live use,
//!   [`ManualClock`] for deterministic tests and replays.
//! * Operator costs and selectivities are *estimated online* (EWMA, §10's
//!   "dynamic environment" hook): every execution updates the estimates and
//!   [`Dsms::refresh_priorities`] re-derives the scheduling priorities from
//!   them — no a-priori knowledge required.
//! * Queries can be written in a tiny SQL-like dialect ([`cql`]):
//!   `SELECT f0 FROM s0 WHERE f1 >= 100`, including window joins with
//!   `JOIN … ON … WITHIN 5s`.
//!
//! ```
//! use hcq_aqsios::{Cmp, Dsms, DsmsConfig, Predicate, Record, RtOp, RtPlan, RuntimePolicy};
//! use hcq_common::{Nanos, StreamId};
//!
//! let mut dsms = Dsms::new(DsmsConfig::new(RuntimePolicy::Hnr)).unwrap();
//! // SELECT * FROM ticks WHERE price < 100
//! let q = dsms
//!     .register(RtPlan::single(
//!         StreamId::new(0),
//!         vec![RtOp::select(
//!             Predicate::new(0, Cmp::Lt, 100),
//!             Nanos::from_micros(10),
//!             0.5,
//!         )],
//!     ))
//!     .unwrap();
//! dsms.push(StreamId::new(0), Record::new(vec![42, 7]));
//! dsms.push(StreamId::new(0), Record::new(vec![180, 9]));
//! let out = dsms.run_until_idle();
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].query, q);
//! assert_eq!(out[0].record.fields(), &[42, 7]);
//! ```

pub mod clock;
pub mod cql;
pub mod dsms;
pub mod ops;
pub mod record;

pub use clock::{Clock, ManualClock, SystemClock};
pub use cql::parse as parse_cql;
pub use dsms::{Dsms, DsmsConfig, Emission, RuntimePolicy, RuntimeStats};
pub use ops::{RtJoin, RtOp, RtOpKind, RtPlan};
pub use record::{Cmp, Predicate, Record};
