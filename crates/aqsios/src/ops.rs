//! Runtime operators and query plans.
//!
//! Unlike the simulator's abstract `(cost, selectivity)` operators, runtime
//! operators carry concrete behaviour (a [`Predicate`], a projection list, a
//! join key). Costs and selectivities are *initial estimates* that seed the
//! schedulers and the online EWMA monitors; they do not affect what the
//! operators compute.

use hcq_common::{HcqError, Nanos, Result, StreamId};

use crate::record::{Predicate, Record};

/// A unary runtime operator.
#[derive(Debug, Clone, PartialEq)]
pub struct RtOp {
    /// What the operator computes.
    pub kind: RtOpKind,
    /// Initial per-tuple cost estimate (refined online).
    pub est_cost: Nanos,
    /// Initial selectivity estimate (refined online).
    pub est_selectivity: f64,
}

/// Behaviour of a unary runtime operator.
#[derive(Debug, Clone, PartialEq)]
pub enum RtOpKind {
    /// Filter by a predicate.
    Select(Predicate),
    /// Keep the listed fields (in order).
    Project(Vec<usize>),
}

impl RtOp {
    /// A select operator.
    pub fn select(predicate: Predicate, est_cost: Nanos, est_selectivity: f64) -> Self {
        RtOp {
            kind: RtOpKind::Select(predicate),
            est_cost,
            est_selectivity,
        }
    }

    /// A project operator (selectivity 1).
    pub fn project(keep: Vec<usize>, est_cost: Nanos) -> Self {
        RtOp {
            kind: RtOpKind::Project(keep),
            est_cost,
            est_selectivity: 1.0,
        }
    }

    /// Apply to a record: `None` means filtered out.
    pub fn apply(&self, record: &Record) -> Option<Record> {
        match &self.kind {
            RtOpKind::Select(p) => p.eval(record).then(|| record.clone()),
            RtOpKind::Project(keep) => Some(record.project(keep)),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.est_cost.is_zero() {
            return Err(HcqError::plan(
                "runtime operator needs a positive cost estimate",
            ));
        }
        if !(self.est_selectivity > 0.0 && self.est_selectivity <= 1.0) {
            return Err(HcqError::plan(format!(
                "selectivity estimate {} outside (0, 1]",
                self.est_selectivity
            )));
        }
        Ok(())
    }
}

/// A time-based sliding-window equi-join.
#[derive(Debug, Clone, PartialEq)]
pub struct RtJoin {
    /// Join-key field on the left input.
    pub left_field: usize,
    /// Join-key field on the right input.
    pub right_field: usize,
    /// Window interval `V`.
    pub window: Nanos,
    /// Initial per-tuple cost estimate.
    pub est_cost: Nanos,
    /// Initial predicate-selectivity estimate per key-matched pair (the key
    /// match itself is exact; this seeds the §5 occupancy-based priorities).
    pub est_selectivity: f64,
}

impl RtJoin {
    /// Build a window equi-join.
    pub fn new(left_field: usize, right_field: usize, window: Nanos) -> Self {
        RtJoin {
            left_field,
            right_field,
            window,
            est_cost: Nanos::from_micros(1),
            est_selectivity: 1.0,
        }
    }

    /// Override the cost estimate.
    pub fn with_est_cost(mut self, cost: Nanos) -> Self {
        self.est_cost = cost;
        self
    }

    /// Override the selectivity estimate.
    pub fn with_est_selectivity(mut self, s: f64) -> Self {
        self.est_selectivity = s;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.window.is_zero() {
            return Err(HcqError::plan("join window must be positive"));
        }
        if self.est_cost.is_zero() {
            return Err(HcqError::plan("join needs a positive cost estimate"));
        }
        if !(self.est_selectivity > 0.0 && self.est_selectivity <= 1.0) {
            return Err(HcqError::plan("join selectivity estimate outside (0, 1]"));
        }
        Ok(())
    }
}

/// A registered continuous query's plan.
#[derive(Debug, Clone, PartialEq)]
pub enum RtPlan {
    /// A chain of unary operators over one stream.
    Single {
        /// Input stream.
        stream: StreamId,
        /// Operators, index 0 nearest the stream (must be non-empty).
        ops: Vec<RtOp>,
    },
    /// A window equi-join of two (optionally pre-filtered) streams, followed
    /// by a common segment over concatenated records.
    Join {
        /// Left input stream.
        left_stream: StreamId,
        /// Right input stream.
        right_stream: StreamId,
        /// Operators on the left input (may be empty).
        left_ops: Vec<RtOp>,
        /// Operators on the right input (may be empty).
        right_ops: Vec<RtOp>,
        /// The join operator.
        join: RtJoin,
        /// Operators over composite records (may be empty).
        common_ops: Vec<RtOp>,
    },
}

impl RtPlan {
    /// Convenience constructor for a single-stream chain.
    pub fn single(stream: StreamId, ops: Vec<RtOp>) -> Self {
        RtPlan::Single { stream, ops }
    }

    /// Validate structure and estimates.
    pub fn validate(&self) -> Result<()> {
        match self {
            RtPlan::Single { ops, .. } => {
                if ops.is_empty() {
                    return Err(HcqError::plan("single-stream query needs ≥ 1 operator"));
                }
                ops.iter().try_for_each(RtOp::validate)
            }
            RtPlan::Join {
                left_ops,
                right_ops,
                join,
                common_ops,
                ..
            } => {
                join.validate()?;
                left_ops
                    .iter()
                    .chain(right_ops)
                    .chain(common_ops)
                    .try_for_each(RtOp::validate)
            }
        }
    }

    /// The streams this plan reads.
    pub fn streams(&self) -> Vec<StreamId> {
        match self {
            RtPlan::Single { stream, .. } => vec![*stream],
            RtPlan::Join {
                left_stream,
                right_stream,
                ..
            } => vec![*left_stream, *right_stream],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Cmp;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn select_applies_predicate() {
        let op = RtOp::select(Predicate::new(0, Cmp::Gt, 10), us(1), 0.5);
        assert!(op.apply(&Record::new(vec![11])).is_some());
        assert!(op.apply(&Record::new(vec![10])).is_none());
    }

    #[test]
    fn project_reorders_fields() {
        let op = RtOp::project(vec![1, 0], us(1));
        let out = op.apply(&Record::new(vec![5, 6])).unwrap();
        assert_eq!(out.fields(), &[6, 5]);
    }

    #[test]
    fn plan_validation() {
        assert!(RtPlan::single(StreamId::new(0), vec![]).validate().is_err());
        let ok = RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(Predicate::new(0, Cmp::Lt, 5), us(1), 0.5)],
        );
        assert!(ok.validate().is_ok());
        assert_eq!(ok.streams(), vec![StreamId::new(0)]);

        let bad_sel = RtPlan::single(
            StreamId::new(0),
            vec![RtOp::select(Predicate::new(0, Cmp::Lt, 5), us(1), 1.5)],
        );
        assert!(bad_sel.validate().is_err());

        let join = RtPlan::Join {
            left_stream: StreamId::new(0),
            right_stream: StreamId::new(1),
            left_ops: vec![],
            right_ops: vec![],
            join: RtJoin::new(0, 0, Nanos::from_secs(1)),
            common_ops: vec![],
        };
        assert!(join.validate().is_ok());
        assert_eq!(join.streams(), vec![StreamId::new(0), StreamId::new(1)]);
        let bad_join = RtPlan::Join {
            left_stream: StreamId::new(0),
            right_stream: StreamId::new(1),
            left_ops: vec![],
            right_ops: vec![],
            join: RtJoin::new(0, 0, Nanos::ZERO),
            common_ops: vec![],
        };
        assert!(bad_join.validate().is_err());
    }

    #[test]
    fn join_builders() {
        let j = RtJoin::new(1, 2, Nanos::from_secs(5))
            .with_est_cost(us(9))
            .with_est_selectivity(0.25);
        assert_eq!(j.est_cost, us(9));
        assert_eq!(j.est_selectivity, 0.25);
    }
}
