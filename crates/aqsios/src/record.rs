//! Records and predicates.

use std::sync::Arc;

/// A stream record: a flat vector of integer fields.
///
/// Fields are `i64` — enough for identifiers, fixed-point prices, sensor
/// readings and timestamps; the scheduling layer never interprets them.
/// Records are cheaply cloneable (`Arc`-backed), since one arrival fans out
/// to every registered query on its stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    fields: Arc<[i64]>,
}

impl Record {
    /// A record with the given fields.
    pub fn new(fields: Vec<i64>) -> Self {
        Record {
            fields: fields.into(),
        }
    }

    /// The field values.
    pub fn fields(&self) -> &[i64] {
        &self.fields
    }

    /// Field at `index`, if present.
    pub fn get(&self, index: usize) -> Option<i64> {
        self.fields.get(index).copied()
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Keep only the given fields, in order (projection). Missing indexes
    /// are dropped silently — projections are validated at registration.
    pub fn project(&self, keep: &[usize]) -> Record {
        Record::new(keep.iter().filter_map(|&i| self.get(i)).collect())
    }

    /// Concatenate two records (join output).
    pub fn concat(&self, other: &Record) -> Record {
        let mut fields = Vec::with_capacity(self.arity() + other.arity());
        fields.extend_from_slice(self.fields());
        fields.extend_from_slice(other.fields());
        Record::new(fields)
    }
}

impl From<Vec<i64>> for Record {
    fn from(fields: Vec<i64>) -> Self {
        Record::new(fields)
    }
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `field < value`
    Lt,
    /// `field ≤ value`
    Le,
    /// `field > value`
    Gt,
    /// `field ≥ value`
    Ge,
    /// `field = value`
    Eq,
    /// `field ≠ value`
    Ne,
}

/// A single-field comparison predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Field index the predicate reads.
    pub field: usize,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand constant.
    pub value: i64,
}

impl Predicate {
    /// Build a predicate `record[field] <cmp> value`.
    pub fn new(field: usize, cmp: Cmp, value: i64) -> Self {
        Predicate { field, cmp, value }
    }

    /// Evaluate on a record; records lacking the field fail the predicate.
    pub fn eval(&self, record: &Record) -> bool {
        let Some(v) = record.get(self.field) else {
            return false;
        };
        match self.cmp {
            Cmp::Lt => v < self.value,
            Cmp::Le => v <= self.value,
            Cmp::Gt => v > self.value,
            Cmp::Ge => v >= self.value,
            Cmp::Eq => v == self.value,
            Cmp::Ne => v != self.value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_accessors() {
        let r = Record::new(vec![10, 20, 30]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(1), Some(20));
        assert_eq!(r.get(9), None);
        assert_eq!(r.fields(), &[10, 20, 30]);
    }

    #[test]
    fn projection_and_concat() {
        let r = Record::new(vec![1, 2, 3, 4]);
        assert_eq!(r.project(&[3, 0]).fields(), &[4, 1]);
        assert_eq!(r.project(&[9]).arity(), 0);
        let s = Record::new(vec![7]);
        assert_eq!(r.concat(&s).fields(), &[1, 2, 3, 4, 7]);
    }

    #[test]
    fn predicate_operators() {
        let r = Record::new(vec![5]);
        assert!(Predicate::new(0, Cmp::Lt, 6).eval(&r));
        assert!(Predicate::new(0, Cmp::Le, 5).eval(&r));
        assert!(Predicate::new(0, Cmp::Gt, 4).eval(&r));
        assert!(Predicate::new(0, Cmp::Ge, 5).eval(&r));
        assert!(Predicate::new(0, Cmp::Eq, 5).eval(&r));
        assert!(Predicate::new(0, Cmp::Ne, 6).eval(&r));
        assert!(!Predicate::new(0, Cmp::Lt, 5).eval(&r));
        assert!(!Predicate::new(0, Cmp::Eq, 6).eval(&r));
        // Missing field fails closed.
        assert!(!Predicate::new(3, Cmp::Eq, 5).eval(&r));
    }

    #[test]
    fn records_share_storage_on_clone() {
        let r = Record::new(vec![1; 1000]);
        let c = r.clone();
        assert_eq!(r, c);
        assert!(std::ptr::eq(r.fields().as_ptr(), c.fields().as_ptr()));
    }

    proptest! {
        #[test]
        fn lt_and_ge_partition(v in any::<i64>(), bound in any::<i64>()) {
            let r = Record::new(vec![v]);
            let lt = Predicate::new(0, Cmp::Lt, bound).eval(&r);
            let ge = Predicate::new(0, Cmp::Ge, bound).eval(&r);
            prop_assert!(lt ^ ge);
        }

        #[test]
        fn projection_preserves_values(fields in proptest::collection::vec(any::<i64>(), 1..8)) {
            let r = Record::new(fields.clone());
            let keep: Vec<usize> = (0..fields.len()).rev().collect();
            let p = r.project(&keep);
            for (out_idx, &src_idx) in keep.iter().enumerate() {
                prop_assert_eq!(p.get(out_idx), Some(fields[src_idx]));
            }
        }
    }
}
