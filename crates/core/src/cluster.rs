//! The efficient BSD implementation (§6.2): priority clustering, Fagin
//! pruning, clustered processing.
//!
//! The BSD priority factors as `Φ_x · W_x` with `Φ_x = S/(C̄·T²)` static.
//! §6.2.1 groups units by `Φ` into `m` clusters; arriving tuples are routed
//! to their cluster's FIFO input queue, and a scheduling point evaluates one
//! priority per *cluster* — pseudo-priority × wait of the cluster's oldest
//! pending tuple — instead of one per query:
//!
//! * [`Clustering::Uniform`] splits the `Φ` domain into equal-width ranges
//!   (Aurora's method; poor when `Δ = Φ_max/Φ_min` is large).
//! * [`Clustering::Logarithmic`] splits it into equal-*ratio* ranges
//!   `[ε^i, ε^(i+1))` with `ε = Δ^(1/m)`, bounding each cluster's internal
//!   priority spread by `ε`.
//!
//! §6.2.2 prunes the O(m) scan to a handful of accesses with
//! [`crate::fagin`]; §6.2.3 amortizes scheduling points by executing *all*
//! queries of the chosen cluster that are pending on the head tuple as one
//! batch.
//!
//! # Large-q internals
//!
//! The implementation is sized for 10⁵–10⁶ concurrent units:
//!
//! * statics live in a struct-of-arrays [`StaticsTable`] so re-bucketing
//!   scans touch one contiguous `Φ` column;
//! * pending entries live in one slab ([`crate::waitlist`]) threaded by
//!   intrusive per-cluster FIFOs and per-unit chains — O(1) enqueue, O(1)
//!   shed, slot reuse, no allocation per decision at steady state;
//! * the `Φ` **domain is frozen at `on_register`**: [`Self::add_unit`],
//!   [`Self::retire_unit`] and [`Self::update_unit_statics`] re-bucket only
//!   the affected unit against the frozen ranges (a `Φ` outside the
//!   registered domain clamps to the edge cluster), and a unit whose bucket
//!   changes drags only *its own* pending entries into the destination
//!   cluster — never a full priority-domain rebuild.
//!
//! The incremental path is held to the from-scratch semantics by
//! [`Self::rebuild_reference`] plus a fuzzed differential invariant in
//! `hcq-check`: after any mutation sequence, the incremental policy and a
//! rebuilt one must produce byte-identical selections and
//! [`SchedStats`].

use hcq_common::{Nanos, TupleId};

use crate::fagin::{fagin_top1_with, FaginScratch};
use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::soa::StaticsTable;
use crate::unit::UnitStatics;
use crate::waitlist::{SortedFronts, WaitEntry, WaitLists};

/// How the `Φ` domain is split into clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clustering {
    /// Equal-width ranges (Aurora-style).
    Uniform,
    /// Equal-ratio ranges (the paper's proposal).
    Logarithmic,
}

/// Configuration of the clustered BSD scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Cluster-domain split.
    pub clustering: Clustering,
    /// Number of clusters `m` (≥ 1).
    pub clusters: usize,
    /// Prune the per-cluster scan with Fagin's algorithm (§6.2.2).
    pub use_fagin: bool,
    /// Clustered processing: run every member query pending on the chosen
    /// cluster's head tuple as one batch (§6.2.3).
    pub batch: bool,
}

impl ClusterConfig {
    /// The paper's best configuration: logarithmic clustering with Fagin
    /// pruning and clustered processing.
    pub fn logarithmic(m: usize) -> Self {
        ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: m,
            use_fagin: true,
            batch: true,
        }
    }

    /// Uniform clustering with the same optimizations, for the Figure 13
    /// comparison.
    pub fn uniform(m: usize) -> Self {
        ClusterConfig {
            clustering: Clustering::Uniform,
            clusters: m,
            use_fagin: true,
            batch: true,
        }
    }
}

/// The `Φ` domain snapshot frozen at registration, from which every bucket
/// assignment derives. Sanitization happens before this struct sees a value
/// ([`UnitStatics::sanitized_phi`]), so the fields are NaN-free.
#[derive(Debug, Clone, Copy)]
struct PhiDomain {
    /// Degenerate domains (≤ 1 unit, `lo == hi`, all-zero `Φ`) collapse to
    /// a single cluster instead of producing NaN bucket indices.
    degenerate: bool,
    /// Smallest sanitized `Φ` at registration.
    lo: f64,
    /// Largest sanitized `Φ` at registration.
    hi: f64,
    /// Smallest *positive* `Φ` — the logarithmic split's lower edge (`lo ==
    /// 0` would give `ε = ∞`; zero-`Φ` units join cluster 0 below it).
    lo_pos: f64,
}

impl Default for PhiDomain {
    fn default() -> Self {
        // No registration yet: everything buckets to cluster 0.
        PhiDomain {
            degenerate: true,
            lo: 0.0,
            hi: 0.0,
            lo_pos: 0.0,
        }
    }
}

impl PhiDomain {
    /// Derive the frozen domain from the sanitized `Φ` column.
    fn compute(phis: &[f64]) -> Self {
        let (lo, hi) = phis
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            });
        let lo_pos = if lo > 0.0 {
            lo
        } else {
            phis.iter().copied().filter(|&p| p > 0.0).fold(hi, f64::min)
        };
        let degenerate = phis.len() <= 1 || lo >= hi || lo_pos <= 0.0 || lo_pos >= hi;
        PhiDomain {
            degenerate,
            lo,
            hi,
            lo_pos,
        }
    }

    /// The bucket for a sanitized `Φ`. Registration-time values reproduce
    /// the frozen assignment exactly; post-registration values outside
    /// `[lo, hi]` saturate to the edge clusters (the float→int cast clamps
    /// below, the `min` clamps above), so incremental churn never indexes
    /// out of range.
    fn bucket(&self, clustering: Clustering, m: usize, p: f64) -> u32 {
        if self.degenerate {
            return 0;
        }
        let idx = match clustering {
            Clustering::Uniform => {
                // Equal-width ranges over [lo, hi]. `p == hi` lands exactly
                // on `m` before the clamp — the boundary value belongs to
                // the top cluster `m − 1`.
                ((p - self.lo) / (self.hi - self.lo) * m as f64).floor() as usize
            }
            Clustering::Logarithmic => {
                if p < self.lo_pos {
                    // Zero-Φ unit: lowest cluster.
                    0
                } else {
                    // Equal-ratio ranges: cluster i covers
                    // [lo·ε^i, lo·ε^(i+1)) with ε = (hi/lo)^(1/m);
                    // `p == hi` floors to `m`, clamped to `m − 1`.
                    let eps = (self.hi / self.lo_pos).powf(1.0 / m as f64);
                    ((p / self.lo_pos).ln() / eps.ln()).floor() as usize
                }
            }
        };
        idx.min(m - 1) as u32
    }

    /// Pseudo-priority = lower edge of cluster `i`'s range.
    fn pseudo(&self, clustering: Clustering, m: usize, i: usize) -> f64 {
        if self.degenerate {
            return self.hi.max(0.0);
        }
        match clustering {
            Clustering::Uniform => self.lo + (self.hi - self.lo) * i as f64 / m as f64,
            Clustering::Logarithmic => {
                let eps = (self.hi / self.lo_pos).powf(1.0 / m as f64);
                self.lo_pos * eps.powi(i as i32)
            }
        }
    }
}

/// BSD through the §6.2 machinery.
#[derive(Debug)]
pub struct ClusteredBsdPolicy {
    cfg: ClusterConfig,
    /// Frozen `Φ` domain (see [`PhiDomain`]).
    domain: PhiDomain,
    /// Struct-of-arrays statics; the `Φ` column holds *sanitized* values.
    statics: StaticsTable,
    /// Cluster index per unit.
    cluster_of: Vec<u32>,
    /// Units retired via [`Self::retire_unit`] (backlog-free, no further
    /// enqueues expected).
    retired: Vec<bool>,
    /// Pseudo-priority per cluster (the range's lower edge).
    pseudo: Vec<f64>,
    /// Clusters sorted by pseudo-priority, descending (for Fagin's list A).
    by_pseudo: Vec<u32>,
    /// Slab-backed per-cluster FIFOs + per-unit chains.
    lists: WaitLists,
    /// `(front arrival, cluster)` for every non-empty cluster, ordered by
    /// arrival — Fagin's list B (descending wait = ascending arrival) with
    /// O(log m) search and O(m) memmove, allocation-free at steady state.
    /// Only fronts live here, so a list-B walk never wades through a
    /// backlog.
    by_wait: SortedFronts,
    /// Global enqueue sequence number: the canonical FIFO order, preserved
    /// when a unit's entries migrate between clusters.
    seq: u64,
    /// Cluster-queue maintenance (routing inserts, shed repairs, membership
    /// churn) since the last `select`, reported on the next decision's
    /// [`SchedStats`].
    pending_cluster_ops: u64,
    /// Reused by [`Self::select_fagin`] so decisions allocate nothing.
    fagin_scratch: FaginScratch,
    /// Reused by entry migration in [`Self::update_unit_statics`].
    move_scratch: Vec<u32>,
}

impl ClusteredBsdPolicy {
    /// Build with the given configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.clusters >= 1, "need at least one cluster");
        ClusteredBsdPolicy {
            cfg,
            domain: PhiDomain::default(),
            statics: StaticsTable::new(),
            cluster_of: Vec::new(),
            retired: Vec::new(),
            pseudo: Vec::new(),
            by_pseudo: Vec::new(),
            lists: WaitLists::default(),
            by_wait: SortedFronts::default(),
            seq: 0,
            pending_cluster_ops: 0,
            fagin_scratch: FaginScratch::default(),
            move_scratch: Vec::new(),
        }
    }

    /// The number of clusters actually in use.
    pub fn cluster_count(&self) -> usize {
        self.pseudo.len()
    }

    /// The number of registered units (including retired ones).
    pub fn unit_count(&self) -> usize {
        self.cluster_of.len()
    }

    /// The cluster a unit was assigned to.
    pub fn cluster_of(&self, unit: UnitId) -> u32 {
        self.cluster_of[unit as usize]
    }

    /// A cluster's pseudo-priority.
    pub fn pseudo_priority(&self, cluster: u32) -> f64 {
        self.pseudo[cluster as usize]
    }

    /// Register one more unit after `on_register`, bucketing it into the
    /// *frozen* `Φ` domain (out-of-domain factors clamp to the edge
    /// clusters). O(1); no other cluster is touched. Returns the new id.
    pub fn add_unit(&mut self, statics: UnitStatics) -> UnitId {
        let unit = self.statics.push(&statics);
        self.statics.set_phi(unit, statics.sanitized_phi());
        let c = self.domain.bucket(
            self.cfg.clustering,
            self.cfg.clusters,
            self.statics.phi_of(unit),
        );
        self.cluster_of.push(c);
        self.retired.push(false);
        let from_lists = self.lists.add_unit();
        debug_assert_eq!(from_lists, unit, "statics table and wait lists in step");
        self.pending_cluster_ops += 1;
        unit
    }

    /// Retire a unit with an empty backlog: it keeps its id (dense spaces
    /// stay dense) but is expected never to enqueue again. O(1).
    ///
    /// # Panics
    /// If the unit still has pending entries — drain or shed them first.
    pub fn retire_unit(&mut self, unit: UnitId) {
        assert!(
            self.lists.is_unit_empty(unit),
            "retire_unit({unit}) with pending entries"
        );
        self.retired[unit as usize] = true;
        self.pending_cluster_ops += 1;
    }

    /// True when the unit has been retired.
    pub fn is_retired(&self, unit: UnitId) -> bool {
        self.retired[unit as usize]
    }

    /// Install fresh statics for one unit, re-bucketing it against the
    /// frozen domain. If its cluster changes, only its own pending entries
    /// migrate (a seq-ordered merge into the destination FIFO) and only the
    /// two affected clusters' front keys are repaired — never a domain
    /// rebuild, never a scan over other units.
    pub fn update_unit_statics(&mut self, unit: UnitId, statics: &UnitStatics) {
        self.statics.set(unit, statics);
        self.statics.set_phi(unit, statics.sanitized_phi());
        // One re-bucket evaluation, charged whether or not the bucket moves.
        self.pending_cluster_ops += 1;
        let from = self.cluster_of[unit as usize];
        let to = self.domain.bucket(
            self.cfg.clustering,
            self.cfg.clusters,
            self.statics.phi_of(unit),
        );
        if to == from {
            return;
        }
        self.cluster_of[unit as usize] = to;
        if self.lists.is_unit_empty(unit) {
            return;
        }
        let old_from_front = self.lists.front(from).map(|e| e.arrival);
        let old_to_front = self.lists.front(to).map(|e| e.arrival);
        let moved = self.lists.move_unit(unit, to, &mut self.move_scratch);
        self.pending_cluster_ops += moved as u64;
        self.repair_front(from, old_from_front);
        self.repair_front(to, old_to_front);
    }

    /// Re-sync one cluster's `by_wait` key after its front may have changed.
    fn repair_front(&mut self, cluster: u32, old: Option<Nanos>) {
        let new = self.lists.front(cluster).map(|e| e.arrival);
        if old == new {
            return;
        }
        if let Some(a) = old {
            if self.by_wait.remove(&(a, cluster)) {
                self.pending_cluster_ops += 1;
            }
        }
        if let Some(a) = new {
            if self.by_wait.insert((a, cluster)) {
                self.pending_cluster_ops += 1;
            }
        }
    }

    /// A from-scratch reconstruction of this policy's observable state: same
    /// frozen domain, memberships recomputed from the stored `Φ` column, and
    /// every live entry replayed in global enqueue order. Counters that feed
    /// [`SchedStats`] are carried over verbatim, so the reference and the
    /// incremental original must produce **byte-identical** selections and
    /// stats from here on — the differential invariant `hcq-check` fuzzes.
    pub fn rebuild_reference(&self) -> ClusteredBsdPolicy {
        let mut p = ClusteredBsdPolicy::new(self.cfg);
        let m = self.cfg.clusters;
        p.domain = self.domain;
        p.statics = self.statics.clone();
        p.cluster_of = (0..self.statics.len())
            .map(|u| {
                self.domain
                    .bucket(self.cfg.clustering, m, self.statics.phi_of(u as UnitId))
            })
            .collect();
        p.retired = self.retired.clone();
        p.pseudo = self.pseudo.clone();
        p.by_pseudo = self.by_pseudo.clone();
        p.lists.reset(m, self.statics.len());
        p.by_wait.reserve(m);
        let mut live: Vec<WaitEntry> = Vec::with_capacity(self.lists.live());
        self.lists.collect_live(&mut live);
        live.sort_by_key(|e| e.seq);
        for e in &live {
            p.lists.push_back(
                p.cluster_of[e.unit as usize],
                e.unit,
                e.tuple,
                e.arrival,
                e.seq,
            );
        }
        for c in 0..m as u32 {
            if let Some(front) = p.lists.front(c) {
                p.by_wait.insert((front.arrival, c));
            }
        }
        p.seq = self.seq;
        p.pending_cluster_ops = self.pending_cluster_ops;
        p
    }

    /// Thaw and refreeze the `Φ` domain from the *current* statics column
    /// (§10 adaptive estimation). Incremental churn deliberately never moves
    /// the domain — [`Self::update_unit_statics`] clamps drifted `Φ` into
    /// the frozen edge clusters — so after sustained drift many units can
    /// pile up in one edge bucket and the clustering loses its resolution.
    /// This recomputes the domain, the pseudo-priorities, and every bucket
    /// assignment, then replays all live entries in global enqueue order
    /// into their new clusters (the same construction as
    /// [`Self::rebuild_reference`], in place). O(q + live·log) — callers
    /// pace it (the engine triggers on observed out-of-domain drift, not
    /// per update).
    ///
    /// Returns false — with no state touched beyond installing the
    /// recomputed (identical-assignment) domain — when no membership or
    /// pseudo-priority actually changes, so callers can count effective
    /// refreezes.
    pub fn refreeze_domain(&mut self) -> bool {
        let m = self.cfg.clusters;
        let domain = PhiDomain::compute(self.statics.phi());
        let cluster_of: Vec<u32> = self
            .statics
            .phi()
            .iter()
            .map(|&p| domain.bucket(self.cfg.clustering, m, p))
            .collect();
        let pseudo: Vec<f64> = (0..m)
            .map(|i| domain.pseudo(self.cfg.clustering, m, i))
            .collect();
        self.domain = domain;
        if cluster_of == self.cluster_of && pseudo == self.pseudo {
            return false;
        }
        self.pseudo = pseudo;
        self.by_pseudo = (0..m as u32).collect();
        self.by_pseudo
            .sort_by(|&a, &b| self.pseudo[b as usize].total_cmp(&self.pseudo[a as usize]));
        let mut live: Vec<WaitEntry> = Vec::with_capacity(self.lists.live());
        self.lists.collect_live(&mut live);
        live.sort_by_key(|e| e.seq);
        self.cluster_of = cluster_of;
        self.lists.reset(m, self.statics.len());
        self.by_wait.clear();
        self.by_wait.reserve(m);
        for e in &live {
            self.lists.push_back(
                self.cluster_of[e.unit as usize],
                e.unit,
                e.tuple,
                e.arrival,
                e.seq,
            );
        }
        for c in 0..m as u32 {
            if let Some(front) = self.lists.front(c) {
                self.by_wait.insert((front.arrival, c));
            }
        }
        // Charge the rebuild like the §6 maintenance it is: one op per
        // re-bucketed unit plus one per replayed entry.
        self.pending_cluster_ops += self.statics.len() as u64 + live.len() as u64;
        true
    }

    /// Heap bytes committed for unit, statics, and wait-list storage — the
    /// per-query memory figure the large-q bench reports.
    pub fn memory_footprint(&self) -> usize {
        self.statics.heap_bytes()
            + self.lists.heap_bytes()
            + self.by_wait.heap_bytes()
            + self.cluster_of.capacity() * std::mem::size_of::<u32>()
            + self.retired.capacity()
            + self.pseudo.capacity() * std::mem::size_of::<f64>()
            + self.by_pseudo.capacity() * std::mem::size_of::<u32>()
            + self.move_scratch.capacity() * std::mem::size_of::<u32>()
    }

    /// Linear scan over non-empty clusters (clustering only, no pruning).
    fn select_scan(&self, now: Nanos) -> Option<(u32, u64)> {
        let mut best: Option<(f64, u32)> = None;
        let mut ops = 0;
        for c in 0..self.pseudo.len() {
            let Some(front) = self.lists.front(c as u32) else {
                continue;
            };
            let wait = now.saturating_since(front.arrival).as_nanos() as f64;
            let priority = self.pseudo[c] * wait;
            ops += 2;
            let better = match best {
                None => true,
                Some((b, bc)) => priority > b || (priority == b && (c as u32) < bc),
            };
            if better {
                best = Some((priority, c as u32));
            }
        }
        best.map(|(_, c)| (c, ops))
    }

    /// Fagin top-1 over (pseudo-priority, wait).
    fn select_fagin(&mut self, now: Nanos) -> Option<(u32, u64)> {
        let ClusteredBsdPolicy {
            pseudo,
            by_pseudo,
            by_wait,
            lists,
            fagin_scratch,
            ..
        } = self;
        // List A: clusters by pseudo-priority desc, skipping empty ones.
        let list_a = by_pseudo
            .iter()
            .copied()
            .filter(|&c| !lists.is_cluster_empty(c))
            .map(|c| (c, pseudo[c as usize]));
        // List B: non-empty clusters by head wait desc = ascending front
        // arrival; `by_wait` holds exactly the fronts.
        let list_b = by_wait
            .iter()
            .map(|&(arrival, c)| (c, now.saturating_since(arrival).as_nanos() as f64));
        let top = fagin_top1_with(
            fagin_scratch,
            list_a,
            list_b,
            |c| pseudo[c as usize],
            |c| {
                let front = lists.front(c).expect("fagin only sees non-empty clusters");
                now.saturating_since(front.arrival).as_nanos() as f64
            },
        )?;
        Some((top.object, top.accesses))
    }
}

impl Policy for ClusteredBsdPolicy {
    fn name(&self) -> &'static str {
        match (self.cfg.clustering, self.cfg.use_fagin, self.cfg.batch) {
            (Clustering::Uniform, _, _) => "BSD-Uniform",
            (Clustering::Logarithmic, _, _) => "BSD-Logarithmic",
        }
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        // Sanitize the Φ domain before deriving ranges from it: a NaN or
        // negative Φ (zero-selectivity units, external statics) maps to 0
        // and +∞ saturates to f64::MAX, so every arithmetic step below stays
        // well-defined (see UnitStatics::sanitized_phi). The domain freezes
        // here; later churn re-buckets against these ranges.
        self.statics = StaticsTable::from_units(units);
        for (u, unit) in units.iter().enumerate() {
            self.statics.set_phi(u as UnitId, unit.sanitized_phi());
        }
        let m = self.cfg.clusters;
        self.domain = PhiDomain::compute(self.statics.phi());
        self.cluster_of = self
            .statics
            .phi()
            .iter()
            .map(|&p| self.domain.bucket(self.cfg.clustering, m, p))
            .collect();
        self.retired = vec![false; units.len()];
        self.pseudo = (0..m)
            .map(|i| self.domain.pseudo(self.cfg.clustering, m, i))
            .collect();
        self.by_pseudo = (0..m as u32).collect();
        self.by_pseudo
            .sort_by(|&a, &b| self.pseudo[b as usize].total_cmp(&self.pseudo[a as usize]));
        self.lists.reset(m, units.len());
        self.by_wait.clear();
        self.by_wait.reserve(m);
        self.seq = 0;
    }

    fn on_enqueue(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos, _now: Nanos) {
        debug_assert!(
            !self.retired[unit as usize],
            "enqueue on retired unit {unit}"
        );
        let c = self.cluster_of[unit as usize];
        if self.lists.is_cluster_empty(c) {
            self.by_wait.insert((arrival, c));
            self.pending_cluster_ops += 1;
        }
        self.lists.push_back(c, unit, tuple, arrival, self.seq);
        self.seq += 1;
        self.pending_cluster_ops += 1;
    }

    fn on_shed(&mut self, unit: UnitId, tuple: TupleId) {
        // The engine shed the tail tuple of `unit`'s queue; the matching
        // mirror entry is the unit chain's tail (per-unit queues are FIFO,
        // so the rearmost entry is the shed victim) — O(1), no backlog scan.
        // A shed for a unit with no mirror entries is a no-op per the trait
        // contract (the governor can re-shed a unit drained in the same
        // admission storm).
        if self.lists.is_unit_empty(unit) {
            return;
        }
        debug_assert_eq!(
            self.lists.unit_tail_entry(unit).map(|e| e.tuple),
            Some(tuple),
            "shed tuple is the unit's rearmost mirror entry"
        );
        let (entry, was_front) = self
            .lists
            .remove_unit_tail(unit)
            .expect("unit chain is non-empty");
        let c = entry.cluster;
        if was_front {
            let removed = self.by_wait.remove(&(entry.arrival, c));
            debug_assert!(removed, "front entry tracked in by_wait");
            self.pending_cluster_ops += 1;
        }
        self.pending_cluster_ops += 1;
        if was_front {
            if let Some(front) = self.lists.front(c) {
                self.by_wait.insert((front.arrival, c));
                self.pending_cluster_ops += 1;
            }
        }
    }

    fn select(&mut self, queues: &dyn QueueView, now: Nanos) -> Option<Selection> {
        let (cluster, ops) = if self.cfg.use_fagin {
            self.select_fagin(now)?
        } else {
            self.select_scan(now)?
        };
        // Itemize the decision's work: the scan does one priority eval + one
        // comparison per non-empty cluster (ops = 2·k); Fagin's `ops` counts
        // sorted/random accesses, each of which reads one grade and updates
        // the threshold test. Either way the candidate pool is clusters, not
        // queries — that gap is the §6.2 saving `ext_overhead` plots.
        let mut stats = if self.cfg.use_fagin {
            SchedStats {
                candidates_scanned: ops,
                priority_evals: ops,
                comparisons: ops,
                ..SchedStats::default()
            }
        } else {
            SchedStats {
                candidates_scanned: ops / 2,
                priority_evals: ops / 2,
                comparisons: ops / 2,
                ..SchedStats::default()
            }
        };
        stats.cluster_ops = std::mem::take(&mut self.pending_cluster_ops);
        let head = *self
            .lists
            .front(cluster)
            .expect("selected cluster is non-empty");
        let removed = self.by_wait.remove(&(head.arrival, cluster));
        debug_assert!(removed, "front entry tracked in by_wait");
        stats.heap_ops += 1;
        let mut units = crate::policy::SelectionUnits::new();
        if self.cfg.batch {
            // Clustered processing: every member query pending on the head
            // tuple runs as one batch. Copies of one arriving tuple are
            // enqueued back-to-back, so they sit contiguously at the front.
            while let Some(e) = self.lists.front(cluster) {
                if e.tuple != head.tuple {
                    break;
                }
                units.push(e.unit);
                self.lists.pop_front(cluster);
            }
        } else {
            units.push(head.unit);
            self.lists.pop_front(cluster);
        }
        if let Some(front) = self.lists.front(cluster) {
            self.by_wait.insert((front.arrival, cluster));
            stats.heap_ops += 1;
        }
        debug_assert!(units.iter().all(|&u| queues.len(u) > 0));
        let _ = queues;
        Some(Selection {
            units,
            ops_counted: ops,
            stats,
        })
    }

    fn on_domain_refreeze(&mut self) -> bool {
        self.refreeze_domain()
    }

    fn on_statics_update(&mut self, unit: UnitId, statics: &UnitStatics) {
        self.update_unit_statics(unit, statics);
    }

    fn memory_footprint(&self) -> Option<usize> {
        Some(self.memory_footprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsd::BsdPolicy;
    use crate::policy::testkit::MockQueues;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    /// Units with Φ spanning several decades.
    fn spread_units(n: usize) -> Vec<UnitStatics> {
        (0..n)
            .map(|i| {
                let c = 1u64 << (i % 5); // costs 1,2,4,8,16 ms
                UnitStatics::new(0.2 + 0.15 * (i % 5) as f64, ms(c), ms(c * 3))
            })
            .collect()
    }

    #[test]
    fn log_clusters_have_bounded_ratio() {
        let units = spread_units(50);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&units);
        let phis: Vec<f64> = units.iter().map(UnitStatics::bsd_static).collect();
        let (lo, hi) = phis
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &p| (l.min(p), h.max(p)));
        let eps = (hi / lo).powf(1.0 / 8.0);
        // Every unit's Φ lies within [pseudo, pseudo·ε] of its cluster.
        for (u, &phi) in phis.iter().enumerate() {
            let c = p.cluster_of(u as UnitId);
            let pseudo = p.pseudo_priority(c);
            assert!(
                phi >= pseudo * (1.0 - 1e-9) && phi <= pseudo * eps * (1.0 + 1e-9),
                "unit {u}: Φ={phi} outside cluster {c} range [{pseudo}, {})",
                pseudo * eps
            );
        }
    }

    #[test]
    fn uniform_clusters_have_equal_width() {
        let units = spread_units(50);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Uniform,
            clusters: 4,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let widths: Vec<f64> = (0..3)
            .map(|i| p.pseudo_priority(i + 1) - p.pseudo_priority(i))
            .collect();
        for w in &widths {
            assert!((w - widths[0]).abs() / widths[0] < 1e-9);
        }
    }

    #[test]
    fn single_cluster_degenerates_to_fcfs() {
        // m=1: every unit shares one FIFO queue -> arrival order.
        let units = spread_units(4);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(4);
        for (i, &u) in [2u32, 0, 3].iter().enumerate() {
            let t = TupleId::new(i as u64);
            let a = ms(i as u64 * 5);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        let mut order = Vec::new();
        for _ in 0..3 {
            let sel = p.select(&q, ms(100)).unwrap();
            assert_eq!(sel.units.len(), 1);
            q.pop(sel.units[0]);
            order.push(sel.units[0]);
        }
        assert_eq!(order, vec![2, 0, 3]);
        assert!(p.select(&q, ms(100)).is_none());
    }

    #[test]
    fn batch_executes_all_copies_of_head_tuple() {
        // Three units in one cluster all receive tuple t0, then t1.
        let units: Vec<UnitStatics> = (0..3)
            .map(|_| UnitStatics::new(0.5, ms(2), ms(4)))
            .collect();
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(4));
        p.on_register(&units);
        let mut q = MockQueues::new(3);
        for u in 0..3u32 {
            q.push(u, TupleId::new(0), ms(1));
            p.on_enqueue(u, TupleId::new(0), ms(1), ms(1));
        }
        q.push(1, TupleId::new(1), ms(2));
        p.on_enqueue(1, TupleId::new(1), ms(2), ms(2));
        let sel = p.select(&q, ms(10)).unwrap();
        assert_eq!(sel.units, vec![0, 1, 2], "whole cluster batch on t0");
        for &u in &sel.units {
            q.pop(u);
        }
        let sel = p.select(&q, ms(10)).unwrap();
        assert_eq!(sel.units, vec![1], "t1 runs alone");
    }

    #[test]
    fn shed_keeps_mirror_and_wait_index_consistent() {
        // One cluster (FCFS-degenerate) makes the expected order obvious.
        let units = spread_units(3);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(3);
        for (i, &u) in [0u32, 1, 0, 2].iter().enumerate() {
            let t = TupleId::new(i as u64);
            let a = ms(i as u64 * 5);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        // Shed unit 0's tail (tuple 2 — a mid-queue mirror entry, so the
        // by_wait front stays untouched); drain order must skip it.
        q.pop_back(0);
        p.on_shed(0, TupleId::new(2));
        let mut order = Vec::new();
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, ms(100)).unwrap();
            q.pop(sel.units[0]);
            order.push(sel.units[0]);
        }
        assert_eq!(order, vec![0, 1, 2]);
        assert!(p.select(&q, ms(100)).is_none());
    }

    #[test]
    fn shed_of_front_entry_repairs_wait_index() {
        let units = spread_units(2);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        // Unit 0 holds the cluster's single front entry; shedding it must
        // move by_wait to the next entry (unit 1) or select would stall.
        q.push(0, TupleId::new(0), ms(0));
        p.on_enqueue(0, TupleId::new(0), ms(0), ms(0));
        q.push(1, TupleId::new(1), ms(5));
        p.on_enqueue(1, TupleId::new(1), ms(5), ms(5));
        q.pop_back(0);
        p.on_shed(0, TupleId::new(0));
        let sel = p.select(&q, ms(100)).unwrap();
        assert_eq!(sel.units, vec![1]);
        q.pop(1);
        assert!(p.select(&q, ms(100)).is_none());
    }

    #[test]
    fn double_shed_is_a_noop_on_empty_mirror() {
        let units = spread_units(2);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), ms(0));
        p.on_enqueue(0, TupleId::new(0), ms(0), ms(0));
        q.push(1, TupleId::new(1), ms(5));
        p.on_enqueue(1, TupleId::new(1), ms(5), ms(5));
        // First shed drains unit 0's only entry; the second hits an already
        // empty mirror and must be tolerated as a no-op (trait contract:
        // idempotent per queue position — no underflow, no panic, and the
        // wait index must not be corrupted for the surviving unit.
        q.pop_back(0);
        p.on_shed(0, TupleId::new(0));
        p.on_shed(0, TupleId::new(0));
        let sel = p.select(&q, ms(100)).unwrap();
        assert_eq!(sel.units, vec![1]);
        q.pop(1);
        assert!(p.select(&q, ms(100)).is_none());
    }

    /// With m ≥ distinct Φ values and no batching, clustered BSD must make
    /// the same decisions as exact BSD (each unit alone in its cluster ⇒
    /// pseudo-priority ordering equals Φ ordering; the only approximation
    /// is the pseudo value, which preserves order).
    #[test]
    fn many_clusters_match_exact_bsd_decisions() {
        let units = spread_units(5); // 5 distinct Φ
        let mk_queue_state = |q: &mut MockQueues, p: &mut dyn Policy| {
            for (i, arrival) in [0u64, 3, 6, 9, 12].iter().enumerate() {
                let t = TupleId::new(i as u64);
                let a = ms(*arrival);
                q.push(i as UnitId, t, a);
                p.on_enqueue(i as UnitId, t, a, a);
            }
        };
        let mut exact = BsdPolicy::new();
        exact.on_register(&units);
        let mut qe = MockQueues::new(5);
        mk_queue_state(&mut qe, &mut exact);

        let mut clustered = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 64,
            use_fagin: true,
            batch: false,
        });
        clustered.on_register(&units);
        let mut qc = MockQueues::new(5);
        mk_queue_state(&mut qc, &mut clustered);

        let mut now = ms(20);
        for _ in 0..5 {
            let se = exact.select(&qe, now).unwrap();
            let sc = clustered.select(&qc, now).unwrap();
            assert_eq!(se.units, sc.units, "decision diverged at {now}");
            qe.pop(se.units[0]);
            qc.pop(sc.units[0]);
            now += ms(5);
        }
    }

    #[test]
    fn fagin_and_scan_agree() {
        let units = spread_units(30);
        let build = |fagin: bool| {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering: Clustering::Logarithmic,
                clusters: 6,
                use_fagin: fagin,
                batch: false,
            });
            p.on_register(&units);
            p
        };
        let mut pf = build(true);
        let mut ps = build(false);
        let mut qf = MockQueues::new(30);
        let mut qs = MockQueues::new(30);
        for i in 0..30u32 {
            let t = TupleId::new(i as u64);
            let a = ms((i as u64 * 7) % 40);
            // Mock requires per-unit order only; arrivals per unit are single.
            qf.push(i, t, a);
            qs.push(i, t, a);
        }
        // Re-drive enqueues in arrival order for the policy mirrors.
        let mut order: Vec<u32> = (0..30).collect();
        order.sort_by_key(|&i| (i as u64 * 7) % 40);
        for &i in &order {
            let t = TupleId::new(i as u64);
            let a = ms((i as u64 * 7) % 40);
            pf.on_enqueue(i, t, a, a);
            ps.on_enqueue(i, t, a, a);
        }
        let mut now = ms(50);
        for _ in 0..30 {
            let sf = pf.select(&qf, now).unwrap();
            let ss = ps.select(&qs, now).unwrap();
            // Same cluster priority function ⇒ same cluster; FIFO within
            // cluster ⇒ same unit.
            assert_eq!(sf.units, ss.units);
            qf.pop(sf.units[0]);
            qs.pop(ss.units[0]);
            now += ms(3);
        }
    }

    #[test]
    fn fagin_costs_less_than_scan_on_many_clusters() {
        let units = spread_units(200);
        let mut pf = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 32,
            use_fagin: true,
            batch: false,
        });
        let mut ps = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 32,
            use_fagin: false,
            batch: false,
        });
        pf.on_register(&units);
        ps.on_register(&units);
        let mut qf = MockQueues::new(200);
        let mut qs = MockQueues::new(200);
        for i in 0..200u32 {
            let t = TupleId::new(i as u64);
            let a = ms(i as u64);
            qf.push(i, t, a);
            qs.push(i, t, a);
            pf.on_enqueue(i, t, a, a);
            ps.on_enqueue(i, t, a, a);
        }
        let sf = pf.select(&qf, ms(500)).unwrap();
        let ss = ps.select(&qs, ms(500)).unwrap();
        assert!(
            sf.ops_counted < ss.ops_counted,
            "fagin {} vs scan {}",
            sf.ops_counted,
            ss.ops_counted
        );
    }

    /// Enqueue one tuple per unit (FIFO arrival order by unit id) and drain
    /// through the policy, returning the unit execution order. Panics if
    /// `select` ever wedges while work is pending.
    fn drain_all(p: &mut ClusteredBsdPolicy, n: usize) -> Vec<UnitId> {
        let mut q = MockQueues::new(n);
        for u in 0..n as u32 {
            let t = TupleId::new(u as u64);
            let a = ms(u as u64 * 3);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        let mut order = Vec::new();
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, ms(100)).expect("work pending, must select");
            for &u in sel.units.iter() {
                q.pop(u);
                order.push(u);
            }
        }
        order
    }

    #[test]
    fn single_static_priority_domain_does_not_panic_or_nan() {
        // lo == hi (every Φ identical): both splits must degenerate to one
        // cluster with a finite pseudo-priority instead of dividing by
        // (hi − lo) or taking ln(1)/m ratios.
        for clustering in [Clustering::Uniform, Clustering::Logarithmic] {
            let units: Vec<UnitStatics> = (0..2)
                .map(|_| UnitStatics::new(0.5, ms(2), ms(4)))
                .collect();
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: 8,
                use_fagin: false,
                batch: false,
            });
            p.on_register(&units);
            for c in 0..8 {
                assert!(
                    p.pseudo_priority(c).is_finite(),
                    "{clustering:?}: pseudo must be finite"
                );
            }
            assert_eq!(p.cluster_of(0), 0);
            assert_eq!(p.cluster_of(1), 0);
            assert_eq!(drain_all(&mut p, 2), vec![0, 1], "FIFO within the cluster");
        }
    }

    #[test]
    fn zero_phi_units_cluster_low_without_nan() {
        // lo == 0 (a zero-selectivity unit): the logarithmic split's
        // `ln(hi/lo)` is ∞ unguarded; the zero-Φ unit must land in cluster
        // 0 with every pseudo-priority finite, and draining must terminate.
        let units = vec![
            UnitStatics::new(0.0, ms(2), ms(4)), // Φ = 0
            UnitStatics::new(0.4, ms(1), ms(2)), // Φ > 0
            UnitStatics::new(0.9, ms(1), ms(2)), // Φ_max
        ];
        for clustering in [Clustering::Uniform, Clustering::Logarithmic] {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: 4,
                use_fagin: false,
                batch: false,
            });
            p.on_register(&units);
            assert_eq!(p.cluster_of(0), 0, "{clustering:?}: zero-Φ in cluster 0");
            assert_eq!(p.cluster_of(2), 3, "{clustering:?}: Φ_max in top cluster");
            for c in 0..4 {
                assert!(p.pseudo_priority(c).is_finite());
            }
            let order = drain_all(&mut p, 3);
            assert_eq!(order.len(), 3, "{clustering:?}: every tuple served");
        }
    }

    #[test]
    fn nan_phi_units_are_tamed_to_cluster_zero() {
        // Raw statics whose Φ would be NaN (0/0 before the UnitStatics
        // clamp existed) must still register and drain. After the clamp the
        // Φ is finite, but on_register additionally sanitizes, so even a
        // custom UnitStatics with poisoned fields cannot wedge selection.
        let mut units = vec![UnitStatics::new(0.8, ms(1), ms(2)); 2];
        units[0].selectivity = f64::NAN; // forces Φ = NaN through bsd_static
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(4));
        p.on_register(&units);
        assert_eq!(p.cluster_of(0), 0);
        for c in 0..4 {
            assert!(!p.pseudo_priority(c).is_nan());
        }
        let mut pf = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 4,
            use_fagin: false,
            batch: false,
        });
        pf.on_register(&units);
        assert_eq!(drain_all(&mut pf, 2).len(), 2);
    }

    #[test]
    fn phi_exactly_at_hi_maps_to_top_cluster() {
        // The boundary case p == hi: the raw bucket formula floors to m
        // (out of range) for both splits; the unit owning Φ_max must land
        // in cluster m − 1, and indexing must stay in bounds.
        let units = spread_units(50);
        let phis: Vec<f64> = units.iter().map(UnitStatics::bsd_static).collect();
        let hi = phis.iter().fold(0.0f64, |h, &p| h.max(p));
        let top = phis.iter().position(|&p| p == hi).unwrap();
        for (clustering, m) in [
            (Clustering::Uniform, 8usize),
            (Clustering::Logarithmic, 8),
            (Clustering::Uniform, 1),
            (Clustering::Logarithmic, 1),
        ] {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: m,
                use_fagin: true,
                batch: true,
            });
            p.on_register(&units);
            assert_eq!(
                p.cluster_of(top as UnitId),
                m as u32 - 1,
                "{clustering:?} m={m}: Φ_max belongs to the top cluster"
            );
            for u in 0..units.len() {
                assert!((p.cluster_of(u as UnitId) as usize) < m, "index in range");
            }
        }
    }

    #[test]
    fn identical_phis_collapse_to_one_cluster() {
        let units: Vec<UnitStatics> = (0..4)
            .map(|_| UnitStatics::new(0.5, ms(2), ms(4)))
            .collect();
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&units);
        for u in 0..4 {
            assert_eq!(p.cluster_of(u), 0);
        }
    }

    // ---- incremental maintenance ----

    #[test]
    fn added_unit_joins_the_frozen_domain() {
        let units = spread_units(50);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&units);
        // A clone of unit 7 must land in unit 7's cluster; an off-domain
        // Φ clamps to an edge cluster.
        let u = p.add_unit(units[7]);
        assert_eq!(u, 50);
        assert_eq!(p.cluster_of(u), p.cluster_of(7));
        let huge = p.add_unit(UnitStatics::new(
            1.0,
            Nanos::from_nanos(1),
            Nanos::from_nanos(1),
        ));
        assert_eq!(p.cluster_of(huge), 7, "off-domain Φ clamps to the top");
        let zero = p.add_unit(UnitStatics::new(0.0, ms(5), ms(5)));
        assert_eq!(p.cluster_of(zero), 0, "zero Φ clamps to the bottom");
        assert_eq!(p.unit_count(), 53);
    }

    #[test]
    fn statics_update_rebuckets_and_drags_pending_entries() {
        let units = spread_units(10);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 8,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(10);
        for u in 0..10u32 {
            let t = TupleId::new(u as u64);
            let a = ms(u as u64);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        // Give unit 0 the statics of a unit in a different cluster.
        let donor = (0..10u32)
            .find(|&u| p.cluster_of(u) != p.cluster_of(0))
            .expect("spread units span clusters");
        let before = p.cluster_of(0);
        p.update_unit_statics(0, &units[donor as usize]);
        assert_ne!(p.cluster_of(0), before);
        assert_eq!(p.cluster_of(0), p.cluster_of(donor));
        // All ten tuples still drain (by_wait repaired, entries migrated).
        let mut served = 0;
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, ms(1000)).expect("no wedge after migration");
            for &u in sel.units.iter() {
                q.pop(u);
                served += 1;
            }
        }
        assert_eq!(served, 10);
    }

    #[test]
    fn rebuild_reference_is_behaviorally_identical() {
        let units = spread_units(12);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(6));
        p.on_register(&units);
        let mut q = MockQueues::new(12);
        for u in 0..12u32 {
            let t = TupleId::new(u as u64);
            let a = ms(u as u64 * 2);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        // Mutate: one statics change, one shed, one extra arrival.
        p.update_unit_statics(3, &units[8]);
        q.pop_back(5);
        p.on_shed(5, TupleId::new(5));
        q.push(2, TupleId::new(20), ms(40));
        p.on_enqueue(2, TupleId::new(20), ms(40), ms(40));

        let mut r = p.rebuild_reference();
        let mut qr = MockQueues::new(12);
        for u in 0..12u32 {
            if u == 5 {
                continue;
            }
            qr.push(u, TupleId::new(u as u64), ms(u as u64 * 2));
        }
        qr.push(2, TupleId::new(20), ms(40));

        let mut now = ms(50);
        while !q.nonempty().is_empty() {
            let a = p.select(&q, now).expect("original selects");
            let b = r.select(&qr, now).expect("reference selects");
            assert_eq!(a.units, b.units, "selection diverged at {now}");
            assert_eq!(a.ops_counted, b.ops_counted);
            assert_eq!(a.stats, b.stats, "stats diverged at {now}");
            for &u in a.units.iter() {
                q.pop(u);
                qr.pop(u);
            }
            now += ms(3);
        }
        assert!(r.select(&qr, now).is_none());
    }

    #[test]
    fn refreeze_restores_resolution_after_domain_drift() {
        let units = spread_units(10);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&units);
        let mut q = MockQueues::new(10);
        for u in 0..10u32 {
            let t = TupleId::new(u as u64);
            let a = ms(u as u64);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        // Drift every unit far above the frozen domain: incremental updates
        // clamp them all into the top edge cluster.
        for (u, s) in units.iter().enumerate() {
            let drifted = UnitStatics {
                selectivity: s.selectivity * 1e6,
                ..*s
            };
            p.update_unit_statics(u as UnitId, &drifted);
        }
        let clamped = p.cluster_of(0);
        assert!(
            (0..10u32).all(|u| p.cluster_of(u) == clamped),
            "drift past the frozen hi edge collapses everything into one bucket"
        );
        assert!(p.refreeze_domain(), "a real domain move reports true");
        let distinct: std::collections::BTreeSet<u32> =
            (0..10u32).map(|u| p.cluster_of(u)).collect();
        assert!(
            distinct.len() > 1,
            "refreeze re-spreads the drifted Φ across clusters"
        );
        // Behavior matches a policy registered fresh on the drifted statics.
        let drifted: Vec<UnitStatics> = units
            .iter()
            .map(|s| UnitStatics {
                selectivity: s.selectivity * 1e6,
                ..*s
            })
            .collect();
        let mut fresh = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        fresh.on_register(&drifted);
        let mut qf = MockQueues::new(10);
        for u in 0..10u32 {
            let t = TupleId::new(u as u64);
            let a = ms(u as u64);
            qf.push(u, t, a);
            fresh.on_enqueue(u, t, a, a);
        }
        let mut now = ms(100);
        while !q.nonempty().is_empty() {
            let a = p.select(&q, now).expect("refrozen selects");
            let b = fresh.select(&qf, now).expect("fresh selects");
            assert_eq!(a.units, b.units, "order diverged from fresh at {now}");
            for &u in a.units.iter() {
                q.pop(u);
                qf.pop(u);
            }
            now += ms(3);
        }
        // And the rebuilt reference still agrees from here on (the
        // differential invariant holds across a refreeze).
        let r = p.rebuild_reference();
        assert_eq!(r.cluster_of, p.cluster_of);
        assert_eq!(r.pseudo, p.pseudo);
    }

    #[test]
    fn refreeze_without_drift_reports_false() {
        let units = spread_units(6);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(4));
        p.on_register(&units);
        let mut q = MockQueues::new(6);
        for u in 0..6u32 {
            let t = TupleId::new(u as u64);
            q.push(u, t, ms(u as u64));
            p.on_enqueue(u, t, ms(u as u64), ms(u as u64));
        }
        let before: Vec<u32> = (0..6u32).map(|u| p.cluster_of(u)).collect();
        let ops_before = p.pending_cluster_ops;
        assert!(!p.refreeze_domain(), "unchanged statics: no-op refreeze");
        let after: Vec<u32> = (0..6u32).map(|u| p.cluster_of(u)).collect();
        assert_eq!(before, after);
        assert_eq!(
            p.pending_cluster_ops, ops_before,
            "a no-op refreeze charges nothing"
        );
        // The backlog is untouched: everything still drains.
        let mut served = 0;
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, ms(500)).expect("drains after no-op refreeze");
            for &u in sel.units.iter() {
                q.pop(u);
                served += 1;
            }
        }
        assert_eq!(served, 6);
    }

    #[test]
    fn retire_requires_empty_backlog_and_sticks() {
        let units = spread_units(3);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(4));
        p.on_register(&units);
        p.retire_unit(1);
        assert!(p.is_retired(1));
        assert!(!p.is_retired(0));
        let mut q = MockQueues::new(3);
        q.push(0, TupleId::new(0), ms(1));
        p.on_enqueue(0, TupleId::new(0), ms(1), ms(1));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.retire_unit(0);
        }));
        assert!(outcome.is_err(), "retiring a backlogged unit must panic");
    }

    #[test]
    fn memory_footprint_scales_with_units_not_backlog_squared() {
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&spread_units(1000));
        let empty = p.memory_footprint();
        assert!(empty > 0);
        let mut q = MockQueues::new(1000);
        for u in 0..1000u32 {
            let t = TupleId::new(u as u64);
            q.push(u, t, ms(1));
            p.on_enqueue(u, t, ms(1), ms(1));
        }
        let loaded = p.memory_footprint();
        // Statics (4×8) + entry (48) + links and membership: comfortably
        // under the 200 B/query budget the large-q bench gates.
        assert!(
            loaded < 1000 * 200,
            "footprint {loaded} exceeds 200 B/query at q=1000"
        );
        assert!(loaded >= empty);
    }
}
