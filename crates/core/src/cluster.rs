//! The efficient BSD implementation (§6.2): priority clustering, Fagin
//! pruning, clustered processing.
//!
//! The BSD priority factors as `Φ_x · W_x` with `Φ_x = S/(C̄·T²)` static.
//! §6.2.1 groups units by `Φ` into `m` clusters; arriving tuples are routed
//! to their cluster's FIFO input queue, and a scheduling point evaluates one
//! priority per *cluster* — pseudo-priority × wait of the cluster's oldest
//! pending tuple — instead of one per query:
//!
//! * [`Clustering::Uniform`] splits the `Φ` domain into equal-width ranges
//!   (Aurora's method; poor when `Δ = Φ_max/Φ_min` is large).
//! * [`Clustering::Logarithmic`] splits it into equal-*ratio* ranges
//!   `[ε^i, ε^(i+1))` with `ε = Δ^(1/m)`, bounding each cluster's internal
//!   priority spread by `ε`.
//!
//! §6.2.2 prunes the O(m) scan to a handful of accesses with
//! [`crate::fagin`]; §6.2.3 amortizes scheduling points by executing *all*
//! queries of the chosen cluster that are pending on the head tuple as one
//! batch.

use std::collections::{BTreeSet, VecDeque};

use hcq_common::{Nanos, TupleId};

use crate::fagin::fagin_top1;
use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::unit::UnitStatics;

/// How the `Φ` domain is split into clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clustering {
    /// Equal-width ranges (Aurora-style).
    Uniform,
    /// Equal-ratio ranges (the paper's proposal).
    Logarithmic,
}

/// Configuration of the clustered BSD scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Cluster-domain split.
    pub clustering: Clustering,
    /// Number of clusters `m` (≥ 1).
    pub clusters: usize,
    /// Prune the per-cluster scan with Fagin's algorithm (§6.2.2).
    pub use_fagin: bool,
    /// Clustered processing: run every member query pending on the chosen
    /// cluster's head tuple as one batch (§6.2.3).
    pub batch: bool,
}

impl ClusterConfig {
    /// The paper's best configuration: logarithmic clustering with Fagin
    /// pruning and clustered processing.
    pub fn logarithmic(m: usize) -> Self {
        ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: m,
            use_fagin: true,
            batch: true,
        }
    }

    /// Uniform clustering with the same optimizations, for the Figure 13
    /// comparison.
    pub fn uniform(m: usize) -> Self {
        ClusterConfig {
            clustering: Clustering::Uniform,
            clusters: m,
            use_fagin: true,
            batch: true,
        }
    }
}

/// One pending entry mirrored from the engine's queues.
#[derive(Debug, Clone, Copy)]
struct Entry {
    tuple: TupleId,
    arrival: Nanos,
    unit: UnitId,
}

/// BSD through the §6.2 machinery.
#[derive(Debug)]
pub struct ClusteredBsdPolicy {
    cfg: ClusterConfig,
    /// Cluster index per unit.
    cluster_of: Vec<u32>,
    /// Pseudo-priority per cluster (the range's lower edge).
    pseudo: Vec<f64>,
    /// Clusters sorted by pseudo-priority, descending (for Fagin's list A).
    by_pseudo: Vec<u32>,
    /// FIFO input queue per cluster.
    queues: Vec<VecDeque<Entry>>,
    /// `(front arrival, cluster)` for every non-empty cluster, ordered by
    /// arrival — Fagin's list B (descending wait = ascending arrival) with
    /// O(log m) maintenance. Only fronts live here, so a list-B walk never
    /// wades through a backlog.
    by_wait: BTreeSet<(Nanos, u32)>,
    /// Cluster-queue maintenance (routing inserts, shed repairs) since the
    /// last `select`, reported on the next decision's [`SchedStats`].
    pending_cluster_ops: u64,
}

impl ClusteredBsdPolicy {
    /// Build with the given configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.clusters >= 1, "need at least one cluster");
        ClusteredBsdPolicy {
            cfg,
            cluster_of: Vec::new(),
            pseudo: Vec::new(),
            by_pseudo: Vec::new(),
            queues: Vec::new(),
            by_wait: BTreeSet::new(),
            pending_cluster_ops: 0,
        }
    }

    /// The number of clusters actually in use.
    pub fn cluster_count(&self) -> usize {
        self.pseudo.len()
    }

    /// The cluster a unit was assigned to.
    pub fn cluster_of(&self, unit: UnitId) -> u32 {
        self.cluster_of[unit as usize]
    }

    /// A cluster's pseudo-priority.
    pub fn pseudo_priority(&self, cluster: u32) -> f64 {
        self.pseudo[cluster as usize]
    }

    /// Linear scan over non-empty clusters (clustering only, no pruning).
    fn select_scan(&self, now: Nanos) -> Option<(u32, u64)> {
        let mut best: Option<(f64, u32)> = None;
        let mut ops = 0;
        for (c, q) in self.queues.iter().enumerate() {
            let Some(front) = q.front() else { continue };
            let wait = now.saturating_since(front.arrival).as_nanos() as f64;
            let priority = self.pseudo[c] * wait;
            ops += 2;
            let better = match best {
                None => true,
                Some((b, bc)) => priority > b || (priority == b && (c as u32) < bc),
            };
            if better {
                best = Some((priority, c as u32));
            }
        }
        best.map(|(_, c)| (c, ops))
    }

    /// Fagin top-1 over (pseudo-priority, wait).
    fn select_fagin(&mut self, now: Nanos) -> Option<(u32, u64)> {
        // List A: clusters by pseudo-priority desc, skipping empty ones.
        let list_a = self
            .by_pseudo
            .iter()
            .copied()
            .filter(|&c| !self.queues[c as usize].is_empty())
            .map(|c| (c, self.pseudo[c as usize]));
        // List B: non-empty clusters by head wait desc = ascending front
        // arrival; `by_wait` holds exactly the fronts.
        let list_b = self
            .by_wait
            .iter()
            .map(|&(arrival, c)| (c, now.saturating_since(arrival).as_nanos() as f64));
        let pseudo = &self.pseudo;
        let queues = &self.queues;
        let top = fagin_top1(
            list_a,
            list_b,
            |c| pseudo[c as usize],
            |c| {
                let front = queues[c as usize]
                    .front()
                    .expect("fagin only sees non-empty clusters");
                now.saturating_since(front.arrival).as_nanos() as f64
            },
        )?;
        Some((top.object, top.accesses))
    }
}

impl Policy for ClusteredBsdPolicy {
    fn name(&self) -> &'static str {
        match (self.cfg.clustering, self.cfg.use_fagin, self.cfg.batch) {
            (Clustering::Uniform, _, _) => "BSD-Uniform",
            (Clustering::Logarithmic, _, _) => "BSD-Logarithmic",
        }
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        // Sanitize the Φ domain before deriving ranges from it: a NaN or
        // negative Φ (zero-selectivity units, external statics) maps to 0
        // and +∞ saturates to f64::MAX, so every arithmetic step below stays
        // well-defined. Division by `hi − lo` and `ln(hi/lo)` is reached
        // only when `hi > lo` (a genuinely spread domain); degenerate
        // domains — one unit, a single static priority (`lo == hi`), or an
        // all-zero Φ — collapse to a single cluster instead of producing
        // NaN bucket indices.
        let phi: Vec<f64> = units
            .iter()
            .map(|u| {
                let p = u.bsd_static();
                if p.is_nan() {
                    0.0
                } else {
                    p.clamp(0.0, f64::MAX)
                }
            })
            .collect();
        let (lo, hi) = phi
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            });
        let m = self.cfg.clusters;
        // The logarithmic split needs a positive lower edge: `lo == 0`
        // (some unit never emits) would give `ε = ∞` and NaN indices. The
        // zero-Φ units join cluster 0 below their positive peers; the
        // equal-ratio ranges cover the positive sub-domain [lo_pos, hi].
        let lo_pos = if lo > 0.0 {
            lo
        } else {
            phi.iter().copied().filter(|&p| p > 0.0).fold(hi, f64::min)
        };
        let degenerate = units.len() <= 1 || lo >= hi || lo_pos <= 0.0 || lo_pos >= hi;
        self.cluster_of = phi
            .iter()
            .map(|&p| {
                if degenerate {
                    return 0;
                }
                let idx = match self.cfg.clustering {
                    Clustering::Uniform => {
                        // Equal-width ranges over [lo, hi]. `p == hi` lands
                        // exactly on `m` before the clamp — the boundary
                        // value belongs to the top cluster `m − 1`.
                        ((p - lo) / (hi - lo) * m as f64).floor() as usize
                    }
                    Clustering::Logarithmic => {
                        if p < lo_pos {
                            // Zero-Φ unit: lowest cluster.
                            0
                        } else {
                            // Equal-ratio ranges: cluster i covers
                            // [lo·ε^i, lo·ε^(i+1)) with ε = (hi/lo)^(1/m);
                            // `p == hi` floors to `m`, clamped to `m − 1`.
                            let eps = (hi / lo_pos).powf(1.0 / m as f64);
                            ((p / lo_pos).ln() / eps.ln()).floor() as usize
                        }
                    }
                };
                idx.min(m - 1) as u32
            })
            .collect();
        // Pseudo-priority = lower edge of each cluster's range.
        self.pseudo = (0..m)
            .map(|i| {
                if degenerate {
                    return hi.max(0.0);
                }
                match self.cfg.clustering {
                    Clustering::Uniform => lo + (hi - lo) * i as f64 / m as f64,
                    Clustering::Logarithmic => {
                        let eps = (hi / lo_pos).powf(1.0 / m as f64);
                        lo_pos * eps.powi(i as i32)
                    }
                }
            })
            .collect();
        self.by_pseudo = (0..m as u32).collect();
        self.by_pseudo
            .sort_by(|&a, &b| self.pseudo[b as usize].total_cmp(&self.pseudo[a as usize]));
        self.queues = (0..m).map(|_| VecDeque::new()).collect();
        self.by_wait.clear();
    }

    fn on_enqueue(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos, _now: Nanos) {
        let c = self.cluster_of[unit as usize];
        let q = &mut self.queues[c as usize];
        if q.is_empty() {
            self.by_wait.insert((arrival, c));
            self.pending_cluster_ops += 1;
        }
        q.push_back(Entry {
            tuple,
            arrival,
            unit,
        });
        self.pending_cluster_ops += 1;
    }

    fn on_shed(&mut self, unit: UnitId, tuple: TupleId) {
        // The engine shed the tail tuple of `unit`'s queue; drop the matching
        // mirror entry (the rearmost with that unit/tuple pair — a tuple sits
        // in at most one unit queue at a time, so the pair is unambiguous).
        let c = self.cluster_of[unit as usize];
        let q = &mut self.queues[c as usize];
        let Some(i) = q.iter().rposition(|e| e.unit == unit && e.tuple == tuple) else {
            debug_assert!(false, "shed entry absent from cluster mirror");
            return;
        };
        let was_front = i == 0;
        if was_front {
            let removed = self.by_wait.remove(&(q[0].arrival, c));
            debug_assert!(removed, "front entry tracked in by_wait");
            self.pending_cluster_ops += 1;
        }
        q.remove(i);
        self.pending_cluster_ops += 1;
        if was_front {
            if let Some(front) = q.front() {
                self.by_wait.insert((front.arrival, c));
                self.pending_cluster_ops += 1;
            }
        }
    }

    fn select(&mut self, queues: &dyn QueueView, now: Nanos) -> Option<Selection> {
        let (cluster, ops) = if self.cfg.use_fagin {
            self.select_fagin(now)?
        } else {
            self.select_scan(now)?
        };
        // Itemize the decision's work: the scan does one priority eval + one
        // comparison per non-empty cluster (ops = 2·k); Fagin's `ops` counts
        // sorted/random accesses, each of which reads one grade and updates
        // the threshold test. Either way the candidate pool is clusters, not
        // queries — that gap is the §6.2 saving `ext_overhead` plots.
        let mut stats = if self.cfg.use_fagin {
            SchedStats {
                candidates_scanned: ops,
                priority_evals: ops,
                comparisons: ops,
                ..SchedStats::default()
            }
        } else {
            SchedStats {
                candidates_scanned: ops / 2,
                priority_evals: ops / 2,
                comparisons: ops / 2,
                ..SchedStats::default()
            }
        };
        stats.cluster_ops = std::mem::take(&mut self.pending_cluster_ops);
        let q = &mut self.queues[cluster as usize];
        let head = *q.front().expect("selected cluster is non-empty");
        let removed = self.by_wait.remove(&(head.arrival, cluster));
        debug_assert!(removed, "front entry tracked in by_wait");
        stats.heap_ops += 1;
        let mut units = crate::policy::SelectionUnits::new();
        if self.cfg.batch {
            // Clustered processing: every member query pending on the head
            // tuple runs as one batch. Copies of one arriving tuple are
            // enqueued back-to-back, so they sit contiguously at the front.
            while let Some(e) = q.front() {
                if e.tuple != head.tuple {
                    break;
                }
                units.push(e.unit);
                q.pop_front();
            }
        } else {
            units.push(head.unit);
            q.pop_front();
        }
        if let Some(front) = q.front() {
            self.by_wait.insert((front.arrival, cluster));
            stats.heap_ops += 1;
        }
        debug_assert!(units.iter().all(|&u| queues.len(u) > 0));
        let _ = queues;
        Some(Selection {
            units,
            ops_counted: ops,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsd::BsdPolicy;
    use crate::policy::testkit::MockQueues;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    /// Units with Φ spanning several decades.
    fn spread_units(n: usize) -> Vec<UnitStatics> {
        (0..n)
            .map(|i| {
                let c = 1u64 << (i % 5); // costs 1,2,4,8,16 ms
                UnitStatics::new(0.2 + 0.15 * (i % 5) as f64, ms(c), ms(c * 3))
            })
            .collect()
    }

    #[test]
    fn log_clusters_have_bounded_ratio() {
        let units = spread_units(50);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&units);
        let phis: Vec<f64> = units.iter().map(UnitStatics::bsd_static).collect();
        let (lo, hi) = phis
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &p| (l.min(p), h.max(p)));
        let eps = (hi / lo).powf(1.0 / 8.0);
        // Every unit's Φ lies within [pseudo, pseudo·ε] of its cluster.
        for (u, &phi) in phis.iter().enumerate() {
            let c = p.cluster_of(u as UnitId);
            let pseudo = p.pseudo_priority(c);
            assert!(
                phi >= pseudo * (1.0 - 1e-9) && phi <= pseudo * eps * (1.0 + 1e-9),
                "unit {u}: Φ={phi} outside cluster {c} range [{pseudo}, {})",
                pseudo * eps
            );
        }
    }

    #[test]
    fn uniform_clusters_have_equal_width() {
        let units = spread_units(50);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Uniform,
            clusters: 4,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let widths: Vec<f64> = (0..3)
            .map(|i| p.pseudo_priority(i + 1) - p.pseudo_priority(i))
            .collect();
        for w in &widths {
            assert!((w - widths[0]).abs() / widths[0] < 1e-9);
        }
    }

    #[test]
    fn single_cluster_degenerates_to_fcfs() {
        // m=1: every unit shares one FIFO queue -> arrival order.
        let units = spread_units(4);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(4);
        for (i, &u) in [2u32, 0, 3].iter().enumerate() {
            let t = TupleId::new(i as u64);
            let a = ms(i as u64 * 5);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        let mut order = Vec::new();
        for _ in 0..3 {
            let sel = p.select(&q, ms(100)).unwrap();
            assert_eq!(sel.units.len(), 1);
            q.pop(sel.units[0]);
            order.push(sel.units[0]);
        }
        assert_eq!(order, vec![2, 0, 3]);
        assert!(p.select(&q, ms(100)).is_none());
    }

    #[test]
    fn batch_executes_all_copies_of_head_tuple() {
        // Three units in one cluster all receive tuple t0, then t1.
        let units: Vec<UnitStatics> = (0..3)
            .map(|_| UnitStatics::new(0.5, ms(2), ms(4)))
            .collect();
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(4));
        p.on_register(&units);
        let mut q = MockQueues::new(3);
        for u in 0..3u32 {
            q.push(u, TupleId::new(0), ms(1));
            p.on_enqueue(u, TupleId::new(0), ms(1), ms(1));
        }
        q.push(1, TupleId::new(1), ms(2));
        p.on_enqueue(1, TupleId::new(1), ms(2), ms(2));
        let sel = p.select(&q, ms(10)).unwrap();
        assert_eq!(sel.units, vec![0, 1, 2], "whole cluster batch on t0");
        for &u in &sel.units {
            q.pop(u);
        }
        let sel = p.select(&q, ms(10)).unwrap();
        assert_eq!(sel.units, vec![1], "t1 runs alone");
    }

    #[test]
    fn shed_keeps_mirror_and_wait_index_consistent() {
        // One cluster (FCFS-degenerate) makes the expected order obvious.
        let units = spread_units(3);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(3);
        for (i, &u) in [0u32, 1, 0, 2].iter().enumerate() {
            let t = TupleId::new(i as u64);
            let a = ms(i as u64 * 5);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        // Shed unit 0's tail (tuple 2 — a mid-queue mirror entry, so the
        // by_wait front stays untouched); drain order must skip it.
        q.pop_back(0);
        p.on_shed(0, TupleId::new(2));
        let mut order = Vec::new();
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, ms(100)).unwrap();
            q.pop(sel.units[0]);
            order.push(sel.units[0]);
        }
        assert_eq!(order, vec![0, 1, 2]);
        assert!(p.select(&q, ms(100)).is_none());
    }

    #[test]
    fn shed_of_front_entry_repairs_wait_index() {
        let units = spread_units(2);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 1,
            use_fagin: false,
            batch: false,
        });
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        // Unit 0 holds the cluster's single front entry; shedding it must
        // move by_wait to the next entry (unit 1) or select would stall.
        q.push(0, TupleId::new(0), ms(0));
        p.on_enqueue(0, TupleId::new(0), ms(0), ms(0));
        q.push(1, TupleId::new(1), ms(5));
        p.on_enqueue(1, TupleId::new(1), ms(5), ms(5));
        q.pop_back(0);
        p.on_shed(0, TupleId::new(0));
        let sel = p.select(&q, ms(100)).unwrap();
        assert_eq!(sel.units, vec![1]);
        q.pop(1);
        assert!(p.select(&q, ms(100)).is_none());
    }

    /// With m ≥ distinct Φ values and no batching, clustered BSD must make
    /// the same decisions as exact BSD (each unit alone in its cluster ⇒
    /// pseudo-priority ordering equals Φ ordering; the only approximation
    /// is the pseudo value, which preserves order).
    #[test]
    fn many_clusters_match_exact_bsd_decisions() {
        let units = spread_units(5); // 5 distinct Φ
        let mk_queue_state = |q: &mut MockQueues, p: &mut dyn Policy| {
            for (i, arrival) in [0u64, 3, 6, 9, 12].iter().enumerate() {
                let t = TupleId::new(i as u64);
                let a = ms(*arrival);
                q.push(i as UnitId, t, a);
                p.on_enqueue(i as UnitId, t, a, a);
            }
        };
        let mut exact = BsdPolicy::new();
        exact.on_register(&units);
        let mut qe = MockQueues::new(5);
        mk_queue_state(&mut qe, &mut exact);

        let mut clustered = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 64,
            use_fagin: true,
            batch: false,
        });
        clustered.on_register(&units);
        let mut qc = MockQueues::new(5);
        mk_queue_state(&mut qc, &mut clustered);

        let mut now = ms(20);
        for _ in 0..5 {
            let se = exact.select(&qe, now).unwrap();
            let sc = clustered.select(&qc, now).unwrap();
            assert_eq!(se.units, sc.units, "decision diverged at {now}");
            qe.pop(se.units[0]);
            qc.pop(sc.units[0]);
            now += ms(5);
        }
    }

    #[test]
    fn fagin_and_scan_agree() {
        let units = spread_units(30);
        let build = |fagin: bool| {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering: Clustering::Logarithmic,
                clusters: 6,
                use_fagin: fagin,
                batch: false,
            });
            p.on_register(&units);
            p
        };
        let mut pf = build(true);
        let mut ps = build(false);
        let mut qf = MockQueues::new(30);
        let mut qs = MockQueues::new(30);
        for i in 0..30u32 {
            let t = TupleId::new(i as u64);
            let a = ms((i as u64 * 7) % 40);
            // Mock requires per-unit order only; arrivals per unit are single.
            qf.push(i, t, a);
            qs.push(i, t, a);
        }
        // Re-drive enqueues in arrival order for the policy mirrors.
        let mut order: Vec<u32> = (0..30).collect();
        order.sort_by_key(|&i| (i as u64 * 7) % 40);
        for &i in &order {
            let t = TupleId::new(i as u64);
            let a = ms((i as u64 * 7) % 40);
            pf.on_enqueue(i, t, a, a);
            ps.on_enqueue(i, t, a, a);
        }
        let mut now = ms(50);
        for _ in 0..30 {
            let sf = pf.select(&qf, now).unwrap();
            let ss = ps.select(&qs, now).unwrap();
            // Same cluster priority function ⇒ same cluster; FIFO within
            // cluster ⇒ same unit.
            assert_eq!(sf.units, ss.units);
            qf.pop(sf.units[0]);
            qs.pop(ss.units[0]);
            now += ms(3);
        }
    }

    #[test]
    fn fagin_costs_less_than_scan_on_many_clusters() {
        let units = spread_units(200);
        let mut pf = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 32,
            use_fagin: true,
            batch: false,
        });
        let mut ps = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 32,
            use_fagin: false,
            batch: false,
        });
        pf.on_register(&units);
        ps.on_register(&units);
        let mut qf = MockQueues::new(200);
        let mut qs = MockQueues::new(200);
        for i in 0..200u32 {
            let t = TupleId::new(i as u64);
            let a = ms(i as u64);
            qf.push(i, t, a);
            qs.push(i, t, a);
            pf.on_enqueue(i, t, a, a);
            ps.on_enqueue(i, t, a, a);
        }
        let sf = pf.select(&qf, ms(500)).unwrap();
        let ss = ps.select(&qs, ms(500)).unwrap();
        assert!(
            sf.ops_counted < ss.ops_counted,
            "fagin {} vs scan {}",
            sf.ops_counted,
            ss.ops_counted
        );
    }

    /// Enqueue one tuple per unit (FIFO arrival order by unit id) and drain
    /// through the policy, returning the unit execution order. Panics if
    /// `select` ever wedges while work is pending.
    fn drain_all(p: &mut ClusteredBsdPolicy, n: usize) -> Vec<UnitId> {
        let mut q = MockQueues::new(n);
        for u in 0..n as u32 {
            let t = TupleId::new(u as u64);
            let a = ms(u as u64 * 3);
            q.push(u, t, a);
            p.on_enqueue(u, t, a, a);
        }
        let mut order = Vec::new();
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, ms(100)).expect("work pending, must select");
            for &u in sel.units.iter() {
                q.pop(u);
                order.push(u);
            }
        }
        order
    }

    #[test]
    fn single_static_priority_domain_does_not_panic_or_nan() {
        // lo == hi (every Φ identical): both splits must degenerate to one
        // cluster with a finite pseudo-priority instead of dividing by
        // (hi − lo) or taking ln(1)/m ratios.
        for clustering in [Clustering::Uniform, Clustering::Logarithmic] {
            let units: Vec<UnitStatics> = (0..2)
                .map(|_| UnitStatics::new(0.5, ms(2), ms(4)))
                .collect();
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: 8,
                use_fagin: false,
                batch: false,
            });
            p.on_register(&units);
            for c in 0..8 {
                assert!(
                    p.pseudo_priority(c).is_finite(),
                    "{clustering:?}: pseudo must be finite"
                );
            }
            assert_eq!(p.cluster_of(0), 0);
            assert_eq!(p.cluster_of(1), 0);
            assert_eq!(drain_all(&mut p, 2), vec![0, 1], "FIFO within the cluster");
        }
    }

    #[test]
    fn zero_phi_units_cluster_low_without_nan() {
        // lo == 0 (a zero-selectivity unit): the logarithmic split's
        // `ln(hi/lo)` is ∞ unguarded; the zero-Φ unit must land in cluster
        // 0 with every pseudo-priority finite, and draining must terminate.
        let units = vec![
            UnitStatics::new(0.0, ms(2), ms(4)), // Φ = 0
            UnitStatics::new(0.4, ms(1), ms(2)), // Φ > 0
            UnitStatics::new(0.9, ms(1), ms(2)), // Φ_max
        ];
        for clustering in [Clustering::Uniform, Clustering::Logarithmic] {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: 4,
                use_fagin: false,
                batch: false,
            });
            p.on_register(&units);
            assert_eq!(p.cluster_of(0), 0, "{clustering:?}: zero-Φ in cluster 0");
            assert_eq!(p.cluster_of(2), 3, "{clustering:?}: Φ_max in top cluster");
            for c in 0..4 {
                assert!(p.pseudo_priority(c).is_finite());
            }
            let order = drain_all(&mut p, 3);
            assert_eq!(order.len(), 3, "{clustering:?}: every tuple served");
        }
    }

    #[test]
    fn nan_phi_units_are_tamed_to_cluster_zero() {
        // Raw statics whose Φ would be NaN (0/0 before the UnitStatics
        // clamp existed) must still register and drain. After the clamp the
        // Φ is finite, but on_register additionally sanitizes, so even a
        // custom UnitStatics with poisoned fields cannot wedge selection.
        let mut units = vec![UnitStatics::new(0.8, ms(1), ms(2)); 2];
        units[0].selectivity = f64::NAN; // forces Φ = NaN through bsd_static
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(4));
        p.on_register(&units);
        assert_eq!(p.cluster_of(0), 0);
        for c in 0..4 {
            assert!(!p.pseudo_priority(c).is_nan());
        }
        let mut pf = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: 4,
            use_fagin: false,
            batch: false,
        });
        pf.on_register(&units);
        assert_eq!(drain_all(&mut pf, 2).len(), 2);
    }

    #[test]
    fn phi_exactly_at_hi_maps_to_top_cluster() {
        // The boundary case p == hi: the raw bucket formula floors to m
        // (out of range) for both splits; the unit owning Φ_max must land
        // in cluster m − 1, and indexing must stay in bounds.
        let units = spread_units(50);
        let phis: Vec<f64> = units.iter().map(UnitStatics::bsd_static).collect();
        let hi = phis.iter().fold(0.0f64, |h, &p| h.max(p));
        let top = phis.iter().position(|&p| p == hi).unwrap();
        for (clustering, m) in [
            (Clustering::Uniform, 8usize),
            (Clustering::Logarithmic, 8),
            (Clustering::Uniform, 1),
            (Clustering::Logarithmic, 1),
        ] {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: m,
                use_fagin: true,
                batch: true,
            });
            p.on_register(&units);
            assert_eq!(
                p.cluster_of(top as UnitId),
                m as u32 - 1,
                "{clustering:?} m={m}: Φ_max belongs to the top cluster"
            );
            for u in 0..units.len() {
                assert!((p.cluster_of(u as UnitId) as usize) < m, "index in range");
            }
        }
    }

    #[test]
    fn identical_phis_collapse_to_one_cluster() {
        let units: Vec<UnitStatics> = (0..4)
            .map(|_| UnitStatics::new(0.5, ms(2), ms(4)))
            .collect();
        let mut p = ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8));
        p.on_register(&units);
        for u in 0..4 {
            assert_eq!(p.cluster_of(u), 0);
        }
    }
}
