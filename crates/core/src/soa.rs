//! Struct-of-arrays statics storage for large unit populations.
//!
//! Every dynamic-priority hot path in this crate reduces to "multiply one
//! per-unit static by the head wait and compare": BSD scans `Φ_x`, LSF scans
//! `1/T_k`, clustered BSD re-buckets on `Φ_x`. With 10⁵–10⁶ units, an
//! array-of-structs layout drags the two unused `f64`s of every
//! [`UnitStatics`] through the cache on each scan; this table stores each
//! statistic in its own contiguous array so a `select` scan touches exactly
//! the eight bytes per unit it needs.
//!
//! The table also carries the *derived* factors (`Φ = S/(C̄·T²)`, the LSF
//! slope `1/T`) precomputed, so updating one unit's statics
//! ([`StaticsTable::set`]) refreshes every derived column in O(1) and no
//! scan ever divides.

use crate::policy::UnitId;
use crate::unit::UnitStatics;

/// Per-unit statics in struct-of-arrays layout: the §2 quantities
/// (`S_x`, `C̄_x`, `T_k`) plus the derived scan factors.
#[derive(Debug, Clone, Default)]
pub struct StaticsTable {
    /// Global selectivity `S` per unit.
    selectivity: Vec<f64>,
    /// Global average cost `C̄` in nanoseconds per unit.
    avg_cost_ns: Vec<f64>,
    /// Ideal total processing time `T` in nanoseconds per unit.
    ideal_time_ns: Vec<f64>,
    /// Derived BSD factor `Φ = S/(C̄·T²)` per unit (Equation 6).
    phi: Vec<f64>,
}

impl StaticsTable {
    /// An empty table.
    pub fn new() -> Self {
        StaticsTable::default()
    }

    /// Build from a registration slice.
    pub fn from_units(units: &[UnitStatics]) -> Self {
        let mut t = StaticsTable {
            selectivity: Vec::with_capacity(units.len()),
            avg_cost_ns: Vec::with_capacity(units.len()),
            ideal_time_ns: Vec::with_capacity(units.len()),
            phi: Vec::with_capacity(units.len()),
        };
        for u in units {
            t.push(u);
        }
        t
    }

    /// Number of units stored.
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// True when no units are stored.
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// Append one unit, returning its id (dense, registration order).
    pub fn push(&mut self, u: &UnitStatics) -> UnitId {
        let id = self.phi.len() as UnitId;
        self.selectivity.push(u.selectivity);
        self.avg_cost_ns.push(u.avg_cost_ns);
        self.ideal_time_ns.push(u.ideal_time_ns);
        self.phi.push(u.bsd_static());
        id
    }

    /// Replace one unit's statics, refreshing the derived columns.
    pub fn set(&mut self, unit: UnitId, u: &UnitStatics) {
        let i = unit as usize;
        self.selectivity[i] = u.selectivity;
        self.avg_cost_ns[i] = u.avg_cost_ns;
        self.ideal_time_ns[i] = u.ideal_time_ns;
        self.phi[i] = u.bsd_static();
    }

    /// Reassemble one unit's statics (round-trips the stored columns).
    pub fn get(&self, unit: UnitId) -> UnitStatics {
        let i = unit as usize;
        UnitStatics {
            selectivity: self.selectivity[i],
            avg_cost_ns: self.avg_cost_ns[i],
            ideal_time_ns: self.ideal_time_ns[i],
        }
    }

    /// The contiguous `Φ` column — the clustered/naive BSD scan input.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// One unit's `Φ` factor.
    pub fn phi_of(&self, unit: UnitId) -> f64 {
        self.phi[unit as usize]
    }

    /// Override one unit's `Φ` directly, decoupled from `S`/`C̄`/`T`
    /// (shared-operator groups install synthesized factors).
    pub fn set_phi(&mut self, unit: UnitId, phi: f64) {
        self.phi[unit as usize] = phi;
    }

    /// Heap bytes held by the table (capacity, not length — what the
    /// allocator actually committed).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
            * (self.selectivity.capacity()
                + self.avg_cost_ns.capacity()
                + self.ideal_time_ns.capacity()
                + self.phi.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::Nanos;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn columns_round_trip_and_derive() {
        let units = vec![
            UnitStatics::new(0.5, ms(4), ms(6)),
            UnitStatics::new(1.0, ms(1), ms(2)),
        ];
        let t = StaticsTable::from_units(&units);
        assert_eq!(t.len(), 2);
        for (i, u) in units.iter().enumerate() {
            assert_eq!(t.get(i as UnitId), *u);
            assert_eq!(t.phi_of(i as UnitId), u.bsd_static());
        }
        assert_eq!(t.phi().len(), 2);
    }

    #[test]
    fn set_refreshes_derived_columns() {
        let mut t = StaticsTable::from_units(&[UnitStatics::new(0.5, ms(4), ms(6))]);
        let next = UnitStatics::new(0.9, ms(1), ms(1));
        t.set(0, &next);
        assert_eq!(t.get(0), next);
        assert_eq!(t.phi_of(0), next.bsd_static());
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut t = StaticsTable::new();
        assert!(t.is_empty());
        assert_eq!(t.push(&UnitStatics::new(0.5, ms(1), ms(1))), 0);
        assert_eq!(t.push(&UnitStatics::new(0.5, ms(2), ms(2))), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn phi_override_is_decoupled() {
        let mut t = StaticsTable::from_units(&[UnitStatics::new(0.5, ms(4), ms(6))]);
        t.set_phi(0, 42.0);
        assert_eq!(t.phi_of(0), 42.0);
        // The base columns are untouched.
        assert_eq!(t.get(0).selectivity, 0.5);
    }

    #[test]
    fn heap_bytes_tracks_columns() {
        let t = StaticsTable::from_units(&[UnitStatics::new(0.5, ms(1), ms(1)); 10]);
        assert!(t.heap_bytes() >= 4 * 10 * 8);
    }
}
