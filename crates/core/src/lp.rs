//! ℓp-norm slowdown scheduling — the BSD derivation at arbitrary `p`.
//!
//! §4.2 derives BSD by comparing two execution orders under the ℓ2 norm of
//! slowdowns and dropping lower-order terms. Running the same §4.2.2
//! derivation for the general ℓp norm (Bansal & Pruhs' "server scheduling
//! in the ℓp norm", which the paper builds on) gives the priority
//!
//! ```text
//!   V = (S / (C̄ · T^p)) · W^(p−1)
//! ```
//!
//! which interpolates the whole paper's policy family:
//!
//! * `p = 1` — the wait term vanishes and `V = S/(C̄·T)`: exactly **HNR**
//!   (average slowdown = ℓ1).
//! * `p = 2` — exactly **BSD**.
//! * `p → ∞` — the wait-to-ideal ratio dominates and the rule approaches
//!   **LSF**'s max-slowdown greediness.
//!
//! This module is an extension beyond the paper (it evaluates only p = 2);
//! the `ext_lp` exhibit in `hcq-repro` sweeps `p` to show the knob trading
//! average-case against worst-case, with the paper's three policies as the
//! interpolation's anchor points.

use hcq_common::{Nanos, TupleId};

use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::unit::UnitStatics;

/// The generalized ℓp slowdown policy.
#[derive(Debug)]
pub struct LpPolicy {
    p: f64,
    /// Static factor `S/(C̄·T^p)` per unit.
    phi_p: Vec<f64>,
}

impl LpPolicy {
    /// Create for a norm exponent `p ≥ 1`.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && p >= 1.0, "p must be ≥ 1");
        LpPolicy {
            p,
            phi_p: Vec::new(),
        }
    }

    /// The exponent.
    pub fn p(&self) -> f64 {
        self.p
    }

    fn static_factor(p: f64, u: &UnitStatics) -> f64 {
        u.selectivity / (u.avg_cost_ns * u.ideal_time_ns.powf(p))
    }
}

impl Policy for LpPolicy {
    fn name(&self) -> &'static str {
        "LP"
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        self.phi_p = units
            .iter()
            .map(|u| Self::static_factor(self.p, u))
            .collect();
    }

    fn on_enqueue(&mut self, _unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {}

    fn select(&mut self, queues: &dyn QueueView, now: Nanos) -> Option<Selection> {
        let mut best: Option<(f64, UnitId)> = None;
        let mut ops = 0;
        let w_exp = self.p - 1.0;
        for &unit in queues.nonempty() {
            let arrival = queues.head_arrival(unit).expect("nonempty unit has a head");
            let wait = now.saturating_since(arrival).as_nanos() as f64;
            // W^0 = 1 even at W = 0 (p = 1 must reduce to pure HNR order).
            let w_term = if w_exp == 0.0 { 1.0 } else { wait.powf(w_exp) };
            let priority = w_term * self.phi_p[unit as usize];
            ops += 2;
            let better = match best {
                None => true,
                Some((b, bu)) => priority > b || (priority == b && unit < bu),
            };
            if better {
                best = Some((priority, unit));
            }
        }
        best.map(|(_, unit)| {
            let n = ops / 2;
            let stats = SchedStats {
                candidates_scanned: n,
                priority_evals: n,
                comparisons: n,
                ..SchedStats::default()
            };
            Selection::one(unit, ops).with_stats(stats)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsd::BsdPolicy;
    use crate::policy::testkit::MockQueues;
    use crate::statics::StaticPolicy;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    fn units() -> Vec<UnitStatics> {
        vec![
            UnitStatics::new(1.0, ms(5), ms(5)),
            UnitStatics::new(0.33, ms(2), ms(2)),
            UnitStatics::new(0.6, ms(8), ms(12)),
        ]
    }

    fn loaded(policy: &mut dyn Policy) -> MockQueues {
        policy.on_register(&units());
        let mut q = MockQueues::new(3);
        for (u, arrival) in [(0u32, 0u64), (1, 40), (2, 15)] {
            q.push(u, TupleId::new(u as u64), ms(arrival));
            policy.on_enqueue(u, TupleId::new(u as u64), ms(arrival), ms(arrival));
        }
        q
    }

    #[test]
    fn p1_matches_hnr_ordering() {
        let mut lp = LpPolicy::new(1.0);
        let q = loaded(&mut lp);
        let mut hnr = StaticPolicy::hnr();
        let q2 = loaded(&mut hnr);
        let now = ms(100);
        assert_eq!(
            lp.select(&q, now).unwrap().units,
            hnr.select(&q2, now).unwrap().units
        );
    }

    #[test]
    fn p2_matches_bsd_decision() {
        let mut lp = LpPolicy::new(2.0);
        let q = loaded(&mut lp);
        let mut bsd = BsdPolicy::new();
        let q2 = loaded(&mut bsd);
        for now_ms in [50u64, 100, 500, 5000] {
            assert_eq!(
                lp.select(&q, ms(now_ms)).unwrap().units,
                bsd.select(&q2, ms(now_ms)).unwrap().units,
                "diverged at t={now_ms}ms"
            );
        }
    }

    #[test]
    fn large_p_chases_the_longest_normalized_wait() {
        // As p grows the W/T ratio dominates: the unit whose head tuple has
        // the largest stretch wins, like LSF.
        let mut lp = LpPolicy::new(16.0);
        let q = loaded(&mut lp);
        let mut lsf = crate::lsf::LsfPolicy::new();
        let q2 = loaded(&mut lsf);
        let now = ms(10_000);
        assert_eq!(
            lp.select(&q, now).unwrap().units,
            lsf.select(&q2, now).unwrap().units
        );
    }

    #[test]
    #[should_panic(expected = "p must be ≥ 1")]
    fn sub_one_p_rejected() {
        let _ = LpPolicy::new(0.5);
    }

    #[test]
    fn empty_select_none() {
        let mut lp = LpPolicy::new(2.0);
        lp.on_register(&units());
        let q = MockQueues::new(3);
        assert!(lp.select(&q, ms(1)).is_none());
    }
}
