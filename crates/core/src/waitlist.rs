//! Slab-backed intrusive wait lists for the clustered scheduler.
//!
//! [`ClusteredBsdPolicy`](crate::ClusteredBsdPolicy) mirrors every pending
//! tuple so a scheduling point can read cluster fronts without touching the
//! engine. At 10⁵–10⁶ units a `Vec<VecDeque<Entry>>` mirror costs one heap
//! allocation per cluster queue and O(backlog) removals on shed; this module
//! replaces it with a single slab of [`WaitEntry`] slots threaded by two
//! intrusive doubly-linked lists:
//!
//! * the **cluster list** — FIFO of pending entries per cluster, ordered by
//!   the global enqueue sequence number (`seq`), which is what "FIFO" means
//!   once entries can migrate between clusters;
//! * the **unit chain** — the same entries threaded per unit, so the shed
//!   callback (which names a unit, not a position) unlinks the unit's
//!   rearmost entry in O(1) instead of scanning the cluster backlog.
//!
//! Freed slots go on a free list and are reused, so a steady-state workload
//! performs no allocation per decision; `UnitId → chain head/tail` indices
//! are stable across every mutation. All four links live inside the 48-byte
//! entry — no auxiliary maps.
//!
//! [`SortedFronts`] is the companion cluster-front index: at most one key
//! per cluster, kept in a sorted `Vec` (binary-search insert/remove, in-order
//! iteration for Fagin's list B). `m` is small by design (§6.2 picks m ≪ q),
//! so a 12-byte memmove beats a `BTreeSet`'s node allocations — keeping the
//! select hot path allocation-free.

use hcq_common::{Nanos, TupleId};

use crate::policy::UnitId;

/// Null link.
pub(crate) const NIL: u32 = u32::MAX;

/// One mirrored pending tuple, with intrusive links for the cluster list
/// (`prev`/`next`) and the owning unit's chain (`unit_prev`/`unit_next`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitEntry {
    /// Mirrored tuple id.
    pub tuple: TupleId,
    /// System arrival time (the `W` base of every priority formula).
    pub arrival: Nanos,
    /// Global enqueue sequence number — the canonical FIFO order.
    pub seq: u64,
    /// Owning unit.
    pub unit: UnitId,
    /// Cluster currently holding the entry.
    pub cluster: u32,
    prev: u32,
    next: u32,
    unit_prev: u32,
    unit_next: u32,
}

/// The slab plus both intrusive list families.
#[derive(Debug, Default)]
pub(crate) struct WaitLists {
    slots: Vec<WaitEntry>,
    /// Free slots threaded through `next`.
    free_head: u32,
    live: usize,
    cluster_head: Vec<u32>,
    cluster_tail: Vec<u32>,
    unit_head: Vec<u32>,
    unit_tail: Vec<u32>,
}

impl WaitLists {
    /// Fresh lists for `clusters × units`, with every list empty. Slot
    /// storage from a previous registration is kept for reuse.
    pub fn reset(&mut self, clusters: usize, units: usize) {
        self.slots.clear();
        self.free_head = NIL;
        self.live = 0;
        self.cluster_head.clear();
        self.cluster_head.resize(clusters, NIL);
        self.cluster_tail.clear();
        self.cluster_tail.resize(clusters, NIL);
        self.unit_head.clear();
        self.unit_head.resize(units, NIL);
        self.unit_tail.clear();
        self.unit_tail.resize(units, NIL);
    }

    /// Register one more unit (empty chain), returning its id.
    pub fn add_unit(&mut self) -> UnitId {
        let id = self.unit_head.len() as UnitId;
        self.unit_head.push(NIL);
        self.unit_tail.push(NIL);
        id
    }

    /// Live (pending) entries across all clusters.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The cluster's oldest pending entry, if any.
    pub fn front(&self, cluster: u32) -> Option<&WaitEntry> {
        let head = self.cluster_head[cluster as usize];
        (head != NIL).then(|| &self.slots[head as usize])
    }

    /// True when the cluster has no pending entries.
    pub fn is_cluster_empty(&self, cluster: u32) -> bool {
        self.cluster_head[cluster as usize] == NIL
    }

    /// True when the unit has no pending entries.
    pub fn is_unit_empty(&self, unit: UnitId) -> bool {
        self.unit_head[unit as usize] == NIL
    }

    /// The unit's rearmost pending entry (the shed victim), if any.
    pub fn unit_tail_entry(&self, unit: UnitId) -> Option<&WaitEntry> {
        let tail = self.unit_tail[unit as usize];
        (tail != NIL).then(|| &self.slots[tail as usize])
    }

    fn alloc(&mut self, entry: WaitEntry) -> u32 {
        self.live += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            self.slots[idx as usize] = entry;
            idx
        } else {
            self.slots.push(entry);
            (self.slots.len() - 1) as u32
        }
    }

    fn free(&mut self, idx: u32) {
        self.slots[idx as usize].next = self.free_head;
        self.free_head = idx;
        self.live -= 1;
    }

    fn link_cluster_tail(&mut self, idx: u32, cluster: u32) {
        let tail = self.cluster_tail[cluster as usize];
        self.slots[idx as usize].prev = tail;
        self.slots[idx as usize].next = NIL;
        self.slots[idx as usize].cluster = cluster;
        if tail == NIL {
            self.cluster_head[cluster as usize] = idx;
        } else {
            self.slots[tail as usize].next = idx;
        }
        self.cluster_tail[cluster as usize] = idx;
    }

    fn unlink_cluster(&mut self, idx: u32) {
        let e = self.slots[idx as usize];
        if e.prev == NIL {
            self.cluster_head[e.cluster as usize] = e.next;
        } else {
            self.slots[e.prev as usize].next = e.next;
        }
        if e.next == NIL {
            self.cluster_tail[e.cluster as usize] = e.prev;
        } else {
            self.slots[e.next as usize].prev = e.prev;
        }
    }

    fn unlink_unit(&mut self, idx: u32) {
        let e = self.slots[idx as usize];
        if e.unit_prev == NIL {
            self.unit_head[e.unit as usize] = e.unit_next;
        } else {
            self.slots[e.unit_prev as usize].unit_next = e.unit_next;
        }
        if e.unit_next == NIL {
            self.unit_tail[e.unit as usize] = e.unit_prev;
        } else {
            self.slots[e.unit_next as usize].unit_prev = e.unit_prev;
        }
    }

    /// Append a pending entry to the cluster FIFO and the unit chain.
    /// `seq` must be strictly increasing across calls (the caller's global
    /// enqueue counter), which keeps every cluster list seq-sorted.
    pub fn push_back(
        &mut self,
        cluster: u32,
        unit: UnitId,
        tuple: TupleId,
        arrival: Nanos,
        seq: u64,
    ) {
        let idx = self.alloc(WaitEntry {
            tuple,
            arrival,
            seq,
            unit,
            cluster,
            prev: NIL,
            next: NIL,
            unit_prev: NIL,
            unit_next: NIL,
        });
        self.link_cluster_tail(idx, cluster);
        let utail = self.unit_tail[unit as usize];
        self.slots[idx as usize].unit_prev = utail;
        if utail == NIL {
            self.unit_head[unit as usize] = idx;
        } else {
            self.slots[utail as usize].unit_next = idx;
        }
        self.unit_tail[unit as usize] = idx;
    }

    /// Remove and return the cluster's front entry.
    pub fn pop_front(&mut self, cluster: u32) -> WaitEntry {
        let idx = self.cluster_head[cluster as usize];
        assert_ne!(idx, NIL, "pop_front on empty cluster");
        let e = self.slots[idx as usize];
        self.unlink_cluster(idx);
        self.unlink_unit(idx);
        self.free(idx);
        e
    }

    /// Remove the unit's rearmost entry (the shed victim), returning it and
    /// whether it was its cluster's front.
    pub fn remove_unit_tail(&mut self, unit: UnitId) -> Option<(WaitEntry, bool)> {
        let idx = self.unit_tail[unit as usize];
        if idx == NIL {
            return None;
        }
        let e = self.slots[idx as usize];
        let was_front = self.cluster_head[e.cluster as usize] == idx;
        self.unlink_cluster(idx);
        self.unlink_unit(idx);
        self.free(idx);
        Some((e, was_front))
    }

    /// Migrate every pending entry of `unit` into `to`, keeping both the
    /// destination list and the chain seq-sorted (a two-way merge). Returns
    /// the number of entries moved. `scratch` is caller-owned to keep the
    /// hot path allocation-free after warm-up.
    pub fn move_unit(&mut self, unit: UnitId, to: u32, scratch: &mut Vec<u32>) -> usize {
        scratch.clear();
        let mut idx = self.unit_head[unit as usize];
        while idx != NIL {
            scratch.push(idx);
            idx = self.slots[idx as usize].unit_next;
        }
        if scratch.is_empty() {
            return 0;
        }
        if self.slots[scratch[0] as usize].cluster == to {
            return 0;
        }
        for &i in scratch.iter() {
            self.unlink_cluster(i);
        }
        // Merge the (seq-sorted) chain into the (seq-sorted) destination
        // list by relinking from scratch.
        let mut a = self.cluster_head[to as usize];
        let mut b = 0usize;
        let mut head = NIL;
        let mut tail = NIL;
        while a != NIL || b < scratch.len() {
            let take_b = a == NIL
                || (b < scratch.len()
                    && self.slots[scratch[b] as usize].seq < self.slots[a as usize].seq);
            let idx = if take_b {
                let i = scratch[b];
                b += 1;
                i
            } else {
                let i = a;
                a = self.slots[i as usize].next;
                i
            };
            self.slots[idx as usize].cluster = to;
            self.slots[idx as usize].prev = tail;
            self.slots[idx as usize].next = NIL;
            if tail == NIL {
                head = idx;
            } else {
                self.slots[tail as usize].next = idx;
            }
            tail = idx;
        }
        self.cluster_head[to as usize] = head;
        self.cluster_tail[to as usize] = tail;
        scratch.len()
    }

    /// Copy out every live entry (cluster-list order per cluster; callers
    /// sort by `seq` for the canonical global order).
    pub fn collect_live(&self, out: &mut Vec<WaitEntry>) {
        out.clear();
        for &head in &self.cluster_head {
            let mut idx = head;
            while idx != NIL {
                out.push(self.slots[idx as usize]);
                idx = self.slots[idx as usize].next;
            }
        }
    }

    /// Heap bytes committed for slots and list heads.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<WaitEntry>()
            + (self.cluster_head.capacity()
                + self.cluster_tail.capacity()
                + self.unit_head.capacity()
                + self.unit_tail.capacity())
                * std::mem::size_of::<u32>()
    }

    /// Exhaustive link validation (test/fuzz support, not a hot path).
    #[cfg(test)]
    pub fn assert_consistent(&self) {
        let mut seen = 0usize;
        for (c, &head) in self.cluster_head.iter().enumerate() {
            let mut idx = head;
            let mut prev = NIL;
            let mut last_seq = None;
            while idx != NIL {
                let e = &self.slots[idx as usize];
                assert_eq!(e.cluster as usize, c, "entry cluster field");
                assert_eq!(e.prev, prev, "cluster back-link");
                if let Some(s) = last_seq {
                    assert!(e.seq > s, "cluster list seq-sorted");
                }
                last_seq = Some(e.seq);
                seen += 1;
                prev = idx;
                idx = e.next;
            }
            assert_eq!(self.cluster_tail[c], prev, "cluster tail");
        }
        assert_eq!(seen, self.live, "live count");
        for (u, &head) in self.unit_head.iter().enumerate() {
            let mut idx = head;
            let mut prev = NIL;
            let mut last_seq = None;
            while idx != NIL {
                let e = &self.slots[idx as usize];
                assert_eq!(e.unit as usize, u, "entry unit field");
                assert_eq!(e.unit_prev, prev, "unit back-link");
                if let Some(s) = last_seq {
                    assert!(e.seq > s, "unit chain seq-sorted");
                }
                last_seq = Some(e.seq);
                prev = idx;
                idx = e.unit_next;
            }
            assert_eq!(self.unit_tail[u], prev, "unit tail");
        }
    }
}

/// Sorted cluster-front index: `(front arrival, cluster)` for every
/// non-empty cluster, ascending — Fagin's list B (descending wait) and the
/// by-wait tie-break order, with no per-edit allocation.
#[derive(Debug, Default)]
pub(crate) struct SortedFronts {
    keys: Vec<(Nanos, u32)>,
}

impl SortedFronts {
    /// Drop all keys, keeping capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Reserve for `m` clusters up front so steady state never reallocates.
    pub fn reserve(&mut self, m: usize) {
        self.keys.reserve(m.saturating_sub(self.keys.capacity()));
    }

    /// Insert a key; returns false if it was already present.
    pub fn insert(&mut self, key: (Nanos, u32)) -> bool {
        match self.keys.binary_search(&key) {
            Ok(_) => false,
            Err(pos) => {
                self.keys.insert(pos, key);
                true
            }
        }
    }

    /// Remove a key; returns false if it was absent.
    pub fn remove(&mut self, key: &(Nanos, u32)) -> bool {
        match self.keys.binary_search(key) {
            Ok(pos) => {
                self.keys.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Keys in ascending `(arrival, cluster)` order.
    pub fn iter(&self) -> std::slice::Iter<'_, (Nanos, u32)> {
        self.keys.iter()
    }

    /// Number of non-empty clusters tracked.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Heap bytes committed.
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<(Nanos, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    fn lists(clusters: usize, units: usize) -> WaitLists {
        let mut l = WaitLists::default();
        l.reset(clusters, units);
        l
    }

    #[test]
    fn fifo_per_cluster_and_unit_chain() {
        let mut l = lists(2, 3);
        l.push_back(0, 0, TupleId::new(0), ms(1), 0);
        l.push_back(0, 1, TupleId::new(1), ms(2), 1);
        l.push_back(0, 0, TupleId::new(2), ms(3), 2);
        l.push_back(1, 2, TupleId::new(3), ms(4), 3);
        l.assert_consistent();
        assert_eq!(l.live(), 4);
        assert_eq!(l.front(0).unwrap().tuple, TupleId::new(0));
        assert_eq!(l.unit_tail_entry(0).unwrap().tuple, TupleId::new(2));
        let e = l.pop_front(0);
        assert_eq!((e.unit, e.seq), (0, 0));
        l.assert_consistent();
        // Unit 0's chain now holds only tuple 2.
        assert_eq!(l.unit_tail_entry(0).unwrap().tuple, TupleId::new(2));
        assert_eq!(l.front(0).unwrap().unit, 1);
        assert_eq!(l.front(1).unwrap().unit, 2);
    }

    #[test]
    fn remove_unit_tail_is_the_shed_victim() {
        let mut l = lists(1, 2);
        l.push_back(0, 0, TupleId::new(0), ms(1), 0);
        l.push_back(0, 1, TupleId::new(1), ms(2), 1);
        l.push_back(0, 0, TupleId::new(2), ms(3), 2);
        // Unit 0's rearmost entry is mid-list: not the cluster front.
        let (e, was_front) = l.remove_unit_tail(0).unwrap();
        assert_eq!(e.tuple, TupleId::new(2));
        assert!(!was_front);
        l.assert_consistent();
        // Now unit 0's only entry IS the front.
        let (e, was_front) = l.remove_unit_tail(0).unwrap();
        assert_eq!(e.tuple, TupleId::new(0));
        assert!(was_front);
        l.assert_consistent();
        assert!(l.remove_unit_tail(0).is_none());
        assert_eq!(l.live(), 1);
    }

    #[test]
    fn slots_are_reused_after_free() {
        let mut l = lists(1, 1);
        for round in 0..5u64 {
            l.push_back(0, 0, TupleId::new(round), ms(round), round);
            l.pop_front(0);
        }
        // One slot allocated, reused every round.
        assert_eq!(l.slots.len(), 1);
        assert_eq!(l.live(), 0);
    }

    #[test]
    fn move_unit_merges_by_seq() {
        let mut l = lists(2, 3);
        // Cluster 0: unit 0 at seqs 0 and 4; cluster 1: unit 1 at seqs 1, 3
        // and unit 2 at seq 2.
        l.push_back(0, 0, TupleId::new(0), ms(1), 0);
        l.push_back(1, 1, TupleId::new(1), ms(2), 1);
        l.push_back(1, 2, TupleId::new(2), ms(3), 2);
        l.push_back(1, 1, TupleId::new(3), ms(4), 3);
        l.push_back(0, 0, TupleId::new(4), ms(5), 4);
        let mut scratch = Vec::new();
        assert_eq!(l.move_unit(0, 1, &mut scratch), 2);
        l.assert_consistent();
        assert!(l.is_cluster_empty(0));
        // Destination order is the global enqueue order.
        let mut seqs = Vec::new();
        let mut idx = l.cluster_head[1];
        while idx != NIL {
            seqs.push(l.slots[idx as usize].seq);
            idx = l.slots[idx as usize].next;
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        // Moving to the current cluster is a no-op.
        assert_eq!(l.move_unit(0, 1, &mut scratch), 0);
        assert_eq!(l.move_unit(2, 1, &mut scratch), 0);
    }

    #[test]
    fn collect_live_sees_everything() {
        let mut l = lists(3, 3);
        for (i, c) in [(0u64, 0u32), (1, 2), (2, 1), (3, 0)] {
            l.push_back(c, (i % 3) as UnitId, TupleId::new(i), ms(i), i);
        }
        l.pop_front(2);
        let mut out = Vec::new();
        l.collect_live(&mut out);
        out.sort_by_key(|e| e.seq);
        let seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 2, 3]);
    }

    #[test]
    fn sorted_fronts_orders_and_dedups() {
        let mut f = SortedFronts::default();
        f.reserve(4);
        assert!(f.insert((ms(5), 1)));
        assert!(f.insert((ms(2), 0)));
        assert!(f.insert((ms(5), 0)));
        assert!(!f.insert((ms(5), 1)));
        let keys: Vec<(Nanos, u32)> = f.iter().copied().collect();
        assert_eq!(keys, vec![(ms(2), 0), (ms(5), 0), (ms(5), 1)]);
        assert!(f.remove(&(ms(5), 0)));
        assert!(!f.remove(&(ms(5), 0)));
        assert_eq!(f.len(), 2);
        f.clear();
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn reset_clears_previous_population() {
        let mut l = lists(2, 2);
        l.push_back(0, 0, TupleId::new(0), ms(1), 0);
        l.reset(4, 3);
        assert_eq!(l.live(), 0);
        for c in 0..4 {
            assert!(l.is_cluster_empty(c));
        }
        assert_eq!(l.add_unit(), 3);
        l.push_back(3, 3, TupleId::new(9), ms(9), 7);
        l.assert_consistent();
    }
}
