//! Fagin's algorithm, specialized to top-1 over two sorted lists (§6.2.2).
//!
//! The BSD cluster priority is the *product* of two grades: the cluster's
//! static pseudo-priority and the wait `W` of its oldest pending tuple. The
//! scheduler holds one list sorted by each grade (the pseudo-priority order
//! is precomputed; the arrival FIFO *is* the descending-`W` order), so the
//! top-1 question is exactly the middleware aggregation problem of Fagin,
//! Lotem & Naor (PODS'01) with `k = 1` and a monotone aggregation function:
//!
//! 1. **Sorted phase** — read both lists in lockstep until some object has
//!    been seen in both.
//! 2. **Random-access phase** — fetch the missing grade of every object seen
//!    so far and return the maximum aggregate.
//!
//! Monotonicity of the product guarantees the true top-1 is among the seen
//! objects, so the answer equals a full linear scan's (the paper: "FA will
//! provide the same answer as the one returned by a linear traversal").

/// Result of a top-1 search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Top1 {
    /// The winning object.
    pub object: u32,
    /// Its aggregate grade (product of the two grades).
    pub grade: f64,
    /// Sorted + random accesses performed — the §9.2 overhead currency.
    pub accesses: u64,
}

/// Reusable working storage for [`fagin_top1_with`].
///
/// A scheduling point at large `m` must not allocate; callers on the hot
/// path hold one scratch and pass it to every decision. The vectors keep
/// their capacity between calls, so after warm-up the sorted/random phases
/// run allocation-free.
#[derive(Debug, Default)]
pub struct FaginScratch {
    seen_a: Vec<u32>,
    seen_b: Vec<u32>,
    graded: Vec<u32>,
}

/// Find the object maximizing `grade_a(x) · grade_b(x)`.
///
/// * `list_a` must yield `(object, grade_a)` in non-increasing `grade_a`
///   order; `list_b` likewise for `grade_b`. Both lists must enumerate the
///   same object set (every live object appears in each exactly once).
/// * `grade_a` / `grade_b` provide random access for the second phase.
///
/// Returns `None` when the lists are empty.
///
/// Convenience wrapper over [`fagin_top1_with`] that allocates fresh
/// scratch; hot paths should hold a [`FaginScratch`] instead.
pub fn fagin_top1(
    list_a: impl IntoIterator<Item = (u32, f64)>,
    list_b: impl IntoIterator<Item = (u32, f64)>,
    grade_a: impl Fn(u32) -> f64,
    grade_b: impl Fn(u32) -> f64,
) -> Option<Top1> {
    fagin_top1_with(
        &mut FaginScratch::default(),
        list_a,
        list_b,
        grade_a,
        grade_b,
    )
}

/// [`fagin_top1`] with caller-provided working storage — allocation-free
/// once the scratch capacity has warmed up. Results and access counts are
/// identical to the allocating wrapper.
pub fn fagin_top1_with(
    scratch: &mut FaginScratch,
    list_a: impl IntoIterator<Item = (u32, f64)>,
    list_b: impl IntoIterator<Item = (u32, f64)>,
    grade_a: impl Fn(u32) -> f64,
    grade_b: impl Fn(u32) -> f64,
) -> Option<Top1> {
    let mut a = list_a.into_iter();
    let mut b = list_b.into_iter();
    let FaginScratch {
        seen_a,
        seen_b,
        graded,
    } = scratch;
    seen_a.clear();
    seen_b.clear();
    graded.clear();
    let mut accesses = 0u64;

    // Sorted phase: lockstep until intersection is non-empty.
    'sorted: loop {
        let mut progressed = false;
        if let Some((obj, _)) = a.next() {
            accesses += 1;
            progressed = true;
            seen_a.push(obj);
            if seen_b.contains(&obj) {
                break 'sorted;
            }
        }
        if let Some((obj, _)) = b.next() {
            accesses += 1;
            progressed = true;
            seen_b.push(obj);
            if seen_a.contains(&obj) {
                break 'sorted;
            }
        }
        if !progressed {
            // Both exhausted without intersection — lists disagree on the
            // object set; with the documented contract this means "empty".
            break;
        }
    }

    // Random-access phase over the union of seen objects. An object seen in
    // both lists appears in both vectors; grade it once.
    let mut best: Option<(f64, u32)> = None;
    graded.reserve(seen_a.len() + seen_b.len());
    for &obj in seen_a.iter().chain(seen_b.iter()) {
        if graded.contains(&obj) {
            continue;
        }
        graded.push(obj);
        let grade = grade_a(obj) * grade_b(obj);
        accesses += 1;
        let better = match best {
            None => true,
            Some((g, o)) => grade > g || (grade == g && obj < o),
        };
        if better {
            best = Some((grade, obj));
        }
    }

    best.map(|(grade, object)| Top1 {
        object,
        grade,
        accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force reference.
    fn naive(objects: &[(f64, f64)]) -> Option<(u32, f64)> {
        objects
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (i as u32, a * b))
            .fold(None, |best, (i, g)| match best {
                None => Some((i, g)),
                Some((bi, bg)) if g > bg || (g == bg && i < bi) => Some((i, g)),
                other => other,
            })
    }

    fn run_fagin(objects: &[(f64, f64)]) -> Option<Top1> {
        let mut by_a: Vec<(u32, f64)> = objects
            .iter()
            .enumerate()
            .map(|(i, &(a, _))| (i as u32, a))
            .collect();
        by_a.sort_by(|x, y| y.1.total_cmp(&x.1));
        let mut by_b: Vec<(u32, f64)> = objects
            .iter()
            .enumerate()
            .map(|(i, &(_, b))| (i as u32, b))
            .collect();
        by_b.sort_by(|x, y| y.1.total_cmp(&x.1));
        fagin_top1(
            by_a,
            by_b,
            |o| objects[o as usize].0,
            |o| objects[o as usize].1,
        )
    }

    #[test]
    fn empty_input() {
        assert_eq!(run_fagin(&[]), None);
    }

    #[test]
    fn single_object() {
        let r = run_fagin(&[(2.0, 3.0)]).unwrap();
        assert_eq!(r.object, 0);
        assert_eq!(r.grade, 6.0);
    }

    #[test]
    fn correlated_lists_stop_after_one_step() {
        // Object 2 tops both lists: sorted phase ends after the first pulls.
        let objects = [(1.0, 1.0), (2.0, 2.0), (9.0, 9.0)];
        let r = run_fagin(&objects).unwrap();
        assert_eq!(r.object, 2);
        // 2 sorted accesses (one per list) + random accesses over 1 object.
        assert_eq!(r.accesses, 3);
    }

    #[test]
    fn anticorrelated_lists_still_correct() {
        // Best product hides mid-list in both orders.
        let objects = [(10.0, 0.1), (3.0, 3.0), (0.1, 10.0)];
        let r = run_fagin(&objects).unwrap();
        assert_eq!(r.object, 1);
        assert_eq!(r.grade, 9.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        // A warm scratch (stale contents from a previous decision) must not
        // leak into the next call's answer or access count.
        let first = [(10.0, 0.1), (3.0, 3.0), (0.1, 10.0)];
        let second = [(1.0, 1.0), (2.0, 2.0), (9.0, 9.0)];
        let mut scratch = FaginScratch::default();
        for objects in [&first[..], &second[..], &first[..]] {
            let mut by_a: Vec<(u32, f64)> = objects
                .iter()
                .enumerate()
                .map(|(i, &(a, _))| (i as u32, a))
                .collect();
            by_a.sort_by(|x, y| y.1.total_cmp(&x.1));
            let mut by_b: Vec<(u32, f64)> = objects
                .iter()
                .enumerate()
                .map(|(i, &(_, b))| (i as u32, b))
                .collect();
            by_b.sort_by(|x, y| y.1.total_cmp(&x.1));
            let warm = fagin_top1_with(
                &mut scratch,
                by_a.clone(),
                by_b.clone(),
                |o| objects[o as usize].0,
                |o| objects[o as usize].1,
            );
            let fresh = fagin_top1(
                by_a,
                by_b,
                |o| objects[o as usize].0,
                |o| objects[o as usize].1,
            );
            assert_eq!(warm, fresh);
        }
    }

    proptest! {
        #[test]
        fn matches_linear_scan(
            grades in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)
        ) {
            let expect = naive(&grades).unwrap();
            let got = run_fagin(&grades).unwrap();
            prop_assert_eq!(got.grade, expect.1);
            // The object may differ only on exact grade ties.
            if got.object != expect.0 {
                let g = grades[got.object as usize];
                prop_assert_eq!(g.0 * g.1, expect.1);
            }
        }

        #[test]
        fn access_count_bounded(
            grades in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)
        ) {
            let n = grades.len() as u64;
            let got = run_fagin(&grades).unwrap();
            // Worst case: both whole lists read + random access each object.
            prop_assert!(got.accesses <= 3 * n);
            prop_assert!(got.accesses >= 1);
        }
    }
}
