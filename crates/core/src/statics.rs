//! Static-priority policies: SRPT, HR (Equation 4) and HNR (Equation 3).
//!
//! All three assign each unit a priority that never changes (§6.1: "under
//! HNR, the priority given to each operator is static over time"), so the
//! scheduler keeps a max-heap of ready units with lazy cleanup: a unit is
//! pushed when its queue turns non-empty and popped lazily once observed
//! empty. Each `select` is O(log n) amortized.

use std::collections::BinaryHeap;

use hcq_common::{Nanos, TupleId};

use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::unit::{PriorityKey, UnitStatics};

/// Which static priority function to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticRank {
    /// `1/T` — shortest (ideal) processing time first.
    Srpt,
    /// `S/C̄` — Highest Rate \[19\], Equation 4.
    Hr,
    /// `S/(C̄·T)` — Highest Normalized Rate, Equation 3.
    Hnr,
    /// Externally supplied priorities (e.g. Chain's progress-chart slopes;
    /// the caller installs values via [`StaticPolicy::custom`]).
    Custom,
}

impl StaticRank {
    /// Evaluate the priority of a unit.
    pub fn priority(self, u: &UnitStatics) -> f64 {
        match self {
            StaticRank::Srpt => u.srpt_priority(),
            StaticRank::Hr => u.hr_priority(),
            StaticRank::Hnr => u.hnr_priority(),
            // Custom ranks are installed wholesale at on_register.
            StaticRank::Custom => 0.0,
        }
    }
}

/// A static-priority scheduler parameterized by [`StaticRank`].
#[derive(Debug)]
pub struct StaticPolicy {
    rank: StaticRank,
    name: &'static str,
    custom: Vec<f64>,
    priorities: Vec<PriorityKey>,
    heap: BinaryHeap<(PriorityKey, UnitId)>,
    in_heap: Vec<bool>,
    /// Heap pushes since the last `select`, reported on the next decision.
    pending_heap_ops: u64,
    /// Priority-formula evaluations since the last `select` (registration
    /// computes one per unit, overrides one each), reported on the next
    /// decision. A static policy evaluates its formula *between* scheduling
    /// points rather than per point — leaving this at zero (as earlier
    /// versions did) made HNR look like it never computes priorities in the
    /// §6 overhead comparison.
    pending_evals: u64,
}

impl StaticPolicy {
    /// A policy using the given ranking.
    pub fn new(rank: StaticRank) -> Self {
        let name = match rank {
            StaticRank::Srpt => "SRPT",
            StaticRank::Hr => "HR",
            StaticRank::Hnr => "HNR",
            StaticRank::Custom => "CUSTOM",
        };
        StaticPolicy {
            rank,
            name,
            custom: Vec::new(),
            priorities: Vec::new(),
            heap: BinaryHeap::new(),
            in_heap: Vec::new(),
            pending_heap_ops: 0,
            pending_evals: 0,
        }
    }

    /// A static policy with externally computed priorities — one per unit,
    /// in registration order. Used for policies whose ranking needs more
    /// than the aggregate [`UnitStatics`], such as Chain's progress-chart
    /// slopes (Babcock et al., SIGMOD'03; the paper's Table 3).
    pub fn custom(name: &'static str, priorities: Vec<f64>) -> Self {
        StaticPolicy {
            rank: StaticRank::Custom,
            name,
            custom: priorities,
            priorities: Vec::new(),
            heap: BinaryHeap::new(),
            in_heap: Vec::new(),
            pending_heap_ops: 0,
            pending_evals: 0,
        }
    }

    /// Shortest-remaining-processing-time.
    pub fn srpt() -> Self {
        Self::new(StaticRank::Srpt)
    }

    /// Highest Rate.
    pub fn hr() -> Self {
        Self::new(StaticRank::Hr)
    }

    /// Highest Normalized Rate.
    pub fn hnr() -> Self {
        Self::new(StaticRank::Hnr)
    }

    /// Override one unit's priority (used by the engine for shared-operator
    /// groups, whose §7 priority is not a plain segment formula; and by the
    /// adaptive extension when estimates drift).
    pub fn set_priority(&mut self, unit: UnitId, priority: f64) {
        self.priorities[unit as usize] = PriorityKey(priority);
        self.pending_evals += 1;
        // If the unit is currently queued in the heap, its stored key is
        // stale; re-push so the new value takes effect (the stale entry is
        // discarded lazily when popped).
        if self.in_heap[unit as usize] {
            self.heap.push((PriorityKey(priority), unit));
            self.pending_heap_ops += 1;
        }
    }

    /// The current priority of a unit.
    pub fn priority(&self, unit: UnitId) -> f64 {
        self.priorities[unit as usize].0
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        self.priorities = match self.rank {
            StaticRank::Custom => {
                assert_eq!(
                    self.custom.len(),
                    units.len(),
                    "custom priorities must cover every unit"
                );
                self.custom.iter().map(|&p| PriorityKey(p)).collect()
            }
            rank => {
                // One formula evaluation per unit — the static policy's
                // entire priority-computation budget, spent up front.
                self.pending_evals += units.len() as u64;
                units
                    .iter()
                    .map(|u| PriorityKey(rank.priority(u)))
                    .collect()
            }
        };
        self.in_heap = vec![false; units.len()];
        self.heap.clear();
    }

    fn on_statics_update(&mut self, unit: UnitId, statics: &UnitStatics) {
        // Re-evaluate the rank formula for this unit only. Custom ranks have
        // no formula here — their owner re-installs via `set_priority`.
        if self.rank != StaticRank::Custom {
            self.set_priority(unit, self.rank.priority(statics));
        }
    }

    fn memory_footprint(&self) -> Option<usize> {
        let key = std::mem::size_of::<PriorityKey>();
        Some(
            self.priorities.capacity() * key
                + self.heap.capacity() * std::mem::size_of::<(PriorityKey, UnitId)>()
                + self.in_heap.capacity()
                + self.custom.capacity() * std::mem::size_of::<f64>(),
        )
    }

    fn on_enqueue(&mut self, unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {
        if !std::mem::replace(&mut self.in_heap[unit as usize], true) {
            self.heap.push((self.priorities[unit as usize], unit));
            self.pending_heap_ops += 1;
        }
    }

    fn select(&mut self, queues: &dyn QueueView, _now: Nanos) -> Option<Selection> {
        let mut ops = 0;
        let mut heap_ops = 0;
        loop {
            let &(key, unit) = self.heap.peek()?;
            ops += 1;
            heap_ops += 1;
            // Discard stale entries: emptied queues, or re-pushed units whose
            // stored key no longer matches the live priority.
            let stale = queues.len(unit) == 0 || key != self.priorities[unit as usize];
            if stale {
                self.heap.pop();
                heap_ops += 1;
                if queues.len(unit) == 0 {
                    self.in_heap[unit as usize] = false;
                } else if !self.heap.iter().any(|&(_, u)| u == unit) {
                    // Removed the only remaining entry of a still-ready unit
                    // (priority changed twice); reinsert the live key.
                    self.heap.push((self.priorities[unit as usize], unit));
                    heap_ops += 1;
                }
                continue;
            }
            let stats = SchedStats {
                candidates_scanned: ops,
                priority_evals: std::mem::take(&mut self.pending_evals),
                comparisons: ops,
                heap_ops: heap_ops + std::mem::take(&mut self.pending_heap_ops),
                ..SchedStats::default()
            };
            return Some(Selection::one(unit, ops).with_stats(stats));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::{drain_order, MockQueues};

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    /// Example 1 units: Q1 (c=5ms, s=1.0), Q2 (c=2ms, s=0.33).
    fn example1() -> Vec<UnitStatics> {
        vec![
            UnitStatics::new(1.0, ms(5), ms(5)),
            UnitStatics::new(0.33, ms(2), ms(2)),
        ]
    }

    #[test]
    fn hr_prefers_q1_hnr_prefers_q2() {
        let enqueues = [(0, 0, 0), (1, 1, 0)];
        let hr = drain_order(&mut StaticPolicy::hr(), &example1(), &enqueues);
        assert_eq!(hr, vec![0, 1], "HR runs the high-output-rate query first");
        let hnr = drain_order(&mut StaticPolicy::hnr(), &example1(), &enqueues);
        assert_eq!(hnr, vec![1, 0], "HNR runs the low-T query first");
    }

    #[test]
    fn srpt_orders_by_ideal_time() {
        let units = vec![
            UnitStatics::new(0.2, ms(9), ms(10)),
            UnitStatics::new(0.9, ms(2), ms(2)),
            UnitStatics::new(0.5, ms(4), ms(5)),
        ];
        let order = drain_order(
            &mut StaticPolicy::srpt(),
            &units,
            &[(0, 0, 0), (1, 1, 0), (2, 2, 0)],
        );
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn deterministic_workload_makes_all_three_agree() {
        // §3.5: all selectivities 1 ⇒ HR ≡ HNR ≡ SRPT ordering.
        let units: Vec<UnitStatics> = [7u64, 3, 11, 5]
            .iter()
            .map(|&c| UnitStatics::new(1.0, ms(c), ms(c)))
            .collect();
        let enq: Vec<(UnitId, u64, u64)> = (0..4).map(|i| (i as UnitId, i as u64, 0)).collect();
        let srpt = drain_order(&mut StaticPolicy::srpt(), &units, &enq);
        let hr = drain_order(&mut StaticPolicy::hr(), &units, &enq);
        let hnr = drain_order(&mut StaticPolicy::hnr(), &units, &enq);
        assert_eq!(srpt, vec![1, 3, 0, 2]);
        assert_eq!(hr, srpt);
        assert_eq!(hnr, srpt);
    }

    #[test]
    fn heap_handles_refill() {
        // Unit drains, then refills: must be selectable again.
        let mut p = StaticPolicy::hnr();
        let units = example1();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), Nanos::ZERO);
        p.on_enqueue(0, TupleId::new(0), Nanos::ZERO, Nanos::ZERO);
        let sel = p.select(&q, Nanos::ZERO).unwrap();
        assert_eq!(sel.units, vec![0]);
        q.pop(0);
        assert!(p.select(&q, Nanos::ZERO).is_none());
        q.push(0, TupleId::new(1), Nanos::ZERO);
        p.on_enqueue(0, TupleId::new(1), Nanos::ZERO, Nanos::ZERO);
        assert_eq!(p.select(&q, Nanos::ZERO).unwrap().units, vec![0]);
    }

    #[test]
    fn priority_override_takes_effect() {
        let mut p = StaticPolicy::hnr();
        p.on_register(&example1());
        // Boost Q1 above Q2 manually (as the shared-operator path does).
        p.set_priority(0, 1.0);
        let mut q = MockQueues::new(2);
        for u in 0..2 {
            q.push(u, TupleId::new(u as u64), Nanos::ZERO);
            p.on_enqueue(u, TupleId::new(u as u64), Nanos::ZERO, Nanos::ZERO);
        }
        assert_eq!(p.select(&q, Nanos::ZERO).unwrap().units, vec![0]);
        assert_eq!(p.priority(0), 1.0);
    }

    #[test]
    fn priority_evals_are_itemized_not_zero() {
        // Satellite of the §6 cost comparison: HNR evaluates one formula per
        // unit at registration and one per override; those evals must show
        // up in SchedStats instead of reading 0.00 forever.
        let mut p = StaticPolicy::hnr();
        p.on_register(&example1());
        let mut q = MockQueues::new(2);
        for u in 0..2 {
            q.push(u, TupleId::new(u as u64), Nanos::ZERO);
            p.on_enqueue(u, TupleId::new(u as u64), Nanos::ZERO, Nanos::ZERO);
        }
        let first = p.select(&q, Nanos::ZERO).unwrap();
        assert_eq!(
            first.stats.priority_evals, 2,
            "one eval per registered unit"
        );
        q.pop(first.units[0]);
        // No new evals between points: the next decision reports zero.
        let second = p.select(&q, Nanos::ZERO).unwrap();
        assert_eq!(second.stats.priority_evals, 0);
        // A statics update re-evaluates exactly one formula.
        p.on_statics_update(0, &UnitStatics::new(0.9, ms(1), ms(1)));
        q.push(0, TupleId::new(9), Nanos::ZERO);
        p.on_enqueue(0, TupleId::new(9), Nanos::ZERO, Nanos::ZERO);
        let third = p.select(&q, Nanos::ZERO).unwrap();
        assert_eq!(third.stats.priority_evals, 1);
        assert!(p.memory_footprint().unwrap() > 0);
    }

    #[test]
    fn statics_update_reorders_rank_policies() {
        let mut p = StaticPolicy::srpt();
        p.on_register(&example1());
        let mut q = MockQueues::new(2);
        for u in 0..2 {
            q.push(u, TupleId::new(u as u64), Nanos::ZERO);
            p.on_enqueue(u, TupleId::new(u as u64), Nanos::ZERO, Nanos::ZERO);
        }
        // SRPT prefers unit 1 (T=2ms); re-estimate unit 0 shorter.
        p.on_statics_update(0, &UnitStatics::new(1.0, ms(1), ms(1)));
        assert_eq!(p.select(&q, Nanos::ZERO).unwrap().units, vec![0]);
    }

    #[test]
    fn override_while_queued_reorders() {
        let mut p = StaticPolicy::hnr();
        p.on_register(&example1());
        let mut q = MockQueues::new(2);
        for u in 0..2 {
            q.push(u, TupleId::new(u as u64), Nanos::ZERO);
            p.on_enqueue(u, TupleId::new(u as u64), Nanos::ZERO, Nanos::ZERO);
        }
        // Initially Q2 (unit 1) wins under HNR; demote it below Q1.
        p.set_priority(1, 1e-30);
        assert_eq!(p.select(&q, Nanos::ZERO).unwrap().units, vec![0]);
    }
}
