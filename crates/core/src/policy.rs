//! The policy ⇄ engine contract.

use hcq_common::{Nanos, TupleId};

use crate::unit::UnitStatics;

/// Index of a schedulable unit (dense; the engine defines the unit space).
pub type UnitId = u32;

/// Read access to the engine's queue state, passed to `select`.
pub trait QueueView {
    /// Number of pending tuples in the unit's input queue.
    fn len(&self, unit: UnitId) -> usize;
    /// System-arrival time of the unit's head tuple, if any. For composite
    /// tuples this is the §5.1.1 arrival (max over constituents).
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos>;
    /// Units with at least one pending tuple (unordered).
    fn nonempty(&self) -> &[UnitId];
    /// Per-unit queue capacity when the engine bounds its queues; `None`
    /// means unbounded (the default — every pre-overload engine state).
    fn capacity(&self, _unit: UnitId) -> Option<usize> {
        None
    }
    /// True when the unit's queue is at (or past) its capacity bound, i.e.
    /// the next admission to this unit would trigger the overload policy.
    /// Always false for unbounded queues.
    fn is_full(&self, unit: UnitId) -> bool {
        self.capacity(unit).is_some_and(|cap| self.len(unit) >= cap)
    }
}

/// Itemized scheduler work behind one decision (§6 overhead accounting).
///
/// `Selection::ops_counted` is the *charged* aggregate that §9.2 converts to
/// virtual time; this struct breaks the same work down by kind so the trace
/// layer and the `ext_overhead` exhibit can compare implementations
/// structurally (naive scan vs clustering vs Fagin) instead of by proxy QoS.
/// Maintenance done between scheduling points (cluster inserts, heap pushes,
/// shed repairs) is accumulated by the policy and reported on the *next*
/// decision, so summing per-point stats over a run covers all policy work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Ready units (or non-empty clusters / sorted-list positions) inspected.
    pub candidates_scanned: u64,
    /// Dynamic priority computations (`Φ·W`, `W/T`, Fagin grades, …).
    pub priority_evals: u64,
    /// Priority comparisons performed while picking the argmax.
    pub comparisons: u64,
    /// Cluster maintenance: member inserts, mirror repairs on shed (§6.2).
    pub cluster_ops: u64,
    /// Heap / ordered-index operations: pushes, pops, peeks, BTree edits.
    pub heap_ops: u64,
}

impl SchedStats {
    /// Sum of every counter — a structure-free "total work" scalar.
    pub fn total(&self) -> u64 {
        self.candidates_scanned
            + self.priority_evals
            + self.comparisons
            + self.cluster_ops
            + self.heap_ops
    }
}

impl std::ops::AddAssign for SchedStats {
    fn add_assign(&mut self, rhs: SchedStats) {
        self.candidates_scanned += rhs.candidates_scanned;
        self.priority_evals += rhs.priority_evals;
        self.comparisons += rhs.comparisons;
        self.cluster_ops += rhs.cluster_ops;
        self.heap_ops += rhs.heap_ops;
    }
}

/// A scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Units to run, each on its current head tuple. A single unit for every
    /// policy except clustered processing (§6.2.3), which batches all member
    /// queries of the chosen cluster over the shared head tuple.
    pub units: SelectionUnits,
    /// Priority computations + comparisons this decision cost; the engine
    /// charges `ops_counted × c_sched` of virtual time when overhead
    /// accounting is on (§9.2 sets `c_sched` to the cheapest operator cost).
    pub ops_counted: u64,
    /// The same work itemized by kind for tracing/profiling. Never feeds
    /// back into scheduling or overhead charging, so a policy that leaves it
    /// at `SchedStats::default()` stays behaviorally identical.
    pub stats: SchedStats,
}

impl Selection {
    /// A single-unit decision.
    pub fn one(unit: UnitId, ops_counted: u64) -> Self {
        let mut units = SelectionUnits::new();
        units.push(unit);
        Selection {
            units,
            ops_counted,
            stats: SchedStats::default(),
        }
    }

    /// Attach itemized work counters (builder-style).
    pub fn with_stats(mut self, stats: SchedStats) -> Self {
        self.stats = stats;
        self
    }
}

/// How many units a [`SelectionUnits`] holds before spilling to the heap.
const SELECTION_INLINE: usize = 4;

/// The unit list of a [`Selection`], stored inline for the common case.
///
/// `select` runs once per scheduling point — millions of times per
/// simulation — and almost always returns exactly one unit, so a `Vec` here
/// means a heap allocation per decision. Up to [`SELECTION_INLINE`] units
/// live inline; only clustered-processing batches larger than that spill to
/// a `Vec`. Dereferences to `[UnitId]`, iterates by value and by reference,
/// and compares against `Vec<UnitId>` so call sites read like a `Vec`.
#[derive(Clone)]
pub enum SelectionUnits {
    /// At most [`SELECTION_INLINE`] units, no heap allocation.
    Inline {
        /// Number of live entries in `buf`.
        len: u8,
        /// Storage; only `buf[..len]` is meaningful.
        buf: [UnitId; SELECTION_INLINE],
    },
    /// Batches larger than the inline capacity.
    Spilled(Vec<UnitId>),
}

impl SelectionUnits {
    /// An empty unit list (no allocation).
    pub fn new() -> Self {
        SelectionUnits::Inline {
            len: 0,
            buf: [0; SELECTION_INLINE],
        }
    }

    /// Append a unit, spilling to the heap past the inline capacity.
    pub fn push(&mut self, unit: UnitId) {
        match self {
            SelectionUnits::Inline { len, buf } => {
                if (*len as usize) < SELECTION_INLINE {
                    buf[*len as usize] = unit;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(SELECTION_INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(unit);
                    *self = SelectionUnits::Spilled(v);
                }
            }
            SelectionUnits::Spilled(v) => v.push(unit),
        }
    }

    /// The units as a slice.
    pub fn as_slice(&self) -> &[UnitId] {
        match self {
            SelectionUnits::Inline { len, buf } => &buf[..*len as usize],
            SelectionUnits::Spilled(v) => v,
        }
    }
}

impl Default for SelectionUnits {
    fn default() -> Self {
        SelectionUnits::new()
    }
}

impl std::ops::Deref for SelectionUnits {
    type Target = [UnitId];

    fn deref(&self) -> &[UnitId] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SelectionUnits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for SelectionUnits {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SelectionUnits {}

impl PartialEq<Vec<UnitId>> for SelectionUnits {
    fn eq(&self, other: &Vec<UnitId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<SelectionUnits> for Vec<UnitId> {
    fn eq(&self, other: &SelectionUnits) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[UnitId]> for SelectionUnits {
    fn eq(&self, other: &&[UnitId]) -> bool {
        self.as_slice() == *other
    }
}

impl FromIterator<UnitId> for SelectionUnits {
    fn from_iter<I: IntoIterator<Item = UnitId>>(iter: I) -> Self {
        let mut units = SelectionUnits::new();
        for u in iter {
            units.push(u);
        }
        units
    }
}

impl IntoIterator for SelectionUnits {
    type Item = UnitId;
    type IntoIter = SelectionUnitsIter;

    fn into_iter(self) -> SelectionUnitsIter {
        SelectionUnitsIter {
            units: self,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for &'a SelectionUnits {
    type Item = &'a UnitId;
    type IntoIter = std::slice::Iter<'a, UnitId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// By-value iterator over [`SelectionUnits`].
#[derive(Debug)]
pub struct SelectionUnitsIter {
    units: SelectionUnits,
    next: usize,
}

impl Iterator for SelectionUnitsIter {
    type Item = UnitId;

    fn next(&mut self) -> Option<UnitId> {
        let slice = self.units.as_slice();
        let unit = slice.get(self.next).copied();
        self.next += 1;
        unit
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.units.as_slice().len().saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SelectionUnitsIter {}

/// A scheduling policy.
///
/// Engine contract:
/// * `on_register` is called once with the statics of every unit before any
///   other callback.
/// * `on_enqueue(unit, tuple, arrival, now)` fires when a tuple enters the
///   unit's input queue (`arrival` = the tuple's *system* arrival time, which
///   is what every `W` in the paper means).
/// * `on_shed(unit, tuple)` fires when the engine's overload manager removes
///   the *tail* tuple of `unit`'s queue without executing it (load shedding).
///   Policies that mirror per-tuple state must forget that entry; stateless
///   policies inherit the no-op default. A tuple rejected at admission (never
///   enqueued) generates no callback at all. The callback must be
///   **idempotent per queue position**: the engine guarantees at most one
///   `on_shed` per enqueued tuple, but fault harnesses and the overload
///   governor can shed the *same unit* repeatedly in one admission storm, so
///   an implementation must tolerate a shed for a unit whose mirrored queue
///   is already empty (treat it as a no-op rather than underflowing or
///   panicking).
/// * `select` is called only when at least one queue is non-empty; it must
///   return units with non-empty queues. After `select`, the engine dequeues
///   exactly one head tuple from each returned unit and executes it.
pub trait Policy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// Receive the static characterization of all units.
    ///
    /// Registration is a **full reset**, not an increment: implementations
    /// must drop any transient per-tuple mirror state (wait lists, FIFOs,
    /// heaps) along with rebuilding priorities. The engine relies on this
    /// when it re-registers a standby policy on a governor policy switch —
    /// it replays the live backlog through `on_enqueue` immediately after,
    /// so mirror entries that survive `on_register` would be double-counted.
    fn on_register(&mut self, units: &[UnitStatics]);

    /// A tuple entered `unit`'s queue.
    fn on_enqueue(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos, now: Nanos);

    /// The overload manager shed the tail tuple of `unit`'s queue. Must be
    /// safe to call again for a unit whose mirror is already empty (see the
    /// trait docs: idempotent per queue position, no underflow).
    fn on_shed(&mut self, _unit: UnitId, _tuple: TupleId) {}

    /// One unit's statics changed mid-run (§10 adaptive estimation, operator
    /// re-costing). Policies holding derived per-unit state (Φ, slopes,
    /// static priorities, cluster memberships) refresh *only* that unit; the
    /// default no-op suits policies that never read statics after
    /// registration (FCFS, RR).
    fn on_statics_update(&mut self, _unit: UnitId, _statics: &UnitStatics) {}

    /// Recompute any priority domain frozen at `on_register` from the unit
    /// statics as the policy currently knows them (§10 adaptive estimation:
    /// observed `Φ` can drift outside the registered range, and a frozen
    /// clustering then clamps drifted units into its edge buckets, eroding
    /// priority resolution). Returns true when domain-derived state was
    /// actually rebuilt; the default no-op — correct for every policy
    /// without a frozen domain — reports false so callers can count real
    /// refreezes.
    fn on_domain_refreeze(&mut self) -> bool {
        false
    }

    /// Heap bytes committed for per-unit scheduler state (statics mirrors,
    /// wait-list slabs, priority heaps). `None` when the policy does not
    /// account for its footprint; the large-q bench reports this per query.
    fn memory_footprint(&self) -> Option<usize> {
        None
    }

    /// Choose what to run next.
    fn select(&mut self, queues: &dyn QueueView, now: Nanos) -> Option<Selection>;
}

/// Factory enumeration of every policy in the paper — convenient for
/// sweeping experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-come-first-served over system arrival times.
    Fcfs,
    /// Aurora's two-level scheme: round-robin across queries, rate-based
    /// pipelining within (§8 "Policies").
    RoundRobin,
    /// Shortest remaining processing time `1/T`.
    Srpt,
    /// Highest Rate `S/C̄` (response-time optimal ordering) \[19\].
    Hr,
    /// Highest Normalized Rate `S/(C̄·T)` (§3.3) — average slowdown.
    Hnr,
    /// Longest Stretch First `W/T` (§4.1) — maximum slowdown.
    Lsf,
    /// Balance Slowdown `Φ·W` (§4.2.2) — ℓ2 norm, naive O(q) implementation.
    Bsd,
}

impl PolicyKind {
    /// All kinds, in the order the paper's figures usually list them.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Srpt,
        PolicyKind::Hr,
        PolicyKind::Hnr,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
    ];

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Fcfs => Box::new(crate::fcfs::FcfsPolicy::new()),
            PolicyKind::RoundRobin => Box::new(crate::rr::RoundRobinPolicy::new()),
            PolicyKind::Srpt => Box::new(crate::statics::StaticPolicy::srpt()),
            PolicyKind::Hr => Box::new(crate::statics::StaticPolicy::hr()),
            PolicyKind::Hnr => Box::new(crate::statics::StaticPolicy::hnr()),
            PolicyKind::Lsf => Box::new(crate::lsf::LsfPolicy::new()),
            PolicyKind::Bsd => Box::new(crate::bsd::BsdPolicy::new()),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::RoundRobin => "RR",
            PolicyKind::Srpt => "SRPT",
            PolicyKind::Hr => "HR",
            PolicyKind::Hnr => "HNR",
            PolicyKind::Lsf => "LSF",
            PolicyKind::Bsd => "BSD",
        }
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    //! A minimal hand-driven queue model shared by policy unit tests.

    use super::*;
    use std::collections::VecDeque;

    #[derive(Default)]
    pub struct MockQueues {
        queues: Vec<VecDeque<(TupleId, Nanos)>>,
        nonempty: Vec<UnitId>,
    }

    impl MockQueues {
        pub fn new(n: usize) -> Self {
            MockQueues {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                nonempty: Vec::new(),
            }
        }

        pub fn push(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos) {
            let q = &mut self.queues[unit as usize];
            if q.is_empty() {
                self.nonempty.push(unit);
            }
            q.push_back((tuple, arrival));
        }

        pub fn pop(&mut self, unit: UnitId) -> (TupleId, Nanos) {
            let q = &mut self.queues[unit as usize];
            let item = q.pop_front().expect("pop from empty queue");
            if q.is_empty() {
                self.nonempty.retain(|&u| u != unit);
            }
            item
        }

        /// Remove the unit's tail tuple (models the engine shedding).
        pub fn pop_back(&mut self, unit: UnitId) -> (TupleId, Nanos) {
            let q = &mut self.queues[unit as usize];
            let item = q.pop_back().expect("shed from empty queue");
            if q.is_empty() {
                self.nonempty.retain(|&u| u != unit);
            }
            item
        }
    }

    impl QueueView for MockQueues {
        fn len(&self, unit: UnitId) -> usize {
            self.queues[unit as usize].len()
        }
        fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
            self.queues[unit as usize].front().map(|&(_, a)| a)
        }
        fn nonempty(&self) -> &[UnitId] {
            &self.nonempty
        }
    }

    /// Drive a policy: enqueue tuples, then repeatedly select+pop until
    /// drained, returning the unit execution order.
    pub fn drain_order(
        policy: &mut dyn Policy,
        units: &[UnitStatics],
        enqueues: &[(UnitId, u64, u64)], // (unit, tuple, arrival_ms)
    ) -> Vec<UnitId> {
        let mut q = MockQueues::new(units.len());
        policy.on_register(units);
        let mut now = Nanos::ZERO;
        for &(u, t, a) in enqueues {
            let arrival = Nanos::from_millis(a);
            now = now.max(arrival);
            q.push(u, TupleId::new(t), arrival);
            policy.on_enqueue(u, TupleId::new(t), arrival, now);
        }
        let mut order = Vec::new();
        while !q.nonempty().is_empty() {
            let sel = policy.select(&q, now).expect("work pending");
            assert!(!sel.units.is_empty());
            for u in sel.units {
                q.pop(u);
                order.push(u);
                now += Nanos::from_millis(1); // nominal execution time
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_one() {
        let s = Selection::one(3, 7);
        assert_eq!(s.units, vec![3]);
        assert_eq!(s.ops_counted, 7);
        assert_eq!(s.stats, SchedStats::default());
    }

    #[test]
    fn sched_stats_total_and_accumulate() {
        let a = SchedStats {
            candidates_scanned: 1,
            priority_evals: 2,
            comparisons: 3,
            cluster_ops: 4,
            heap_ops: 5,
        };
        assert_eq!(a.total(), 15);
        let mut b = a;
        b += a;
        assert_eq!(b.total(), 30);
        let s = Selection::one(0, 1).with_stats(a);
        assert_eq!(s.stats.priority_evals, 2);
    }

    #[test]
    fn kind_names_and_build() {
        for kind in PolicyKind::ALL {
            let p = kind.build();
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn queue_view_defaults_are_unbounded() {
        let mut q = testkit::MockQueues::new(2);
        q.push(0, TupleId::new(1), Nanos::ZERO);
        assert_eq!(q.capacity(0), None);
        assert!(!q.is_full(0));
        assert!(!q.is_full(1));
    }

    #[test]
    fn is_full_follows_capacity_override() {
        struct Bounded(usize);
        impl QueueView for Bounded {
            fn len(&self, _unit: UnitId) -> usize {
                self.0
            }
            fn head_arrival(&self, _unit: UnitId) -> Option<Nanos> {
                None
            }
            fn nonempty(&self) -> &[UnitId] {
                &[]
            }
            fn capacity(&self, _unit: UnitId) -> Option<usize> {
                Some(2)
            }
        }
        assert!(!Bounded(1).is_full(0));
        assert!(Bounded(2).is_full(0));
        assert!(Bounded(3).is_full(0));
    }
}
