//! Operator sharing and the Priority-Defining Tree (§7).
//!
//! When operator `O_x` is shared by segments `E_x^1..E_x^N`, scheduling it
//! executes `O_x` once and fans its output to the member segments; its
//! priority must reflect the set. The §7.1 derivation gives the HNR-style
//! group priority (Equation 7):
//!
//! ```text
//!            Σ_{i∈M} S_i / T_i
//!   V_x = ───────────────────────────
//!          Σ_{i∈M} C̄_i − (|M|−1)·c_x
//! ```
//!
//! Equation 7 is non-monotone in the member set, so §7.2 picks the
//! **Priority-Defining Tree**: visit segments in descending individual
//! priority and keep adding while the aggregate grows. The paper's Table 2
//! compares this against the naive **Max** (best single segment) and **Sum**
//! (all segments) strategies.
//!
//! The BSD extension (mentioned but elided "for brevity" in §7.1) follows
//! the identical derivation with the ℓ2 objective, which squares the ideal
//! times: numerator terms become `S_i/T_i²`, producing the static factor
//! `Φ` of the shared unit; the dynamic priority is `Φ·W` as usual.

use hcq_common::Nanos;

use crate::unit::UnitStatics;

/// Which §9.3 strategy sets the shared operator's priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingStrategy {
    /// Priority of the single best member segment.
    Max,
    /// Aggregate over *all* member segments (Equation 7 with `M = N`).
    Sum,
    /// Aggregate over the greedy prefix that maximizes Equation 7.
    Pdt,
}

impl SharingStrategy {
    /// Display name as used in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            SharingStrategy::Max => "Max",
            SharingStrategy::Sum => "Sum",
            SharingStrategy::Pdt => "PDT",
        }
    }
}

/// Priority-function family for the shared group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedRank {
    /// Numerators `S_i/T_i` — the HNR group priority of Equation 7.
    Hnr,
    /// Numerators `S_i/T_i²` — the BSD static factor `Φ` of the group.
    Bsd,
}

/// The outcome of shared-priority computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PdtSelection {
    /// Indices (into the input slice) of the segments that define the
    /// priority and execute together with the shared operator, in
    /// descending individual-priority order.
    pub members: Vec<usize>,
    /// The group's priority value (the HNR priority, or the BSD `Φ`).
    pub priority: f64,
}

/// Compute a shared operator's priority under the given strategy.
///
/// `segments[i]` carries `(S_i, C̄_i, T_i)` of segment `E_x^i` — note `C̄_i`
/// *includes* the shared operator's own cost `c_x`, exactly as an unshared
/// segment would; the aggregation de-duplicates `c_x` via
/// `SC̄ = Σ C̄_i − (|M|−1)·c_x`.
pub fn shared_priority(
    segments: &[UnitStatics],
    shared_cost: Nanos,
    strategy: SharingStrategy,
    rank: SharedRank,
) -> PdtSelection {
    assert!(!segments.is_empty(), "sharing group cannot be empty");
    let c_x = shared_cost.as_nanos() as f64;
    let numerator = |u: &UnitStatics| match rank {
        SharedRank::Hnr => u.selectivity / u.ideal_time_ns,
        SharedRank::Bsd => u.selectivity / (u.ideal_time_ns * u.ideal_time_ns),
    };
    // Individual priority of a lone segment = numerator / C̄ (this is the
    // segment's HNR priority or BSD Φ).
    let solo = |i: usize| numerator(&segments[i]) / segments[i].avg_cost_ns;

    let mut order: Vec<usize> = (0..segments.len()).collect();
    order.sort_by(|&a, &b| solo(b).total_cmp(&solo(a)));

    let aggregate = |members: &[usize]| -> f64 {
        let num: f64 = members.iter().map(|&i| numerator(&segments[i])).sum();
        let den: f64 = members
            .iter()
            .map(|&i| segments[i].avg_cost_ns)
            .sum::<f64>()
            - (members.len() as f64 - 1.0) * c_x;
        num / den
    };

    match strategy {
        SharingStrategy::Max => {
            // All members still execute together when the group is picked;
            // only the priority value is the best solo segment's.
            PdtSelection {
                members: order.clone(),
                priority: solo(order[0]),
            }
        }
        SharingStrategy::Sum => PdtSelection {
            priority: aggregate(&order),
            members: order,
        },
        SharingStrategy::Pdt => {
            let mut members = vec![order[0]];
            let mut best = aggregate(&members);
            for &i in &order[1..] {
                members.push(i);
                let v = aggregate(&members);
                if v > best {
                    best = v;
                } else {
                    members.pop();
                    break; // §7.2: stop at the first non-improving segment
                }
            }
            PdtSelection {
                members,
                priority: best,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    /// A segment whose remainder after the shared op has cost `rest` and
    /// selectivity `s_rest`; shared op cost `c_x`, selectivity `s_x`.
    fn seg(c_x: u64, s_x: f64, rest: u64, s_rest: f64) -> UnitStatics {
        // C̄ = c_x + s_x·rest (single remainder op); T = c_x + rest;
        // S = s_x·s_rest.
        let avg = Nanos::from_nanos(
            (ms(c_x).as_nanos() as f64 + s_x * ms(rest).as_nanos() as f64) as u64,
        );
        UnitStatics::new(s_x * s_rest, avg, ms(c_x + rest))
    }

    #[test]
    fn homogeneous_group_pdt_takes_all() {
        // Identical segments: every addition raises the numerator by the
        // same amount while the denominator grows by C̄ − c_x < C̄, so the
        // aggregate keeps increasing — PDT = all = Sum, and all exceed Max.
        let segs: Vec<UnitStatics> = (0..5).map(|_| seg(1, 0.5, 2, 0.5)).collect();
        let c_x = ms(1);
        let max = shared_priority(&segs, c_x, SharingStrategy::Max, SharedRank::Hnr);
        let sum = shared_priority(&segs, c_x, SharingStrategy::Sum, SharedRank::Hnr);
        let pdt = shared_priority(&segs, c_x, SharingStrategy::Pdt, SharedRank::Hnr);
        assert_eq!(pdt.members.len(), 5);
        assert!((pdt.priority - sum.priority).abs() < 1e-24);
        assert!(pdt.priority > max.priority);
    }

    #[test]
    fn weak_segment_excluded_by_pdt() {
        // Four strong segments and one with terrible normalized rate: Sum
        // dilutes the priority; PDT stops before the weak one.
        let mut segs: Vec<UnitStatics> = (0..4).map(|_| seg(1, 0.9, 1, 0.9)).collect();
        segs.push(seg(1, 0.9, 500, 0.01)); // huge T, tiny S
        let c_x = ms(1);
        let sum = shared_priority(&segs, c_x, SharingStrategy::Sum, SharedRank::Hnr);
        let pdt = shared_priority(&segs, c_x, SharingStrategy::Pdt, SharedRank::Hnr);
        assert_eq!(pdt.members.len(), 4, "weak segment excluded");
        assert!(!pdt.members.contains(&4));
        assert!(pdt.priority > sum.priority);
    }

    #[test]
    fn single_segment_group_all_strategies_agree() {
        let segs = vec![seg(2, 0.5, 3, 0.7)];
        let c_x = ms(2);
        for strat in [
            SharingStrategy::Max,
            SharingStrategy::Sum,
            SharingStrategy::Pdt,
        ] {
            let r = shared_priority(&segs, c_x, strat, SharedRank::Hnr);
            assert_eq!(r.members, vec![0]);
            assert!((r.priority - segs[0].hnr_priority()).abs() < 1e-24);
        }
    }

    #[test]
    fn bsd_rank_squares_ideal_time() {
        let segs = vec![seg(1, 0.5, 2, 0.5)];
        let hnr = shared_priority(&segs, ms(1), SharingStrategy::Max, SharedRank::Hnr);
        let bsd = shared_priority(&segs, ms(1), SharingStrategy::Max, SharedRank::Bsd);
        let t = segs[0].ideal_time_ns;
        assert!((bsd.priority - hnr.priority / t).abs() < 1e-30);
    }

    #[test]
    fn members_sorted_by_solo_priority() {
        let segs = vec![
            seg(1, 0.2, 10, 0.3), // weak
            seg(1, 0.9, 1, 0.9),  // strong
            seg(1, 0.5, 3, 0.5),  // middling
        ];
        let r = shared_priority(&segs, ms(1), SharingStrategy::Sum, SharedRank::Hnr);
        assert_eq!(r.members, vec![1, 2, 0]);
    }

    proptest! {
        /// PDT's priority is never below Max's: the greedy walk starts from
        /// the singleton {best segment}, whose aggregate *is* Max's value,
        /// and only ever keeps improvements. (It does NOT always dominate
        /// Sum — Equation 7 is non-monotone, so the greedy's early stop can
        /// miss a later recovery; the paper accepts this, and Table 2 shows
        /// PDT ahead empirically.)
        #[test]
        fn pdt_dominates_max_and_is_a_priority_prefix(
            raw in proptest::collection::vec(
                (1u64..20, 0.05f64..1.0, 1u64..50, 0.05f64..1.0), 1..12
            )
        ) {
            let c_x = raw[0].0; // shared cost must be common; reuse first
            let segs: Vec<UnitStatics> = raw
                .iter()
                .map(|&(_, s_x, rest, s_rest)| seg(c_x, s_x, rest, s_rest))
                .collect();
            let cx = ms(c_x);
            let max = shared_priority(&segs, cx, SharingStrategy::Max, SharedRank::Hnr);
            let pdt = shared_priority(&segs, cx, SharingStrategy::Pdt, SharedRank::Hnr);
            prop_assert!(pdt.priority >= max.priority * (1.0 - 1e-12));
            // PDT members form a prefix of the priority-sorted order, and
            // every kept prefix strictly improved the aggregate.
            let full = shared_priority(&segs, cx, SharingStrategy::Sum, SharedRank::Hnr).members;
            prop_assert_eq!(&pdt.members[..], &full[..pdt.members.len()]);
        }
    }
}
