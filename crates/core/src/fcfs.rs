//! First-come-first-served.
//!
//! The baseline every DSMS paper measures against: run whichever unit holds
//! the globally oldest pending tuple. Implemented as a mirrored global FIFO,
//! so `select` is O(1): per-unit queues are FIFO, the engine dequeues one
//! head per selection, and tuples are reported in arrival order — so the
//! mirror's front entry is always some unit's head tuple.

use std::collections::VecDeque;

use hcq_common::{Nanos, TupleId};

use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::unit::UnitStatics;

/// FCFS over system arrival times.
#[derive(Debug, Default)]
pub struct FcfsPolicy {
    fifo: VecDeque<UnitId>,
    /// Mirror maintenance (pushes, shed repairs) accumulated since the last
    /// `select`, reported on the next decision's [`SchedStats`].
    pending_heap_ops: u64,
}

impl FcfsPolicy {
    /// A fresh FCFS policy.
    pub fn new() -> Self {
        FcfsPolicy::default()
    }
}

impl Policy for FcfsPolicy {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn on_register(&mut self, _units: &[UnitStatics]) {
        // Re-registration is a full reset (trait contract): the engine
        // replays the live backlog via `on_enqueue` right after, so any
        // surviving mirror entries would be counted twice and desync
        // `select` from the real queues.
        self.fifo.clear();
    }

    fn on_enqueue(&mut self, unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {
        self.fifo.push_back(unit);
        self.pending_heap_ops += 1;
    }

    fn on_shed(&mut self, unit: UnitId, _tuple: TupleId) {
        // Shedding removes the unit's *tail* tuple; per-unit queues are FIFO
        // and the mirror records enqueue order, so that tuple corresponds to
        // the unit's most recent (rearmost) mirror entry. A shed for a unit
        // with no mirror entries is a no-op per the trait contract (the
        // governor can re-shed a unit drained in the same admission storm).
        if let Some(i) = self.fifo.iter().rposition(|&u| u == unit) {
            self.fifo.remove(i);
            self.pending_heap_ops += 1;
        }
    }

    fn select(&mut self, queues: &dyn QueueView, _now: Nanos) -> Option<Selection> {
        let unit = self.fifo.pop_front()?;
        debug_assert!(queues.len(unit) > 0, "FCFS mirror out of sync");
        let stats = SchedStats {
            candidates_scanned: 1,
            heap_ops: 1 + std::mem::take(&mut self.pending_heap_ops),
            ..SchedStats::default()
        };
        Some(Selection::one(unit, 1).with_stats(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::drain_order;

    fn units(n: usize) -> Vec<UnitStatics> {
        (0..n)
            .map(|_| UnitStatics::new(1.0, Nanos::from_millis(1), Nanos::from_millis(1)))
            .collect()
    }

    #[test]
    fn runs_in_arrival_order() {
        let order = drain_order(
            &mut FcfsPolicy::new(),
            &units(3),
            &[(2, 0, 0), (0, 1, 5), (1, 2, 10), (0, 3, 11)],
        );
        assert_eq!(order, vec![2, 0, 1, 0]);
    }

    #[test]
    fn empty_select_returns_none() {
        let mut p = FcfsPolicy::new();
        p.on_register(&units(1));
        let q = crate::policy::testkit::MockQueues::new(1);
        assert!(p.select(&q, Nanos::ZERO).is_none());
    }

    #[test]
    fn shed_forgets_the_units_newest_entry() {
        use crate::policy::testkit::MockQueues;
        let mut p = FcfsPolicy::new();
        p.on_register(&units(2));
        let mut q = MockQueues::new(2);
        // Arrivals: unit 0 (t=0), unit 1 (t=1), unit 0 (t=2). Shedding unit
        // 0's tail must drop the t=2 entry, leaving the order [0, 1].
        for (u, t, a) in [(0, 0, 0u64), (1, 1, 1), (0, 2, 2)] {
            let at = Nanos::from_millis(a);
            q.push(u, TupleId::new(t), at);
            p.on_enqueue(u, TupleId::new(t), at, at);
        }
        q.pop_back(0);
        p.on_shed(0, TupleId::new(2));
        let mut order = Vec::new();
        while !q.nonempty().is_empty() {
            let sel = p.select(&q, Nanos::from_millis(9)).expect("work pending");
            for u in sel.units {
                q.pop(u);
                order.push(u);
            }
        }
        assert_eq!(order, vec![0, 1]);
        assert!(p.select(&q, Nanos::from_millis(9)).is_none());
    }

    #[test]
    fn double_shed_is_a_noop_on_empty_mirror() {
        use crate::policy::testkit::MockQueues;
        let mut p = FcfsPolicy::new();
        p.on_register(&units(2));
        let mut q = MockQueues::new(2);
        for (u, t, a) in [(0, 0, 0u64), (1, 1, 1)] {
            let at = Nanos::from_millis(a);
            q.push(u, TupleId::new(t), at);
            p.on_enqueue(u, TupleId::new(t), at, at);
        }
        // First shed drains unit 0's only entry; the second hits an already
        // empty mirror and must be tolerated as a no-op (trait contract:
        // idempotent per queue position — no underflow, no panic).
        q.pop_back(0);
        p.on_shed(0, TupleId::new(0));
        p.on_shed(0, TupleId::new(0));
        let sel = p.select(&q, Nanos::from_millis(9)).expect("unit 1 pending");
        assert_eq!(sel.units, vec![1]);
        q.pop(1);
        assert!(p.select(&q, Nanos::from_millis(9)).is_none());
    }

    #[test]
    fn interleaves_same_unit_fairly() {
        // Two tuples on unit 0 sandwiching one on unit 1 arrive 0,1,2.
        let order = drain_order(
            &mut FcfsPolicy::new(),
            &units(2),
            &[(0, 0, 0), (1, 1, 1), (0, 2, 2)],
        );
        assert_eq!(order, vec![0, 1, 0]);
    }
}
