//! Longest Stretch First (§4.1).
//!
//! The greedy maximum-slowdown policy from Acharya & Muthukrishnan's
//! broadcast scheduling work: the priority of a unit is the *current
//! slowdown* of its head tuple, `W/T` (Equation 5). `W` grows with wall
//! time at slope `1/T`, and the slopes differ across units, so the argmax
//! can flip between any two scheduling points — the policy scans the
//! non-empty units each time (`O(ready)` per decision; the clustering
//! machinery of §6 exists precisely because dynamic priorities cost this).

use hcq_common::{Nanos, TupleId};

use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::unit::UnitStatics;

/// LSF: run the unit whose head tuple has the largest current slowdown.
///
/// The priority is the ratio `W/T_k`; a zero ideal processing time would
/// make it `∞` at any positive wait, letting one degenerate unit capture
/// every scheduling point (and `0/0 = NaN` at zero wait would poison the
/// argmax comparison entirely). [`UnitStatics`] clamps `T_k` (and `C̄`) to
/// [`crate::unit::MIN_TIME_NS`], so every slope stored here is finite.
#[derive(Debug, Default)]
pub struct LsfPolicy {
    /// `1/T` per unit, finite by the [`crate::unit::MIN_TIME_NS`] clamp.
    slope: Vec<f64>,
}

impl LsfPolicy {
    /// A fresh LSF policy.
    pub fn new() -> Self {
        LsfPolicy::default()
    }
}

impl Policy for LsfPolicy {
    fn name(&self) -> &'static str {
        "LSF"
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        self.slope = units.iter().map(UnitStatics::lsf_slope).collect();
    }

    fn on_enqueue(&mut self, _unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {}

    fn on_statics_update(&mut self, unit: UnitId, statics: &UnitStatics) {
        // O(1): only this unit's slope changes; the scan reads it next point.
        self.slope[unit as usize] = statics.lsf_slope();
    }

    fn memory_footprint(&self) -> Option<usize> {
        Some(self.slope.capacity() * std::mem::size_of::<f64>())
    }

    fn select(&mut self, queues: &dyn QueueView, now: Nanos) -> Option<Selection> {
        let mut best: Option<(f64, UnitId)> = None;
        let mut ops = 0;
        for &unit in queues.nonempty() {
            let arrival = queues.head_arrival(unit).expect("nonempty unit has a head");
            let wait = now.saturating_since(arrival).as_nanos() as f64;
            let priority = wait * self.slope[unit as usize];
            ops += 2; // one computation + one comparison
                      // Ties broken toward the lower unit id for determinism.
            let better = match best {
                None => true,
                Some((b, bu)) => priority > b || (priority == b && unit < bu),
            };
            if better {
                best = Some((priority, unit));
            }
        }
        best.map(|(_, unit)| {
            let n = ops / 2;
            let stats = SchedStats {
                candidates_scanned: n,
                priority_evals: n,
                comparisons: n,
                ..SchedStats::default()
            };
            Selection::one(unit, ops).with_stats(stats)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::{drain_order, MockQueues};

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn prefers_highest_current_stretch() {
        // Unit 0: T = 10ms, waited 20ms -> stretch 2.
        // Unit 1: T = 2ms, waited 6ms  -> stretch 3.  LSF picks unit 1.
        let units = vec![
            UnitStatics::new(1.0, ms(10), ms(10)),
            UnitStatics::new(1.0, ms(2), ms(2)),
        ];
        let mut p = LsfPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), ms(0));
        q.push(1, TupleId::new(1), ms(14));
        let sel = p.select(&q, ms(20)).unwrap();
        assert_eq!(sel.units, vec![1]);
        assert_eq!(sel.ops_counted, 4);
    }

    #[test]
    fn priority_flips_as_time_passes() {
        // Early on the long-T unit's tuple is older and wins; later the
        // short-T unit's stretch overtakes it.
        let units = vec![
            UnitStatics::new(1.0, ms(100), ms(100)), // slope 0.01/ms
            UnitStatics::new(1.0, ms(5), ms(5)),     // slope 0.2/ms
        ];
        let mut p = LsfPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), ms(0));
        q.push(1, TupleId::new(1), ms(99));
        // At t=100: unit0 stretch 1.0, unit1 stretch 0.2 -> unit 0.
        assert_eq!(p.select(&q, ms(100)).unwrap().units, vec![0]);
        // At t=125: unit0 stretch 1.25, unit1 stretch 5.2 -> unit 1.
        assert_eq!(p.select(&q, ms(125)).unwrap().units, vec![1]);
    }

    #[test]
    fn equal_ideal_times_reduce_to_fcfs() {
        let units = vec![
            UnitStatics::new(1.0, ms(4), ms(4)),
            UnitStatics::new(1.0, ms(4), ms(4)),
        ];
        let order = drain_order(&mut LsfPolicy::new(), &units, &[(1, 0, 0), (0, 1, 2)]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn zero_ideal_time_unit_cannot_capture_the_scheduler() {
        // A zero-T unit's slope is clamped finite (1/MIN_TIME_NS), so a
        // normal unit with enough accumulated wait can still outrank it and
        // the policy keeps draining both queues.
        let units = vec![
            UnitStatics::new(1.0, Nanos::ZERO, Nanos::ZERO),
            UnitStatics::new(1.0, Nanos::from_nanos(2), Nanos::from_nanos(2)),
        ];
        let mut p = LsfPolicy::new();
        p.on_register(&units);
        assert!(units.iter().all(|u| u.lsf_slope().is_finite()));
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), Nanos::from_nanos(10));
        q.push(1, TupleId::new(1), Nanos::from_nanos(0));
        // At t=12: unit0 stretch = 2ns·(1/1ns) = 2, unit1 stretch =
        // 12ns·(1/2ns) = 6 -> the ordinary unit outranks the degenerate one.
        let sel = p.select(&q, Nanos::from_nanos(12)).unwrap();
        assert_eq!(sel.units, vec![1]);
    }

    #[test]
    fn statics_update_changes_the_slope_in_place() {
        let units = vec![
            UnitStatics::new(1.0, ms(10), ms(10)),
            UnitStatics::new(1.0, ms(10), ms(10)),
        ];
        let mut p = LsfPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), ms(0));
        q.push(1, TupleId::new(1), ms(0));
        assert_eq!(p.select(&q, ms(20)).unwrap().units, vec![0], "tie → id");
        // Unit 1 is re-estimated much shorter: its stretch slope dominates.
        p.on_statics_update(1, &UnitStatics::new(1.0, ms(1), ms(1)));
        assert_eq!(p.select(&q, ms(20)).unwrap().units, vec![1]);
        assert!(p.memory_footprint().unwrap() >= 2 * 8);
    }

    #[test]
    fn zero_wait_everywhere_breaks_ties_by_id() {
        let units = vec![
            UnitStatics::new(1.0, ms(4), ms(4)),
            UnitStatics::new(1.0, ms(4), ms(4)),
        ];
        let mut p = LsfPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(1, TupleId::new(0), ms(5));
        q.push(0, TupleId::new(1), ms(5));
        assert_eq!(p.select(&q, ms(5)).unwrap().units, vec![0]);
    }
}
