//! Balance Slowdown (§4.2.2) — the naive implementation.
//!
//! BSD minimizes the ℓ2 norm of slowdowns with priority
//! `V = (S/(C̄·T²)) · W = Φ · W` (Equation 6): the product of the unit's
//! static normalized-rate-over-T factor `Φ` and the current wait of its head
//! tuple. Because `W` advances continuously, the naive scheduler re-evaluates
//! every ready unit at every scheduling point — the O(q) cost that §6's
//! clustering ([`crate::cluster`]) exists to remove. This module is that
//! naive scan: the reference for correctness and the "no optimizations" bar
//! of Figure 14.

use hcq_common::{Nanos, TupleId};

use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::soa::StaticsTable;
use crate::unit::UnitStatics;

/// Naive BSD: full scan, exact priorities.
///
/// Statics live in a [`StaticsTable`], so the O(q) scan reads one contiguous
/// `Φ` column instead of striding through whole [`UnitStatics`] records.
#[derive(Debug, Default)]
pub struct BsdPolicy {
    /// SoA statics; the `Φ = S/(C̄·T²)` column drives the scan.
    statics: StaticsTable,
}

impl BsdPolicy {
    /// A fresh BSD policy.
    pub fn new() -> Self {
        BsdPolicy::default()
    }

    /// Override a unit's static factor (shared-operator groups, adaptive
    /// re-estimation).
    pub fn set_phi(&mut self, unit: UnitId, phi: f64) {
        self.statics.set_phi(unit, phi);
    }

    /// The unit's static factor `Φ`.
    pub fn phi(&self, unit: UnitId) -> f64 {
        self.statics.phi_of(unit)
    }
}

impl Policy for BsdPolicy {
    fn name(&self) -> &'static str {
        "BSD"
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        self.statics = StaticsTable::from_units(units);
    }

    fn on_enqueue(&mut self, _unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {}

    fn on_statics_update(&mut self, unit: UnitId, statics: &UnitStatics) {
        // O(1): refresh the unit's columns; Φ is derived in the same call.
        self.statics.set(unit, statics);
    }

    fn memory_footprint(&self) -> Option<usize> {
        Some(self.statics.heap_bytes())
    }

    fn select(&mut self, queues: &dyn QueueView, now: Nanos) -> Option<Selection> {
        let mut best: Option<(f64, UnitId)> = None;
        let mut ops = 0;
        let phi = self.statics.phi();
        for &unit in queues.nonempty() {
            let arrival = queues.head_arrival(unit).expect("nonempty unit has a head");
            let wait = now.saturating_since(arrival).as_nanos() as f64;
            let priority = wait * phi[unit as usize];
            ops += 2; // priority computation + comparison
            let better = match best {
                None => true,
                Some((b, bu)) => priority > b || (priority == b && unit < bu),
            };
            if better {
                best = Some((priority, unit));
            }
        }
        best.map(|(_, unit)| {
            // The scan evaluates and compares one exact priority per ready
            // unit: this O(q) profile is what `ext_overhead` measures against
            // the clustered implementations.
            let n = ops / 2;
            let stats = SchedStats {
                candidates_scanned: n,
                priority_evals: n,
                comparisons: n,
                ..SchedStats::default()
            };
            Selection::one(unit, ops).with_stats(stats)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::MockQueues;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn hybrid_behaviour_rate_vs_wait() {
        // Unit 0 has a ~16× higher Φ (better normalized rate), unit 1 a
        // 1000× older head tuple: the wait dominates first, Φ later.
        let units = vec![
            UnitStatics::new(1.0, ms(1), ms(1)),
            UnitStatics::new(0.5, ms(2), ms(2)),
        ];
        let mut p = BsdPolicy::new();
        p.on_register(&units);
        assert!(p.phi(0) > p.phi(1));
        let mut q = MockQueues::new(2);
        // Fresh tuple on 0, ancient tuple on 1.
        q.push(1, TupleId::new(0), ms(0));
        q.push(0, TupleId::new(1), ms(1_000));
        // Shortly after unit 0's arrival its W is tiny: unit 1 wins on wait.
        let phi0 = p.phi(0);
        let phi1 = p.phi(1);
        let w0 = 1.0e6; // 1ms after unit-0 arrival, in ns
        let w1 = 1_001.0e6;
        assert!(phi1 * w1 > phi0 * w0, "sanity: aged tuple dominates");
        assert_eq!(p.select(&q, ms(1_001)).unwrap().units, vec![1]);
        // Much later the relative waits even out and Φ dominates.
        q.pop(1);
        q.push(1, TupleId::new(2), ms(1_000));
        assert!(phi0 * 99_000.0e6 > phi1 * 99_000.0e6);
        assert_eq!(p.select(&q, ms(100_000)).unwrap().units, vec![0]);
    }

    #[test]
    fn equal_waits_reduce_to_hnr_over_t() {
        // With equal W, BSD ranks by Φ = HNR/T: Example 1's Q2 wins (its Φ
        // advantage over Q1 is even larger than its HNR advantage).
        let units = vec![
            UnitStatics::new(1.0, ms(5), ms(5)),
            UnitStatics::new(0.33, ms(2), ms(2)),
        ];
        let mut p = BsdPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), ms(0));
        q.push(1, TupleId::new(1), ms(0));
        assert_eq!(p.select(&q, ms(10)).unwrap().units, vec![1]);
    }

    #[test]
    fn ops_counted_scales_with_ready_units() {
        let units: Vec<UnitStatics> = (1..=8)
            .map(|c| UnitStatics::new(0.5, ms(c), ms(c)))
            .collect();
        let mut p = BsdPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(8);
        for u in 0..5 {
            q.push(u, TupleId::new(u as u64), ms(u as u64));
        }
        let sel = p.select(&q, ms(100)).unwrap();
        assert_eq!(sel.ops_counted, 10, "2 ops per ready unit");
    }

    #[test]
    fn statics_update_changes_the_scan_in_place() {
        let units = vec![
            UnitStatics::new(1.0, ms(1), ms(1)),
            UnitStatics::new(0.5, ms(2), ms(2)),
        ];
        let mut p = BsdPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(0, TupleId::new(0), ms(0));
        q.push(1, TupleId::new(1), ms(0));
        assert_eq!(p.select(&q, ms(10)).unwrap().units, vec![0], "Φ0 > Φ1");
        // Re-estimate unit 1 as much cheaper: its Φ overtakes.
        p.on_statics_update(
            1,
            &UnitStatics::new(1.0, Nanos::from_nanos(500_000), Nanos::from_nanos(500_000)),
        );
        assert!(p.phi(1) > p.phi(0));
        assert_eq!(p.select(&q, ms(10)).unwrap().units, vec![1]);
        assert!(p.memory_footprint().unwrap() >= 2 * 4 * 8);
    }

    #[test]
    fn zero_wait_selects_lowest_id_deterministically() {
        let units = vec![
            UnitStatics::new(0.5, ms(2), ms(2)),
            UnitStatics::new(0.5, ms(2), ms(2)),
        ];
        let mut p = BsdPolicy::new();
        p.on_register(&units);
        let mut q = MockQueues::new(2);
        q.push(1, TupleId::new(0), ms(7));
        q.push(0, TupleId::new(1), ms(7));
        // W = 0 for both -> priorities equal 0 -> tie broken by id.
        assert_eq!(p.select(&q, ms(7)).unwrap().units, vec![0]);
    }
}
