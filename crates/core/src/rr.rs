//! Aurora-style round-robin.
//!
//! The paper's `RR` comparator is Aurora's two-level scheme (§8 "Policies"):
//! round-robin across queries, rate-based execution *within* a query. At
//! query-level scheduling the within-query part is the engine's pipelined
//! segment execution, so the policy reduces to a rotating cursor over units
//! with pending work.

use hcq_common::{Nanos, TupleId};

use crate::policy::{Policy, QueueView, SchedStats, Selection, UnitId};
use crate::unit::UnitStatics;

/// Round-robin over units with pending tuples.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: UnitId,
    n_units: u32,
}

impl RoundRobinPolicy {
    /// A fresh round-robin policy.
    pub fn new() -> Self {
        RoundRobinPolicy::default()
    }
}

impl Policy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn on_register(&mut self, units: &[UnitStatics]) {
        self.n_units = units.len() as u32;
        self.cursor = 0;
    }

    fn on_enqueue(&mut self, _unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {}

    fn select(&mut self, queues: &dyn QueueView, _now: Nanos) -> Option<Selection> {
        if self.n_units == 0 {
            return None;
        }
        // Advance from the cursor to the next unit with pending work.
        for step in 0..self.n_units {
            let unit = (self.cursor + step) % self.n_units;
            if queues.len(unit) > 0 {
                self.cursor = (unit + 1) % self.n_units;
                let inspected = u64::from(step) + 1;
                let stats = SchedStats {
                    candidates_scanned: inspected,
                    comparisons: inspected,
                    ..SchedStats::default()
                };
                return Some(Selection::one(unit, inspected).with_stats(stats));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::testkit::drain_order;

    fn units(n: usize) -> Vec<UnitStatics> {
        (0..n)
            .map(|_| UnitStatics::new(1.0, Nanos::from_millis(1), Nanos::from_millis(1)))
            .collect()
    }

    #[test]
    fn rotates_across_units() {
        // Two tuples pending on each of three units: RR alternates.
        let order = drain_order(
            &mut RoundRobinPolicy::new(),
            &units(3),
            &[
                (0, 0, 0),
                (0, 1, 0),
                (1, 2, 0),
                (1, 3, 0),
                (2, 4, 0),
                (2, 5, 0),
            ],
        );
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_empty_units() {
        let order = drain_order(
            &mut RoundRobinPolicy::new(),
            &units(4),
            &[(1, 0, 0), (3, 1, 0), (3, 2, 0)],
        );
        assert_eq!(order, vec![1, 3, 3]);
    }

    #[test]
    fn counts_inspections_as_overhead() {
        let mut p = RoundRobinPolicy::new();
        p.on_register(&units(5));
        let mut q = crate::policy::testkit::MockQueues::new(5);
        q.push(4, TupleId::new(0), Nanos::ZERO);
        p.on_enqueue(4, TupleId::new(0), Nanos::ZERO, Nanos::ZERO);
        let sel = p.select(&q, Nanos::ZERO).unwrap();
        assert_eq!(sel.units, vec![4]);
        assert_eq!(sel.ops_counted, 5, "inspected units 0..=4");
    }

    #[test]
    fn empty_system_returns_none() {
        let mut p = RoundRobinPolicy::new();
        p.on_register(&units(2));
        let q = crate::policy::testkit::MockQueues::new(2);
        assert!(p.select(&q, Nanos::ZERO).is_none());
    }
}
