//! Scheduling policies for heterogeneous continuous queries.
//!
//! This crate is the paper's primary contribution: given a set of
//! *schedulable units* (operator segments — whole single-stream queries, the
//! virtual per-leaf segments of window-join queries, shared-operator groups,
//! or individual operators under preemptive scheduling), decide at every
//! scheduling point which unit runs next.
//!
//! | Policy | Priority of unit `x` | Optimizes |
//! |---|---|---|
//! | [`FcfsPolicy`] | arrival order | — (baseline) |
//! | [`RoundRobinPolicy`] | rotation | — (Aurora's query-level scheme) |
//! | [`StaticPolicy`] (SRPT) | `1/T` | response time, deterministic workloads |
//! | [`StaticPolicy`] (HR) | `S/C̄` (Eq. 4) | average response time |
//! | [`StaticPolicy`] (HNR) | `S/(C̄·T)` (Eq. 3) | average slowdown |
//! | [`LsfPolicy`] | `W/T` (Eq. 5) | maximum slowdown |
//! | [`BsdPolicy`] | `(S/(C̄·T²))·W` (Eq. 6) | ℓ2 norm of slowdowns |
//! | [`ClusteredBsdPolicy`] | BSD via §6 clustering + Fagin pruning | ℓ2, cheaply |
//!
//! Policies interact with the engine through the [`Policy`] trait: the engine
//! reports enqueues, the policy answers `select` with the unit(s) to run and
//! the number of priority computations/comparisons it spent (so the engine
//! can charge scheduling overhead in virtual time, as §9.2 does).
//!
//! [`pdt`] implements the §7 Priority-Defining Tree for shared operators;
//! [`adaptive`] adds the §10 "dynamic environment" hook: online EWMA
//! estimation of operator cost/selectivity; [`lp`] generalizes BSD to
//! arbitrary ℓp norms (an extension beyond the paper).
//!
//! Priorities can be evaluated directly from [`UnitStatics`]:
//!
//! ```
//! use hcq_common::Nanos;
//! use hcq_core::UnitStatics;
//!
//! // Example 1's two queries (§3.4): HR and HNR disagree about who runs
//! // first, which is the whole point of the paper.
//! let q1 = UnitStatics::new(1.0, Nanos::from_millis(5), Nanos::from_millis(5));
//! let q2 = UnitStatics::new(0.33, Nanos::from_millis(2), Nanos::from_millis(2));
//! assert!(q1.hr_priority() > q2.hr_priority());   // HR: Q1 first
//! assert!(q2.hnr_priority() > q1.hnr_priority()); // HNR: Q2 first
//! ```

pub mod adaptive;
pub mod bsd;
pub mod cluster;
pub mod fagin;
pub mod fcfs;
pub mod lp;
pub mod lsf;
pub mod pdt;
pub mod policy;
pub mod rr;
pub mod soa;
pub mod statics;
pub mod unit;
mod waitlist;

pub use adaptive::{EwmaEstimator, WindowedEstimator};
pub use bsd::BsdPolicy;
pub use cluster::{ClusterConfig, ClusteredBsdPolicy, Clustering};
pub use fcfs::FcfsPolicy;
pub use lp::LpPolicy;
pub use lsf::LsfPolicy;
pub use pdt::{shared_priority, PdtSelection, SharingStrategy};
pub use policy::{Policy, PolicyKind, QueueView, SchedStats, Selection, SelectionUnits, UnitId};
pub use rr::RoundRobinPolicy;
pub use soa::StaticsTable;
pub use statics::{StaticPolicy, StaticRank};
pub use unit::{PriorityKey, UnitStatics, MIN_TIME_NS};
