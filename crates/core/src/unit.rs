//! Schedulable-unit statistics as seen by policies.

use hcq_common::Nanos;
use hcq_plan::LeafSegmentStats;

/// Minimum global cost / ideal processing time, in nanoseconds.
///
/// Every priority formula in the paper divides by `C̄`, `T`, or both
/// (Equations 3–6), so a zero-cost segment would make LSF/HNR/BSD
/// priorities infinite or NaN — one degenerate unit could then capture the
/// scheduler forever (its slowdown ratio `W/T` is `∞` at any wait) or wedge
/// it outright (NaN poisons every comparison). The plan layer already
/// rejects zero-cost *operators*, but [`UnitStatics::new`] is a public
/// constructor fed by shared-group synthesis, external embeddings, and the
/// fuzzer, so the statics themselves enforce the floor: costs and ideal
/// times are clamped to one nanosecond — the engine's cost resolution, so
/// no realizable workload is altered by the clamp.
pub const MIN_TIME_NS: f64 = 1.0;

/// Clamp a cost/ideal-time figure to [`MIN_TIME_NS`], mapping NaN and
/// non-positive values to the floor (a degenerate statistic must degrade to
/// "very cheap", never to an unschedulable infinity).
fn clamp_time_ns(t: f64) -> f64 {
    if t.is_nan() {
        return MIN_TIME_NS;
    }
    t.max(MIN_TIME_NS)
}

/// Static, per-unit characterization — everything a priority function may
/// consume besides the dynamic wait time `W`.
///
/// A *unit* is whatever the engine schedules atomically: a whole
/// single-stream query (query-level scheduling), one leaf-to-root virtual
/// segment of a join query, a shared-operator group, or a single operator
/// (operator-level scheduling). In every case the unit is characterized by
/// the same three §2 quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitStatics {
    /// Global selectivity `S`: expected emissions per entering tuple.
    pub selectivity: f64,
    /// Global average cost `C̄` in nanoseconds.
    pub avg_cost_ns: f64,
    /// Ideal total processing time `T` of the owning query, nanoseconds.
    pub ideal_time_ns: f64,
}

impl UnitStatics {
    /// Build from plan-derived leaf segment statistics.
    pub fn from_leaf(stats: &LeafSegmentStats) -> Self {
        UnitStatics {
            selectivity: stats.selectivity,
            avg_cost_ns: clamp_time_ns(stats.avg_cost_ns),
            ideal_time_ns: clamp_time_ns(stats.ideal_time.as_nanos() as f64),
        }
    }

    /// Build from raw components (shared groups, tests). Costs and ideal
    /// times are clamped to [`MIN_TIME_NS`] so zero-cost segments cannot
    /// produce infinite or NaN priorities (see the constant's docs).
    pub fn new(selectivity: f64, avg_cost: Nanos, ideal_time: Nanos) -> Self {
        UnitStatics {
            selectivity,
            avg_cost_ns: clamp_time_ns(avg_cost.as_nanos() as f64),
            ideal_time_ns: clamp_time_ns(ideal_time.as_nanos() as f64),
        }
    }

    /// HR priority: global output rate `S/C̄` (Equation 4).
    pub fn hr_priority(&self) -> f64 {
        self.selectivity / self.avg_cost_ns
    }

    /// HNR priority: normalized output rate `S/(C̄·T)` (Equation 3).
    pub fn hnr_priority(&self) -> f64 {
        self.hr_priority() / self.ideal_time_ns
    }

    /// SRPT priority: inverse ideal processing time `1/T`.
    pub fn srpt_priority(&self) -> f64 {
        1.0 / self.ideal_time_ns
    }

    /// The static BSD factor `Φ = S/(C̄·T²)`; the full BSD priority is
    /// `Φ·W` (Equation 6).
    pub fn bsd_static(&self) -> f64 {
        self.hnr_priority() / self.ideal_time_ns
    }

    /// LSF slope `1/T`: the LSF priority is `W/T` (Equation 5).
    pub fn lsf_slope(&self) -> f64 {
        1.0 / self.ideal_time_ns
    }

    /// `Φ` sanitized for *domain arithmetic*: NaN (a poisoned selectivity
    /// fed through [`Self::bsd_static`]) maps to 0 and the result is clamped
    /// to `[0, f64::MAX]`. Clustered BSD derives its priority ranges from
    /// folds, divisions and logarithms over these values, where a single
    /// NaN/∞ would poison every cluster boundary; the exact-BSD scan needs
    /// no such guard because [`PriorityKey`] already ranks NaN last.
    pub fn sanitized_phi(&self) -> f64 {
        let p = self.bsd_static();
        if p.is_nan() {
            0.0
        } else {
            p.clamp(0.0, f64::MAX)
        }
    }
}

/// Total order over `f64` priorities.
///
/// Built-in priority formulas are NaN-free once [`UnitStatics`] clamps its
/// times, but custom priorities ([`crate::StaticPolicy::custom`]) and
/// external embeddings can still feed NaN. The previous implementation
/// leaned on `partial_cmp` plus a `debug_assert!`, so **release** builds
/// silently produced an arbitrary order (heaps with NaN keys corrupt their
/// invariant and can starve valid units). The defined NaN policy is:
///
/// * a NaN priority compares **below every other priority** (including
///   `-∞`), so in max-priority structures a NaN-ranked unit is
///   deterministically served last rather than capturing the scheduler;
/// * two NaNs compare equal (ties then break on unit id as usual);
/// * non-NaN values use [`f64::total_cmp`], which also gives `-0.0 < 0.0`
///   a stable order.
///
/// `PartialEq` follows the same policy (`NaN == NaN` here), keeping `Eq`,
/// `Ord`, and hash-free container invariants mutually consistent.
#[derive(Debug, Clone, Copy)]
pub struct PriorityKey(pub f64);

impl PartialEq for PriorityKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for PriorityKey {}

impl PartialOrd for PriorityKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PriorityKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => self.0.total_cmp(&other.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn example1_priorities() {
        // Paper §3.4 Example 1, in ms-units: Q1 (c=5, s=1): HR = 0.2/ms,
        // HNR = 0.04/ms²; Q2 (c=2, s=0.33): HR = 0.165/ms, HNR = 0.0825/ms².
        let q1 = UnitStatics::new(1.0, ms(5), ms(5));
        let q2 = UnitStatics::new(0.33, ms(2), ms(2));
        let per_ms = 1e6;
        assert!((q1.hr_priority() * per_ms - 0.2).abs() < 1e-12);
        assert!((q2.hr_priority() * per_ms - 0.165).abs() < 1e-12);
        assert!((q1.hnr_priority() * per_ms * per_ms - 0.04).abs() < 1e-12);
        assert!((q2.hnr_priority() * per_ms * per_ms - 0.0825).abs() < 1e-12);
        assert!(q1.hr_priority() > q2.hr_priority());
        assert!(q2.hnr_priority() > q1.hnr_priority());
    }

    #[test]
    fn unit_selectivity_one_collapses_to_srpt() {
        // §3.5: with all selectivities 1, C̄ = T, so HR = 1/T (SRPT) and
        // HNR = 1/T² (same order as SRPT).
        let a = UnitStatics::new(1.0, ms(3), ms(3));
        let b = UnitStatics::new(1.0, ms(7), ms(7));
        assert!(a.hr_priority() > b.hr_priority());
        assert!(a.hnr_priority() > b.hnr_priority());
        assert!(a.srpt_priority() > b.srpt_priority());
        assert!((a.hr_priority() - a.srpt_priority()).abs() < 1e-18);
    }

    #[test]
    fn bsd_static_relates_to_hnr() {
        let u = UnitStatics::new(0.5, ms(4), ms(6));
        assert!((u.bsd_static() - u.hnr_priority() / u.ideal_time_ns).abs() < 1e-30);
        assert!((u.lsf_slope() - 1.0 / u.ideal_time_ns).abs() < 1e-30);
    }

    #[test]
    fn sanitized_phi_tames_nan_and_negatives() {
        let mut u = UnitStatics::new(0.5, ms(4), ms(6));
        assert_eq!(u.sanitized_phi(), u.bsd_static(), "clean Φ passes through");
        u.selectivity = f64::NAN;
        assert_eq!(u.sanitized_phi(), 0.0, "NaN Φ maps to zero");
        u.selectivity = -3.0;
        assert_eq!(u.sanitized_phi(), 0.0, "negative Φ clamps to zero");
        u.selectivity = f64::INFINITY;
        assert_eq!(u.sanitized_phi(), f64::MAX, "∞ saturates finite");
    }

    #[test]
    fn priority_key_orders() {
        let mut v = vec![PriorityKey(0.3), PriorityKey(1.0), PriorityKey(0.5)];
        v.sort();
        assert_eq!(
            v,
            vec![PriorityKey(0.3), PriorityKey(0.5), PriorityKey(1.0)]
        );
        assert!(PriorityKey(2.0) > PriorityKey(1.0));
    }

    #[test]
    fn nan_priority_is_deterministically_ranked_last() {
        // NaN sorts below everything, even -inf: a max-heap/argmax over
        // priorities serves a NaN-ranked unit last instead of (release-mode)
        // arbitrary ordering.
        let nan = PriorityKey(f64::NAN);
        assert!(nan < PriorityKey(f64::NEG_INFINITY));
        assert!(nan < PriorityKey(0.0));
        assert!(PriorityKey(f64::INFINITY) > nan);
        assert_eq!(nan.cmp(&PriorityKey(f64::NAN)), std::cmp::Ordering::Equal);
        assert_eq!(nan, PriorityKey(f64::NAN));
        let mut v = vec![
            PriorityKey(0.5),
            PriorityKey(f64::NAN),
            PriorityKey(f64::NEG_INFINITY),
            PriorityKey(2.0),
        ];
        v.sort();
        assert!(
            v[0].0.is_nan(),
            "NaN first in ascending order = served last"
        );
        assert_eq!(v[1], PriorityKey(f64::NEG_INFINITY));
        assert_eq!(v[3], PriorityKey(2.0));
        // The order is total and consistent under reversal.
        let mut w = v.clone();
        w.reverse();
        w.sort();
        assert_eq!(v, w);
        // A max-heap never surfaces the NaN while real work is ranked.
        let mut heap = std::collections::BinaryHeap::from(v);
        assert_eq!(heap.pop(), Some(PriorityKey(2.0)));
    }

    #[test]
    fn zero_time_statics_are_clamped_finite() {
        // A zero-cost, zero-ideal-time segment must not produce infinite or
        // NaN priorities — these formulas feed heaps and the shed victim
        // scan, where a captured ∞ would wedge the scheduler.
        let u = UnitStatics::new(0.5, Nanos::ZERO, Nanos::ZERO);
        assert_eq!(u.avg_cost_ns, MIN_TIME_NS);
        assert_eq!(u.ideal_time_ns, MIN_TIME_NS);
        for p in [
            u.hr_priority(),
            u.hnr_priority(),
            u.srpt_priority(),
            u.bsd_static(),
            u.lsf_slope(),
        ] {
            assert!(p.is_finite(), "priority must stay finite, got {p}");
        }
        // Zero selectivity zeroes the rate-based priorities without NaN.
        let z = UnitStatics::new(0.0, Nanos::ZERO, Nanos::ZERO);
        assert_eq!(z.hr_priority(), 0.0);
        assert_eq!(z.hnr_priority(), 0.0);
        assert_eq!(z.bsd_static(), 0.0);
    }
}
