//! Schedulable-unit statistics as seen by policies.

use hcq_common::Nanos;
use hcq_plan::LeafSegmentStats;

/// Static, per-unit characterization — everything a priority function may
/// consume besides the dynamic wait time `W`.
///
/// A *unit* is whatever the engine schedules atomically: a whole
/// single-stream query (query-level scheduling), one leaf-to-root virtual
/// segment of a join query, a shared-operator group, or a single operator
/// (operator-level scheduling). In every case the unit is characterized by
/// the same three §2 quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitStatics {
    /// Global selectivity `S`: expected emissions per entering tuple.
    pub selectivity: f64,
    /// Global average cost `C̄` in nanoseconds.
    pub avg_cost_ns: f64,
    /// Ideal total processing time `T` of the owning query, nanoseconds.
    pub ideal_time_ns: f64,
}

impl UnitStatics {
    /// Build from plan-derived leaf segment statistics.
    pub fn from_leaf(stats: &LeafSegmentStats) -> Self {
        UnitStatics {
            selectivity: stats.selectivity,
            avg_cost_ns: stats.avg_cost_ns,
            ideal_time_ns: stats.ideal_time.as_nanos() as f64,
        }
    }

    /// Build from raw components (shared groups, tests).
    pub fn new(selectivity: f64, avg_cost: Nanos, ideal_time: Nanos) -> Self {
        UnitStatics {
            selectivity,
            avg_cost_ns: avg_cost.as_nanos() as f64,
            ideal_time_ns: ideal_time.as_nanos() as f64,
        }
    }

    /// HR priority: global output rate `S/C̄` (Equation 4).
    pub fn hr_priority(&self) -> f64 {
        self.selectivity / self.avg_cost_ns
    }

    /// HNR priority: normalized output rate `S/(C̄·T)` (Equation 3).
    pub fn hnr_priority(&self) -> f64 {
        self.hr_priority() / self.ideal_time_ns
    }

    /// SRPT priority: inverse ideal processing time `1/T`.
    pub fn srpt_priority(&self) -> f64 {
        1.0 / self.ideal_time_ns
    }

    /// The static BSD factor `Φ = S/(C̄·T²)`; the full BSD priority is
    /// `Φ·W` (Equation 6).
    pub fn bsd_static(&self) -> f64 {
        self.hnr_priority() / self.ideal_time_ns
    }

    /// LSF slope `1/T`: the LSF priority is `W/T` (Equation 5).
    pub fn lsf_slope(&self) -> f64 {
        1.0 / self.ideal_time_ns
    }
}

/// Total order over `f64` priorities (NaN-free by construction — all
/// priority formulas are ratios of positive finite quantities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityKey(pub f64);

impl Eq for PriorityKey {}

impl PartialOrd for PriorityKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PriorityKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        debug_assert!(!self.0.is_nan() && !other.0.is_nan());
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn example1_priorities() {
        // Paper §3.4 Example 1, in ms-units: Q1 (c=5, s=1): HR = 0.2/ms,
        // HNR = 0.04/ms²; Q2 (c=2, s=0.33): HR = 0.165/ms, HNR = 0.0825/ms².
        let q1 = UnitStatics::new(1.0, ms(5), ms(5));
        let q2 = UnitStatics::new(0.33, ms(2), ms(2));
        let per_ms = 1e6;
        assert!((q1.hr_priority() * per_ms - 0.2).abs() < 1e-12);
        assert!((q2.hr_priority() * per_ms - 0.165).abs() < 1e-12);
        assert!((q1.hnr_priority() * per_ms * per_ms - 0.04).abs() < 1e-12);
        assert!((q2.hnr_priority() * per_ms * per_ms - 0.0825).abs() < 1e-12);
        assert!(q1.hr_priority() > q2.hr_priority());
        assert!(q2.hnr_priority() > q1.hnr_priority());
    }

    #[test]
    fn unit_selectivity_one_collapses_to_srpt() {
        // §3.5: with all selectivities 1, C̄ = T, so HR = 1/T (SRPT) and
        // HNR = 1/T² (same order as SRPT).
        let a = UnitStatics::new(1.0, ms(3), ms(3));
        let b = UnitStatics::new(1.0, ms(7), ms(7));
        assert!(a.hr_priority() > b.hr_priority());
        assert!(a.hnr_priority() > b.hnr_priority());
        assert!(a.srpt_priority() > b.srpt_priority());
        assert!((a.hr_priority() - a.srpt_priority()).abs() < 1e-18);
    }

    #[test]
    fn bsd_static_relates_to_hnr() {
        let u = UnitStatics::new(0.5, ms(4), ms(6));
        assert!((u.bsd_static() - u.hnr_priority() / u.ideal_time_ns).abs() < 1e-30);
        assert!((u.lsf_slope() - 1.0 / u.ideal_time_ns).abs() < 1e-30);
    }

    #[test]
    fn priority_key_orders() {
        let mut v = vec![PriorityKey(0.3), PriorityKey(1.0), PriorityKey(0.5)];
        v.sort();
        assert_eq!(
            v,
            vec![PriorityKey(0.3), PriorityKey(0.5), PriorityKey(1.0)]
        );
        assert!(PriorityKey(2.0) > PriorityKey(1.0));
    }
}
