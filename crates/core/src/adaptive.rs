//! Online cost/selectivity estimation (the §10 "dynamic environment" hook).
//!
//! The related-work discussion notes that, like TelegraphCQ's eddies, these
//! policies "can work in a dynamic environment with support for monitoring
//! the queries' costs and selectivities, and updating the priorities
//! whenever it is necessary". This module provides that monitoring: an
//! exponentially-weighted moving average per operator, from which fresh
//! [`crate::unit::UnitStatics`] — and hence fresh priorities — can be
//! derived periodically (see `StaticPolicy::set_priority` /
//! `BsdPolicy::set_phi`).

use hcq_common::Nanos;

/// EWMA estimator of one operator's processing cost and selectivity.
#[derive(Debug, Clone, Copy)]
pub struct EwmaEstimator {
    alpha: f64,
    cost_ns: f64,
    selectivity: f64,
    observations: u64,
}

impl EwmaEstimator {
    /// Create with smoothing factor `alpha ∈ (0, 1]` (weight of the newest
    /// observation) and initial guesses.
    pub fn new(alpha: f64, initial_cost: Nanos, initial_selectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "alpha in (0,1]"
        );
        EwmaEstimator {
            alpha,
            cost_ns: initial_cost.as_nanos() as f64,
            selectivity: initial_selectivity,
            observations: 0,
        }
    }

    /// Record one execution: measured processing time and tuples produced
    /// per input tuple (0 or 1 for filters; can exceed 1 for joins).
    pub fn observe(&mut self, cost: Nanos, produced: f64) {
        let c = cost.as_nanos() as f64;
        self.cost_ns += self.alpha * (c - self.cost_ns);
        self.selectivity += self.alpha * (produced - self.selectivity);
        self.observations += 1;
    }

    /// Record only a selectivity observation (tuples produced per input
    /// tuple), leaving the cost estimate untouched — for runtimes whose
    /// clock cannot meaningfully time individual operators (manual/replay
    /// clocks).
    pub fn observe_selectivity(&mut self, produced: f64) {
        self.selectivity += self.alpha * (produced - self.selectivity);
        self.observations += 1;
    }

    /// Current cost estimate.
    pub fn cost(&self) -> Nanos {
        Nanos::from_nanos(self.cost_ns.round().max(1.0) as u64)
    }

    /// Current selectivity estimate (clamped away from zero so priority
    /// ratios stay finite).
    pub fn selectivity(&self) -> f64 {
        self.selectivity.max(1e-6)
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn converges_to_stationary_values() {
        let mut e = EwmaEstimator::new(0.1, ms(1), 1.0);
        for i in 0..500 {
            e.observe(ms(8), if i % 4 == 0 { 1.0 } else { 0.0 });
        }
        assert!((e.cost().as_millis_f64() - 8.0).abs() < 0.01);
        assert!((e.selectivity() - 0.25).abs() < 0.1);
        assert_eq!(e.observations(), 500);
    }

    #[test]
    fn tracks_a_shift() {
        let mut e = EwmaEstimator::new(0.2, ms(5), 0.5);
        for _ in 0..100 {
            e.observe(ms(5), 0.5);
        }
        // Workload shifts: cost doubles, selectivity collapses.
        for _ in 0..100 {
            e.observe(ms(10), 0.1);
        }
        assert!((e.cost().as_millis_f64() - 10.0).abs() < 0.1);
        assert!((e.selectivity() - 0.1).abs() < 0.05);
    }

    #[test]
    fn alpha_one_is_last_observation() {
        let mut e = EwmaEstimator::new(1.0, ms(1), 1.0);
        e.observe(ms(42), 0.0);
        assert_eq!(e.cost(), ms(42));
        // Selectivity clamps away from exactly zero.
        assert!(e.selectivity() > 0.0 && e.selectivity() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = EwmaEstimator::new(0.0, ms(1), 1.0);
    }
}
