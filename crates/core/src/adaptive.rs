//! Online cost/selectivity estimation (the §10 "dynamic environment" hook).
//!
//! The related-work discussion notes that, like TelegraphCQ's eddies, these
//! policies "can work in a dynamic environment with support for monitoring
//! the queries' costs and selectivities, and updating the priorities
//! whenever it is necessary". This module provides that monitoring: an
//! exponentially-weighted moving average per operator, from which fresh
//! [`crate::unit::UnitStatics`] — and hence fresh priorities — can be
//! derived periodically (see `StaticPolicy::set_priority` /
//! `BsdPolicy::set_phi`).

use hcq_common::Nanos;

/// Accept an observed emissions-per-input figure only when it is a finite,
/// non-negative number. Selectivity observations come from counter deltas in
/// well-behaved runtimes, but external embeddings can feed ratios of raw
/// clock/counter readings where a zero denominator yields NaN/∞ — folding
/// one such sample into an EWMA poisons every later estimate (NaN absorbs),
/// so degenerate samples are dropped whole rather than clamped.
fn valid_produced(produced: f64) -> bool {
    produced.is_finite() && produced >= 0.0
}

/// EWMA estimator of one operator's processing cost and selectivity.
#[derive(Debug, Clone, Copy)]
pub struct EwmaEstimator {
    alpha: f64,
    cost_ns: f64,
    selectivity: f64,
    observations: u64,
}

impl EwmaEstimator {
    /// Create with smoothing factor `alpha ∈ (0, 1]` (weight of the newest
    /// observation) and initial guesses.
    pub fn new(alpha: f64, initial_cost: Nanos, initial_selectivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "alpha in (0,1]"
        );
        EwmaEstimator {
            alpha,
            cost_ns: initial_cost.as_nanos() as f64,
            selectivity: initial_selectivity,
            observations: 0,
        }
    }

    /// Record one execution: measured processing time and tuples produced
    /// per input tuple (0 or 1 for filters; can exceed 1 for joins). A
    /// non-finite or negative `produced` drops the whole sample — one NaN
    /// folded into an EWMA would poison every later estimate. Zero-cost
    /// observations are fine: they pull the mean down and [`Self::cost`]
    /// clamps the reported estimate to the 1 ns engine resolution.
    pub fn observe(&mut self, cost: Nanos, produced: f64) {
        if !valid_produced(produced) {
            return;
        }
        let c = cost.as_nanos() as f64;
        self.cost_ns += self.alpha * (c - self.cost_ns);
        self.selectivity += self.alpha * (produced - self.selectivity);
        self.observations += 1;
    }

    /// Record only a selectivity observation (tuples produced per input
    /// tuple), leaving the cost estimate untouched — for runtimes whose
    /// clock cannot meaningfully time individual operators (manual/replay
    /// clocks). Non-finite/negative samples are dropped like in
    /// [`Self::observe`].
    pub fn observe_selectivity(&mut self, produced: f64) {
        if !valid_produced(produced) {
            return;
        }
        self.selectivity += self.alpha * (produced - self.selectivity);
        self.observations += 1;
    }

    /// Current cost estimate.
    pub fn cost(&self) -> Nanos {
        Nanos::from_nanos(self.cost_ns.round().max(1.0) as u64)
    }

    /// Current selectivity estimate (clamped away from zero so priority
    /// ratios stay finite).
    pub fn selectivity(&self) -> f64 {
        self.selectivity.max(1e-6)
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// Tumbling-window estimator: plain means over the current window, reset at
/// each publication. Where the EWMA blends phases together with a half-life
/// set by `alpha`, the windowed estimator forgets completely at every
/// [`Self::reset`] — the right shape for on/off workloads whose phases are
/// longer than the window, at the price of higher variance within one.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowedEstimator {
    cost_sum_ns: f64,
    produced_sum: f64,
    count: u64,
    /// Lifetime observation count (never reset), mirroring
    /// [`EwmaEstimator::observations`].
    total: u64,
}

impl WindowedEstimator {
    /// An empty window.
    pub fn new() -> Self {
        WindowedEstimator::default()
    }

    /// Record one execution into the current window. Degenerate `produced`
    /// samples (NaN/∞/negative) are dropped whole, as in
    /// [`EwmaEstimator::observe`].
    pub fn observe(&mut self, cost: Nanos, produced: f64) {
        if !valid_produced(produced) {
            return;
        }
        self.cost_sum_ns += cost.as_nanos() as f64;
        self.produced_sum += produced;
        self.count += 1;
        self.total += 1;
    }

    /// Mean cost over the current window, `None` when it holds no samples.
    pub fn cost(&self) -> Option<Nanos> {
        (self.count > 0).then(|| {
            Nanos::from_nanos((self.cost_sum_ns / self.count as f64).round().max(1.0) as u64)
        })
    }

    /// Mean selectivity over the current window (clamped away from zero),
    /// `None` when it holds no samples.
    pub fn selectivity(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.produced_sum / self.count as f64).max(1e-6))
    }

    /// Samples in the current window.
    pub fn window_len(&self) -> u64 {
        self.count
    }

    /// Lifetime samples across all windows.
    pub fn observations(&self) -> u64 {
        self.total
    }

    /// Start a new window (publication boundary).
    pub fn reset(&mut self) {
        self.cost_sum_ns = 0.0;
        self.produced_sum = 0.0;
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn converges_to_stationary_values() {
        let mut e = EwmaEstimator::new(0.1, ms(1), 1.0);
        for i in 0..500 {
            e.observe(ms(8), if i % 4 == 0 { 1.0 } else { 0.0 });
        }
        assert!((e.cost().as_millis_f64() - 8.0).abs() < 0.01);
        assert!((e.selectivity() - 0.25).abs() < 0.1);
        assert_eq!(e.observations(), 500);
    }

    #[test]
    fn tracks_a_shift() {
        let mut e = EwmaEstimator::new(0.2, ms(5), 0.5);
        for _ in 0..100 {
            e.observe(ms(5), 0.5);
        }
        // Workload shifts: cost doubles, selectivity collapses.
        for _ in 0..100 {
            e.observe(ms(10), 0.1);
        }
        assert!((e.cost().as_millis_f64() - 10.0).abs() < 0.1);
        assert!((e.selectivity() - 0.1).abs() < 0.05);
    }

    #[test]
    fn alpha_one_is_last_observation() {
        let mut e = EwmaEstimator::new(1.0, ms(1), 1.0);
        e.observe(ms(42), 0.0);
        assert_eq!(e.cost(), ms(42));
        // Selectivity clamps away from exactly zero.
        assert!(e.selectivity() > 0.0 && e.selectivity() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = EwmaEstimator::new(0.0, ms(1), 1.0);
    }

    #[test]
    fn degenerate_samples_never_poison_the_ewma() {
        let mut e = EwmaEstimator::new(0.5, ms(4), 0.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            e.observe(ms(9), bad);
            e.observe_selectivity(bad);
        }
        assert_eq!(e.observations(), 0, "degenerate samples are dropped whole");
        assert_eq!(e.cost(), ms(4));
        assert_eq!(e.selectivity(), 0.5);
        // A later clean sample lands on an unpoisoned state.
        e.observe(ms(8), 1.0);
        assert!(e.cost() > ms(4));
        assert!(e.selectivity().is_finite());
    }

    #[test]
    fn zero_cost_observations_clamp_to_engine_resolution() {
        let mut e = EwmaEstimator::new(1.0, ms(5), 1.0);
        e.observe(Nanos::ZERO, 0.0);
        assert_eq!(e.cost(), Nanos::from_nanos(1), "cost floor is 1 ns");
        assert!(e.selectivity() > 0.0, "selectivity floor stays positive");
    }

    #[test]
    fn windowed_means_and_reset() {
        let mut w = WindowedEstimator::new();
        assert_eq!(w.cost(), None);
        assert_eq!(w.selectivity(), None);
        w.observe(ms(2), 1.0);
        w.observe(ms(4), 0.0);
        assert_eq!(w.cost(), Some(ms(3)));
        assert_eq!(w.selectivity(), Some(0.5));
        assert_eq!(w.window_len(), 2);
        w.reset();
        assert_eq!(w.cost(), None, "reset forgets the window completely");
        assert_eq!(w.window_len(), 0);
        assert_eq!(w.observations(), 2, "lifetime count survives resets");
        // The next window sees only its own phase — the on/off property.
        w.observe(ms(10), 1.0);
        assert_eq!(w.cost(), Some(ms(10)));
    }

    #[test]
    fn windowed_drops_degenerate_samples() {
        let mut w = WindowedEstimator::new();
        w.observe(ms(1), f64::NAN);
        w.observe(ms(1), f64::INFINITY);
        assert_eq!(w.window_len(), 0);
        w.observe(Nanos::ZERO, 2.0);
        assert_eq!(
            w.cost(),
            Some(Nanos::from_nanos(1)),
            "zero cost clamps, not poisons"
        );
        assert_eq!(w.selectivity(), Some(2.0));
    }
}
