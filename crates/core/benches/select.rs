//! `Policy::select` in isolation at large registered-query counts.
//!
//! The engine-level `sched_overhead` bench (in `hcq-bench`) covers the
//! moderate-q regime with realistic queue dynamics; this one strips the
//! harness to a saturated O(1) queue fixture so the *policy's own*
//! per-decision cost is the only thing inside `b.iter`, and pushes q to
//! 10⁵ where the exact scan and the clustered index diverge by three
//! orders of magnitude. Self-contained (no `hcq-bench` dependency — that
//! crate depends on this one).
//!
//! Run with `cargo bench -p hcq-core`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcq_common::{Nanos, TupleId};
use hcq_core::{
    BsdPolicy, ClusterConfig, ClusteredBsdPolicy, LsfPolicy, Policy, PolicyKind, QueueView, UnitId,
    UnitStatics,
};

/// Always-ready queues: one pending tuple per unit, O(1) refill, so the
/// fixture contributes no q-dependent work to the timed loop.
struct SaturatedQueues {
    heads: Vec<Nanos>,
    nonempty: Vec<UnitId>,
}

impl SaturatedQueues {
    fn new(n: usize) -> Self {
        SaturatedQueues {
            heads: (0..n)
                .map(|i| Nanos::from_nanos(i as u64 * 1_000))
                .collect(),
            nonempty: (0..n as UnitId).collect(),
        }
    }
}

impl QueueView for SaturatedQueues {
    fn len(&self, _unit: UnitId) -> usize {
        1
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        Some(self.heads[unit as usize])
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// Φ spread over several decades, like `hcq_bench::spread_units`.
fn units(n: usize) -> Vec<UnitStatics> {
    (0..n)
        .map(|i| {
            let c = Nanos::from_millis(1 << (i % 5));
            UnitStatics::new(0.15 + 0.1 * (i % 8) as f64, c, c * 3)
        })
        .collect()
}

/// Register `n` units, saturate the queues, and warm the policy through one
/// decision so registration-era bookkeeping stays out of the timed loop.
fn loaded(mut policy: Box<dyn Policy>, n: usize) -> (Box<dyn Policy>, SaturatedQueues, Nanos) {
    policy.on_register(&units(n));
    let mut q = SaturatedQueues::new(n);
    for u in 0..n as UnitId {
        let arrival = q.head_arrival(u).expect("saturated");
        policy.on_enqueue(u, TupleId::new(u as u64), arrival, arrival);
    }
    let mut now = Nanos::from_nanos(n as u64 * 1_000 + 1_000_000);
    let mut tuple = n as u64;
    step(&mut policy, &mut q, now, &mut tuple);
    now += Nanos::from_nanos(1_000);
    (policy, q, now)
}

/// One scheduling point: select, then consume + re-arrive each picked unit.
fn step(
    policy: &mut Box<dyn Policy>,
    queues: &mut SaturatedQueues,
    now: Nanos,
    tuple: &mut u64,
) -> u64 {
    let sel = policy.select(queues, now).expect("queues stay saturated");
    let mut ops = sel.ops_counted;
    for &u in sel.units.as_slice() {
        queues.heads[u as usize] = now;
        policy.on_enqueue(u, TupleId::new(*tuple), now, now);
        *tuple += 1;
        ops += 1;
    }
    ops
}

fn bench_large_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_large_q");
    group.sample_size(20);
    type Variant = (&'static str, fn() -> Box<dyn Policy>);
    let variants: [Variant; 5] = [
        ("bsd_exact", || Box::new(BsdPolicy::new())),
        ("cbsd_log_fagin", || {
            Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(64)))
        }),
        ("cbsd_log_scan", || {
            Box::new(ClusteredBsdPolicy::new(ClusterConfig {
                use_fagin: false,
                batch: false,
                ..ClusterConfig::logarithmic(64)
            }))
        }),
        ("hnr_heap", || PolicyKind::Hnr.build()),
        ("lsf_scan", || Box::new(LsfPolicy::new())),
    ];
    for &q in &[100usize, 10_000, 100_000] {
        for (name, build) in variants {
            group.bench_with_input(BenchmarkId::new(name, q), &q, |b, &q| {
                let (mut p, mut queues, mut now) = loaded(build(), q);
                let mut tuple = 2 * q as u64;
                b.iter(|| {
                    let ops = step(&mut p, &mut queues, now, &mut tuple);
                    now += Nanos::from_nanos(1_000);
                    ops
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_large_select);
criterion_main!(benches);
