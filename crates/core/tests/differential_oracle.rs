//! Differential oracle for the §6.2 clustered BSD implementations.
//!
//! Two claims, verified against the exact BSD definition rather than against
//! another implementation:
//!
//! 1. **Bounded suboptimality.** Logarithmic clustering splits the `Φ`
//!    domain into equal-ratio ranges of width `ε = (Φ_max/Φ_min)^(1/m)`, so
//!    the unit a clustered scheduler picks can trail the exact argmax of
//!    `Φ·W` by at most that factor: `Φ(chosen)·W(chosen) ≥ max_u Φ(u)·W(u)
//!    / ε`. (Chosen cluster ĉ maximizes `pseudo·W_oldest`; any unit u has
//!    `Φ(u) ≤ pseudo(c(u))·ε` and `W(u) ≤ W_oldest(c(u))`, while the chosen
//!    unit realizes at least `pseudo(ĉ)·W_oldest(ĉ)`.)
//! 2. **Counter ordering.** The exact scan reports `O(q)` candidates per
//!    scheduling point; the clustered variants report at most one per
//!    cluster — sub-linear in `q` by construction, confirmed from the
//!    [`SchedStats`] counters, never from wall time.

use std::collections::VecDeque;

use hcq_common::{Nanos, TupleId};
use hcq_core::{
    BsdPolicy, ClusterConfig, ClusteredBsdPolicy, Clustering, Policy, QueueView, SchedStats,
    UnitId, UnitStatics,
};
use proptest::prelude::*;

#[derive(Default)]
struct Queues {
    queues: Vec<VecDeque<(TupleId, Nanos)>>,
    nonempty: Vec<UnitId>,
}

impl Queues {
    fn new(n: usize) -> Self {
        Queues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
        }
    }
    fn push(&mut self, unit: UnitId, t: TupleId, a: Nanos) {
        if self.queues[unit as usize].is_empty() {
            self.nonempty.push(unit);
        }
        self.queues[unit as usize].push_back((t, a));
    }
    fn pop(&mut self, unit: UnitId) {
        self.queues[unit as usize].pop_front().expect("nonempty");
        if self.queues[unit as usize].is_empty() {
            self.nonempty.retain(|&u| u != unit);
        }
    }
}

impl QueueView for Queues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|&(_, a)| a)
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// Units whose `Φ` values span several decades.
fn units(n: usize) -> Vec<UnitStatics> {
    (0..n)
        .map(|i| {
            let c = Nanos::from_millis(1 << (i % 5));
            UnitStatics::new(0.1 + 0.11 * (i % 8) as f64, c, c * (1 + (i % 3) as u64))
        })
        .collect()
}

/// The per-cluster priority spread `ε` of logarithmic clustering.
fn epsilon(us: &[UnitStatics], m: usize) -> f64 {
    let (lo, hi) = us
        .iter()
        .map(UnitStatics::bsd_static)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p), hi.max(p))
        });
    (hi / lo).powf(1.0 / m as f64)
}

/// The exact BSD objective: `max_u Φ(u) · W(u)` over ready units.
fn exact_argmax(us: &[UnitStatics], q: &Queues, now: Nanos) -> f64 {
    q.nonempty
        .iter()
        .map(|&u| {
            let wait = now.saturating_since(q.head_arrival(u).unwrap()).as_nanos() as f64;
            us[u as usize].bsd_static() * wait
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1: for any interleaving, the (scan or Fagin) log-clustered
    /// choice is within the `ε` cluster bound of the exact BSD argmax.
    #[test]
    fn log_clustered_choice_within_epsilon_of_exact_argmax(
        script in proptest::collection::vec(
            proptest::option::weighted(0.6, (0u32..12, 0u64..40)), 1..100
        ),
        m in 1usize..10,
        fagin in any::<bool>(),
    ) {
        let n = 12;
        let us = units(n);
        let eps = epsilon(&us, m);
        let mut p = ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: m,
            use_fagin: fagin,
            batch: false,
        });
        p.on_register(&us);
        let mut q = Queues::new(n);
        let mut now = Nanos::ZERO;
        let mut tid = 0u64;
        for step in script {
            match step {
                Some((unit, gap)) => {
                    now += Nanos::from_millis(gap);
                    let t = TupleId::new(tid);
                    tid += 1;
                    q.push(unit, t, now);
                    p.on_enqueue(unit, t, now, now);
                }
                None => {
                    now += Nanos::from_millis(1);
                    let Some(sel) = p.select(&q, now) else {
                        prop_assert!(q.nonempty.is_empty());
                        continue;
                    };
                    let chosen = sel.units[0];
                    let wait = now
                        .saturating_since(q.head_arrival(chosen).unwrap())
                        .as_nanos() as f64;
                    let chosen_priority = us[chosen as usize].bsd_static() * wait;
                    let best = exact_argmax(&us, &q, now);
                    prop_assert!(
                        chosen_priority >= best / eps * (1.0 - 1e-9),
                        "chosen {chosen} at priority {chosen_priority} trails exact argmax \
                         {best} by more than ε = {eps} (m = {m}, fagin = {fagin})"
                    );
                    q.pop(chosen);
                }
            }
        }
    }
}

/// Accumulated per-decision stats from draining `rounds` selections with
/// every unit ready.
fn drain_stats(policy: &mut dyn Policy, us: &[UnitStatics], rounds: usize) -> SchedStats {
    let n = us.len();
    policy.on_register(us);
    let mut q = Queues::new(n);
    for i in 0..n {
        let t = TupleId::new(i as u64);
        let a = Nanos::from_millis((i as u64 * 7) % 50);
        q.push(i as UnitId, t, a);
        policy.on_enqueue(i as UnitId, t, a, a);
    }
    let mut total = SchedStats::default();
    let mut now = Nanos::from_millis(100);
    for _ in 0..rounds {
        let sel = policy.select(&q, now).expect("units remain ready");
        total += sel.stats;
        q.pop(sel.units[0]);
        now += Nanos::from_millis(1);
    }
    total
}

/// Claim 2: growing `q` by 4× grows the exact scan's per-decision scan
/// counters by ~4×, while the clustered schedulers' counters are bounded by
/// the cluster count and barely move. Pure counter ordering — wall time
/// never enters.
#[test]
fn exact_counters_grow_linearly_clustered_stay_sublinear() {
    const SMALL: usize = 32;
    const LARGE: usize = 128;
    const M: usize = 8;
    const ROUNDS: usize = 16;
    let run = |mk: &dyn Fn() -> Box<dyn Policy>, n: usize| -> SchedStats {
        drain_stats(mk().as_mut(), &units(n), ROUNDS)
    };
    let exact: &dyn Fn() -> Box<dyn Policy> = &|| Box::new(BsdPolicy::new());
    let scan: &dyn Fn() -> Box<dyn Policy> = &|| {
        Box::new(ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: M,
            use_fagin: false,
            batch: false,
        }))
    };
    let fagin: &dyn Fn() -> Box<dyn Policy> = &|| {
        Box::new(ClusteredBsdPolicy::new(ClusterConfig {
            clustering: Clustering::Logarithmic,
            clusters: M,
            use_fagin: true,
            batch: false,
        }))
    };

    // The exact scan inspects every ready unit, each round.
    let exact_small = run(exact, SMALL);
    let exact_large = run(exact, LARGE);
    assert_eq!(
        exact_small.candidates_scanned,
        ((2 * SMALL - ROUNDS + 1) * ROUNDS / 2) as u64,
        "n, n-1, ... ready units across the drain"
    );
    let growth = exact_large.candidates_scanned as f64 / exact_small.candidates_scanned as f64;
    assert!(
        growth > 3.0,
        "exact scan counters must track q (grew only {growth:.2}x for 4x queries)"
    );

    // Clustered variants inspect clusters, never units: bounded by M per
    // decision and essentially flat in q.
    for (name, mk) in [("scan", scan), ("fagin", fagin)] {
        let small = run(mk, SMALL);
        let large = run(mk, LARGE);
        assert!(
            large.candidates_scanned <= (M * ROUNDS) as u64,
            "{name}: at most one candidate per cluster per decision"
        );
        let growth = large.candidates_scanned as f64 / small.candidates_scanned.max(1) as f64;
        assert!(
            growth < 2.0,
            "{name}: clustered counters must stay sub-linear in q (grew {growth:.2}x)"
        );
        assert!(
            large.candidates_scanned < exact_large.candidates_scanned / 2,
            "{name}: clustered work must undercut the exact scan"
        );
    }
}
