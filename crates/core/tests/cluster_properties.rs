//! Property tests for the §6 clustered BSD machinery: the selected cluster
//! always maximizes `pseudo_priority × head wait`, regardless of the
//! enqueue/execute interleaving, for both the scan and the Fagin paths.

use std::collections::VecDeque;

use hcq_common::{Nanos, TupleId};
use hcq_core::{
    ClusterConfig, ClusteredBsdPolicy, Clustering, Policy, QueueView, UnitId, UnitStatics,
};
use proptest::prelude::*;

#[derive(Default)]
struct Queues {
    queues: Vec<VecDeque<(TupleId, Nanos)>>,
    nonempty: Vec<UnitId>,
}

impl Queues {
    fn new(n: usize) -> Self {
        Queues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
        }
    }
    fn push(&mut self, unit: UnitId, t: TupleId, a: Nanos) {
        if self.queues[unit as usize].is_empty() {
            self.nonempty.push(unit);
        }
        self.queues[unit as usize].push_back((t, a));
    }
    fn pop(&mut self, unit: UnitId) {
        self.queues[unit as usize].pop_front().expect("nonempty");
        if self.queues[unit as usize].is_empty() {
            self.nonempty.retain(|&u| u != unit);
        }
    }
}

impl QueueView for Queues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|&(_, a)| a)
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

fn units(n: usize) -> Vec<UnitStatics> {
    (0..n)
        .map(|i| {
            let c = Nanos::from_millis(1 << (i % 5));
            UnitStatics::new(0.1 + 0.11 * (i % 8) as f64, c, c * (1 + (i % 3) as u64))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scan and Fagin paths make identical decisions for identical states,
    /// and the chosen cluster maximizes pseudo × head-wait.
    #[test]
    fn fagin_equals_scan_and_both_are_argmax(
        script in proptest::collection::vec(
            proptest::option::weighted(0.6, (0u32..10, 0u64..40)), 1..100
        ),
        m in 1usize..10,
        log in any::<bool>(),
    ) {
        let n = 10;
        let us = units(n);
        let clustering = if log { Clustering::Logarithmic } else { Clustering::Uniform };
        let mk = |fagin: bool| {
            let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: m,
                use_fagin: fagin,
                batch: false,
            });
            p.on_register(&us);
            p
        };
        let mut pf = mk(true);
        let mut ps = mk(false);
        let mut qf = Queues::new(n);
        let mut qs = Queues::new(n);
        let mut now = Nanos::ZERO;
        let mut tid = 0u64;
        for step in script {
            match step {
                Some((unit, gap)) => {
                    now += Nanos::from_millis(gap);
                    let t = TupleId::new(tid);
                    tid += 1;
                    qf.push(unit, t, now);
                    qs.push(unit, t, now);
                    pf.on_enqueue(unit, t, now, now);
                    ps.on_enqueue(unit, t, now, now);
                }
                None => {
                    now += Nanos::from_millis(1);
                    if qf.nonempty.is_empty() {
                        prop_assert!(pf.select(&qf, now).is_none());
                        prop_assert!(ps.select(&qs, now).is_none());
                        continue;
                    }
                    let sf = pf.select(&qf, now).expect("ready");
                    let ss = ps.select(&qs, now).expect("ready");
                    prop_assert_eq!(&sf.units, &ss.units, "fagin vs scan diverged");
                    let chosen = sf.units[0];
                    // Oracle: the chosen unit's cluster maximizes
                    // pseudo(cluster) × wait(oldest pending in cluster).
                    let cluster_of = |u: UnitId| pf.cluster_of(u);
                    let chosen_cluster = cluster_of(chosen);
                    let cluster_priority = |c: u32| -> f64 {
                        let oldest = qf
                            .nonempty
                            .iter()
                            .filter(|&&u| cluster_of(u) == c)
                            .filter_map(|&u| qf.head_arrival(u))
                            .min();
                        match oldest {
                            Some(a) => {
                                pf.pseudo_priority(c)
                                    * now.saturating_since(a).as_nanos() as f64
                            }
                            None => f64::NEG_INFINITY,
                        }
                    };
                    let chosen_p = cluster_priority(chosen_cluster);
                    for c in 0..m as u32 {
                        let p = cluster_priority(c);
                        prop_assert!(
                            chosen_p >= p - p.abs() * 1e-12,
                            "cluster {c} (p={p}) beats chosen {chosen_cluster} (p={chosen_p})"
                        );
                    }
                    // The executed unit is its cluster's oldest head.
                    let oldest = qf
                        .nonempty
                        .iter()
                        .filter(|&&u| cluster_of(u) == chosen_cluster)
                        .min_by_key(|&&u| qf.head_arrival(u).unwrap())
                        .copied()
                        .unwrap();
                    prop_assert_eq!(
                        qf.head_arrival(chosen),
                        qf.head_arrival(oldest),
                        "not the cluster's oldest pending tuple"
                    );
                    qf.pop(chosen);
                    qs.pop(chosen);
                }
            }
        }
    }
}
