//! Property tests: every policy's `select` matches its paper-defined argmax
//! on randomized queue states, across arbitrary enqueue/execute interleavings.

use std::collections::VecDeque;

use hcq_common::{Nanos, TupleId};
use hcq_core::{
    BsdPolicy, FcfsPolicy, LsfPolicy, Policy, QueueView, StaticPolicy, UnitId, UnitStatics,
};
use proptest::prelude::*;

#[derive(Default)]
struct Queues {
    queues: Vec<VecDeque<(TupleId, Nanos)>>,
    nonempty: Vec<UnitId>,
}

impl Queues {
    fn new(n: usize) -> Self {
        Queues {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            nonempty: Vec::new(),
        }
    }

    fn push(&mut self, unit: UnitId, tuple: TupleId, arrival: Nanos) {
        if self.queues[unit as usize].is_empty() {
            self.nonempty.push(unit);
        }
        self.queues[unit as usize].push_back((tuple, arrival));
    }

    fn pop(&mut self, unit: UnitId) {
        self.queues[unit as usize].pop_front().expect("nonempty");
        if self.queues[unit as usize].is_empty() {
            self.nonempty.retain(|&u| u != unit);
        }
    }
}

impl QueueView for Queues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|&(_, a)| a)
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// Random unit populations: cost ms in 1..=32, selectivity 0.05..1,
/// ideal time = 1–3× cost.
fn units_strategy(n: usize) -> impl Strategy<Value = Vec<UnitStatics>> {
    proptest::collection::vec((1u64..=32, 0.05f64..1.0, 1u64..=3), n..=n).prop_map(|raw| {
        raw.into_iter()
            .map(|(c, s, tf)| {
                UnitStatics::new(s, Nanos::from_millis(c), Nanos::from_millis(c * tf))
            })
            .collect()
    })
}

/// A script of operations: enqueue (unit, arrival-gap) or execute-next.
fn script_strategy(n_units: u32) -> impl Strategy<Value = Vec<Option<(u32, u64)>>> {
    proptest::collection::vec(
        proptest::option::weighted(0.6, (0..n_units, 0u64..50)),
        1..120,
    )
}

/// Drive a policy through a script, checking each decision against an
/// oracle: `priority(unit, now)` must be maximal among ready units.
fn check_against_oracle(
    mut policy: Box<dyn Policy>,
    units: &[UnitStatics],
    script: &[Option<(u32, u64)>],
    oracle: impl Fn(&UnitStatics, Nanos, Nanos) -> f64, // (statics, head_arrival, now)
) -> Result<(), TestCaseError> {
    let n = units.len();
    policy.on_register(units);
    let mut q = Queues::new(n);
    let mut now = Nanos::ZERO;
    let mut tuple = 0u64;
    for step in script {
        match step {
            Some((unit, gap)) => {
                now += Nanos::from_millis(*gap);
                let unit = unit % n as u32;
                q.push(unit, TupleId::new(tuple), now);
                policy.on_enqueue(unit, TupleId::new(tuple), now, now);
                tuple += 1;
            }
            None => {
                now += Nanos::from_millis(1);
                if q.nonempty.is_empty() {
                    prop_assert!(policy.select(&q, now).is_none());
                    continue;
                }
                let sel = policy.select(&q, now).expect("work pending");
                prop_assert_eq!(sel.units.len(), 1);
                let chosen = sel.units[0];
                prop_assert!(q.len(chosen) > 0, "selected empty unit {chosen}");
                let chosen_p = oracle(
                    &units[chosen as usize],
                    q.head_arrival(chosen).unwrap(),
                    now,
                );
                for &u in q.nonempty().iter() {
                    let p = oracle(&units[u as usize], q.head_arrival(u).unwrap(), now);
                    prop_assert!(
                        chosen_p >= p - p.abs() * 1e-12,
                        "unit {u} (p={p}) beats chosen {chosen} (p={chosen_p})"
                    );
                }
                q.pop(chosen);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hnr_selects_argmax(
        units in units_strategy(6),
        script in script_strategy(6),
    ) {
        check_against_oracle(
            Box::new(StaticPolicy::hnr()),
            &units,
            &script,
            |u, _, _| u.hnr_priority(),
        )?;
    }

    #[test]
    fn hr_selects_argmax(
        units in units_strategy(6),
        script in script_strategy(6),
    ) {
        check_against_oracle(
            Box::new(StaticPolicy::hr()),
            &units,
            &script,
            |u, _, _| u.hr_priority(),
        )?;
    }

    #[test]
    fn srpt_selects_argmax(
        units in units_strategy(6),
        script in script_strategy(6),
    ) {
        check_against_oracle(
            Box::new(StaticPolicy::srpt()),
            &units,
            &script,
            |u, _, _| u.srpt_priority(),
        )?;
    }

    #[test]
    fn lsf_selects_argmax_stretch(
        units in units_strategy(6),
        script in script_strategy(6),
    ) {
        check_against_oracle(
            Box::new(LsfPolicy::new()),
            &units,
            &script,
            |u, arrival, now| {
                now.saturating_since(arrival).as_nanos() as f64 * u.lsf_slope()
            },
        )?;
    }

    #[test]
    fn bsd_selects_argmax_phi_w(
        units in units_strategy(6),
        script in script_strategy(6),
    ) {
        check_against_oracle(
            Box::new(BsdPolicy::new()),
            &units,
            &script,
            |u, arrival, now| {
                now.saturating_since(arrival).as_nanos() as f64 * u.bsd_static()
            },
        )?;
    }

    #[test]
    fn fcfs_selects_oldest(
        units in units_strategy(6),
        script in script_strategy(6),
    ) {
        check_against_oracle(
            Box::new(FcfsPolicy::new()),
            &units,
            &script,
            // Oldest head arrival = maximal negated arrival.
            |_, arrival, _| -(arrival.as_nanos() as f64),
        )?;
    }
}
