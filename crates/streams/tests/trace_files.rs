//! Trace record/replay through actual files on disk.

use std::fs::File;
use std::io::{BufWriter, Write};

use hcq_common::Nanos;
use hcq_streams::{collect_arrivals, record_trace, OnOffSource, TraceReplay};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hcq_trace_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn synthetic_trace_roundtrips_through_a_file() {
    // Generate a bursty trace, archive it, replay it: must be identical.
    let mut source = OnOffSource::lbl_like(Nanos::from_millis(5), 42);
    let arrivals = collect_arrivals(&mut source, 5_000);

    let path = temp_path("onoff.trace");
    {
        let mut w = BufWriter::new(File::create(&path).unwrap());
        record_trace(&mut w, &arrivals).unwrap();
        w.flush().unwrap();
    }
    let mut replay = TraceReplay::parse(File::open(&path).unwrap()).unwrap();
    assert_eq!(replay.len(), arrivals.len());
    let replayed = collect_arrivals(&mut replay, arrivals.len());
    assert_eq!(replayed, arrivals, "bit-identical replay");
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_drives_a_simulation_identically_to_the_live_source() {
    use hcq_common::StreamId;
    use hcq_core::PolicyKind;
    use hcq_engine::{simulate, SimConfig};
    use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};

    let mk_plan = || {
        let mut plan = GlobalPlan::default();
        for i in 1..=4u64 {
            plan.add_query(
                QueryBuilder::on(StreamId::new(0))
                    .select(Nanos::from_millis(i), 0.5)
                    .project(Nanos::from_millis(1))
                    .build()
                    .unwrap(),
            );
        }
        plan
    };
    // Live bursty source...
    let live = simulate(
        &mk_plan(),
        &StreamRates::none(),
        vec![Box::new(OnOffSource::lbl_like(Nanos::from_millis(20), 9))],
        PolicyKind::Hnr.build(),
        SimConfig::new(400).with_seed(5),
    )
    .unwrap();
    // ...vs the same arrivals archived and replayed.
    let mut source = OnOffSource::lbl_like(Nanos::from_millis(20), 9);
    let arrivals = collect_arrivals(&mut source, 400);
    let mut buf = Vec::new();
    record_trace(&mut buf, &arrivals).unwrap();
    let replayed = simulate(
        &mk_plan(),
        &StreamRates::none(),
        vec![Box::new(TraceReplay::parse(buf.as_slice()).unwrap())],
        PolicyKind::Hnr.build(),
        SimConfig::new(400).with_seed(5),
    )
    .unwrap();
    assert_eq!(live.qos, replayed.qos);
    assert_eq!(live.end_time, replayed.end_time);
    assert_eq!(live.emitted, replayed.emitted);
}

#[test]
fn malformed_file_reports_line() {
    let path = temp_path("bad.trace");
    std::fs::write(&path, "0.5\n0.75\nnot-a-number stuff\n").unwrap();
    let err = TraceReplay::parse(File::open(&path).unwrap()).unwrap_err();
    assert!(err.to_string().contains("line 3"), "{err}");
    std::fs::remove_file(&path).ok();
}
