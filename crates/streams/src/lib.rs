//! Arrival-process substrate.
//!
//! The paper's testbed (§8) drives the simulator with the *LBL-PKT-4* trace
//! from the Internet Traffic Archive — one hour of wide-area packet arrivals
//! chosen for its "realistic data arrival pattern with On/Off traffic". That
//! trace is not redistributable with this repository, so this crate provides:
//!
//! * [`OnOffSource`] — a Markov-modulated Poisson process with heavy-tailed
//!   (bounded-Pareto) ON/OFF sojourns, the standard generative model for
//!   exactly that traffic class (self-similar WAN packet arrivals). This is
//!   the default stand-in for the paper's trace; see DESIGN.md §3 for the
//!   substitution rationale.
//! * [`PoissonSource`] and [`ConstantSource`] — memoryless and deterministic
//!   baselines (§9.1.7 uses Poisson arrivals for multi-stream experiments).
//! * [`TraceReplay`] / [`record_trace`] — drop-in replay of a real trace
//!   file (one fractional-seconds timestamp per line, the format of the
//!   ITA's `.TL` listings), so the actual LBL-PKT-4 file can be used
//!   when available.
//! * [`ArrivalStats`] — empirical inter-arrival statistics, used to measure
//!   the mean inter-arrival time `τ` that calibrates utilization (§8
//!   "Costs") and parameterizes the §5 window-join estimates.
//! * [`FaultySource`] — a seeded fault-injection adapter layering arrival
//!   bursts and source stalls over any other source, for overload and
//!   robustness experiments.
//! * [`DisconnectSource`] — a seeded disconnect/reconnect adapter: the feed
//!   drops, reconnection follows a capped jittered exponential backoff, and
//!   arrivals inside the downtime are lost. Fault windows and retry counts
//!   are reported via [`SourceFaultStats`].
//!
//! Every source implements [`ArrivalSource`], yielding a non-decreasing
//! sequence of absolute virtual timestamps, and is deterministic given its
//! seed.
//!
//! ```
//! use hcq_common::Nanos;
//! use hcq_streams::{collect_arrivals, ArrivalStats, OnOffSource, PoissonSource};
//!
//! // Same mean rate, very different burst structure:
//! let mut smooth = PoissonSource::new(Nanos::from_millis(10), 7);
//! let mut bursty = OnOffSource::lbl_like(Nanos::from_millis(10), 7);
//! let s = ArrivalStats::from_arrivals(&collect_arrivals(&mut smooth, 20_000));
//! let b = ArrivalStats::from_arrivals(&collect_arrivals(&mut bursty, 20_000));
//! let window = Nanos::from_secs(2);
//! assert!(b.index_of_dispersion(window) > 2.0 * s.index_of_dispersion(window));
//! ```

pub mod disconnect;
pub mod fault;
pub mod onoff;
pub mod poisson;
pub mod scale;
pub mod source;
pub mod stats;
pub mod trace;

pub use disconnect::{DisconnectSource, DisconnectSpec};
pub use fault::{FaultSpec, FaultySource};
pub use onoff::{OnOffConfig, OnOffSource};
pub use poisson::{ConstantSource, PoissonSource};
pub use scale::TimeScale;
pub use source::{collect_arrivals, ArrivalSource, SourceFaultStats};
pub use stats::ArrivalStats;
pub use trace::{record_trace, TraceReplay};
