//! Bursty ON/OFF arrivals — the LBL-PKT-4 stand-in.
//!
//! Wide-area packet traces (the paper's input) are famously self-similar:
//! activity comes in bursts whose lengths are heavy-tailed. The classical
//! generative model is a Markov-modulated Poisson process whose ON and OFF
//! sojourn times follow (bounded) Pareto distributions — superpositions of
//! such sources converge to the long-range-dependent behaviour measured at
//! Bellcore/LBL (Willinger et al.). During ON periods tuples arrive as a
//! Poisson process at the peak rate; during OFF periods nothing arrives.
//!
//! The *mean* arrival rate — the quantity utilization calibration needs — is
//! `peak_rate · E[on] / (E[on] + E[off])`.

use hcq_common::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::poisson::sample_exp;
use crate::source::ArrivalSource;

/// Parameters of an [`OnOffSource`].
#[derive(Debug, Clone)]
pub struct OnOffConfig {
    /// Mean inter-arrival gap while ON (peak-rate gap).
    pub on_gap: Nanos,
    /// Mean duration of ON periods.
    pub mean_on: Nanos,
    /// Mean duration of OFF periods.
    pub mean_off: Nanos,
    /// Pareto tail index for sojourn times; `1 < α ≤ 2` yields the
    /// heavy-tailed bursts that make WAN traffic self-similar. Values above
    /// 2 make the source progressively smoother.
    pub alpha: f64,
    /// Upper truncation of sojourn times as a multiple of the mean (keeps
    /// the sampler's realized mean finite and close to the configured one).
    pub max_sojourn_factor: f64,
}

impl OnOffConfig {
    /// A configuration resembling the LBL-PKT-4 hour at a given mean
    /// inter-arrival time: 1.2 s mean bursts at 5× the mean rate separated
    /// by 4.8 s mean silences, α = 1.5.
    pub fn lbl_like(mean_gap: Nanos) -> Self {
        // duty cycle 0.2 ⇒ peak rate = mean rate / 0.2 = 5× mean rate.
        OnOffConfig {
            on_gap: Nanos::from_nanos((mean_gap.as_nanos() / 5).max(1)),
            mean_on: Nanos::from_millis(1_200),
            mean_off: Nanos::from_millis(4_800),
            alpha: 1.5,
            max_sojourn_factor: 50.0,
        }
    }

    /// Fraction of time the source is ON.
    pub fn duty_cycle(&self) -> f64 {
        let on = self.mean_on.as_nanos() as f64;
        let off = self.mean_off.as_nanos() as f64;
        on / (on + off)
    }

    /// The long-run mean inter-arrival time implied by the configuration.
    pub fn mean_gap(&self) -> Nanos {
        let peak_rate = 1.0 / self.on_gap.as_nanos() as f64;
        let mean_rate = peak_rate * self.duty_cycle();
        Nanos::from_nanos((1.0 / mean_rate).round() as u64)
    }

    fn validate(&self) {
        assert!(!self.on_gap.is_zero(), "on_gap must be > 0");
        assert!(!self.mean_on.is_zero(), "mean_on must be > 0");
        assert!(!self.mean_off.is_zero(), "mean_off must be > 0");
        assert!(self.alpha > 1.0, "alpha must exceed 1 for a finite mean");
        assert!(self.max_sojourn_factor > 1.0);
    }
}

/// The ON/OFF Markov-modulated Poisson source.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    cfg: OnOffConfig,
    rng: StdRng,
    clock: Nanos,
    /// End of the current ON period (when ON), i.e. the next state flip.
    on_until: Nanos,
}

impl OnOffSource {
    /// Create a source, deterministic in `seed`. Starts at the beginning of
    /// an OFF period so early arrivals are not biased toward bursts.
    pub fn new(cfg: OnOffConfig, seed: u64) -> Self {
        cfg.validate();
        OnOffSource {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            clock: Nanos::ZERO,
            on_until: Nanos::ZERO,
        }
    }

    /// The LBL-like preset at a target mean inter-arrival time.
    pub fn lbl_like(mean_gap: Nanos, seed: u64) -> Self {
        Self::new(OnOffConfig::lbl_like(mean_gap), seed)
    }

    /// Sample a bounded-Pareto sojourn with the configured tail index and
    /// target mean.
    fn sample_sojourn(&mut self, mean: Nanos) -> Nanos {
        let alpha = self.cfg.alpha;
        let mean_ns = mean.as_nanos() as f64;
        // An (unbounded) Pareto with scale x_m and index α has mean
        // α·x_m/(α−1); choose x_m to hit the target mean, then truncate at
        // `max_sojourn_factor · mean` (slightly lowering the realized mean —
        // acceptable, the burst *shape* is what matters here).
        let x_m = mean_ns * (alpha - 1.0) / alpha;
        let u: f64 = self.rng.random::<f64>();
        let raw = x_m / (1.0 - u).powf(1.0 / alpha);
        let capped = raw.min(mean_ns * self.cfg.max_sojourn_factor);
        Nanos::from_nanos((capped.round() as u64).max(1))
    }
}

impl ArrivalSource for OnOffSource {
    fn next_arrival(&mut self) -> Option<Nanos> {
        loop {
            if self.clock < self.on_until {
                // In an ON period: next Poisson arrival at peak rate.
                let gap = sample_exp(&mut self.rng, self.cfg.on_gap.as_nanos() as f64);
                let t = self.clock.saturating_add(gap);
                if t <= self.on_until {
                    self.clock = t;
                    return Some(t);
                }
                // Burst ended before the sampled arrival: fall through to
                // the next OFF/ON cycle (the sampled gap's memorylessness
                // makes discarding it statistically sound).
                self.clock = self.on_until;
            }
            // OFF period, then a fresh ON period.
            let off = self.sample_sojourn(self.cfg.mean_off);
            let on = self.sample_sojourn(self.cfg.mean_on);
            self.clock = self.clock.saturating_add(off);
            self.on_until = self.clock.saturating_add(on);
        }
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        Some(self.cfg.mean_gap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_arrivals;
    use crate::stats::ArrivalStats;

    fn lbl(seed: u64) -> OnOffSource {
        OnOffSource::lbl_like(Nanos::from_millis(10), seed)
    }

    #[test]
    fn config_mean_gap_math() {
        let cfg = OnOffConfig::lbl_like(Nanos::from_millis(10));
        assert!((cfg.duty_cycle() - 0.2).abs() < 1e-12);
        let hinted = cfg.mean_gap().as_nanos() as f64;
        let target = Nanos::from_millis(10).as_nanos() as f64;
        assert!((hinted / target - 1.0).abs() < 0.01);
    }

    #[test]
    fn arrivals_monotone_and_deterministic() {
        let a = collect_arrivals(&mut lbl(1), 5_000);
        let b = collect_arrivals(&mut lbl(1), 5_000);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0] < w[1], "non-monotone arrivals");
        }
    }

    #[test]
    fn mean_rate_roughly_matches_target() {
        // Heavy tails converge slowly; accept a generous band. The
        // truncation at 50× mean biases the realized rate slightly high.
        let arrivals = collect_arrivals(&mut lbl(123), 200_000);
        let span = arrivals.last().unwrap().as_nanos() as f64;
        let measured_gap = span / arrivals.len() as f64;
        let target = Nanos::from_millis(10).as_nanos() as f64;
        assert!(
            measured_gap > target * 0.4 && measured_gap < target * 2.5,
            "measured mean gap {measured_gap} too far from target {target}"
        );
    }

    #[test]
    fn burstier_than_poisson() {
        // Index of dispersion of counts (windowed) must far exceed the
        // Poisson value of 1 — this is the property the paper's trace
        // provides and the whole reason for this source.
        let arrivals = collect_arrivals(&mut lbl(7), 100_000);
        let stats = ArrivalStats::from_arrivals(&arrivals);
        let idc = stats.index_of_dispersion(Nanos::from_secs(2));
        assert!(idc > 3.0, "index of dispersion {idc} not bursty");
    }

    #[test]
    fn on_periods_contain_multiple_arrivals() {
        // With on_gap = mean_on/600, bursts should pack many arrivals: check
        // the minimum observed gap is near the peak-rate gap, far below the
        // mean gap.
        let arrivals = collect_arrivals(&mut lbl(99), 20_000);
        let min_gap = arrivals
            .windows(2)
            .map(|w| (w[1] - w[0]).as_nanos())
            .min()
            .unwrap();
        assert!(min_gap < Nanos::from_millis(2).as_nanos());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_below_one_rejected() {
        let mut cfg = OnOffConfig::lbl_like(Nanos::from_millis(1));
        cfg.alpha = 0.9;
        let _ = OnOffSource::new(cfg, 0);
    }
}
