//! Empirical arrival statistics.
//!
//! §8 calibrates utilization from "the average inter-arrival time of the
//! data trace"; this module measures exactly that, plus dispersion measures
//! used to verify that the synthetic LBL substitute really is bursty.

use hcq_common::Nanos;

/// Summary statistics over a finite arrival sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalStats {
    arrivals: u64,
    span: Nanos,
    mean_gap_ns: f64,
    gap_cv: f64,
    timestamps: Vec<Nanos>,
}

impl ArrivalStats {
    /// Compute statistics from a non-decreasing arrival sequence.
    ///
    /// # Panics
    /// Panics if fewer than 2 arrivals are supplied (no gap exists).
    pub fn from_arrivals(arrivals: &[Nanos]) -> Self {
        assert!(arrivals.len() >= 2, "need at least two arrivals");
        let n = arrivals.len() as f64;
        let span = arrivals[arrivals.len() - 1].saturating_since(arrivals[0]);
        let mean_gap = span.as_nanos() as f64 / (n - 1.0);
        let var = arrivals
            .windows(2)
            .map(|w| {
                let g = (w[1] - w[0]).as_nanos() as f64;
                (g - mean_gap) * (g - mean_gap)
            })
            .sum::<f64>()
            / (n - 1.0);
        ArrivalStats {
            arrivals: arrivals.len() as u64,
            span,
            mean_gap_ns: mean_gap,
            gap_cv: var.sqrt() / mean_gap,
            timestamps: arrivals.to_vec(),
        }
    }

    /// Number of arrivals observed.
    pub fn count(&self) -> u64 {
        self.arrivals
    }

    /// Time between first and last arrival.
    pub fn span(&self) -> Nanos {
        self.span
    }

    /// Mean inter-arrival time `τ` — the calibration input of §8.
    pub fn mean_gap(&self) -> Nanos {
        Nanos::from_nanos(self.mean_gap_ns.round() as u64)
    }

    /// Coefficient of variation of inter-arrival gaps (1 for Poisson, 0 for
    /// constant-rate, ≫1 for bursty sources).
    pub fn gap_cv(&self) -> f64 {
        self.gap_cv
    }

    /// Index of dispersion of counts over windows of the given width:
    /// `Var(N_w)/E[N_w]`. Poisson arrivals give ≈1 at every scale; values
    /// well above 1 indicate burstiness / long-range dependence.
    pub fn index_of_dispersion(&self, window: Nanos) -> f64 {
        assert!(!window.is_zero());
        let start = self.timestamps[0];
        let end = *self.timestamps.last().unwrap();
        let n_windows = (end.saturating_since(start).as_nanos() / window.as_nanos()).max(1);
        let mut counts = vec![0u64; n_windows as usize];
        for &t in &self.timestamps {
            let w = t.saturating_since(start).as_nanos() / window.as_nanos();
            if (w as usize) < counts.len() {
                counts[w as usize] += 1;
            }
        }
        let n = counts.len() as f64;
        let mean = counts.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean) * (c as f64 - mean))
            .sum::<f64>()
            / n;
        var / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::{ConstantSource, PoissonSource};
    use crate::source::collect_arrivals;

    #[test]
    fn constant_stream_stats() {
        let mut s = ConstantSource::new(Nanos::from_millis(2));
        let a = collect_arrivals(&mut s, 100);
        let st = ArrivalStats::from_arrivals(&a);
        assert_eq!(st.count(), 100);
        assert_eq!(st.mean_gap(), Nanos::from_millis(2));
        assert!(st.gap_cv() < 1e-9);
        assert_eq!(st.span(), Nanos::from_millis(2 * 99));
    }

    #[test]
    fn poisson_dispersion_near_one() {
        let mut s = PoissonSource::new(Nanos::from_millis(1), 5);
        let a = collect_arrivals(&mut s, 50_000);
        let st = ArrivalStats::from_arrivals(&a);
        let idc = st.index_of_dispersion(Nanos::from_millis(100));
        assert!((0.7..1.4).contains(&idc), "poisson idc = {idc}");
        assert!((st.gap_cv() - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_arrivals_panics() {
        let _ = ArrivalStats::from_arrivals(&[Nanos::ZERO]);
    }

    #[test]
    fn dispersion_of_constant_is_low() {
        let mut s = ConstantSource::new(Nanos::from_millis(1));
        let a = collect_arrivals(&mut s, 10_000);
        let st = ArrivalStats::from_arrivals(&a);
        assert!(st.index_of_dispersion(Nanos::from_millis(50)) < 0.1);
    }
}
