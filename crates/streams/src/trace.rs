//! Trace record and replay.
//!
//! The Internet Traffic Archive distributes packet traces as text listings
//! whose first whitespace-separated column is a fractional-seconds
//! timestamp. [`TraceReplay`] reads that format (ignoring further columns,
//! blank lines, and `#` comments), so the paper's actual LBL-PKT-4 trace can
//! be dropped into any experiment; [`record_trace`] writes the same format,
//! letting synthetic workloads be archived and replayed bit-identically.

use std::io::{BufRead, BufReader, Read, Write};

use hcq_common::{HcqError, Nanos, Result};

use crate::source::ArrivalSource;

/// Replays arrivals parsed from a trace.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    arrivals: Vec<Nanos>,
    cursor: usize,
}

impl TraceReplay {
    /// Replay an explicit timestamp list (must be non-decreasing).
    pub fn from_arrivals(arrivals: Vec<Nanos>) -> Result<Self> {
        if arrivals.windows(2).any(|w| w[0] > w[1]) {
            return Err(HcqError::trace("timestamps must be non-decreasing"));
        }
        Ok(TraceReplay {
            arrivals,
            cursor: 0,
        })
    }

    /// Parse an ITA-style text trace: first column is a fractional-seconds
    /// timestamp; `#`-prefixed lines and blank lines are skipped.
    pub fn parse<R: Read>(reader: R) -> Result<Self> {
        let mut arrivals = Vec::new();
        for (lineno, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let first = trimmed
                .split_whitespace()
                .next()
                .expect("non-empty trimmed line has a token");
            let secs: f64 = first.parse().map_err(|_| {
                HcqError::trace(format!(
                    "line {}: expected fractional-seconds timestamp, got {first:?}",
                    lineno + 1
                ))
            })?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(HcqError::trace(format!(
                    "line {}: timestamp {secs} out of range",
                    lineno + 1
                )));
            }
            arrivals.push(Nanos::from_secs_f64(secs));
        }
        Self::from_arrivals(arrivals)
    }

    /// Number of arrivals remaining.
    pub fn remaining(&self) -> usize {
        self.arrivals.len() - self.cursor
    }

    /// Total arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Rewind to the start of the trace.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl ArrivalSource for TraceReplay {
    fn next_arrival(&mut self) -> Option<Nanos> {
        let t = self.arrivals.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(t)
    }
}

/// Write arrivals in the ITA-style text format consumed by
/// [`TraceReplay::parse`].
pub fn record_trace<W: Write>(writer: &mut W, arrivals: &[Nanos]) -> Result<()> {
    for &t in arrivals {
        writeln!(writer, "{:.9}", t.as_secs_f64())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_arrivals;

    #[test]
    fn parse_ita_listing() {
        let text = "# LBL-PKT style\n0.001 src dst 42\n\n0.003 src dst 99\n1.5\n";
        let mut replay = TraceReplay::parse(text.as_bytes()).unwrap();
        assert_eq!(replay.len(), 3);
        let got = collect_arrivals(&mut replay, 10);
        assert_eq!(
            got,
            vec![
                Nanos::from_micros(1_000),
                Nanos::from_micros(3_000),
                Nanos::from_millis(1_500)
            ]
        );
        assert_eq!(replay.remaining(), 0);
        replay.rewind();
        assert_eq!(replay.remaining(), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceReplay::parse("abc def".as_bytes()).is_err());
        assert!(TraceReplay::parse("-1.0".as_bytes()).is_err());
        assert!(TraceReplay::parse("inf".as_bytes()).is_err());
    }

    #[test]
    fn decreasing_timestamps_rejected() {
        assert!(TraceReplay::parse("2.0\n1.0".as_bytes()).is_err());
        assert!(TraceReplay::from_arrivals(vec![Nanos(5), Nanos(3)]).is_err());
    }

    #[test]
    fn roundtrip_record_parse() {
        let arrivals: Vec<Nanos> = (1..200u64).map(|i| Nanos::from_micros(i * 137)).collect();
        let mut buf = Vec::new();
        record_trace(&mut buf, &arrivals).unwrap();
        let mut replay = TraceReplay::parse(buf.as_slice()).unwrap();
        let got = collect_arrivals(&mut replay, arrivals.len());
        assert_eq!(got, arrivals);
    }

    #[test]
    fn empty_trace_is_fine() {
        let replay = TraceReplay::parse("# nothing\n".as_bytes()).unwrap();
        assert!(replay.is_empty());
        assert_eq!(replay.len(), 0);
    }
}
