//! Deterministic source disconnection with seeded backoff reconnection.
//!
//! [`DisconnectSource`] wraps any [`ArrivalSource`] and models the failure
//! mode [`crate::FaultySource`] does not: the feed *goes away* and has to be
//! re-established. With probability `disconnect_prob` per base arrival the
//! source drops its connection right after that arrival; reconnection is
//! then attempted on an exponential-backoff schedule (`retry_base` doubling
//! by `retry_factor`, each delay jittered by ±`retry_jitter`), each attempt
//! succeeding with probability `reconnect_prob`, up to `max_retries`
//! attempts. Base arrivals falling inside the downtime are lost, not
//! delayed — a disconnected feed does not buffer. If every retry fails the
//! source is permanently down and yields no further arrivals.
//!
//! Every decision is a pure function of `(disconnect ordinal, attempt,
//! spec.seed)`, so a disconnect scenario replays identically regardless of
//! scheduling policy, job count, or host. Downtime windows, attempt counts,
//! and lost arrivals are recorded in [`SourceFaultStats`] at decision time.

use hcq_common::{det, Nanos};

use crate::source::{ArrivalSource, SourceFaultStats};

/// A seeded disconnect/reconnect scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisconnectSpec {
    /// Per-base-arrival probability of the connection dropping immediately
    /// after that arrival.
    pub disconnect_prob: f64,
    /// Delay before the first reconnection attempt.
    pub retry_base: Nanos,
    /// Multiplier applied to the delay after each failed attempt (≥ 1).
    pub retry_factor: f64,
    /// Relative jitter on each retry delay, in `[0, 1)`: the delay is scaled
    /// by a seeded factor in `[1−j, 1+j]`.
    pub retry_jitter: f64,
    /// Maximum reconnection attempts per disconnect; exhausting them leaves
    /// the source permanently down.
    pub max_retries: u32,
    /// Per-attempt probability of a reconnection succeeding.
    pub reconnect_prob: f64,
    /// Seed for all disconnect and reconnection draws.
    pub seed: u64,
}

impl DisconnectSpec {
    /// No disconnects: the wrapper is a passthrough.
    pub fn none(seed: u64) -> Self {
        DisconnectSpec {
            disconnect_prob: 0.0,
            retry_base: Nanos::from_millis(100),
            retry_factor: 2.0,
            retry_jitter: 0.0,
            max_retries: 8,
            reconnect_prob: 1.0,
            seed,
        }
    }
}

impl Default for DisconnectSpec {
    fn default() -> Self {
        DisconnectSpec::none(0)
    }
}

/// Salt separating disconnect draws from other seeded decision streams.
const DISCONNECT_SALT: u64 = 0xD15C_0113;

/// An [`ArrivalSource`] adapter injecting seeded disconnections with
/// exponential-backoff reconnection. See the module docs for semantics.
#[derive(Debug)]
pub struct DisconnectSource<S> {
    inner: S,
    spec: DisconnectSpec,
    /// Base-arrival ordinal: the disconnect-draw key.
    ordinal: u64,
    /// Arrivals strictly before this instant are inside a downtime window
    /// and get dropped.
    reconnect_at: Nanos,
    /// All retries failed: the feed never comes back.
    permanently_down: bool,
    stats: SourceFaultStats,
}

impl<S: ArrivalSource> DisconnectSource<S> {
    /// Wrap `inner` with a disconnect scenario.
    pub fn new(inner: S, spec: DisconnectSpec) -> Self {
        debug_assert!((0.0..1.0).contains(&spec.disconnect_prob));
        debug_assert!((0.0..=1.0).contains(&spec.reconnect_prob));
        debug_assert!((0.0..1.0).contains(&spec.retry_jitter));
        debug_assert!(spec.retry_factor >= 1.0);
        DisconnectSource {
            inner,
            spec,
            ordinal: 0,
            reconnect_at: Nanos::ZERO,
            permanently_down: false,
            stats: SourceFaultStats::default(),
        }
    }

    /// Play out one disconnect starting at `t`: walk the backoff schedule
    /// until an attempt succeeds or retries run out. Returns the reconnect
    /// instant, or `None` for a permanent failure. All draws are keyed on
    /// the disconnect's ordinal so the schedule is consumption-independent.
    fn play_reconnect(&mut self, t: Nanos) -> Option<Nanos> {
        self.stats.disconnects += 1;
        let h = det::mix3(self.ordinal, DISCONNECT_SALT, self.spec.seed);
        let mut at = t;
        let mut delay = self.spec.retry_base;
        for attempt in 0..self.spec.max_retries {
            let k = det::mix2(h, u64::from(attempt));
            let jitter =
                1.0 + self.spec.retry_jitter * (2.0 * det::unit_f64(det::mix2(k, 1)) - 1.0);
            at += delay.scale(jitter).max(Nanos(1));
            self.stats.retry_attempts += 1;
            if det::coin(det::mix2(k, 2), self.spec.reconnect_prob) {
                self.stats.windows.push((t, at));
                return Some(at);
            }
            delay = delay.scale(self.spec.retry_factor);
        }
        self.stats.windows.push((t, at));
        None
    }
}

impl<S: ArrivalSource> ArrivalSource for DisconnectSource<S> {
    fn next_arrival(&mut self) -> Option<Nanos> {
        loop {
            if self.permanently_down {
                return None;
            }
            let t = self.inner.next_arrival()?;
            let h = det::mix3(self.ordinal, DISCONNECT_SALT, self.spec.seed);
            self.ordinal += 1;
            if t < self.reconnect_at {
                // Inside a downtime window: the arrival never happened.
                self.stats.lost_arrivals += 1;
                continue;
            }
            // This arrival is delivered; roll whether the connection drops
            // right after it (the keyed hash predates the ordinal bump).
            if det::coin(det::mix2(h, 3), self.spec.disconnect_prob) {
                match self.play_reconnect(t) {
                    Some(up) => self.reconnect_at = up,
                    None => self.permanently_down = true,
                }
            }
            return Some(t);
        }
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        self.inner.mean_gap_hint()
    }

    fn fault_stats(&self) -> SourceFaultStats {
        let mut stats = self.stats.clone();
        stats.absorb(self.inner.fault_stats());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::PoissonSource;
    use crate::source::collect_arrivals;

    fn base(seed: u64) -> PoissonSource {
        PoissonSource::new(Nanos::from_millis(10), seed)
    }

    fn spec() -> DisconnectSpec {
        DisconnectSpec {
            disconnect_prob: 0.01,
            retry_base: Nanos::from_millis(50),
            retry_factor: 2.0,
            retry_jitter: 0.25,
            max_retries: 6,
            reconnect_prob: 0.6,
            seed: 17,
        }
    }

    #[test]
    fn zero_spec_is_a_passthrough() {
        let plain = collect_arrivals(&mut base(7), 500);
        let mut wrapped = DisconnectSource::new(base(7), DisconnectSpec::none(3));
        assert_eq!(collect_arrivals(&mut wrapped, 500), plain);
        assert_eq!(wrapped.fault_stats(), SourceFaultStats::default());
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let mut a = DisconnectSource::new(base(7), spec());
        let mut b = DisconnectSource::new(base(7), spec());
        assert_eq!(
            collect_arrivals(&mut a, 2000),
            collect_arrivals(&mut b, 2000)
        );
        assert_eq!(a.fault_stats(), b.fault_stats());
    }

    #[test]
    fn downtime_swallows_arrivals_and_is_recorded() {
        let mut s = DisconnectSource::new(base(7), spec());
        let arrivals = collect_arrivals(&mut s, 2000);
        let stats = s.fault_stats();
        assert!(stats.disconnects > 0, "1% of ~2000 draws should disconnect");
        assert!(stats.retry_attempts >= stats.disconnects);
        assert!(stats.lost_arrivals > 0);
        // No delivered arrival sits strictly inside a recorded window
        // (window starts are delivered arrivals themselves).
        for &(start, end) in &stats.windows {
            assert!(end > start);
            for &a in &arrivals {
                assert!(
                    a <= start || a >= end,
                    "arrival {a} inside downtime ({start}, {end})"
                );
            }
        }
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn backoff_delays_grow() {
        // With reconnect_prob 0 every attempt fails; the recorded window
        // spans the full capped backoff schedule and the source dies.
        let s = DisconnectSpec {
            disconnect_prob: 0.9,
            retry_base: Nanos::from_millis(10),
            retry_factor: 2.0,
            retry_jitter: 0.0,
            max_retries: 4,
            reconnect_prob: 0.0,
            seed: 1,
        };
        let mut src = DisconnectSource::new(base(7), s);
        let arrivals = collect_arrivals(&mut src, 100);
        assert!(arrivals.len() < 100, "permanent failure must end the feed");
        let stats = src.fault_stats();
        assert_eq!(stats.disconnects, 1);
        assert_eq!(stats.retry_attempts, 4);
        // 10 + 20 + 40 + 80 ms of jitter-free backoff.
        let (start, end) = stats.windows[0];
        assert_eq!(end - start, Nanos::from_millis(150));
    }

    #[test]
    fn hint_passes_through() {
        let s = DisconnectSource::new(base(0), DisconnectSpec::none(1));
        assert_eq!(s.mean_gap_hint(), Some(Nanos::from_millis(10)));
    }
}
