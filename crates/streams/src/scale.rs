//! Time-scaling source wrapper.
//!
//! Replaying an archived trace at a different load is a standard evaluation
//! trick: compressing timestamps by 2× doubles the arrival rate while
//! preserving the burst *structure* exactly. (The paper instead scales
//! operator costs via `K`; [`TimeScale`] offers the dual knob — scale the
//! arrivals, keep the costs — which is the natural choice when the costs
//! are real and the trace is synthetic.)

use hcq_common::Nanos;

use crate::source::ArrivalSource;

/// Wraps a source, multiplying every inter-arrival gap by a factor.
///
/// `factor < 1` compresses time (higher rate), `factor > 1` dilates it.
/// Scaling is applied to *gaps*, not absolute timestamps, so rounding never
/// makes the sequence non-monotone; arrivals never coincide unless they did
/// in the source.
#[derive(Debug, Clone)]
pub struct TimeScale<S> {
    inner: S,
    factor: f64,
    last_in: Nanos,
    last_out: Nanos,
}

impl<S: ArrivalSource> TimeScale<S> {
    /// Scale `inner`'s inter-arrival gaps by `factor` (must be positive and
    /// finite).
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        TimeScale {
            inner,
            factor,
            last_in: Nanos::ZERO,
            last_out: Nanos::ZERO,
        }
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ArrivalSource> ArrivalSource for TimeScale<S> {
    fn next_arrival(&mut self) -> Option<Nanos> {
        let t = self.inner.next_arrival()?;
        let gap = t.saturating_since(self.last_in);
        self.last_in = t;
        let scaled = gap.scale(self.factor).max(Nanos(1));
        self.last_out = self.last_out.saturating_add(scaled);
        Some(self.last_out)
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        self.inner
            .mean_gap_hint()
            .map(|g| g.scale(self.factor).max(Nanos(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::ConstantSource;
    use crate::source::collect_arrivals;
    use crate::trace::TraceReplay;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn halving_gaps_doubles_rate() {
        let inner = ConstantSource::new(ms(10));
        let mut scaled = TimeScale::new(inner, 0.5);
        let a = collect_arrivals(&mut scaled, 4);
        assert_eq!(a, vec![ms(5), ms(10), ms(15), ms(20)]);
        assert_eq!(scaled.mean_gap_hint(), Some(ms(5)));
    }

    #[test]
    fn dilation_preserves_burst_structure() {
        // Gaps 1,1,50 (a burst then silence) scaled 2x -> 2,2,100.
        let trace = TraceReplay::from_arrivals(vec![ms(1), ms(2), ms(52)]).unwrap();
        let mut scaled = TimeScale::new(trace, 2.0);
        let a = collect_arrivals(&mut scaled, 3);
        assert_eq!(a, vec![ms(2), ms(4), ms(104)]);
    }

    #[test]
    fn extreme_compression_stays_monotone() {
        let trace = TraceReplay::from_arrivals(vec![Nanos(10), Nanos(11), Nanos(12)]).unwrap();
        let mut scaled = TimeScale::new(trace, 1e-9);
        let a = collect_arrivals(&mut scaled, 3);
        assert!(a[0] < a[1] && a[1] < a[2], "{a:?}");
    }

    #[test]
    fn exhaustion_passes_through() {
        let trace = TraceReplay::from_arrivals(vec![ms(1)]).unwrap();
        let mut scaled = TimeScale::new(trace, 1.0);
        assert_eq!(scaled.next_arrival(), Some(ms(1)));
        assert_eq!(scaled.next_arrival(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = TimeScale::new(ConstantSource::new(ms(1)), 0.0);
    }
}
