//! Deterministic source-side fault injection.
//!
//! [`FaultySource`] wraps any [`ArrivalSource`] and perturbs its arrival
//! sequence with two failure modes real feeds exhibit:
//!
//! * **Bursts** — with probability `burst_prob` per base arrival, a volley
//!   of `burst_len` extra arrivals lands spread over `burst_spread` after
//!   it (a sensor retransmitting, an upstream buffer flushing). Bursts push
//!   instantaneous load beyond whatever utilization the workload was
//!   calibrated to, which is exactly what the overload manager is for.
//! * **Stalls** — with probability `stall_prob` per base arrival, the
//!   source goes quiet and every *subsequent* base arrival is delayed by
//!   `stall_len` (a lagging upstream, a network partition healing). Stalls
//!   starve, then dump accumulated work when the base process resumes.
//!
//! Every decision is a pure function of `(arrival ordinal, spec.seed)`, so
//! a fault scenario is exactly reproducible and independent of scheduling,
//! job count, or host. The output remains non-decreasing by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hcq_common::{det, Nanos};

use crate::source::{ArrivalSource, SourceFaultStats};

/// A seeded fault scenario. The all-zero default (see [`FaultSpec::none`])
/// is a passthrough: the wrapped source's arrivals are emitted unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-base-arrival probability of triggering a burst.
    pub burst_prob: f64,
    /// Extra arrivals injected per burst.
    pub burst_len: u32,
    /// Span after the triggering arrival over which the extras spread.
    pub burst_spread: Nanos,
    /// Per-base-arrival probability of the source stalling.
    pub stall_prob: f64,
    /// Delay added to all subsequent base arrivals per stall.
    pub stall_len: Nanos,
    /// Seed for the fault draws (independent of the source's own seed).
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none(0)
    }
}

impl FaultSpec {
    /// No faults: the wrapper is a passthrough.
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            burst_prob: 0.0,
            burst_len: 0,
            burst_spread: Nanos::ZERO,
            stall_prob: 0.0,
            stall_len: Nanos::ZERO,
            seed,
        }
    }

    /// A bursts-only scenario.
    pub fn bursts(prob: f64, len: u32, spread: Nanos, seed: u64) -> Self {
        FaultSpec {
            burst_prob: prob,
            burst_len: len,
            burst_spread: spread,
            ..FaultSpec::none(seed)
        }
    }

    /// A stalls-only scenario.
    pub fn stalls(prob: f64, len: Nanos, seed: u64) -> Self {
        FaultSpec {
            stall_prob: prob,
            stall_len: len,
            ..FaultSpec::none(seed)
        }
    }
}

/// An [`ArrivalSource`] adapter injecting seeded bursts and stalls into the
/// wrapped source's arrival sequence. See the module docs for semantics.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    spec: FaultSpec,
    /// Base-arrival ordinal: the fault-draw key, so scenarios replay
    /// identically regardless of how the output is consumed.
    ordinal: u64,
    /// Accumulated stall delay applied to base arrivals.
    offset: Nanos,
    /// Pending burst extras, min-merged with the base sequence.
    extras: BinaryHeap<Reverse<Nanos>>,
    /// The next (already shifted) base arrival, held back while earlier
    /// extras drain.
    lookahead: Option<Nanos>,
    /// Last emitted instant, enforcing a non-decreasing output.
    last: Nanos,
    /// Stall windows recorded as the coins are rolled (see
    /// [`SourceFaultStats`] for the truncation contract).
    stats: SourceFaultStats,
}

impl<S: ArrivalSource> FaultySource<S> {
    /// Wrap `inner` with a fault scenario.
    pub fn new(inner: S, spec: FaultSpec) -> Self {
        FaultySource {
            inner,
            spec,
            ordinal: 0,
            offset: Nanos::ZERO,
            extras: BinaryHeap::new(),
            lookahead: None,
            last: Nanos::ZERO,
            stats: SourceFaultStats::default(),
        }
    }

    /// Pull one base arrival into the lookahead slot, rolling its fault
    /// coins (keyed by ordinal, so draws are consumption-order independent).
    fn refill_lookahead(&mut self) {
        if self.lookahead.is_some() {
            return;
        }
        let Some(raw) = self.inner.next_arrival() else {
            return;
        };
        let t = raw + self.offset;
        let h = det::mix3(self.ordinal, 0x5A1F_FA17, self.spec.seed);
        self.ordinal += 1;
        if self.spec.burst_len > 0 && det::coin(det::mix2(h, 1), self.spec.burst_prob) {
            let n = self.spec.burst_len;
            for i in 1..=n {
                let dt = self.spec.burst_spread.scale(f64::from(i) / f64::from(n));
                self.extras.push(Reverse(t + dt));
            }
        }
        if det::coin(det::mix2(h, 2), self.spec.stall_prob) {
            // The stall delays everything after the triggering arrival.
            // Recorded at decision time so a stall scheduled near the end of
            // a run still shows up (clipped) in the engine's accounting.
            self.stats.windows.push((t, t + self.spec.stall_len));
            self.offset += self.spec.stall_len;
        }
        self.lookahead = Some(t);
    }
}

impl<S: ArrivalSource> ArrivalSource for FaultySource<S> {
    fn next_arrival(&mut self) -> Option<Nanos> {
        self.refill_lookahead();
        let candidate = match (self.lookahead, self.extras.peek()) {
            (Some(base), Some(&Reverse(extra))) if extra <= base => {
                self.extras.pop();
                extra
            }
            (Some(base), _) => {
                self.lookahead = None;
                base
            }
            (None, Some(_)) => {
                let Reverse(extra) = self.extras.pop().expect("peeked entry");
                extra
            }
            (None, None) => return None,
        };
        let out = candidate.max(self.last);
        self.last = out;
        Some(out)
    }

    /// The base source's hint. Bursts add arrivals and stalls stretch time,
    /// so under faults this is the *nominal* (pre-fault) mean gap — which is
    /// what utilization calibration should keep using.
    fn mean_gap_hint(&self) -> Option<Nanos> {
        self.inner.mean_gap_hint()
    }

    fn fault_stats(&self) -> SourceFaultStats {
        let mut stats = self.stats.clone();
        stats.absorb(self.inner.fault_stats());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::PoissonSource;
    use crate::source::collect_arrivals;

    fn base(seed: u64) -> PoissonSource {
        PoissonSource::new(Nanos::from_millis(10), seed)
    }

    #[test]
    fn zero_spec_is_a_passthrough() {
        let plain = collect_arrivals(&mut base(7), 500);
        let mut wrapped = FaultySource::new(base(7), FaultSpec::none(3));
        assert_eq!(collect_arrivals(&mut wrapped, 500), plain);
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let spec = FaultSpec {
            burst_prob: 0.05,
            burst_len: 8,
            burst_spread: Nanos::from_millis(5),
            stall_prob: 0.02,
            stall_len: Nanos::from_millis(200),
            seed: 11,
        };
        let mut a = FaultySource::new(base(7), spec);
        let mut b = FaultySource::new(base(7), spec);
        assert_eq!(
            collect_arrivals(&mut a, 1000),
            collect_arrivals(&mut b, 1000)
        );
    }

    #[test]
    fn output_is_non_decreasing() {
        let spec = FaultSpec {
            burst_prob: 0.2,
            burst_len: 16,
            burst_spread: Nanos::from_millis(50),
            stall_prob: 0.1,
            stall_len: Nanos::from_millis(500),
            seed: 5,
        };
        let mut s = FaultySource::new(base(1), spec);
        let arrivals = collect_arrivals(&mut s, 2000);
        assert_eq!(arrivals.len(), 2000);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1], "{} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn bursts_densify_the_sequence() {
        let spec = FaultSpec::bursts(0.1, 10, Nanos::from_millis(5), 9);
        let plain = collect_arrivals(&mut base(7), 1000);
        let mut wrapped = FaultySource::new(base(7), spec);
        let faulted = collect_arrivals(&mut wrapped, 1000);
        // Same count collected, but bursts pack them into less time.
        assert!(
            faulted[999] < plain[999],
            "bursty sequence should finish earlier: {} vs {}",
            faulted[999],
            plain[999]
        );
    }

    #[test]
    fn stalls_stretch_the_sequence() {
        let spec = FaultSpec::stalls(0.05, Nanos::from_millis(300), 9);
        let plain = collect_arrivals(&mut base(7), 1000);
        let mut wrapped = FaultySource::new(base(7), spec);
        let faulted = collect_arrivals(&mut wrapped, 1000);
        assert!(
            faulted[999] > plain[999] + Nanos::from_millis(300),
            "stalls should push the tail out"
        );
    }

    #[test]
    fn stall_windows_are_recorded_at_decision_time() {
        let spec = FaultSpec::stalls(0.05, Nanos::from_millis(300), 9);
        let mut s = FaultySource::new(base(7), spec);
        let _ = collect_arrivals(&mut s, 1000);
        let stats = s.fault_stats();
        assert!(!stats.windows.is_empty(), "5% of 1000 draws should stall");
        for &(start, end) in &stats.windows {
            assert_eq!(end - start, Nanos::from_millis(300));
        }
        assert_eq!(
            stats.total_window_time(),
            Nanos::from_millis(300) * stats.windows.len() as u64
        );
    }

    #[test]
    fn hint_passes_through() {
        let s = FaultySource::new(base(0), FaultSpec::bursts(0.5, 4, Nanos::ZERO, 1));
        assert_eq!(s.mean_gap_hint(), Some(Nanos::from_millis(10)));
    }
}
