//! The arrival-source abstraction.

use hcq_common::Nanos;

/// Fault bookkeeping a source accumulates while it is consumed.
///
/// Fault-injecting adapters ([`crate::FaultySource`],
/// [`crate::DisconnectSource`]) record every quiet window they impose, in
/// absolute virtual time, *as the decision is made* — including windows that
/// extend past whatever horizon the consumer eventually stops at. The engine
/// clips windows against its final clock at report time, so scheduled fault
/// time always reconciles with in-run plus truncated fault time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceFaultStats {
    /// Disconnect events the source suffered.
    pub disconnects: u64,
    /// Reconnection attempts rolled (successful or not).
    pub retry_attempts: u64,
    /// Arrivals swallowed while the source was down.
    pub lost_arrivals: u64,
    /// Quiet windows `(start, end)` imposed by faults: stall delays and
    /// disconnect downtimes. Non-overlap is not guaranteed.
    pub windows: Vec<(Nanos, Nanos)>,
}

impl SourceFaultStats {
    /// Fold another source's stats into this one (for adapter stacks).
    pub fn absorb(&mut self, other: SourceFaultStats) {
        self.disconnects += other.disconnects;
        self.retry_attempts += other.retry_attempts;
        self.lost_arrivals += other.lost_arrivals;
        self.windows.extend(other.windows);
    }

    /// Total scheduled fault time: the sum of all window lengths.
    pub fn total_window_time(&self) -> Nanos {
        self.windows
            .iter()
            .fold(Nanos::ZERO, |acc, &(s, e)| acc + (e - s))
    }
}

/// A source of tuple arrivals on one stream.
///
/// Implementations yield **absolute** virtual timestamps in non-decreasing
/// order; `None` means the source is exhausted (finite traces) — generative
/// sources are infinite and never return `None`.
pub trait ArrivalSource {
    /// The next arrival instant.
    fn next_arrival(&mut self) -> Option<Nanos>;

    /// The analytic mean inter-arrival time, when the source knows it
    /// (generative sources do; replayed traces return `None` and callers
    /// measure instead via [`crate::ArrivalStats`]).
    fn mean_gap_hint(&self) -> Option<Nanos> {
        None
    }

    /// Fault bookkeeping accumulated so far; fault-free sources report the
    /// all-zero default. Reflects only decisions already made — call after
    /// the source has been drained.
    fn fault_stats(&self) -> SourceFaultStats {
        SourceFaultStats::default()
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for Box<S> {
    fn next_arrival(&mut self) -> Option<Nanos> {
        (**self).next_arrival()
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        (**self).mean_gap_hint()
    }

    fn fault_stats(&self) -> SourceFaultStats {
        (**self).fault_stats()
    }
}

/// Drain up to `n` arrivals into a vector (testing / calibration helper).
pub fn collect_arrivals<S: ArrivalSource + ?Sized>(source: &mut S, n: usize) -> Vec<Nanos> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match source.next_arrival() {
            Some(t) => out.push(t),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl ArrivalSource for Counter {
        fn next_arrival(&mut self) -> Option<Nanos> {
            if self.0 >= 3 {
                return None;
            }
            self.0 += 1;
            Some(Nanos::from_millis(self.0))
        }
    }

    #[test]
    fn collect_stops_at_exhaustion() {
        let mut c = Counter(0);
        let got = collect_arrivals(&mut c, 10);
        assert_eq!(
            got,
            vec![
                Nanos::from_millis(1),
                Nanos::from_millis(2),
                Nanos::from_millis(3)
            ]
        );
    }

    #[test]
    fn collect_respects_n() {
        let mut c = Counter(0);
        assert_eq!(collect_arrivals(&mut c, 2).len(), 2);
    }

    #[test]
    fn boxed_source_delegates() {
        let mut b: Box<dyn ArrivalSource> = Box::new(Counter(0));
        assert_eq!(b.next_arrival(), Some(Nanos::from_millis(1)));
        assert_eq!(b.mean_gap_hint(), None);
        assert_eq!(b.fault_stats(), SourceFaultStats::default());
    }

    #[test]
    fn fault_stats_absorb_and_total() {
        let mut a = SourceFaultStats {
            disconnects: 1,
            retry_attempts: 3,
            lost_arrivals: 2,
            windows: vec![(Nanos::from_millis(10), Nanos::from_millis(30))],
        };
        a.absorb(SourceFaultStats {
            disconnects: 0,
            retry_attempts: 1,
            lost_arrivals: 0,
            windows: vec![(Nanos::from_millis(50), Nanos::from_millis(55))],
        });
        assert_eq!(a.disconnects, 1);
        assert_eq!(a.retry_attempts, 4);
        assert_eq!(a.lost_arrivals, 2);
        assert_eq!(a.total_window_time(), Nanos::from_millis(25));
    }
}
