//! The arrival-source abstraction.

use hcq_common::Nanos;

/// A source of tuple arrivals on one stream.
///
/// Implementations yield **absolute** virtual timestamps in non-decreasing
/// order; `None` means the source is exhausted (finite traces) — generative
/// sources are infinite and never return `None`.
pub trait ArrivalSource {
    /// The next arrival instant.
    fn next_arrival(&mut self) -> Option<Nanos>;

    /// The analytic mean inter-arrival time, when the source knows it
    /// (generative sources do; replayed traces return `None` and callers
    /// measure instead via [`crate::ArrivalStats`]).
    fn mean_gap_hint(&self) -> Option<Nanos> {
        None
    }
}

impl<S: ArrivalSource + ?Sized> ArrivalSource for Box<S> {
    fn next_arrival(&mut self) -> Option<Nanos> {
        (**self).next_arrival()
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        (**self).mean_gap_hint()
    }
}

/// Drain up to `n` arrivals into a vector (testing / calibration helper).
pub fn collect_arrivals<S: ArrivalSource + ?Sized>(source: &mut S, n: usize) -> Vec<Nanos> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match source.next_arrival() {
            Some(t) => out.push(t),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl ArrivalSource for Counter {
        fn next_arrival(&mut self) -> Option<Nanos> {
            if self.0 >= 3 {
                return None;
            }
            self.0 += 1;
            Some(Nanos::from_millis(self.0))
        }
    }

    #[test]
    fn collect_stops_at_exhaustion() {
        let mut c = Counter(0);
        let got = collect_arrivals(&mut c, 10);
        assert_eq!(
            got,
            vec![
                Nanos::from_millis(1),
                Nanos::from_millis(2),
                Nanos::from_millis(3)
            ]
        );
    }

    #[test]
    fn collect_respects_n() {
        let mut c = Counter(0);
        assert_eq!(collect_arrivals(&mut c, 2).len(), 2);
    }

    #[test]
    fn boxed_source_delegates() {
        let mut b: Box<dyn ArrivalSource> = Box::new(Counter(0));
        assert_eq!(b.next_arrival(), Some(Nanos::from_millis(1)));
        assert_eq!(b.mean_gap_hint(), None);
    }
}
