//! Memoryless and deterministic arrival processes.

use hcq_common::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::ArrivalSource;

/// Poisson arrivals: i.i.d. exponential inter-arrival gaps.
///
/// §9.1.7 drives the multi-stream experiments with Poisson arrivals; it is
/// also the smooth baseline against which the bursty [`crate::OnOffSource`]
/// is contrasted.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    mean_gap_ns: f64,
    clock: Nanos,
    rng: StdRng,
}

impl PoissonSource {
    /// Arrivals with the given mean inter-arrival time, deterministic in
    /// `seed`.
    pub fn new(mean_gap: Nanos, seed: u64) -> Self {
        assert!(!mean_gap.is_zero(), "mean inter-arrival time must be > 0");
        PoissonSource {
            mean_gap_ns: mean_gap.as_nanos() as f64,
            clock: Nanos::ZERO,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ArrivalSource for PoissonSource {
    fn next_arrival(&mut self) -> Option<Nanos> {
        let gap = sample_exp(&mut self.rng, self.mean_gap_ns);
        self.clock = self.clock.saturating_add(gap);
        Some(self.clock)
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        Some(Nanos::from_nanos(self.mean_gap_ns as u64))
    }
}

/// Deterministic arrivals every `gap` nanoseconds (starting at `gap`).
#[derive(Debug, Clone)]
pub struct ConstantSource {
    gap: Nanos,
    clock: Nanos,
}

impl ConstantSource {
    /// One arrival every `gap`.
    pub fn new(gap: Nanos) -> Self {
        assert!(!gap.is_zero(), "inter-arrival gap must be > 0");
        ConstantSource {
            gap,
            clock: Nanos::ZERO,
        }
    }
}

impl ArrivalSource for ConstantSource {
    fn next_arrival(&mut self) -> Option<Nanos> {
        self.clock = self.clock.saturating_add(self.gap);
        Some(self.clock)
    }

    fn mean_gap_hint(&self) -> Option<Nanos> {
        Some(self.gap)
    }
}

/// Sample an exponential gap with the given mean, rounded to ≥ 1 ns so time
/// always advances.
pub(crate) fn sample_exp(rng: &mut StdRng, mean_ns: f64) -> Nanos {
    let u: f64 = rng.random::<f64>();
    // u ∈ [0,1); 1-u ∈ (0,1] so the log is finite.
    let gap = -(1.0 - u).ln() * mean_ns;
    Nanos::from_nanos((gap.round() as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_arrivals;

    #[test]
    fn constant_source_is_regular() {
        let mut s = ConstantSource::new(Nanos::from_millis(5));
        let a = collect_arrivals(&mut s, 4);
        assert_eq!(
            a,
            vec![
                Nanos::from_millis(5),
                Nanos::from_millis(10),
                Nanos::from_millis(15),
                Nanos::from_millis(20)
            ]
        );
        assert_eq!(s.mean_gap_hint(), Some(Nanos::from_millis(5)));
    }

    #[test]
    fn poisson_mean_gap_converges() {
        let mean = Nanos::from_millis(2);
        let mut s = PoissonSource::new(mean, 42);
        let arrivals = collect_arrivals(&mut s, 50_000);
        let total = arrivals.last().unwrap().as_nanos() as f64;
        let measured = total / arrivals.len() as f64;
        let expect = mean.as_nanos() as f64;
        assert!(
            (measured / expect - 1.0).abs() < 0.02,
            "measured mean gap {measured} vs {expect}"
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let a = collect_arrivals(&mut PoissonSource::new(Nanos::from_millis(1), 7), 100);
        let b = collect_arrivals(&mut PoissonSource::new(Nanos::from_millis(1), 7), 100);
        let c = collect_arrivals(&mut PoissonSource::new(Nanos::from_millis(1), 8), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut s = PoissonSource::new(Nanos::from_micros(1), 3);
        let a = collect_arrivals(&mut s, 10_000);
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn exponential_cv_is_one() {
        // Coefficient of variation of exponential gaps is 1.
        let mut s = PoissonSource::new(Nanos::from_millis(1), 11);
        let arrivals = collect_arrivals(&mut s, 20_000);
        let gaps: Vec<f64> = std::iter::once(arrivals[0])
            .chain(arrivals.windows(2).map(|w| w[1] - w[0]))
            .map(|g| g.as_nanos() as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv = {cv}");
    }

    #[test]
    #[should_panic(expected = "must be > 0")]
    fn zero_mean_rejected() {
        let _ = PoissonSource::new(Nanos::ZERO, 0);
    }
}
