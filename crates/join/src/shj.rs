//! The symmetric hash join proper.

use hcq_common::Nanos;

use crate::table::WindowHashTable;

/// Items flowing into a join: anything exposing a join key and the
/// timestamp used by the window predicate.
pub trait JoinItem {
    /// The join key (already hashed or raw; the table hashes it again).
    fn key(&self) -> u64;
    /// The timestamp compared against the window (arrival time in this
    /// workspace).
    fn timestamp(&self) -> Nanos;
}

/// Which input of the join a tuple arrives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left input.
    Left,
    /// The right input.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A non-blocking symmetric hash join with a time-based sliding window.
#[derive(Debug, Clone)]
pub struct SymmetricHashJoin<T> {
    left: WindowHashTable<T>,
    right: WindowHashTable<T>,
    window: Nanos,
}

impl<T: JoinItem + Clone> SymmetricHashJoin<T> {
    /// A join with window interval `V` (must be positive).
    pub fn new(window: Nanos) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        SymmetricHashJoin {
            left: WindowHashTable::new(),
            right: WindowHashTable::new(),
            window,
        }
    }

    /// Process one arriving tuple: insert it into `side`'s table, expire
    /// both tables against the new watermark, and return the matching
    /// partners from the other side (key equality + window predicate
    /// `|Δts| ≤ V`). The join predicate's selectivity is *not* applied here.
    ///
    /// Within one side, calls must be made in non-decreasing timestamp order
    /// (FIFO stream queues guarantee this); across sides any interleaving is
    /// fine — that is the point of a *symmetric* join.
    pub fn insert_probe(&mut self, side: Side, tuple: &T) -> Vec<T> {
        let mut matches = Vec::new();
        self.insert_probe_into(side, tuple, &mut matches);
        matches
    }

    /// [`Self::insert_probe`] writing matches into a caller-provided buffer
    /// instead of allocating a fresh `Vec`. The buffer is cleared first, so
    /// callers on a hot path can reuse one scratch vector across probes.
    pub fn insert_probe_into(&mut self, side: Side, tuple: &T, out: &mut Vec<T>) {
        out.clear();
        let ts = tuple.timestamp();
        let key = tuple.key();
        match side {
            Side::Left => self.left.insert(key, ts, tuple.clone()),
            Side::Right => self.right.insert(key, ts, tuple.clone()),
        }
        // Entries in the other table older than ts - V can never match this
        // tuple nor any later tuple from this side (same-side timestamps are
        // non-decreasing), so they are dead *for probes from this side*.
        // They could still match the other side's own probes only if that
        // side's clock lagged more than V behind — impossible once both
        // sides have passed the horizon; to stay conservative we expire
        // against the *minimum* of the two sides' watermarks.
        let watermark = self.left.newest().min(self.right.newest());
        let horizon = if watermark >= self.window {
            watermark - self.window
        } else {
            Nanos::ZERO
        };
        let lo = if ts >= self.window {
            ts - self.window
        } else {
            Nanos::ZERO
        };
        let hi = ts.saturating_add(self.window);
        let other = match side {
            Side::Left => &self.right,
            Side::Right => &self.left,
        };
        out.extend(other.range(key, lo, hi).map(|(_, v)| v.clone()));
        self.left.expire_before(horizon);
        self.right.expire_before(horizon);
    }

    /// Live entries in the left table.
    pub fn left_len(&self) -> usize {
        self.left.len()
    }

    /// Live entries in the right table.
    pub fn right_len(&self) -> usize {
        self.right.len()
    }

    /// The window interval `V`.
    pub fn window(&self) -> Nanos {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Item {
        id: u64,
        key: u64,
        ts: Nanos,
    }

    impl JoinItem for Item {
        fn key(&self) -> u64 {
            self.key
        }
        fn timestamp(&self) -> Nanos {
            self.ts
        }
    }

    fn item(id: u64, key: u64, ts_ms: u64) -> Item {
        Item {
            id,
            key,
            ts: Nanos::from_millis(ts_ms),
        }
    }

    #[test]
    fn basic_match_within_window() {
        let mut j = SymmetricHashJoin::new(Nanos::from_millis(100));
        assert!(j.insert_probe(Side::Left, &item(1, 7, 10)).is_empty());
        let m = j.insert_probe(Side::Right, &item(2, 7, 50));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].id, 1);
        // Non-matching key.
        assert!(j.insert_probe(Side::Right, &item(3, 8, 60)).is_empty());
        // Left arrival matches both right tuples with key 7? only id=2.
        let m = j.insert_probe(Side::Left, &item(4, 7, 70));
        assert_eq!(m.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn window_excludes_stale_partners() {
        let mut j = SymmetricHashJoin::new(Nanos::from_millis(100));
        j.insert_probe(Side::Left, &item(1, 7, 0));
        // 150ms later: outside the 100ms window.
        let m = j.insert_probe(Side::Right, &item(2, 7, 150));
        assert!(m.is_empty());
        // Boundary: exactly V apart matches (|Δ| ≤ V).
        j.insert_probe(Side::Left, &item(3, 9, 200));
        let m = j.insert_probe(Side::Right, &item(4, 9, 300));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn symmetric_sides_both_probe() {
        let mut j = SymmetricHashJoin::new(Nanos::from_millis(50));
        j.insert_probe(Side::Right, &item(1, 1, 10));
        let m = j.insert_probe(Side::Left, &item(2, 1, 20));
        assert_eq!(m[0].id, 1);
    }

    #[test]
    fn expiration_bounds_memory() {
        let mut j = SymmetricHashJoin::new(Nanos::from_millis(10));
        for i in 0..1_000u64 {
            j.insert_probe(Side::Left, &item(i * 2, i % 5, i * 5));
            j.insert_probe(Side::Right, &item(i * 2 + 1, i % 5, i * 5 + 1));
        }
        // With a 10ms window over 5ms-spaced arrivals, each table holds only
        // a handful of live tuples once both watermarks advance.
        assert!(j.left_len() <= 8, "left table grew to {}", j.left_len());
        assert!(j.right_len() <= 8, "right table grew to {}", j.right_len());
    }

    #[test]
    fn lagging_side_still_finds_matches() {
        // The right side is processed much later (scheduler starvation);
        // the left table must retain partners until the right watermark
        // catches up, because expiration uses min(watermarks).
        let mut j = SymmetricHashJoin::new(Nanos::from_millis(100));
        for i in 0..50u64 {
            j.insert_probe(Side::Left, &item(i, 1, i * 10));
        }
        // Right tuple with ts=0 arrives after left has advanced to 490ms.
        let m = j.insert_probe(Side::Right, &item(1000, 1, 0));
        // Partners within [0-100, 0+100] = left ts 0..=100 -> ids 0..=10.
        assert_eq!(m.len(), 11);
    }

    /// Reference O(n²) nested-loops implementation of the windowed join.
    fn naive_join(events: &[(Side, Item)], window: Nanos) -> Vec<(u64, u64)> {
        let mut pairs = Vec::new();
        for (i, (side_a, a)) in events.iter().enumerate() {
            for (side_b, b) in &events[..i] {
                if side_a != side_b && a.key == b.key && a.ts.max(b.ts) - a.ts.min(b.ts) <= window {
                    pairs.push((a.id.min(b.id), a.id.max(b.id)));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    proptest! {
        /// SHJ produces exactly the pairs the naive nested-loops join does,
        /// for any interleaving with per-side non-decreasing timestamps.
        #[test]
        fn matches_naive_reference(
            raw in proptest::collection::vec((any::<bool>(), 0u64..4, 0u64..40), 1..120)
        ) {
            let window = Nanos::from_millis(15);
            // Build per-side monotone timestamps by sorting each side's gaps.
            let mut left_ts = 0u64;
            let mut right_ts = 0u64;
            let mut events = Vec::new();
            for (i, &(is_left, key, gap)) in raw.iter().enumerate() {
                let side = if is_left { Side::Left } else { Side::Right };
                let ts = match side {
                    Side::Left => { left_ts += gap; left_ts }
                    Side::Right => { right_ts += gap; right_ts }
                };
                events.push((side, item(i as u64, key, ts)));
            }
            let mut j = SymmetricHashJoin::new(window);
            let mut got = Vec::new();
            for (side, it) in &events {
                for m in j.insert_probe(*side, it) {
                    got.push((m.id.min(it.id), m.id.max(it.id)));
                }
            }
            got.sort_unstable();
            prop_assert_eq!(got, naive_join(&events, window));
        }

        /// Memory never exceeds the number of tuples inside the live window
        /// of the slower side.
        #[test]
        fn table_sizes_bounded_by_window_population(
            gaps in proptest::collection::vec(1u64..20, 10..200)
        ) {
            let window = Nanos::from_millis(30);
            let mut j: SymmetricHashJoin<Item> = SymmetricHashJoin::new(window);
            let mut ts = 0u64;
            for (i, &gap) in gaps.iter().enumerate() {
                ts += gap;
                let side = if i % 2 == 0 { Side::Left } else { Side::Right };
                j.insert_probe(side, &item(i as u64, 0, ts));
                // Alternating sides keep both watermarks within one gap of
                // each other, so each table holds at most the tuples of the
                // last window+max_gap milliseconds: ≤ (30+20)/1 per side.
                prop_assert!(j.left_len() + j.right_len() <= 110);
            }
        }
    }
}
