//! One side of a symmetric hash join: a hash table with window expiration.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use hcq_common::Nanos;

/// A hash table over join keys whose entries expire once they fall out of
/// the sliding window.
///
/// Entries must be inserted in non-decreasing timestamp order (stream queues
/// are FIFO, so a stream's tuples reach its join in arrival order — the
/// engine upholds this). That invariant makes both the global expiration log
/// and every per-key bucket timestamp-ordered, so eviction is O(evicted).
#[derive(Debug, Clone)]
pub struct WindowHashTable<T> {
    buckets: HashMap<u64, VecDeque<(Nanos, T)>>,
    /// Global insertion log `(timestamp, key)` for lazy eviction.
    log: VecDeque<(Nanos, u64)>,
    newest: Nanos,
    /// Emptied bucket buffers kept for reuse. Workloads that cycle through
    /// keys (or share one bucket, as the engine's tuples do) would otherwise
    /// free and reallocate a `VecDeque` every time a bucket drains.
    spare: Vec<VecDeque<(Nanos, T)>>,
}

/// How many drained bucket buffers to keep for reuse.
const SPARE_CAP: usize = 32;

impl<T> Default for WindowHashTable<T> {
    fn default() -> Self {
        WindowHashTable {
            buckets: HashMap::new(),
            log: VecDeque::new(),
            newest: Nanos::ZERO,
            spare: Vec::new(),
        }
    }
}

impl<T> WindowHashTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an entry. Timestamps must be non-decreasing across calls.
    pub fn insert(&mut self, key: u64, timestamp: Nanos, value: T) {
        debug_assert!(
            timestamp >= self.newest,
            "out-of-order insert: {timestamp} after {}",
            self.newest
        );
        self.newest = timestamp;
        self.buckets
            .entry(key)
            .or_insert_with(|| self.spare.pop().unwrap_or_default())
            .push_back((timestamp, value));
        self.log.push_back((timestamp, key));
    }

    /// Evict every entry with `timestamp < horizon`.
    pub fn expire_before(&mut self, horizon: Nanos) {
        while let Some(&(ts, key)) = self.log.front() {
            if ts >= horizon {
                break;
            }
            self.log.pop_front();
            if let Entry::Occupied(mut bucket) = self.buckets.entry(key) {
                let q = bucket.get_mut();
                let popped = q.pop_front();
                debug_assert!(matches!(popped, Some((t, _)) if t == ts));
                if q.is_empty() {
                    let q = bucket.remove();
                    if self.spare.len() < SPARE_CAP {
                        self.spare.push(q);
                    }
                }
            } else {
                debug_assert!(false, "expiration log out of sync with buckets");
            }
        }
    }

    /// Iterate over entries with the given key whose timestamps lie in
    /// `[lo, hi]`.
    pub fn range(&self, key: u64, lo: Nanos, hi: Nanos) -> impl Iterator<Item = (Nanos, &T)> {
        self.buckets
            .get(&key)
            .into_iter()
            .flatten()
            .skip_while(move |&&(ts, _)| ts < lo)
            .take_while(move |&&(ts, _)| ts <= hi)
            .map(|&(ts, ref v)| (ts, v))
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Timestamp of the newest entry ever inserted.
    pub fn newest(&self) -> Nanos {
        self.newest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn insert_and_range() {
        let mut t = WindowHashTable::new();
        t.insert(1, ms(10), "a");
        t.insert(2, ms(20), "b");
        t.insert(1, ms(30), "c");
        assert_eq!(t.len(), 3);
        let hits: Vec<_> = t.range(1, ms(0), ms(100)).map(|(_, v)| *v).collect();
        assert_eq!(hits, vec!["a", "c"]);
        let hits: Vec<_> = t.range(1, ms(15), ms(100)).map(|(_, v)| *v).collect();
        assert_eq!(hits, vec!["c"]);
        let hits: Vec<_> = t.range(1, ms(0), ms(15)).map(|(_, v)| *v).collect();
        assert_eq!(hits, vec!["a"]);
        assert!(t.range(9, ms(0), ms(100)).next().is_none());
    }

    #[test]
    fn expiration_evicts_in_order() {
        let mut t = WindowHashTable::new();
        for i in 1..=10u64 {
            t.insert(i % 3, ms(i * 10), i);
        }
        t.expire_before(ms(55));
        assert_eq!(t.len(), 5); // entries at 60..=100 remain
        assert!(t
            .range(1, Nanos::ZERO, ms(1000))
            .all(|(ts, _)| ts >= ms(55)));
        t.expire_before(ms(10_000));
        assert!(t.is_empty());
        // idempotent
        t.expire_before(ms(10_000));
        assert!(t.is_empty());
    }

    #[test]
    fn expire_keeps_boundary_entry() {
        let mut t = WindowHashTable::new();
        t.insert(1, ms(100), ());
        t.expire_before(ms(100));
        assert_eq!(t.len(), 1, "entry at the horizon survives (strict <)");
        t.expire_before(ms(101));
        assert!(t.is_empty());
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut t = WindowHashTable::new();
        t.insert(1, ms(5), "x");
        t.insert(1, ms(5), "y");
        let hits: Vec<_> = t.range(1, ms(5), ms(5)).map(|(_, v)| *v).collect();
        assert_eq!(hits, vec!["x", "y"]);
        assert_eq!(t.newest(), ms(5));
    }
}
