//! Symmetric hash join (SHJ) over time-based sliding windows.
//!
//! §5 of the paper evaluates multi-stream continuous queries whose join
//! operator is the non-blocking, in-memory *symmetric hash join* \[Wilschut &
//! Apers, PDIS'91\] with the time-window semantics of \[Kang, Naughton &
//! Viglas, ICDE'03\]: when a tuple `t` arrives on one input, it is
//!
//! 1. inserted into its own side's hash table, and
//! 2. used to probe the other side's table; every tuple there whose join key
//!    matches and whose timestamp lies within `V` of `t.ts` forms a
//!    candidate pair.
//!
//! [`SymmetricHashJoin`] implements exactly that, with **lazy window
//! expiration**: each side keeps an insertion-ordered log, and entries older
//! than the opposite side's processing watermark minus `V` are evicted
//! before a probe. The join never decides *whether* a candidate pair passes
//! the join predicate — that is the engine's job (deterministic selectivity
//! coins) — it only maintains windows and finds key/time matches.

pub mod shj;
pub mod table;

pub use shj::{JoinItem, Side, SymmetricHashJoin};
pub use table::WindowHashTable;
