//! Strongly-typed identifiers.
//!
//! Every entity in the simulator is addressed by a dense `usize` index into a
//! `Vec` owned by whichever component created it. Newtypes keep the index
//! spaces apart at compile time; a macro keeps the boilerplate in one place.

use std::fmt;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a dense index.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }

            /// The dense index, for `Vec` addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// A registered continuous query.
    QueryId,
    "Q"
);

dense_id!(
    /// An operator inside the global (possibly shared) query plan.
    OpId,
    "O"
);

dense_id!(
    /// An input data stream.
    StreamId,
    "M"
);

dense_id!(
    /// A priority cluster used by the clustered BSD implementation (§6.2).
    ClusterId,
    "C"
);

/// A tuple identity, unique per simulation run.
///
/// Tuple ids are 64-bit because long runs can mint billions of tuples
/// (every arrival fans out to every query fed by its stream, and window joins
/// mint fresh ids for composite tuples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TupleId(pub u64);

impl TupleId {
    /// Construct from a raw counter value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        TupleId(raw)
    }

    /// The raw counter value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        let q = QueryId::new(7);
        assert_eq!(q.index(), 7);
        assert_eq!(QueryId::from(7usize), q);
        assert_eq!(q.to_string(), "Q7");
        assert_eq!(OpId::new(3).to_string(), "O3");
        assert_eq!(StreamId::new(1).to_string(), "M1");
        assert_eq!(ClusterId::new(0).to_string(), "C0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(QueryId::new(1) < QueryId::new(2));
        assert!(TupleId::new(1) < TupleId::new(2));
    }

    #[test]
    fn tuple_id_display() {
        assert_eq!(TupleId::new(42).to_string(), "t42");
        assert_eq!(TupleId::new(42).raw(), 42);
    }
}
