//! Shared substrate for the `aqsios-cq` workspace.
//!
//! This crate holds the primitive vocabulary every other crate speaks:
//!
//! * [`Nanos`] — integer virtual time (nanoseconds). The whole simulator runs
//!   on a deterministic discrete-event clock; floating point only appears when
//!   QoS ratios (slowdowns) are finally computed.
//! * Strongly-typed ids ([`QueryId`], [`OpId`], [`StreamId`], [`TupleId`]) so
//!   that an operator index can never be confused with a query index.
//! * [`det`] — deterministic hashing utilities used to realize operator
//!   selectivities as a pure function of `(tuple, operator)`, which guarantees
//!   every scheduling policy observes the *same* workload realization.
//! * [`HcqError`] — the workspace error type.

pub mod det;
pub mod error;
pub mod ids;
pub mod time;

pub use error::{EngineError, HcqError, Result};
pub use ids::{ClusterId, OpId, QueryId, StreamId, TupleId};
pub use time::Nanos;
