//! Workspace error type.
//!
//! The simulator surface is configuration-heavy (plans, workloads, policy
//! parameters), so most fallible paths are validation. One small enum keeps
//! error handling uniform across crates without pulling in derive macros.

use std::fmt;
use std::io;

/// Convenient result alias used across the workspace.
pub type Result<T, E = HcqError> = std::result::Result<T, E>;

/// Errors surfaced by the `aqsios-cq` crates.
#[derive(Debug)]
pub enum HcqError {
    /// A query plan failed structural validation (cycles, bad fan-in,
    /// out-of-range selectivity, zero-cost operator, ...).
    InvalidPlan(String),
    /// A simulation / workload / policy configuration is unusable.
    InvalidConfig(String),
    /// A stream trace file could not be parsed.
    TraceFormat(String),
    /// Underlying I/O failure (trace replay, CSV export).
    Io(io::Error),
}

impl HcqError {
    /// Shorthand constructor for plan-validation failures.
    pub fn plan(msg: impl Into<String>) -> Self {
        HcqError::InvalidPlan(msg.into())
    }

    /// Shorthand constructor for configuration failures.
    pub fn config(msg: impl Into<String>) -> Self {
        HcqError::InvalidConfig(msg.into())
    }

    /// Shorthand constructor for trace-format failures.
    pub fn trace(msg: impl Into<String>) -> Self {
        HcqError::TraceFormat(msg.into())
    }
}

impl fmt::Display for HcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HcqError::InvalidPlan(m) => write!(f, "invalid query plan: {m}"),
            HcqError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            HcqError::TraceFormat(m) => write!(f, "malformed trace: {m}"),
            HcqError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HcqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HcqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HcqError {
    fn from(e: io::Error) -> Self {
        HcqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            HcqError::plan("cycle").to_string(),
            "invalid query plan: cycle"
        );
        assert_eq!(
            HcqError::config("bad m").to_string(),
            "invalid configuration: bad m"
        );
        assert_eq!(
            HcqError::trace("line 3").to_string(),
            "malformed trace: line 3"
        );
        let io_err = HcqError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io_err.to_string().contains("gone"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = HcqError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(HcqError::plan("p").source().is_none());
    }
}
