//! Workspace error type.
//!
//! The simulator surface is configuration-heavy (plans, workloads, policy
//! parameters), so most fallible paths are validation. One small enum keeps
//! error handling uniform across crates without pulling in derive macros.

use std::fmt;
use std::io;

/// Convenient result alias used across the workspace.
pub type Result<T, E = HcqError> = std::result::Result<T, E>;

/// A policy ⇄ engine contract violation, detected at run time.
///
/// These used to be panics inside the simulator; they are typed so an
/// embedding system (or a fault-injection harness driving a misbehaving
/// policy) gets a diagnosable value instead of an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A dequeue was requested from a unit whose queue is empty — the policy
    /// selected a unit with no pending work.
    EmptyQueuePop {
        /// The offending unit id.
        unit: u32,
    },
    /// A unit id outside the engine's dense unit space was used.
    UnknownUnit {
        /// The offending unit id.
        unit: u32,
        /// Number of registered units (valid ids are `0..unit_count`).
        unit_count: usize,
    },
    /// The policy returned no selection while work was pending, which would
    /// stall the event loop forever.
    NoSelection {
        /// Tuples pending across all queues at the stalled point.
        pending: usize,
    },
    /// The queues' O(1) non-empty index disagrees with the queue contents —
    /// internal state corruption (e.g. an index clobbered while crossing a
    /// thread boundary) rather than a caller mistake.
    QueueIndexCorrupt {
        /// The unit whose index slot was inconsistent.
        unit: u32,
    },
    /// A query's plan contains a join operator but the engine holds no join
    /// state for it.
    MissingJoinState {
        /// The query missing its symmetric-hash join table.
        query: usize,
    },
    /// A join operator was entered through the unary (single-input) port.
    UnaryPortAtJoin {
        /// The query owning the operator.
        query: usize,
        /// The operator index within the query's compiled pipeline.
        op: usize,
    },
    /// A join operator appeared where the execution mode requires a unary
    /// operator (shared-group entry, operator-level scheduling).
    UnexpectedJoin {
        /// The query owning the operator.
        query: usize,
        /// The operator index within the query's compiled pipeline.
        op: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyQueuePop { unit } => {
                write!(f, "pop from empty queue of unit {unit}")
            }
            EngineError::UnknownUnit { unit, unit_count } => {
                write!(f, "unit {unit} out of range (unit count {unit_count})")
            }
            EngineError::NoSelection { pending } => {
                write!(f, "policy made no selection with {pending} tuples pending")
            }
            EngineError::QueueIndexCorrupt { unit } => {
                write!(f, "non-empty index corrupt for unit {unit}")
            }
            EngineError::MissingJoinState { query } => {
                write!(f, "query {query} has a join operator but no join state")
            }
            EngineError::UnaryPortAtJoin { query, op } => {
                write!(
                    f,
                    "join operator {op} of query {query} entered on a unary port"
                )
            }
            EngineError::UnexpectedJoin { query, op } => {
                write!(
                    f,
                    "operator {op} of query {query} is a join where a unary operator is required"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Errors surfaced by the `aqsios-cq` crates.
#[derive(Debug)]
pub enum HcqError {
    /// A query plan failed structural validation (cycles, bad fan-in,
    /// out-of-range selectivity, zero-cost operator, ...).
    InvalidPlan(String),
    /// A simulation / workload / policy configuration is unusable.
    InvalidConfig(String),
    /// A stream trace file could not be parsed.
    TraceFormat(String),
    /// Underlying I/O failure (trace replay, CSV export).
    Io(io::Error),
    /// A scheduling-contract violation surfaced by the engine at run time.
    Engine(EngineError),
}

impl HcqError {
    /// Shorthand constructor for plan-validation failures.
    pub fn plan(msg: impl Into<String>) -> Self {
        HcqError::InvalidPlan(msg.into())
    }

    /// Shorthand constructor for configuration failures.
    pub fn config(msg: impl Into<String>) -> Self {
        HcqError::InvalidConfig(msg.into())
    }

    /// Shorthand constructor for trace-format failures.
    pub fn trace(msg: impl Into<String>) -> Self {
        HcqError::TraceFormat(msg.into())
    }
}

impl fmt::Display for HcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HcqError::InvalidPlan(m) => write!(f, "invalid query plan: {m}"),
            HcqError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            HcqError::TraceFormat(m) => write!(f, "malformed trace: {m}"),
            HcqError::Io(e) => write!(f, "i/o error: {e}"),
            HcqError::Engine(e) => write!(f, "engine contract violation: {e}"),
        }
    }
}

impl std::error::Error for HcqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HcqError::Io(e) => Some(e),
            HcqError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HcqError {
    fn from(e: io::Error) -> Self {
        HcqError::Io(e)
    }
}

impl From<EngineError> for HcqError {
    fn from(e: EngineError) -> Self {
        HcqError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            HcqError::plan("cycle").to_string(),
            "invalid query plan: cycle"
        );
        assert_eq!(
            HcqError::config("bad m").to_string(),
            "invalid configuration: bad m"
        );
        assert_eq!(
            HcqError::trace("line 3").to_string(),
            "malformed trace: line 3"
        );
        let io_err = HcqError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io_err.to_string().contains("gone"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = HcqError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(HcqError::plan("p").source().is_none());
    }

    #[test]
    fn engine_errors_format_and_convert() {
        use std::error::Error;
        let pop = EngineError::EmptyQueuePop { unit: 3 };
        assert_eq!(pop.to_string(), "pop from empty queue of unit 3");
        let wrapped = HcqError::from(pop);
        assert!(wrapped
            .to_string()
            .contains("engine contract violation: pop from empty queue of unit 3"));
        assert!(wrapped.source().is_some());
        assert_eq!(
            EngineError::UnknownUnit {
                unit: 9,
                unit_count: 4
            }
            .to_string(),
            "unit 9 out of range (unit count 4)"
        );
        assert_eq!(
            EngineError::NoSelection { pending: 17 }.to_string(),
            "policy made no selection with 17 tuples pending"
        );
    }

    #[test]
    fn runtime_hardening_variants_format() {
        assert_eq!(
            EngineError::QueueIndexCorrupt { unit: 5 }.to_string(),
            "non-empty index corrupt for unit 5"
        );
        assert_eq!(
            EngineError::MissingJoinState { query: 2 }.to_string(),
            "query 2 has a join operator but no join state"
        );
        assert_eq!(
            EngineError::UnaryPortAtJoin { query: 1, op: 3 }.to_string(),
            "join operator 3 of query 1 entered on a unary port"
        );
        assert_eq!(
            EngineError::UnexpectedJoin { query: 0, op: 1 }.to_string(),
            "operator 1 of query 0 is a join where a unary operator is required"
        );
    }
}
