//! Integer virtual time.
//!
//! The simulator never consults a wall clock. All event ordering is decided on
//! [`Nanos`], a `u64` count of virtual nanoseconds since simulation start.
//! Using an integer clock (instead of `f64` seconds) makes event ordering
//! total and platform-independent, which in turn makes every experiment in the
//! reproduction bit-for-bit deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Nanos` is deliberately a single type for both instants and durations —
/// the simulator's arithmetic is simple enough that a `Instant`/`Duration`
/// split would add ceremony without catching real bugs, and every public API
/// documents which reading it expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        Nanos(n)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs saturate to zero; callers validate their
    /// configuration before reaching this point.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds (lossy; for metrics and reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Value in fractional milliseconds (lossy; for metrics and reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Duration from `earlier` to `self`, saturating at zero if `earlier` is
    /// actually later (which would indicate a simulation bug; saturating keeps
    /// metrics finite while debug assertions catch the bug in tests).
    #[inline]
    pub fn saturating_since(self, earlier: Nanos) -> Nanos {
        debug_assert!(self >= earlier, "time ran backwards: {self} < {earlier}");
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Scale a duration by an expected multiplicity (e.g. expected number of
    /// output tuples), rounding to the nearest nanosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        Nanos((self.0 as f64 * factor).round() as u64)
    }

    /// `self / other` as a ratio of durations. Returns `f64::INFINITY` when
    /// dividing by the empty duration.
    #[inline]
    pub fn ratio(self, other: Nanos) -> f64 {
        if other.0 == 0 {
            return f64::INFINITY;
        }
        self.0 as f64 / other.0 as f64
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// True for the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick the largest unit that keeps the value >= 1 for readability.
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if n >= 1_000 {
            write!(f, "{:.3}us", n as f64 / 1_000.0)
        } else {
            write!(f, "{n}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_secs(1), Nanos(1_000_000_000));
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos(1_500_000_000));
        assert_eq!(Nanos::from_millis_f64(0.5), Nanos(500_000));
    }

    #[test]
    fn from_secs_f64_saturates_bad_input() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NEG_INFINITY), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Nanos::from_millis(5);
        let b = Nanos::from_millis(2);
        assert_eq!(a + b, Nanos::from_millis(7));
        assert_eq!(a - b, Nanos::from_millis(3));
        assert_eq!(a * 3, Nanos::from_millis(15));
        assert_eq!(a / 5, Nanos::from_millis(1));
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos::from_millis(7));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ratio_and_scale() {
        let a = Nanos::from_millis(10);
        let b = Nanos::from_millis(4);
        assert!((a.ratio(b) - 2.5).abs() < 1e-12);
        assert_eq!(a.ratio(Nanos::ZERO), f64::INFINITY);
        assert_eq!(b.scale(2.5), a);
        assert_eq!(a.scale(0.0), Nanos::ZERO);
    }

    #[test]
    fn min_max_sum() {
        let a = Nanos(3);
        let b = Nanos(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: Nanos = [a, b, Nanos(1)].into_iter().sum();
        assert_eq!(total, Nanos(13));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", Nanos::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(3)), "3.000s");
    }

    #[test]
    fn saturating_since_saturates_in_release_semantics() {
        let a = Nanos(5);
        let b = Nanos(10);
        assert_eq!(b.saturating_since(a), Nanos(5));
        assert_eq!(a.saturating_since(a), Nanos::ZERO);
    }

    proptest! {
        #[test]
        fn roundtrip_secs_f64(ms in 0u64..10_000_000) {
            let n = Nanos::from_millis(ms);
            let back = Nanos::from_secs_f64(n.as_secs_f64());
            // f64 has 52 mantissa bits; millisecond-scale values round-trip.
            prop_assert_eq!(n, back);
        }

        #[test]
        fn checked_add_matches_plain(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            prop_assert_eq!(Nanos(a).checked_add(Nanos(b)), Some(Nanos(a) + Nanos(b)));
        }

        #[test]
        fn scale_monotone(base in 1u64..1_000_000_000u64, f1 in 0.0f64..100.0, f2 in 0.0f64..100.0) {
            let n = Nanos(base);
            if f1 <= f2 {
                prop_assert!(n.scale(f1) <= n.scale(f2));
            } else {
                prop_assert!(n.scale(f2) <= n.scale(f1));
            }
        }
    }
}
