//! Deterministic hashing utilities.
//!
//! Operator selectivities are *realized* (a tuple passes a filter or it does
//! not) through a pure function of `(tuple id, operator salt, run seed)`.
//! This has two properties the evaluation methodology depends on:
//!
//! 1. **Policy independence.** Whether tuple `t` survives operator `O` does
//!    not depend on *when* the scheduler ran `O` on `t`, so every scheduling
//!    policy is measured against the identical workload realization — observed
//!    differences are scheduling, never sampling luck.
//! 2. **Reproducibility.** Re-running an experiment with the same seed yields
//!    the same tuple-level outcome stream.
//!
//! The mixer is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), which passes BigCrush when used as a one-shot mixer
//! and costs a handful of ALU ops.

/// One round of the SplitMix64 output mixer over an arbitrary 64-bit input.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mix two 64-bit values into one, order-sensitively.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.rotate_left(32))
}

/// Mix three 64-bit values into one, order-sensitively.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(mix2(a, b) ^ c.rotate_left(16))
}

/// A deterministic Bernoulli coin: returns `true` with probability
/// `p` (clamped to `[0, 1]`) as a pure function of the mixed inputs.
#[inline]
pub fn coin(hash: u64, p: f64) -> bool {
    if p >= 1.0 {
        return true;
    }
    if p <= 0.0 {
        return false;
    }
    // Compare the hash against p scaled to the full u64 range. The scaling
    // loses ~11 bits of p's precision, irrelevant for selectivities specified
    // to a few decimal places.
    (hash as f64) < p * (u64::MAX as f64)
}

/// A deterministic uniform draw in `[0, 1)` from a hash.
#[inline]
pub fn unit_f64(hash: u64) -> f64 {
    // Take the top 53 bits for a dyadic uniform in [0,1).
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic uniform integer draw in `[lo, hi]` (inclusive) from a hash.
#[inline]
pub fn unit_range(hash: u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let span = hi - lo + 1;
    lo + (unit_f64(hash) * span as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitmix_known_vectors() {
        // First outputs of the reference SplitMix64 stream seeded with 0:
        // the mixer applied to successive increments of the golden gamma.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn coin_extremes() {
        for h in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert!(coin(h, 1.0));
            assert!(coin(h, 1.5));
            assert!(!coin(h, 0.0));
            assert!(!coin(h, -0.5));
        }
    }

    #[test]
    fn coin_frequency_tracks_probability() {
        // Empirical pass rate over a hash stream must be within ~1% of p.
        for &p in &[0.1, 0.33, 0.5, 0.9] {
            let n = 100_000u64;
            let passes = (0..n).filter(|&i| coin(splitmix64(i), p)).count() as f64;
            let rate = passes / n as f64;
            assert!(
                (rate - p).abs() < 0.01,
                "p={p} measured {rate} over {n} draws"
            );
        }
    }

    #[test]
    fn unit_range_covers_bounds() {
        let mut seen_lo = false;
        let mut seen_hi = false;
        for i in 0..10_000u64 {
            let v = unit_range(splitmix64(i), 1, 4);
            assert!((1..=4).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    proptest! {
        #[test]
        fn unit_f64_in_range(x in any::<u64>()) {
            let v = unit_f64(x);
            prop_assert!((0.0..1.0).contains(&v));
        }

        #[test]
        fn mixers_are_order_sensitive(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(mix2(a, b), mix2(b, a));
        }

        #[test]
        fn coin_is_monotone_in_p(h in any::<u64>(), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            // If the coin passes at the lower probability it must pass at the higher.
            if coin(h, lo) {
                prop_assert!(coin(h, hi));
            }
        }
    }
}
