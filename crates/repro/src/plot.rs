//! Terminal line charts for the figure exhibits.
//!
//! Each §9 figure is a family of series over utilization; a quick visual of
//! the orderings and crossovers beats scanning numbers. The renderer draws
//! each series as its own letter on a shared log-scale canvas (slowdowns
//! span decades), with collisions marked `*`.

use std::fmt::Write as _;

/// A renderable chart: named series over shared x positions.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_labels: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
    log_y: bool,
}

impl Chart {
    /// Start a chart with x-axis labels.
    pub fn new(title: impl Into<String>, x_labels: Vec<String>) -> Self {
        Chart {
            title: title.into(),
            x_labels,
            series: Vec::new(),
            log_y: true,
        }
    }

    /// Use a linear y axis (default is logarithmic).
    pub fn linear(mut self) -> Self {
        self.log_y = false;
        self
    }

    /// Add one series (must match the x-label count; non-finite or
    /// non-positive values are skipped when plotting on a log axis).
    pub fn series(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), self.x_labels.len(), "series length mismatch");
        self.series.push((name.into(), values));
        self
    }

    /// Render to text with the given canvas height (rows of the plot area).
    pub fn render(&self, height: usize) -> String {
        assert!(height >= 2, "canvas too small");
        let transform = |v: f64| -> Option<f64> {
            if !v.is_finite() {
                return None;
            }
            if self.log_y {
                (v > 0.0).then(|| v.ln())
            } else {
                Some(v)
            }
        };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, values) in &self.series {
            for &v in values {
                if let Some(t) = transform(v) {
                    lo = lo.min(t);
                    hi = hi.max(t);
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if !lo.is_finite() || !hi.is_finite() {
            out.push_str("(no data)\n");
            return out;
        }
        let span = (hi - lo).max(1e-9);
        let n_cols = self.x_labels.len();
        let col_width = 6usize;
        let mut canvas = vec![vec![' '; n_cols * col_width]; height];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let mark = (b'A' + (si % 26) as u8) as char;
            for (xi, &v) in values.iter().enumerate() {
                let Some(t) = transform(v) else { continue };
                let row = ((hi - t) / span * (height - 1) as f64).round() as usize;
                let col = xi * col_width + col_width / 2;
                let cell = &mut canvas[row.min(height - 1)][col];
                *cell = if *cell == ' ' { mark } else { '*' };
            }
        }
        let y_label = |row: usize| -> String {
            let t = hi - (row as f64 / (height - 1) as f64) * span;
            let v = if self.log_y { t.exp() } else { t };
            format!("{v:>9.2e}")
        };
        for (row, line) in canvas.iter().enumerate() {
            let lab = if row == 0 || row == height - 1 || row == height / 2 {
                y_label(row)
            } else {
                " ".repeat(9)
            };
            let _ = writeln!(out, "{lab} |{}", line.iter().collect::<String>());
        }
        let _ = write!(out, "{} +", " ".repeat(9));
        out.push_str(&"-".repeat(n_cols * col_width));
        out.push('\n');
        let _ = write!(out, "{}  ", " ".repeat(9));
        for label in &self.x_labels {
            let _ = write!(out, "{label:^col_width$}");
        }
        out.push('\n');
        let _ = write!(out, "{}  legend: ", " ".repeat(9));
        for (si, (name, _)) in self.series.iter().enumerate() {
            let mark = (b'A' + (si % 26) as u8) as char;
            let _ = write!(out, "{mark}={name} ");
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> Chart {
        Chart::new(
            "avg slowdown vs utilization",
            vec!["0.5".into(), "0.7".into(), "0.9".into()],
        )
        .series("HNR", vec![10.0, 100.0, 1000.0])
        .series("FCFS", vec![100.0, 1000.0, 10000.0])
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let s = chart().render(8);
        assert!(s.starts_with("avg slowdown vs utilization"));
        assert!(s.contains("legend: A=HNR B=FCFS"));
        assert!(s.contains("0.5"));
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains('+'));
    }

    #[test]
    fn log_scale_orders_marks_vertically() {
        let s = chart().render(10);
        // FCFS's value at each x is 10x HNR's, so B must appear above A in
        // the first column region.
        let col_of_first = |mark: char| {
            s.lines()
                .position(|l| l.contains(mark))
                .unwrap_or(usize::MAX)
        };
        assert!(col_of_first('B') < col_of_first('A'));
    }

    #[test]
    fn collisions_become_stars() {
        let s = Chart::new("t", vec!["x".into()])
            .series("a", vec![5.0])
            .series("b", vec![5.0])
            .render(4);
        assert!(s.contains('*'));
    }

    #[test]
    fn empty_or_invalid_values_handled() {
        let s = Chart::new("t", vec!["x".into()])
            .series("a", vec![f64::NAN])
            .render(4);
        assert!(s.contains("(no data)"));
        let s = Chart::new("t", vec!["x".into()])
            .linear()
            .series("a", vec![-5.0])
            .render(4);
        assert!(s.contains('A'), "linear axis accepts negatives: {s}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_series_rejected() {
        let _ = Chart::new("t", vec!["x".into(), "y".into()]).series("a", vec![1.0]);
    }
}
