//! `repro fuzz`: the CLI face of the `hcq-check` invariant fuzzer.
//!
//! Sweeps `--cases` seeded scenarios (engine-level invariant suite plus the
//! policy-level degenerate-statics drill) under every scheduling policy,
//! prints a digest that is byte-identical at any `--jobs` count, and writes
//! a minimized `fuzz-repro-<seed>-<case>.json` artifact into `--out` for
//! every failing case. `repro fuzz --replay FILE` re-runs one artifact
//! instead of sweeping.

use std::path::Path;

use hcq_check::{parse_artifact, replay, run_fuzz, FuzzConfig, FuzzOutcome};

use crate::harness::ExpConfig;

/// Outcome summary of a fuzz sweep, as printed by the CLI.
pub struct FuzzSummary {
    /// The sweep outcome.
    pub outcome: FuzzOutcome,
    /// True when every case was clean.
    pub clean: bool,
}

/// Run the sweep: `cases` scenarios under `cfg.seed`, `cfg.jobs` workers,
/// artifacts into `cfg.out_dir`. Without `force`, an existing
/// `fuzz-repro-*.json` artifact is never overwritten — the sweep fails
/// with `AlreadyExists` instead of clobbering repro evidence.
pub fn fuzz(cfg: &ExpConfig, cases: u64, force: bool) -> std::io::Result<FuzzSummary> {
    let fuzz_cfg = FuzzConfig {
        seed: cfg.seed,
        cases,
        jobs: cfg.jobs.max(1),
        artifact_dir: Some(cfg.out_dir.clone()),
        force,
    };
    let outcome = run_fuzz(&fuzz_cfg)?;
    let failures = outcome.failures();
    println!(
        "fuzz: seed {} cases {} jobs {} -> digest {}",
        cfg.seed, cases, fuzz_cfg.jobs, outcome.digest
    );
    for r in outcome.results.iter().filter(|r| !r.violations.is_empty()) {
        println!("case {} FAILED:", r.case);
        for v in &r.violations {
            println!("  {v}");
        }
    }
    for path in &outcome.artifacts {
        println!("minimized artifact: {}", path.display());
    }
    if failures == 0 {
        println!("all {cases} cases clean");
    } else {
        println!("{failures} of {cases} cases failed");
    }
    Ok(FuzzSummary {
        clean: failures == 0,
        outcome,
    })
}

/// Replay a single artifact file; returns `true` when it is clean.
pub fn fuzz_replay(path: &Path) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {}: {e}", path.display());
            return false;
        }
    };
    let scenario = match parse_artifact(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: unparseable artifact: {e}", path.display());
            return false;
        }
    };
    let violations = replay(&scenario);
    if violations.is_empty() {
        println!("{}: replay clean", path.display());
        true
    } else {
        println!("{}: replay FAILED:", path.display());
        for v in &violations {
            println!("  {v}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean_and_jobs_invariant() {
        let dir = std::env::temp_dir().join(format!("hcq-fuzz-test-{}", std::process::id()));
        let mut cfg = ExpConfig {
            out_dir: dir.clone(),
            seed: 1,
            jobs: 1,
            ..ExpConfig::default()
        };
        let a = fuzz(&cfg, 3, false).unwrap();
        cfg.jobs = 3;
        let b = fuzz(&cfg, 3, false).unwrap();
        assert!(a.clean && b.clean);
        assert_eq!(a.outcome.digest, b.outcome.digest);
        assert!(a.outcome.artifacts.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
