//! `repro inspect`: the offline trace-analysis CLI mode, plus the
//! `ext_inspect` exhibit and the `bench --history` trajectory view.
//!
//! `repro inspect TRACE` parses a PR-3 JSONL scheduling trace (interleaved
//! `repro monitor` telemetry lines are tolerated) and prints the per-query
//! latency waterfalls and the starvation report. `--diff TRACE2` aligns a
//! second trace at scheduling-point granularity and reports the first
//! divergent decision plus per-query QoS deltas. `--format perfetto` writes
//! Chrome trace-event JSON (self-validated before it touches disk) into the
//! `--out` directory instead of the text reports. All output is a pure
//! function of the input bytes — byte-identical across runs and `--jobs`.
//!
//! This module also owns [`guard_overwrite`], the shared refuse-to-clobber
//! check used by every repro mode that writes a user-named file.

use std::io;
use std::path::{Path, PathBuf};

use hcq_core::PolicyKind;
use hcq_inspect::{diff, event, perfetto, starve, waterfall};

use crate::exhibits::ExhibitOutput;
use crate::harness::ExpConfig;
use crate::table::{fnum, AsciiTable};

/// Refuse to overwrite `path` unless `force` is set.
///
/// Every repro mode that writes to a user-named path goes through this
/// check, so a stray re-run cannot silently clobber a trace or telemetry
/// capture someone meant to keep.
pub fn guard_overwrite(path: &Path, force: bool) -> io::Result<()> {
    if !force && path.exists() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!(
                "{} already exists; pass --force to overwrite",
                path.display()
            ),
        ));
    }
    Ok(())
}

/// Output format of `repro inspect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectFormat {
    /// Waterfall + starvation (+ diff) reports as fixed-width text.
    Text,
    /// Chrome trace-event / Perfetto JSON.
    Perfetto,
}

impl std::str::FromStr for InspectFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(InspectFormat::Text),
            "perfetto" => Ok(InspectFormat::Perfetto),
            other => Err(format!("unknown format {other:?} (expected text|perfetto)")),
        }
    }
}

fn load(path: &Path) -> Result<event::TraceLog, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read trace {}: {e}", path.display()))?;
    event::parse_stream(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Run `repro inspect`. Returns the text written to stdout (for tests).
pub fn inspect_trace(
    trace: &Path,
    diff_against: Option<&Path>,
    format: InspectFormat,
    out_dir: &Path,
    force: bool,
) -> Result<String, String> {
    let log = load(trace)?;
    let mut out = String::new();
    match format {
        InspectFormat::Text => {
            out.push_str(&format!(
                "== inspect {} ==\n{} event(s), {} telemetry line(s), {} unknown line(s)\n\n",
                trace.display(),
                log.events.len(),
                log.telemetry_lines,
                log.unknown_lines,
            ));
            let spans = hcq_inspect::reconstruct(&log)?;
            let w = hcq_inspect::waterfalls(&spans);
            out.push_str(&waterfall::render(&w));
            out.push('\n');
            out.push_str(&starve::render(&hcq_inspect::starvation(&log, None)));
            if let Some(other) = diff_against {
                let log_b = load(other)?;
                out.push('\n');
                out.push_str(&format!(
                    "== diff A={} B={} ==\n",
                    trace.display(),
                    other.display()
                ));
                out.push_str(&diff::render(&hcq_inspect::diff(&log, &log_b)));
            }
        }
        InspectFormat::Perfetto => {
            let json = perfetto::render(&log)?;
            let stats = perfetto::validate(&json)
                .map_err(|e| format!("rendered Perfetto JSON failed validation: {e}"))?;
            let path = out_dir.join(perfetto_file_name(trace));
            guard_overwrite(&path, force).map_err(|e| e.to_string())?;
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            }
            std::fs::write(&path, &json).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "perfetto: {} event(s) on {} track(s) ({} slices, {} async pairs, \
                 {} instants) written to {}\n",
                stats.events,
                stats.tracks,
                stats.complete,
                stats.async_pairs,
                stats.instants,
                path.display(),
            ));
            out.push_str("open at https://ui.perfetto.dev (or chrome://tracing)\n");
        }
    }
    print!("{out}");
    Ok(out)
}

/// `<trace-stem>.perfetto.json`.
fn perfetto_file_name(trace: &Path) -> PathBuf {
    let stem = trace
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".to_string());
    PathBuf::from(format!("{stem}.perfetto.json"))
}

// ------------------------------------------------------------ ext_inspect

/// `ext_inspect`: the observability pipeline applied to the paper's
/// cost-blindness pathology. FCFS and BSD run the same high-utilization
/// single-stream workload traced; the decision diff pinpoints the first
/// scheduling point where BSD departs from arrival order, and the per-query
/// table shows what that choice buys: under FCFS every tuple waits behind
/// the whole backlog regardless of its own service demand, so the cheap
/// cost classes suffer slowdowns orders of magnitude above BSD's, while
/// BSD's deliberate rebalancing surfaces in the starvation detector as
/// flagged long-wait episodes on the queries it sacrifices.
pub fn ext_inspect(cfg: &ExpConfig) -> ExhibitOutput {
    let util = 0.95;
    println!(
        "ext_inspect: tracing fcfs and bsd at utilization {util} ({} queries, {} arrivals)...",
        cfg.queries, cfg.arrivals
    );
    let (_, bytes_a) = cfg.run_single_traced(util, PolicyKind::Fcfs.build());
    let (_, bytes_b) = cfg.run_single_traced(util, PolicyKind::Bsd.build());
    let log_a = event::parse_stream(&String::from_utf8(bytes_a).expect("trace is UTF-8"))
        .expect("engine traces parse");
    let log_b = event::parse_stream(&String::from_utf8(bytes_b).expect("trace is UTF-8"))
        .expect("engine traces parse");

    let d = hcq_inspect::diff(&log_a, &log_b);
    let starve_a = hcq_inspect::starvation(&log_a, None);
    let starve_b = hcq_inspect::starvation(&log_b, None);
    println!(
        "  fcfs: {} starvation episode(s) flagged; bsd: {}",
        starve_a.flagged_total, starve_b.flagged_total
    );
    match &d.divergence {
        Some(v) => println!(
            "  first divergent decision: #{} — FCFS@{}ns ran unit(s) {:?}, \
             BSD@{}ns ran unit(s) {:?}",
            v.ordinal, v.at_a, v.units_a, v.at_b, v.units_b
        ),
        None => println!("  no divergent decision (policies agreed on this workload)"),
    }

    let mut table = AsciiTable::new(vec![
        "query",
        "emitted_fcfs",
        "emitted_bsd",
        "avg_slowdown_fcfs",
        "avg_slowdown_bsd",
        "max_slowdown_fcfs",
        "max_slowdown_bsd",
        "flagged_fcfs",
        "flagged_bsd",
    ]);
    let flagged = |s: &starve::Starvation, q: u32| -> u64 {
        // Units and queries coincide on the single-stream workload (one
        // chain per query).
        s.units
            .iter()
            .find(|u| u.unit == q)
            .map_or(0, |u| u.flagged)
    };
    for q in &d.queries {
        table.row(vec![
            q.query.to_string(),
            q.emitted_a.to_string(),
            q.emitted_b.to_string(),
            fnum(q.avg_slowdown_a),
            fnum(q.avg_slowdown_b),
            fnum(q.max_slowdown_a),
            fnum(q.max_slowdown_b),
            flagged(&starve_a, q.query).to_string(),
            flagged(&starve_b, q.query).to_string(),
        ]);
    }
    ExhibitOutput {
        name: "ext_inspect",
        table,
    }
    .emit(cfg)
}

// ---------------------------------------------------------- bench --history

/// One `BENCH_<n>.json` snapshot's trajectory row data.
struct HistoryRow {
    n: u32,
    /// (policy, sim_tuples_per_s, sched_evals_per_point).
    policies: Vec<(String, f64, Option<f64>)>,
    /// `C-BSD-log` ns/point at the largest measured q, if the snapshot has
    /// a large-q section.
    large_q_ns: Option<(u64, f64)>,
}

fn read_snapshot(path: &Path, n: u32) -> Result<HistoryRow, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    let v = hcq_inspect::parse_json(&text)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    let mut policies = Vec::new();
    if let Some(list) = v
        .get("reference_workload")
        .and_then(|r| r.get("policies"))
        .and_then(|p| p.as_arr())
    {
        for p in list {
            let name = p
                .get("policy")
                .and_then(|s| s.as_str())
                .unwrap_or("?")
                .to_string();
            let tps = p
                .get("sim_tuples_per_s")
                .and_then(|x| x.as_f64())
                .unwrap_or(0.0);
            let evals = p.get("sched_evals_per_point").and_then(|x| x.as_f64());
            policies.push((name, tps, evals));
        }
    }
    let large_q_ns = v
        .get("large_q")
        .and_then(|l| l.get("cells"))
        .and_then(|c| c.as_arr())
        .and_then(|cells| {
            cells
                .iter()
                .filter(|c| c.get("policy").and_then(|s| s.as_str()) == Some("C-BSD-log"))
                .filter_map(|c| Some((c.get("q")?.as_u64()?, c.get("ns_per_point")?.as_f64()?)))
                .max_by_key(|(q, _)| *q)
        });
    Ok(HistoryRow {
        n,
        policies,
        large_q_ns,
    })
}

/// Consolidate every `BENCH_<n>.json` in `dir` into one PR-over-PR table:
/// per-policy reference throughput (tuples/s), BSD's priority evaluations
/// per scheduling point, and the clustered-BSD large-q cost per point.
pub fn bench_history(dir: &Path) -> Result<AsciiTable, String> {
    let mut rows = Vec::new();
    let mut n = 1u32;
    loop {
        let path = dir.join(format!("BENCH_{n}.json"));
        if !path.exists() {
            break;
        }
        rows.push(read_snapshot(&path, n)?);
        n += 1;
    }
    if rows.is_empty() {
        return Err(format!("no BENCH_<n>.json snapshots in {}", dir.display()));
    }

    // Stable policy column order: as first seen across the trajectory.
    let mut names: Vec<String> = Vec::new();
    for r in &rows {
        for (name, _, _) in &r.policies {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    }
    let mut header: Vec<String> = vec!["bench".into()];
    header.extend(names.iter().map(|n| format!("{n}_tuples_per_s")));
    header.push("bsd_evals_per_point".into());
    header.push("largeq_cbsd_ns_per_point".into());
    let mut table = AsciiTable::new(header);
    for r in &rows {
        let mut cells: Vec<String> = vec![r.n.to_string()];
        for name in &names {
            let cell = r
                .policies
                .iter()
                .find(|(p, _, _)| p == name)
                .map(|(_, tps, _)| fnum(*tps))
                .unwrap_or_else(|| "-".into());
            cells.push(cell);
        }
        let bsd_evals = r
            .policies
            .iter()
            .find(|(p, _, _)| p == "BSD")
            .and_then(|(_, _, e)| *e)
            .map(fnum)
            .unwrap_or_else(|| "-".into());
        cells.push(bsd_evals);
        cells.push(
            r.large_q_ns
                .map(|(q, ns)| format!("{} (q={q})", fnum(ns)))
                .unwrap_or_else(|| "-".into()),
        );
        table.row(cells);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hcq_inspect_cli_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny() -> ExpConfig {
        ExpConfig {
            queries: 8,
            arrivals: 150,
            seed: 7,
            jobs: 1,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn guard_refuses_existing_without_force() {
        let dir = tmp_dir("guard");
        let path = dir.join("trace.jsonl");
        // Nothing there yet: both pass.
        guard_overwrite(&path, false).unwrap();
        guard_overwrite(&path, true).unwrap();
        std::fs::write(&path, "x").unwrap();
        let err = guard_overwrite(&path, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("--force"), "{err}");
        // --force allows the overwrite.
        guard_overwrite(&path, true).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_text_reports_conservation_and_is_deterministic() {
        let dir = tmp_dir("text");
        let cfg = tiny();
        let (_, bytes) = cfg.run_single_traced(0.9, PolicyKind::Hnr.build());
        let trace = dir.join("trace.jsonl");
        std::fs::write(&trace, &bytes).unwrap();
        let a = inspect_trace(&trace, None, InspectFormat::Text, &dir, false).unwrap();
        assert!(
            a.contains("spans decompose exactly"),
            "missing conservation line:\n{a}"
        );
        assert!(a.contains("starvation:"), "missing starvation report:\n{a}");
        let b = inspect_trace(&trace, None, InspectFormat::Text, &dir, false).unwrap();
        assert_eq!(a, b, "inspect output must be byte-identical across runs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_diff_pinpoints_fcfs_vs_bsd_divergence() {
        let dir = tmp_dir("diff");
        let cfg = tiny();
        let (_, a) = cfg.run_single_traced(0.95, PolicyKind::Fcfs.build());
        let (_, b) = cfg.run_single_traced(0.95, PolicyKind::Bsd.build());
        let ta = dir.join("fcfs.jsonl");
        let tb = dir.join("bsd.jsonl");
        std::fs::write(&ta, &a).unwrap();
        std::fs::write(&tb, &b).unwrap();
        let out = inspect_trace(&ta, Some(&tb), InspectFormat::Text, &dir, false).unwrap();
        assert!(
            out.contains("first divergent decision: #"),
            "FCFS and BSD must diverge at 0.95 utilization:\n{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_perfetto_writes_validated_json_and_respects_guard() {
        let dir = tmp_dir("perfetto");
        let cfg = tiny();
        let (_, bytes) = cfg.run_single_traced(0.9, PolicyKind::Hnr.build());
        let trace = dir.join("trace.jsonl");
        std::fs::write(&trace, &bytes).unwrap();
        inspect_trace(&trace, None, InspectFormat::Perfetto, &dir, false).unwrap();
        let json_path = dir.join("trace.perfetto.json");
        let json = std::fs::read_to_string(&json_path).unwrap();
        perfetto::validate(&json).unwrap();
        // Second run without --force refuses; with --force overwrites.
        let err = inspect_trace(&trace, None, InspectFormat::Perfetto, &dir, false).unwrap_err();
        assert!(err.contains("--force"), "{err}");
        inspect_trace(&trace, None, InspectFormat::Perfetto, &dir, true).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_consolidates_snapshots_in_order() {
        let dir = tmp_dir("history");
        std::fs::write(
            dir.join("BENCH_1.json"),
            r#"{"schema":"hcq-bench-v1","reference_workload":{"policies":[
                {"policy":"FCFS","sim_tuples_per_s":100.5},
                {"policy":"BSD","sim_tuples_per_s":50.25,"sched_evals_per_point":40.0}
            ]}}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_2.json"),
            r#"{"schema":"hcq-bench-v1","reference_workload":{"policies":[
                {"policy":"FCFS","sim_tuples_per_s":110.0},
                {"policy":"BSD","sim_tuples_per_s":60.0,"sched_evals_per_point":33.0}
            ]},"large_q":{"cells":[
                {"policy":"C-BSD-log","q":1000,"ns_per_point":450.0},
                {"policy":"C-BSD-log","q":100000,"ns_per_point":300.0},
                {"policy":"BSD-Exact","q":100000,"ns_per_point":222072.0}
            ]}}"#,
        )
        .unwrap();
        let table = bench_history(&dir).unwrap();
        let text = table.render();
        assert!(text.contains("FCFS_tuples_per_s"), "{text}");
        assert_eq!(table.len(), 2);
        assert!(text.contains("(q=100000)"), "{text}");
        // Gap in numbering stops the scan; BENCH_4 alone is invisible.
        std::fs::write(dir.join("BENCH_4.json"), "{}").unwrap();
        assert_eq!(bench_history(&dir).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_errors_on_empty_dir() {
        let dir = tmp_dir("history_empty");
        assert!(bench_history(&dir).unwrap_err().contains("no BENCH_"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
