//! Shared experiment machinery: configuration, sources, the parallel job
//! runner, and the policy × load sweep that Figures 5–10 are sliced from.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use hcq_common::Nanos;
use hcq_core::{Policy, PolicyKind};
use hcq_engine::{
    simulate, simulate_monitored, simulate_traced, GovernorConfig, JsonlTrace, SimConfig,
    SimReport, VecTelemetry,
};
use hcq_metrics::TelemetrySnapshot;
use hcq_streams::{ArrivalSource, OnOffSource, PoissonSource};
use hcq_workload::{single_stream, PaperWorkload, SingleStreamConfig};

/// Scale and seeding of a reproduction run.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Registered queries (paper: 500; default scaled down for minutes-long
    /// full reproductions — pass `--queries 500` for paper scale).
    pub queries: usize,
    /// Source arrivals per run.
    pub arrivals: u64,
    /// Mean inter-arrival time of each stream.
    pub mean_gap: Nanos,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Use the bursty on/off (LBL-like) source for single-stream
    /// experiments, as the paper does; `false` uses Poisson.
    pub bursty: bool,
    /// Worker threads for independent experiment cells (`1` = serial).
    /// Every cell is a pure function of its configuration and results are
    /// reassembled in deterministic order, so any job count produces
    /// byte-identical outputs.
    pub jobs: usize,
    /// Arm the closed-loop overload governor (`--govern`) on every
    /// single-stream run: the admission ladder starts Unbounded and the
    /// [`ExpConfig::governor`] feedback loop escalates/relaxes it. Off by
    /// default, in which case runs are byte-identical to ungoverned builds.
    pub govern: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            queries: 150,
            arrivals: 4_000,
            mean_gap: Nanos::from_millis(10),
            seed: 42,
            out_dir: PathBuf::from("results"),
            bursty: true,
            jobs: default_jobs(),
            govern: false,
        }
    }
}

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `count` independent jobs on up to `jobs` worker threads and return
/// their results in job-index order.
///
/// Workers pull indices from a shared atomic counter (work stealing), so
/// uneven cell costs balance across threads. Results travel back over a
/// channel tagged with their index and are reassembled in order, which makes
/// the output independent of scheduling: callers observe exactly what a
/// serial `(0..count).map(f)` would produce. With `jobs <= 1` (or a single
/// job) the closure runs inline on the caller's thread. A panicking job
/// propagates the panic to the caller once the scope joins.
pub fn run_jobs<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let workers = jobs.min(count);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index completed"))
        .collect()
}

/// A thread-safe progress tick: bumps the shared completed-cell counter and
/// reports `what: done/total cells` through `progress`. Emitting whole lines
/// keyed by counts (rather than per-cell descriptions) keeps concurrent
/// workers from interleaving partial messages.
pub fn tick_progress(
    progress: &(impl Fn(&str) + Sync),
    done: &AtomicUsize,
    total: usize,
    what: &str,
) {
    let n = done.fetch_add(1, Ordering::SeqCst) + 1;
    progress(&format!("  {what}: {n}/{total} cells done"));
}

impl ExpConfig {
    /// The load points the §9 figures sweep.
    pub const UTILIZATIONS: [f64; 7] = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.97];

    /// The single-stream source for stream index `s`.
    pub fn source(&self, s: usize) -> Box<dyn ArrivalSource> {
        if self.bursty {
            Box::new(OnOffSource::lbl_like(self.mean_gap, self.seed ^ s as u64))
        } else {
            Box::new(PoissonSource::new(self.mean_gap, self.seed ^ s as u64))
        }
    }

    /// Build the §8 single-stream workload at a utilization.
    pub fn workload(&self, utilization: f64) -> PaperWorkload {
        single_stream(&SingleStreamConfig {
            queries: self.queries,
            cost_classes: 5,
            utilization,
            mean_gap: self.mean_gap,
            seed: self.seed,
        })
        .unwrap_or_else(|e| {
            panic!(
                "building single-stream workload (queries={}, utilization={:.2}, seed={}): {e}",
                self.queries, utilization, self.seed
            )
        })
    }

    /// The governor configuration `--govern` (and `ext_recovery`) arms,
    /// scaled to the experiment: a decision every five mean gaps, a dwell of
    /// four decisions, and a pending-tuple hysteresis band of
    /// `(queries, 4·queries)` — the upper edge matching the watermark the
    /// static QoS-shedding exhibits use, so governed and static runs contend
    /// with the same notion of "overloaded".
    pub fn governor(&self) -> GovernorConfig {
        GovernorConfig {
            enabled: true,
            cadence: self.mean_gap * 5,
            min_dwell: self.mean_gap * 20,
            escalate_pending: self.queries * 4,
            deescalate_pending: self.queries,
            capacity: 32,
            watermark: (self.queries * 2).max(1),
            ..GovernorConfig::default()
        }
    }

    /// Apply the `--govern` switch to a finished [`SimConfig`].
    fn armed(&self, cfg: SimConfig) -> SimConfig {
        if self.govern {
            cfg.with_governor(self.governor())
        } else {
            cfg
        }
    }

    /// Run one policy on the single-stream workload at one utilization.
    pub fn run_single(&self, utilization: f64, policy: Box<dyn Policy>) -> SimReport {
        self.run_single_with(utilization, policy, |c| c)
    }

    /// As [`ExpConfig::run_single`] with a [`SimConfig`] tweak (overhead
    /// charging, sharing strategy, ...).
    pub fn run_single_with(
        &self,
        utilization: f64,
        policy: Box<dyn Policy>,
        tweak: impl FnOnce(SimConfig) -> SimConfig,
    ) -> SimReport {
        let w = self.workload(utilization);
        let cfg = self.armed(tweak(SimConfig::new(self.arrivals).with_seed(self.seed)));
        simulate(&w.plan, &w.rates, vec![self.source(0)], policy, cfg).unwrap_or_else(|e| {
            panic!(
                "simulating single-stream workload (utilization={:.2}, arrivals={}, seed={}): {e}",
                utilization, self.arrivals, self.seed
            )
        })
    }

    /// As [`ExpConfig::run_single`], additionally streaming the scheduling
    /// trace through a [`JsonlTrace`]; returns the report and the trace's
    /// JSONL bytes. The traced simulation makes identical decisions, so the
    /// report matches [`ExpConfig::run_single`] field for field.
    pub fn run_single_traced(
        &self,
        utilization: f64,
        policy: Box<dyn Policy>,
    ) -> (SimReport, Vec<u8>) {
        self.run_single_traced_with(utilization, policy, |c| c)
    }

    /// As [`ExpConfig::run_single_traced`] with a [`SimConfig`] tweak.
    pub fn run_single_traced_with(
        &self,
        utilization: f64,
        policy: Box<dyn Policy>,
        tweak: impl FnOnce(SimConfig) -> SimConfig,
    ) -> (SimReport, Vec<u8>) {
        let w = self.workload(utilization);
        let cfg = self.armed(tweak(SimConfig::new(self.arrivals).with_seed(self.seed)));
        let sink = JsonlTrace::new(Vec::new());
        let (report, sink) =
            simulate_traced(&w.plan, &w.rates, vec![self.source(0)], policy, cfg, sink)
                .unwrap_or_else(|e| {
                    panic!(
                        "simulating traced single-stream workload (utilization={:.2}, \
                         arrivals={}, seed={}): {e}",
                        utilization, self.arrivals, self.seed
                    )
                });
        let bytes = sink.finish().expect("in-memory trace writes cannot fail");
        (report, bytes)
    }

    /// As [`ExpConfig::run_single`], additionally sampling telemetry
    /// snapshots at `cadence` of virtual time; returns the report and the
    /// snapshot stream. The monitored simulation makes identical decisions,
    /// so the report matches [`ExpConfig::run_single`] field for field.
    pub fn run_single_monitored(
        &self,
        utilization: f64,
        policy: Box<dyn Policy>,
        cadence: Nanos,
    ) -> (SimReport, Vec<TelemetrySnapshot>) {
        self.run_single_monitored_with(utilization, policy, cadence, |c| c)
    }

    /// As [`ExpConfig::run_single_monitored`] with a [`SimConfig`] tweak.
    pub fn run_single_monitored_with(
        &self,
        utilization: f64,
        policy: Box<dyn Policy>,
        cadence: Nanos,
        tweak: impl FnOnce(SimConfig) -> SimConfig,
    ) -> (SimReport, Vec<TelemetrySnapshot>) {
        let w = self.workload(utilization);
        let cfg = self.armed(tweak(
            SimConfig::new(self.arrivals)
                .with_seed(self.seed)
                .with_telemetry_cadence(cadence),
        ));
        let (report, sink) = simulate_monitored(
            &w.plan,
            &w.rates,
            vec![self.source(0)],
            policy,
            cfg,
            VecTelemetry::new(),
        )
        .unwrap_or_else(|e| {
            panic!(
                "simulating monitored single-stream workload (utilization={:.2}, \
                 arrivals={}, seed={}): {e}",
                utilization, self.arrivals, self.seed
            )
        });
        (report, sink.samples)
    }
}

/// Cached results of the policy × utilization sweep behind Figures 5–10.
#[derive(Debug)]
pub struct SweepResults {
    /// `(policy name, utilization·100) → report`.
    results: BTreeMap<(&'static str, u32), SimReport>,
}

impl SweepResults {
    /// Run the full sweep: all seven policies at all seven load points.
    ///
    /// Cells run on `cfg.jobs` worker threads; each is an independent
    /// simulation, and the result map is keyed deterministically, so the
    /// sweep is byte-for-byte identical at any job count.
    pub fn collect(cfg: &ExpConfig, progress: impl Fn(&str) + Sync) -> Self {
        let cells: Vec<(PolicyKind, f64)> = PolicyKind::ALL
            .into_iter()
            .flat_map(|kind| ExpConfig::UTILIZATIONS.into_iter().map(move |u| (kind, u)))
            .collect();
        let total = cells.len();
        let done = AtomicUsize::new(0);
        let reports = run_jobs(cfg.jobs, total, |i| {
            let (kind, util) = cells[i];
            // The policy is built inside the job: `Box<dyn Policy>` is not
            // `Send`, but `PolicyKind` is `Copy` and the report is plain data.
            let report = cfg.run_single(util, kind.build());
            tick_progress(&progress, &done, total, "sweep");
            report
        });
        let mut results = BTreeMap::new();
        for ((kind, util), report) in cells.into_iter().zip(reports) {
            results.insert((kind.name(), key(util)), report);
        }
        SweepResults { results }
    }

    /// The report for a policy at a load point.
    pub fn get(&self, policy: PolicyKind, util: f64) -> &SimReport {
        &self.results[&(policy.name(), key(util))]
    }
}

fn key(util: f64) -> u32 {
    (util * 100.0).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            queries: 10,
            arrivals: 200,
            mean_gap: Nanos::from_millis(10),
            seed: 7,
            out_dir: std::env::temp_dir(),
            bursty: false,
            jobs: 1,
            govern: false,
        }
    }

    #[test]
    fn run_single_produces_emissions() {
        let r = tiny().run_single(0.5, PolicyKind::Hnr.build());
        assert!(r.emitted > 0);
        assert!(r.qos.avg_slowdown >= 1.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_yields_jsonl() {
        let cfg = tiny();
        let plain = cfg.run_single(0.5, PolicyKind::Hnr.build());
        let (traced, bytes) = cfg.run_single_traced(0.5, PolicyKind::Hnr.build());
        // Tracing observes; it must not steer.
        assert_eq!(plain.emitted, traced.emitted);
        assert_eq!(plain.sched_points, traced.sched_points);
        assert_eq!(plain.end_time, traced.end_time);
        assert_eq!(plain.overhead, traced.overhead);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.lines().count() > 0);
        assert!(text.lines().all(|l| l.starts_with("{\"type\":\"")));
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"type\":\"sched_point\""))
                .count() as u64,
            traced.sched_points
        );
    }

    #[test]
    fn monitored_run_matches_plain_and_yields_snapshots() {
        let cfg = tiny();
        let plain = cfg.run_single(0.5, PolicyKind::Hnr.build());
        let (monitored, samples) =
            cfg.run_single_monitored(0.5, PolicyKind::Hnr.build(), Nanos::from_millis(100));
        // Telemetry observes; it must not steer.
        assert_eq!(plain.emitted, monitored.emitted);
        assert_eq!(plain.sched_points, monitored.sched_points);
        assert_eq!(plain.end_time, monitored.end_time);
        let last = samples.last().unwrap();
        assert_eq!(last.at, monitored.end_time);
        assert_eq!(last.counter("hcq_emitted_total"), Some(monitored.emitted));
    }

    #[test]
    fn govern_flag_is_inert_on_a_calm_workload() {
        let plain = tiny().run_single(0.5, PolicyKind::Hnr.build());
        let governed = ExpConfig {
            govern: true,
            ..tiny()
        }
        .run_single(0.5, PolicyKind::Hnr.build());
        // Well under saturation the ladder never needs to move, so the
        // governed run matches the ungoverned one decision for decision.
        assert_eq!(governed.governor_transitions, 0);
        assert_eq!(governed.emitted, plain.emitted);
        assert_eq!(governed.sched_points, plain.sched_points);
        assert_eq!(governed.end_time, plain.end_time);
    }

    #[test]
    fn workload_scales_with_utilization() {
        let cfg = tiny();
        let lo = cfg.workload(0.5);
        let hi = cfg.workload(1.0);
        assert!((hi.k_ns / lo.k_ns - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sources_are_seeded() {
        let cfg = tiny();
        let mut a = cfg.source(0);
        let mut b = cfg.source(0);
        let mut c = cfg.source(1);
        assert_eq!(a.next_arrival(), b.next_arrival());
        // Different stream index, different seed: overwhelmingly different.
        assert_ne!(a.next_arrival(), c.next_arrival());
    }

    #[test]
    fn run_jobs_preserves_order() {
        let parallel = run_jobs(4, 37, |i| i * i);
        let serial = run_jobs(1, 37, |i| i * i);
        assert_eq!(parallel, (0..37).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(parallel, serial);
    }

    #[test]
    fn run_jobs_handles_edge_counts() {
        assert!(run_jobs(4, 0, |i| i).is_empty());
        assert_eq!(run_jobs(8, 1, |i| i + 1), vec![1]);
        assert_eq!(run_jobs(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn sweep_progress_reports_counts() {
        let mut small = tiny();
        small.arrivals = 20;
        small.jobs = 2;
        let seen = std::sync::Mutex::new(Vec::new());
        let _ = SweepResults::collect(&small, |msg| {
            seen.lock().unwrap().push(msg.to_string());
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 49, "one tick per sweep cell");
        assert!(seen.iter().any(|m| m.contains("49/49 cells done")));
    }

    #[test]
    fn sweep_stores_every_cell() {
        let mut small = tiny();
        small.arrivals = 50;
        let sweep = SweepResults::collect(&small, |_| {});
        for kind in PolicyKind::ALL {
            for &util in &ExpConfig::UTILIZATIONS {
                let r = sweep.get(kind, util);
                assert!(r.arrivals == 50);
            }
        }
    }
}
