//! Shared experiment machinery: configuration, sources, the policy × load
//! sweep that Figures 5–10 are sliced from.

use std::collections::BTreeMap;
use std::path::PathBuf;

use hcq_common::Nanos;
use hcq_core::{Policy, PolicyKind};
use hcq_engine::{simulate, SimConfig, SimReport};
use hcq_streams::{ArrivalSource, OnOffSource, PoissonSource};
use hcq_workload::{single_stream, PaperWorkload, SingleStreamConfig};

/// Scale and seeding of a reproduction run.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Registered queries (paper: 500; default scaled down for minutes-long
    /// full reproductions — pass `--queries 500` for paper scale).
    pub queries: usize,
    /// Source arrivals per run.
    pub arrivals: u64,
    /// Mean inter-arrival time of each stream.
    pub mean_gap: Nanos,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Use the bursty on/off (LBL-like) source for single-stream
    /// experiments, as the paper does; `false` uses Poisson.
    pub bursty: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            queries: 150,
            arrivals: 4_000,
            mean_gap: Nanos::from_millis(10),
            seed: 42,
            out_dir: PathBuf::from("results"),
            bursty: true,
        }
    }
}

impl ExpConfig {
    /// The load points the §9 figures sweep.
    pub const UTILIZATIONS: [f64; 7] = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.97];

    /// The single-stream source for stream index `s`.
    pub fn source(&self, s: usize) -> Box<dyn ArrivalSource> {
        if self.bursty {
            Box::new(OnOffSource::lbl_like(self.mean_gap, self.seed ^ s as u64))
        } else {
            Box::new(PoissonSource::new(self.mean_gap, self.seed ^ s as u64))
        }
    }

    /// Build the §8 single-stream workload at a utilization.
    pub fn workload(&self, utilization: f64) -> PaperWorkload {
        single_stream(&SingleStreamConfig {
            queries: self.queries,
            cost_classes: 5,
            utilization,
            mean_gap: self.mean_gap,
            seed: self.seed,
        })
        .expect("valid workload config")
    }

    /// Run one policy on the single-stream workload at one utilization.
    pub fn run_single(&self, utilization: f64, policy: Box<dyn Policy>) -> SimReport {
        self.run_single_with(utilization, policy, |c| c)
    }

    /// As [`ExpConfig::run_single`] with a [`SimConfig`] tweak (overhead
    /// charging, sharing strategy, ...).
    pub fn run_single_with(
        &self,
        utilization: f64,
        policy: Box<dyn Policy>,
        tweak: impl FnOnce(SimConfig) -> SimConfig,
    ) -> SimReport {
        let w = self.workload(utilization);
        let cfg = tweak(SimConfig::new(self.arrivals).with_seed(self.seed));
        simulate(&w.plan, &w.rates, vec![self.source(0)], policy, cfg)
            .expect("simulation config is valid")
    }
}

/// Cached results of the policy × utilization sweep behind Figures 5–10.
#[derive(Debug)]
pub struct SweepResults {
    /// `(policy name, utilization·100) → report`.
    results: BTreeMap<(&'static str, u32), SimReport>,
}

impl SweepResults {
    /// Run the full sweep: all seven policies at all seven load points.
    pub fn collect(cfg: &ExpConfig, progress: impl Fn(&str)) -> Self {
        let mut results = BTreeMap::new();
        for kind in PolicyKind::ALL {
            for &util in &ExpConfig::UTILIZATIONS {
                progress(&format!("  {} @ {util:.2}", kind.name()));
                let report = cfg.run_single(util, kind.build());
                results.insert((kind.name(), key(util)), report);
            }
        }
        SweepResults { results }
    }

    /// The report for a policy at a load point.
    pub fn get(&self, policy: PolicyKind, util: f64) -> &SimReport {
        &self.results[&(policy.name(), key(util))]
    }
}

fn key(util: f64) -> u32 {
    (util * 100.0).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            queries: 10,
            arrivals: 200,
            mean_gap: Nanos::from_millis(10),
            seed: 7,
            out_dir: std::env::temp_dir(),
            bursty: false,
        }
    }

    #[test]
    fn run_single_produces_emissions() {
        let r = tiny().run_single(0.5, PolicyKind::Hnr.build());
        assert!(r.emitted > 0);
        assert!(r.qos.avg_slowdown >= 1.0);
    }

    #[test]
    fn workload_scales_with_utilization() {
        let cfg = tiny();
        let lo = cfg.workload(0.5);
        let hi = cfg.workload(1.0);
        assert!((hi.k_ns / lo.k_ns - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sources_are_seeded() {
        let cfg = tiny();
        let mut a = cfg.source(0);
        let mut b = cfg.source(0);
        let mut c = cfg.source(1);
        assert_eq!(a.next_arrival(), b.next_arrival());
        // Different stream index, different seed: overwhelmingly different.
        assert_ne!(a.next_arrival(), c.next_arrival());
    }

    #[test]
    fn sweep_stores_every_cell() {
        let mut small = tiny();
        small.arrivals = 50;
        let sweep = SweepResults::collect(&small, |_| {});
        for kind in PolicyKind::ALL {
            for &util in &ExpConfig::UTILIZATIONS {
                let r = sweep.get(kind, util);
                assert!(r.arrivals == 50);
            }
        }
    }
}
