//! CLI entry point: regenerate the paper's tables and figures.
//!
//! ```text
//! repro <exhibit>... [--queries N] [--arrivals N] [--seed S] [--out DIR] [--poisson] [--govern] [--jobs N] [--trace FILE] [--cadence MS] [--serve ADDR]
//!
//! exhibits: table1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table2 table3 ext_memory ext_lp ext_preemption ext_seeds ext_overload ext_faults ext_overhead ext_transient ext_recovery monitor validate bench all
//! (fig5..fig11 share one sweep; requesting any of them runs the sweep once)
//! ```
//!
//! `--jobs N` sets the worker-thread count for independent experiment cells
//! (default: the machine's available parallelism). Outputs are byte-identical
//! at any job count. `bench` times the reference workload and writes
//! `BENCH_1.json` to the repository root (or `--out`'s parent). `--trace FILE`
//! additionally runs the single-stream workload once (HNR, 0.9 utilization)
//! with scheduling-event tracing on and writes the JSONL trace to `FILE`;
//! the trace is a pure function of the configuration, so re-runs are
//! byte-identical.
//!
//! `monitor` runs the same reference workload with telemetry sampling on
//! (`--cadence MS` of virtual time per snapshot, default 250) and writes
//! `telemetry.jsonl` plus `metrics.prom` (Prometheus text exposition format)
//! into `--out`. With the `http-export` cargo feature, `--serve ADDR`
//! additionally serves the exposition text at `http://ADDR/metrics` until
//! Enter is pressed.
//!
//! `inspect TRACE` analyses a previously captured trace offline: per-query
//! latency waterfalls, starvation diagnosis, `--diff TRACE2` decision
//! diffing, and `--format perfetto` Chrome trace-event export. `bench
//! --history` consolidates every `BENCH_<n>.json` at the repository root
//! into one PR-over-PR trajectory table. Modes that write user-named files
//! (`monitor`, `--trace`, `inspect --format perfetto`) refuse to overwrite
//! existing outputs unless `--force` is given.

use std::path::PathBuf;
use std::process::ExitCode;

use hcq_common::Nanos;
use hcq_core::PolicyKind;
use hcq_repro::{
    bench, bench_history, ext_adaptive, ext_faults, ext_inspect, ext_large_q, ext_lp, ext_memory,
    ext_overhead, ext_overload, ext_preemption, ext_recovery, ext_seeds, ext_transient, fig11,
    fig12, fig13, fig14, fig5_to_10, fuzz, fuzz_replay, guard_overwrite, inspect_trace, monitor,
    run_runtime, table1, table2, table3, validate, ExpConfig, InspectFormat,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExpConfig::default();
    let mut exhibits: Vec<String> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut cadence_ms: u64 = 250;
    let mut serve_addr: Option<String> = None;
    let mut fuzz_cases: u64 = 200;
    let mut fuzz_replay_path: Option<PathBuf> = None;
    let mut large_q: Option<usize> = None;
    let mut diff_path: Option<PathBuf> = None;
    let mut format = InspectFormat::Text;
    let mut force = false;
    let mut history = false;
    let mut runtime = false;
    let mut threads: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => diff_path = Some(PathBuf::from(expect(it.next(), "--diff"))),
            "--format" => match expect(it.next(), "--format").parse() {
                Ok(f) => format = f,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            },
            "--force" => force = true,
            "--history" => history = true,
            "--runtime" => runtime = true,
            "--threads" => threads = Some(parse(it.next(), "--threads")),
            "--large-q" => large_q = large_q.or(Some(1_000_000)),
            "--large-q-max" => large_q = Some(parse(it.next(), "--large-q-max")),
            "--queries" => cfg.queries = parse(it.next(), "--queries"),
            "--arrivals" => cfg.arrivals = parse(it.next(), "--arrivals"),
            "--seed" => cfg.seed = parse(it.next(), "--seed"),
            "--out" => cfg.out_dir = PathBuf::from(expect(it.next(), "--out")),
            "--poisson" => cfg.bursty = false,
            "--govern" => cfg.govern = true,
            "--jobs" => cfg.jobs = parse(it.next(), "--jobs"),
            "--trace" => trace_out = Some(PathBuf::from(expect(it.next(), "--trace"))),
            "--cadence" => cadence_ms = parse(it.next(), "--cadence"),
            "--serve" => serve_addr = Some(expect(it.next(), "--serve")),
            "--cases" => fuzz_cases = parse(it.next(), "--cases"),
            "--replay" => fuzz_replay_path = Some(PathBuf::from(expect(it.next(), "--replay"))),
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
            other => exhibits.push(other.to_string()),
        }
    }
    if exhibits.is_empty() && trace_out.is_none() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if exhibits.first().map(String::as_str) == Some("inspect") {
        if exhibits.len() != 2 {
            eprintln!(
                "usage: repro inspect TRACE [--diff TRACE2] [--format text|perfetto] \
                 [--out DIR] [--force]"
            );
            return ExitCode::FAILURE;
        }
        let trace = PathBuf::from(&exhibits[1]);
        return match inspect_trace(&trace, diff_path.as_deref(), format, &cfg.out_dir, force) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("inspect failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(path) = &trace_out {
        if let Err(e) = guard_overwrite(path, force) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        let (report, bytes) = cfg.run_single_traced(0.9, PolicyKind::Hnr.build());
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("could not write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let lines = bytes.iter().filter(|&&b| b == b'\n').count();
        println!(
            "trace: {} events ({} scheduling points, {} emissions) written to {}",
            lines,
            report.sched_points,
            report.emitted,
            path.display()
        );
    }
    if exhibits.iter().any(|e| e == "all") {
        exhibits = vec![
            "table1".into(),
            "sweep".into(),
            "fig12".into(),
            "fig13".into(),
            "fig14".into(),
            "table2".into(),
            "table3".into(),
            "ext_memory".into(),
            "ext_lp".into(),
            "ext_preemption".into(),
            "ext_seeds".into(),
            "ext_overload".into(),
            "ext_faults".into(),
            "ext_overhead".into(),
            "ext_transient".into(),
            "ext_recovery".into(),
            "ext_adaptive".into(),
            "ext_inspect".into(),
        ];
    }
    // fig5..fig11 are slices of one sweep; dedupe to a single run.
    let wants_sweep = exhibits.iter().any(|e| {
        matches!(
            e.as_str(),
            "sweep" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10"
        )
    });
    let mut ran_fig11 = false;
    if wants_sweep {
        fig5_to_10(&cfg);
        ran_fig11 = true;
    }
    for e in &exhibits {
        match e.as_str() {
            "sweep" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10" => {}
            "fig11" => {
                if !ran_fig11 {
                    fig11(&cfg);
                    ran_fig11 = true;
                }
            }
            "table1" => {
                table1(&cfg);
            }
            "fig12" => {
                fig12(&cfg);
            }
            "fig13" => {
                fig13(&cfg);
            }
            "fig14" => {
                fig14(&cfg);
            }
            "table2" => {
                table2(&cfg);
            }
            "ext_memory" => {
                ext_memory(&cfg);
            }
            "ext_lp" => {
                ext_lp(&cfg);
            }
            "ext_preemption" => {
                ext_preemption(&cfg);
            }
            "ext_seeds" => {
                ext_seeds(&cfg);
            }
            "ext_overload" => {
                ext_overload(&cfg);
            }
            "ext_faults" => {
                ext_faults(&cfg);
            }
            "ext_overhead" => {
                ext_overhead(&cfg);
            }
            "ext_adaptive" => {
                ext_adaptive(&cfg);
            }
            "ext_large_q" => {
                ext_large_q(&cfg, large_q.unwrap_or(1_000_000));
            }
            "ext_transient" => {
                ext_transient(&cfg);
            }
            "ext_recovery" => {
                ext_recovery(&cfg);
            }
            "monitor" => {
                if cadence_ms == 0 {
                    eprintln!("--cadence must be positive");
                    return ExitCode::FAILURE;
                }
                match monitor(&cfg, Nanos::from_millis(cadence_ms), force) {
                    Ok(out) => {
                        if let Some(addr) = &serve_addr {
                            if let Err(e) = serve_metrics(addr, &out.prom_path) {
                                eprintln!("{e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("monitor failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "run" => {
                if !runtime {
                    eprintln!("`repro run` currently requires --runtime (wall-clock execution)");
                    return ExitCode::FAILURE;
                }
                let n = threads.unwrap_or_else(hcq_repro::default_jobs).max(1);
                if !run_runtime(&cfg, n) {
                    return ExitCode::FAILURE;
                }
            }
            "table3" => {
                table3(&cfg);
            }
            "validate" => {
                let results = validate(&cfg);
                if results.iter().any(|r| !r.pass) {
                    return ExitCode::FAILURE;
                }
            }
            "fuzz" => {
                if let Some(path) = &fuzz_replay_path {
                    if !fuzz_replay(path) {
                        return ExitCode::FAILURE;
                    }
                } else {
                    if fuzz_cases == 0 {
                        eprintln!("--cases must be positive");
                        return ExitCode::FAILURE;
                    }
                    match fuzz(&cfg, fuzz_cases, force) {
                        Ok(summary) => {
                            if !summary.clean {
                                return ExitCode::FAILURE;
                            }
                        }
                        Err(e) => {
                            eprintln!("fuzz failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "bench" if history => match bench_history(&hcq_repro::snapshot_dir()) {
                Ok(table) => {
                    println!("== bench trajectory ==\n{}", table.render());
                }
                Err(e) => {
                    eprintln!("bench --history failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "bench" => match bench(&cfg, large_q) {
                Ok(path) => println!("benchmark baseline written to {}", path.display()),
                Err(e) => {
                    eprintln!("bench failed: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "ext_inspect" => {
                ext_inspect(&cfg);
            }
            other => {
                eprintln!("unknown exhibit {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if !exhibits.is_empty() {
        println!("CSV output in {}", cfg.out_dir.display());
    }
    ExitCode::SUCCESS
}

/// Serve the exported exposition file over HTTP until Enter is pressed.
#[cfg(feature = "http-export")]
fn serve_metrics(addr: &str, prom_path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(prom_path)
        .map_err(|e| format!("could not read {}: {e}", prom_path.display()))?;
    let server = hcq_metrics::prometheus::http::ScrapeServer::bind(addr)
        .map_err(|e| format!("could not bind {addr}: {e}"))?;
    server.publish(text);
    println!(
        "serving metrics at http://{}/metrics (press Enter to stop)",
        server.addr()
    );
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    Ok(())
}

/// Without the `http-export` feature there is nothing to bind.
#[cfg(not(feature = "http-export"))]
fn serve_metrics(_addr: &str, _prom_path: &std::path::Path) -> Result<(), String> {
    Err("--serve requires building with --features http-export".to_string())
}

fn expect(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    expect(v, flag).parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a numeric value");
        std::process::exit(2);
    })
}

fn print_usage() {
    eprintln!(
        "usage: repro <exhibit>... [--queries N] [--arrivals N] [--seed S] [--out DIR] [--poisson] [--govern] [--jobs N] [--trace FILE] [--cadence MS] [--serve ADDR] [--cases K] [--replay FILE] [--large-q] [--large-q-max Q] [--force]\n\
         \x20      repro inspect TRACE [--diff TRACE2] [--format text|perfetto] [--out DIR] [--force]\n\
         \x20      repro run --runtime [--threads N] [--arrivals N] [--seed S]\n\
         exhibits: table1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table2 table3 ext_memory ext_lp ext_preemption ext_seeds ext_overload ext_faults ext_overhead ext_large_q ext_transient ext_recovery ext_adaptive ext_inspect monitor validate bench fuzz run all\n\
         --jobs N: worker threads for independent cells (default: available parallelism; outputs are byte-identical at any N)\n\
         --govern: arm the closed-loop overload governor on single-stream runs (admission ladder + hysteresis; ext_recovery compares it to static admission regardless of this flag)\n\
         --trace FILE: write a deterministic JSONL scheduling trace of one reference run (HNR, 0.9 utilization)\n\
         --cadence MS: virtual-time telemetry sampling interval for `monitor` (default 250)\n\
         --serve ADDR: after `monitor`, serve metrics.prom over HTTP (needs --features http-export)\n\
         --cases K: scenarios for `fuzz` (default 200; seeded by --seed, minimized artifacts land in --out)\n\
         --replay FILE: for `fuzz`, re-run one fuzz-repro-*.json artifact instead of sweeping\n\
         --large-q: with `bench`, add the 10^3..10^6-query scheduling-point sweep and its sub-linearity gates to the snapshot\n\
         --large-q-max Q: cap the large-q sweep at Q queries (implies --large-q; `ext_large_q` honours it too)\n\
         --history: with `bench`, print the PR-over-PR trajectory consolidated from every BENCH_<n>.json instead of running the benchmark\n\
         --diff TRACE2: with `inspect`, align a second trace at scheduling-point granularity and report the first divergent decision\n\
         --format text|perfetto: `inspect` output — text reports (default) or Chrome trace-event JSON into --out\n\
         --runtime: with `run`, execute the reference workload on real OS threads via hcq-runtime instead of the simulator\n\
         --threads N: worker threads for `run --runtime` (default: available parallelism)\n\
         --force: allow `monitor`, `--trace`, `inspect --format perfetto`, and `fuzz` artifacts to overwrite existing output files"
    );
}
