//! The `repro monitor` mode: one monitored run, exported two ways.
//!
//! Runs the §8 single-stream workload at 0.9 utilization under HNR with
//! telemetry sampling on, then writes the full snapshot stream as
//! `telemetry.jsonl` (one self-describing object per line, interleavable
//! with the PR-3 scheduling trace) and the final snapshot as `metrics.prom`
//! in Prometheus text exposition format — validated against the grammar
//! checker before it touches disk. Everything is virtual-time driven, so
//! both files are byte-identical across runs and `--jobs` counts.

use std::path::PathBuf;

use hcq_common::Nanos;
use hcq_core::PolicyKind;
use hcq_engine::SimReport;
use hcq_metrics::{check_exposition, render_prometheus, TelemetrySnapshot};

use crate::harness::ExpConfig;

/// What a monitor run produced and where the exports landed.
#[derive(Debug)]
pub struct MonitorOutput {
    /// The run's report (identical to an unmonitored run's).
    pub report: SimReport,
    /// Every sampled snapshot, in virtual-time order.
    pub samples: Vec<TelemetrySnapshot>,
    /// The JSONL snapshot stream.
    pub jsonl_path: PathBuf,
    /// The final snapshot in Prometheus exposition format.
    pub prom_path: PathBuf,
}

/// Run the monitored reference workload and export both formats into
/// `cfg.out_dir`. `cadence` is the virtual-time sampling interval. Existing
/// exports are never overwritten unless `force` is set — the check runs
/// before the simulation, so a refused run costs nothing.
pub fn monitor(cfg: &ExpConfig, cadence: Nanos, force: bool) -> std::io::Result<MonitorOutput> {
    let jsonl_path = cfg.out_dir.join("telemetry.jsonl");
    let prom_path = cfg.out_dir.join("metrics.prom");
    crate::inspect::guard_overwrite(&jsonl_path, force)?;
    crate::inspect::guard_overwrite(&prom_path, force)?;
    let util = 0.9;
    println!(
        "monitoring hnr at utilization {util} ({} queries, {} arrivals, cadence {} ms)...",
        cfg.queries,
        cfg.arrivals,
        cadence.as_nanos() / 1_000_000
    );
    let (report, samples) = cfg.run_single_monitored(util, PolicyKind::Hnr.build(), cadence);
    std::fs::create_dir_all(&cfg.out_dir)?;

    let mut jsonl = String::new();
    for s in &samples {
        jsonl.push_str(&s.to_jsonl());
        jsonl.push('\n');
    }
    std::fs::write(&jsonl_path, jsonl)?;

    let last = samples.last().expect("a final snapshot always exists");
    let prom = render_prometheus(last);
    check_exposition(&prom)
        .unwrap_or_else(|e| panic!("rendered exposition text failed its own checker: {e}"));
    std::fs::write(&prom_path, &prom)?;

    println!(
        "  {} snapshots over {:.1} s of virtual time",
        samples.len(),
        report.end_time.as_nanos() as f64 / 1e9
    );
    println!(
        "  emitted {} tuples, avg slowdown {:.3}, final pending {}",
        report.emitted, report.qos.avg_slowdown, report.pending_end
    );
    println!("  wrote {}", jsonl_path.display());
    println!("  wrote {}", prom_path.display());
    Ok(MonitorOutput {
        report,
        samples,
        jsonl_path,
        prom_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        let dir = std::env::temp_dir().join(format!("hcq-monitor-{}", std::process::id()));
        ExpConfig {
            queries: 8,
            arrivals: 150,
            mean_gap: Nanos::from_millis(10),
            seed: 7,
            out_dir: dir,
            bursty: false,
            jobs: 1,
            govern: false,
        }
    }

    #[test]
    fn monitor_writes_valid_exports() {
        let cfg = tiny();
        std::fs::remove_dir_all(&cfg.out_dir).ok();
        let out = monitor(&cfg, Nanos::from_millis(100), false).unwrap();
        assert!(!out.samples.is_empty());
        let jsonl = std::fs::read_to_string(&out.jsonl_path).unwrap();
        assert_eq!(jsonl.lines().count(), out.samples.len());
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with("{\"type\":\"telemetry\"")));
        let prom = std::fs::read_to_string(&out.prom_path).unwrap();
        check_exposition(&prom).unwrap();
        assert!(prom.contains(&format!("hcq_emitted_total {}", out.report.emitted)));

        // A re-run must refuse to clobber the exports unless forced.
        let err = monitor(&cfg, Nanos::from_millis(100), false).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("--force"), "{err}");
        monitor(&cfg, Nanos::from_millis(100), true).unwrap();
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }
}
