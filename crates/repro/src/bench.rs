//! `repro bench`: the benchmark-trajectory baseline (`BENCH_*.json`).
//!
//! Times two things and writes one JSON snapshot per invocation:
//!
//! 1. **Reference workload** — the shared [`hcq_bench::pipeline`] fixture
//!    (the same cells the Criterion `pipeline` bench runs), per policy:
//!    wall-clock seconds per simulation and simulated source tuples per
//!    wall-clock second. The Criterion-compatible view of the same samples
//!    is emitted under `criterion_pipeline` with Criterion's benchmark ids,
//!    so JSON trajectories and `cargo bench` trends stay comparable. When
//!    the `CRITERION_JSON_OUT` environment variable names a readable
//!    JSON-lines file (as written by the criterion shim), its
//!    `simulate_arrivals/*` entries are ingested verbatim instead. Each
//!    policy is also timed with telemetry sampling on (same workload,
//!    250 ms virtual-time cadence); the on/off throughput ratio is printed
//!    and gated so sink hooks cannot silently leak cost into the hot path.
//!    A third variant arms the closed-loop overload governor
//!    ([`hcq_bench::pipeline::governor`]); its on/off ratio is gated the
//!    same way and its admission-mode transition count lands in the
//!    snapshot, so a flapping ladder shows up in the trajectory.
//! 2. **Sweep speedup** — the fig5–10 policy × load sweep run serially and
//!    with worker threads, recording both wall times and their ratio. The
//!    measured speedup is whatever the host delivers (a single-core machine
//!    honestly reports ~1.0×); outputs are byte-identical either way.
//!
//! Snapshots are numbered: the first run writes `BENCH_1.json` at the
//! repository root, the next `BENCH_2.json`, and so on, forming a
//! performance trajectory across commits. See `DESIGN.md` for the schema.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hcq_bench::large_q::{self, LargeQCell};
use hcq_bench::pipeline;
use hcq_common::{HcqError, Result};
use hcq_core::PolicyKind;

use crate::harness::{default_jobs, ExpConfig, SweepResults};

/// Timed samples for one policy on the reference workload.
#[derive(Debug)]
struct PolicyTiming {
    policy: &'static str,
    /// Mean wall-clock seconds per simulation.
    wall_s: f64,
    /// Fastest observed run, Criterion-style, in nanoseconds.
    min_ns: u128,
    /// Mean run in nanoseconds.
    mean_ns: u128,
    /// Output tuples emitted by the simulation (identical across samples).
    emitted: u64,
    /// Average priority evaluations per scheduling point (identical across
    /// samples — operation counts are deterministic, unlike wall time).
    evals_per_point: f64,
    /// Mean wall-clock seconds per simulation with telemetry sampling on
    /// (same workload, `pipeline::telemetry_cadence()` snapshots).
    telemetry_wall_s: f64,
    /// Snapshots per monitored run (identical across samples).
    telemetry_samples: usize,
    /// Mean wall-clock seconds per simulation with the closed-loop overload
    /// governor armed (same workload, `pipeline::governor()` settings).
    governed_wall_s: f64,
    /// Admission-mode transitions per governed run (identical across
    /// samples — governor decisions are virtual-time deterministic).
    governor_transitions: u64,
    /// Mean wall-clock seconds per simulation with seeded cost
    /// miscalibration and the policy-switching governor but no
    /// re-estimation (`pipeline::run_miscalibrated`) — the apples-to-apples
    /// baseline for the adaptive gate, since the miscalibrated workload is
    /// deliberately heavier than the plain fixture.
    miscal_wall_s: f64,
    /// Mean wall-clock seconds per simulation with the full feedback stack
    /// armed (miscalibration + online re-estimation + policy-switching
    /// governor, `pipeline::run_adaptive`).
    adaptive_wall_s: f64,
    /// Published statics updates per adaptive run (identical across
    /// samples — adaptation is virtual-time deterministic).
    statics_updates: u64,
    /// Meta-scheduler policy switches per adaptive run (identical across
    /// samples).
    policy_switches: u64,
}

/// Warm-up runs per policy before timing.
const WARMUP: usize = 1;
/// Timed runs per policy.
const SAMPLES: usize = 3;

/// Detected hardware parallelism, recorded in the snapshot so a reader can
/// tell an honest ~1.0× single-core speedup from a parallelism regression.
fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Arrivals for the wall-clock runtime scaling runs: heavier than the
/// simulator fixture so thread scaling has signal to show.
const RUNTIME_ARRIVALS: u64 = 2_000;
/// Thread counts the runtime section sweeps.
const RUNTIME_THREADS: [usize; 3] = [1, 2, 4];

/// Timed wall-clock runtime run at one thread count (HNR, reference
/// workload).
#[derive(Debug)]
struct RuntimeTiming {
    threads: usize,
    /// Best-of-samples wall seconds (minimum is the stablest scaling
    /// estimator under scheduler noise).
    wall_s: f64,
    /// Completed tuple copies per wall second on the best run.
    tuples_per_s: f64,
    /// Work-stolen executions on the best run.
    stolen: u64,
}

fn time_runtime() -> Vec<RuntimeTiming> {
    let w = pipeline::workload();
    let sources = || -> Vec<Box<dyn hcq_streams::ArrivalSource>> {
        vec![Box::new(hcq_streams::PoissonSource::new(
            pipeline::mean_gap(),
            9,
        ))]
    };
    RUNTIME_THREADS
        .iter()
        .map(|&threads| {
            let cfg = hcq_runtime::RuntimeConfig::new(RUNTIME_ARRIVALS)
                .with_seed(3)
                .with_threads(threads);
            let run = || {
                hcq_runtime::run(&w.plan, &w.rates, sources(), PolicyKind::Hnr, &cfg)
                    .expect("reference workload is runtime-supported")
            };
            for _ in 0..WARMUP {
                run();
            }
            let mut best: Option<RuntimeTiming> = None;
            for _ in 0..SAMPLES {
                let report = run();
                assert!(report.conserved(), "runtime bench run must conserve tuples");
                let wall_s = report.wall_ns as f64 / 1e9;
                let improved = match &best {
                    Some(b) => wall_s < b.wall_s,
                    None => true,
                };
                if improved {
                    best = Some(RuntimeTiming {
                        threads,
                        wall_s,
                        tuples_per_s: report.tuples_per_sec,
                        stolen: report.stolen,
                    });
                }
            }
            best.expect("SAMPLES > 0")
        })
        .collect()
}

/// Gate the 1→2 thread scaling of the wall-clock runtime. On a single-core
/// host the comparison is meaningless (two threads timeslice one core), so
/// it is skipped with a note instead of producing a misleading number.
fn check_runtime_scaling(cores: usize, timings: &[RuntimeTiming]) {
    let t1 = timings.iter().find(|t| t.threads == 1);
    let t2 = timings.iter().find(|t| t.threads == 2);
    let (Some(t1), Some(t2)) = (t1, t2) else {
        return;
    };
    let scaling = t1.wall_s / t2.wall_s.max(1e-12);
    if cores < 2 {
        println!(
            "  runtime 1->2 thread scaling: n/a (single-core host; measured {scaling:.2}x \
             is timeslicing, not parallelism)"
        );
        return;
    }
    println!("  runtime 1->2 thread scaling: {scaling:.2}x");
    assert!(
        scaling > 1.0,
        "runtime gained nothing from a second thread on a {cores}-core host \
         ({:.4} s at 1 thread vs {:.4} s at 2)",
        t1.wall_s,
        t2.wall_s
    );
}

fn time_reference_workload() -> Vec<PolicyTiming> {
    let w = pipeline::workload();
    pipeline::POLICIES
        .iter()
        .map(|&kind| {
            for _ in 0..WARMUP {
                pipeline::run(kind, &w);
            }
            let mut emitted = 0;
            let mut evals_per_point = 0.0;
            let mut total_ns = 0u128;
            let mut min_ns = u128::MAX;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                let report = pipeline::run(kind, &w);
                let ns = t0.elapsed().as_nanos();
                total_ns += ns;
                min_ns = min_ns.min(ns);
                emitted = report.emitted;
                evals_per_point = report.evals_per_sched_point();
            }
            let mean_ns = total_ns / SAMPLES as u128;
            for _ in 0..WARMUP {
                pipeline::run_monitored(kind, &w);
            }
            let mut telemetry_samples = 0;
            let mut telemetry_ns = 0u128;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                let (report, samples) = pipeline::run_monitored(kind, &w);
                telemetry_ns += t0.elapsed().as_nanos();
                telemetry_samples = samples;
                assert_eq!(
                    report.emitted,
                    emitted,
                    "telemetry changed the simulation for {}",
                    kind.name()
                );
            }
            for _ in 0..WARMUP {
                pipeline::run_governed(kind, &w);
            }
            let mut governor_transitions = 0;
            let mut governed_ns = 0u128;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                let report = pipeline::run_governed(kind, &w);
                governed_ns += t0.elapsed().as_nanos();
                governor_transitions = report.governor_transitions;
            }
            for _ in 0..WARMUP {
                pipeline::run_miscalibrated(kind, &w);
            }
            let mut miscal_ns = 0u128;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                pipeline::run_miscalibrated(kind, &w);
                miscal_ns += t0.elapsed().as_nanos();
            }
            for _ in 0..WARMUP {
                pipeline::run_adaptive(kind, &w);
            }
            let mut statics_updates = 0;
            let mut policy_switches = 0;
            let mut adaptive_ns = 0u128;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                let report = pipeline::run_adaptive(kind, &w);
                adaptive_ns += t0.elapsed().as_nanos();
                statics_updates = report.statics_updates;
                policy_switches = report.policy_switches;
            }
            PolicyTiming {
                policy: kind.name(),
                wall_s: mean_ns as f64 / 1e9,
                min_ns,
                mean_ns,
                emitted,
                evals_per_point,
                telemetry_wall_s: (telemetry_ns / SAMPLES as u128) as f64 / 1e9,
                telemetry_samples,
                governed_wall_s: (governed_ns / SAMPLES as u128) as f64 / 1e9,
                governor_transitions,
                miscal_wall_s: (miscal_ns / SAMPLES as u128) as f64 / 1e9,
                adaptive_wall_s: (adaptive_ns / SAMPLES as u128) as f64 / 1e9,
                statics_updates,
                policy_switches,
            }
        })
        .collect()
}

/// Time the fig5–10 sweep at a bench-friendly scale, serially and with
/// worker threads. Returns `(sweep_cfg, serial_s, parallel_s, par_jobs)`.
fn time_sweep(cfg: &ExpConfig) -> (ExpConfig, f64, f64, usize) {
    let mut sweep_cfg = cfg.clone();
    // Cap the per-cell cost so `repro bench` stays seconds, not minutes,
    // at the default experiment scale; flags can push it either way.
    sweep_cfg.queries = sweep_cfg.queries.min(60);
    sweep_cfg.arrivals = sweep_cfg.arrivals.min(1_000);
    let par_jobs = cfg.jobs.max(2);

    sweep_cfg.jobs = 1;
    let t0 = Instant::now();
    let _ = SweepResults::collect(&sweep_cfg, |_| {});
    let serial_s = t0.elapsed().as_secs_f64();

    sweep_cfg.jobs = par_jobs;
    let t0 = Instant::now();
    let _ = SweepResults::collect(&sweep_cfg, |_| {});
    let parallel_s = t0.elapsed().as_secs_f64();

    (sweep_cfg, serial_s, parallel_s, par_jobs)
}

/// Criterion-shaped entries for the `criterion_pipeline` section: either
/// ingested from a `CRITERION_JSON_OUT` JSON-lines file (the criterion
/// shim's machine-readable output) or derived from our own samples.
fn criterion_entries(timings: &[PolicyTiming]) -> Vec<String> {
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if let Ok(contents) = std::fs::read_to_string(&path) {
            let ingested: Vec<String> = contents
                .lines()
                .filter(|l| l.contains("\"simulate_arrivals/"))
                .map(|l| l.trim().to_string())
                .collect();
            if !ingested.is_empty() {
                return ingested;
            }
        }
    }
    timings
        .iter()
        .map(|t| {
            format!(
                "{{\"id\":\"simulate_arrivals/{}\",\"mean_ns\":{},\"min_ns\":{},\"elems_per_iter\":{}}}",
                t.policy,
                t.mean_ns,
                t.min_ns,
                pipeline::ARRIVALS
            )
        })
        .collect()
}

/// The directory `BENCH_<n>.json` snapshots are written to and read from
/// (`bench --history`).
pub fn snapshot_dir() -> PathBuf {
    repo_root()
}

/// Locate the repository root (nearest ancestor with a `Cargo.toml`) so the
/// snapshot lands beside the sources regardless of the invocation directory.
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() {
            // Prefer the outermost Cargo.toml (the workspace root).
            let mut root = dir;
            while let Some(parent) = root.parent() {
                if parent.join("Cargo.toml").is_file() {
                    root = parent;
                } else {
                    break;
                }
            }
            return root.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// The next free `BENCH_<n>.json` in `dir` (trajectory numbering).
fn next_snapshot_path(dir: &Path) -> PathBuf {
    for n in 1.. {
        let candidate = dir.join(format!("BENCH_{n}.json"));
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("some index is always free");
}

/// The most recent existing `BENCH_<n>.json` in `dir`, if any.
fn latest_snapshot_path(dir: &Path) -> Option<PathBuf> {
    let mut latest = None;
    for n in 1.. {
        let candidate = dir.join(format!("BENCH_{n}.json"));
        if !candidate.exists() {
            return latest;
        }
        latest = Some(candidate);
    }
    unreachable!("some index is always free");
}

/// Extract `(policy, sim_tuples_per_s)` pairs from a snapshot's
/// `reference_workload.policies` lines (the exact shape [`render_json`]
/// writes — one policy object per line).
fn parse_policy_rates(contents: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in contents.lines() {
        let Some(p) = line.find("\"policy\": \"") else {
            continue;
        };
        let rest = &line[p + 11..];
        let Some(p_end) = rest.find('"') else {
            continue;
        };
        let policy = rest[..p_end].to_string();
        let Some(r) = line.find("\"sim_tuples_per_s\": ") else {
            continue;
        };
        let rest = &line[r + 20..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(rate) = rest[..end].trim().parse::<f64>() {
            out.push((policy, rate));
        }
    }
    out
}

/// Band of per-policy throughput ratios (new/old) considered measurement
/// noise between snapshots on the same host.
const NOISE_BAND: (f64, f64) = (0.6, 1.67);
/// Below this ratio the run is treated as a real regression, not noise.
const REGRESSION_FLOOR: f64 = 0.25;

/// Compare this run's steady-state per-policy throughput against the latest
/// existing snapshot. Ratios outside [`NOISE_BAND`] are called out; a drop
/// below [`REGRESSION_FLOOR`] aborts the run so a gross slowdown cannot
/// silently enter the trajectory.
fn check_against_previous(dir: &Path, timings: &[PolicyTiming]) -> Result<()> {
    let Some(prev_path) = latest_snapshot_path(dir) else {
        return Ok(());
    };
    // A previous snapshot that cannot be read (permissions, truncation, a
    // directory squatting on the name) must not block recording a new one —
    // the comparison is advisory; the trajectory is the product.
    let contents = match std::fs::read_to_string(&prev_path) {
        Ok(c) => c,
        Err(e) => {
            println!(
                "  warning: could not read previous snapshot {} ({e}); skipping comparison",
                prev_path.display()
            );
            return Ok(());
        }
    };
    let prev = parse_policy_rates(&contents);
    if prev.is_empty() {
        println!(
            "  (no per-policy rates found in {}; skipping comparison)",
            prev_path.display()
        );
        return Ok(());
    }
    println!(
        "== bench: vs {} ==",
        prev_path.file_name().unwrap_or_default().to_string_lossy()
    );
    for t in timings {
        let Some((_, old_rate)) = prev.iter().find(|(p, _)| p == t.policy) else {
            continue;
        };
        let new_rate = pipeline::ARRIVALS as f64 / t.wall_s;
        let ratio = new_rate / old_rate;
        let note = if ratio < NOISE_BAND.0 || ratio > NOISE_BAND.1 {
            "  <- outside noise band"
        } else {
            ""
        };
        println!(
            "  {:>5}: {old_rate:.0} -> {new_rate:.0} tuples/s ({ratio:.2}x){note}",
            t.policy
        );
        assert!(
            ratio >= REGRESSION_FLOOR,
            "gross throughput regression for {}: {:.0} -> {:.0} simulated tuples/s \
             ({:.2}x, floor {}x) vs {}",
            t.policy,
            old_rate,
            new_rate,
            ratio,
            REGRESSION_FLOOR,
            prev_path.display()
        );
    }
    Ok(())
}

/// Compare telemetry-on against telemetry-off throughput on the same run.
/// Sampling at the bench cadence should be free to within measurement noise
/// ([`NOISE_BAND`]); a drop below [`REGRESSION_FLOOR`] aborts the run — that
/// would mean the sink hooks leak cost into the hot path.
fn check_telemetry_overhead(timings: &[PolicyTiming]) {
    println!("== bench: telemetry overhead (on/off throughput ratio) ==");
    for t in timings {
        let ratio = t.wall_s / t.telemetry_wall_s.max(1e-12);
        let note = if ratio < NOISE_BAND.0 || ratio > NOISE_BAND.1 {
            "  <- outside noise band"
        } else {
            ""
        };
        println!(
            "  {:>5}: {:.3} s off, {:.3} s on ({} snapshots, {ratio:.2}x){note}",
            t.policy, t.wall_s, t.telemetry_wall_s, t.telemetry_samples
        );
        assert!(
            ratio >= REGRESSION_FLOOR,
            "telemetry sampling slowed {} beyond the regression floor: \
             {:.3} s off vs {:.3} s on ({:.2}x, floor {}x)",
            t.policy,
            t.wall_s,
            t.telemetry_wall_s,
            ratio,
            REGRESSION_FLOOR
        );
    }
}

/// Compare governor-on against governor-off throughput on the same run.
/// The governor samples on a virtual-time cadence and is a no-op object
/// when idle, so arming it should cost nothing to within measurement noise
/// ([`NOISE_BAND`]); a drop below [`REGRESSION_FLOOR`] aborts the run —
/// that would mean the feedback loop leaks cost into the hot path. The
/// per-run transition count is printed (and recorded in the snapshot) so a
/// flapping ladder is visible in the trajectory.
fn check_governor_overhead(timings: &[PolicyTiming]) {
    println!("== bench: governor overhead (on/off throughput ratio) ==");
    for t in timings {
        let ratio = t.wall_s / t.governed_wall_s.max(1e-12);
        let note = if ratio < NOISE_BAND.0 || ratio > NOISE_BAND.1 {
            "  <- outside noise band"
        } else {
            ""
        };
        println!(
            "  {:>5}: {:.3} s off, {:.3} s on ({} transitions, {ratio:.2}x){note}",
            t.policy, t.wall_s, t.governed_wall_s, t.governor_transitions
        );
        assert!(
            ratio >= REGRESSION_FLOOR,
            "the overload governor slowed {} beyond the regression floor: \
             {:.3} s off vs {:.3} s on ({:.2}x, floor {}x)",
            t.policy,
            t.wall_s,
            t.governed_wall_s,
            ratio,
            REGRESSION_FLOOR
        );
    }
}

/// Compare adaptation-on against adaptation-off throughput under the same
/// miscalibrated, policy-switching-governed fixture. Both runs carry the
/// identical (deliberately heavier) fault workload, so the ratio isolates
/// what re-estimation itself costs; the estimator is O(1) per execution and
/// the meta-scheduler piggybacks on the governor cadence, so that should be
/// little ([`NOISE_BAND`] is still generous: the adaptive run schedules
/// differently by design, so some drift is honest work, not overhead). A
/// drop below [`REGRESSION_FLOOR`] aborts the run — that would mean
/// re-estimation leaks cost into the per-tuple hot path. Update and switch
/// counts are printed (and recorded in the snapshot) so a thrashing
/// estimator is visible in the trajectory.
fn check_adaptive_overhead(timings: &[PolicyTiming]) {
    println!(
        "== bench: adaptive-stack overhead (on/off throughput ratio, miscalibrated baseline) =="
    );
    for t in timings {
        let ratio = t.miscal_wall_s / t.adaptive_wall_s.max(1e-12);
        let note = if ratio < NOISE_BAND.0 || ratio > NOISE_BAND.1 {
            "  <- outside noise band"
        } else {
            ""
        };
        println!(
            "  {:>5}: {:.3} s off, {:.3} s on ({} updates, {} switches, {ratio:.2}x){note}",
            t.policy, t.miscal_wall_s, t.adaptive_wall_s, t.statics_updates, t.policy_switches
        );
        assert!(
            ratio >= REGRESSION_FLOOR,
            "online re-estimation slowed {} beyond the regression floor: \
             {:.3} s off vs {:.3} s on ({:.2}x, floor {}x)",
            t.policy,
            t.miscal_wall_s,
            t.adaptive_wall_s,
            ratio,
            REGRESSION_FLOOR
        );
    }
}

/// Run the large-q scheduling-point sweep (all variants, q ≤ `max_q`),
/// printing one line per cell.
fn run_large_q(max_q: usize) -> Vec<LargeQCell> {
    println!("== bench: large-q scheduling points (q <= {max_q}) ==");
    large_q::sweep(max_q, |c| {
        println!(
            "  {:>13} q={:<7} {:>9.1} ns/point, {:>9.1} evals/point, \
             {:>5.1} B/query, digest {}",
            c.policy, c.q, c.ns_per_point, c.evals_per_point, c.bytes_per_query, c.digest
        );
    })
}

/// Evals/point growth allowed for a clustered variant across the whole
/// sweep (q grows 1000×; the exact scan grows exactly 1000×).
const LARGE_Q_EVALS_RATIO: f64 = 50.0;
/// Wall-time growth allowed for `C-BSD-log` from q=10³ to q=10⁵ (a 100×
/// q increase; the exact scan's wall cost grows ~100×).
const LARGE_Q_NS_RATIO: f64 = 8.0;
/// Resident policy bytes per registered query, unit + statics storage.
const LARGE_Q_BYTES_PER_QUERY: f64 = 200.0;

/// The sub-linearity gates over a finished large-q sweep. Operation-count
/// gates are deterministic; the wall-clock gate has an 8× allowance over a
/// 100× q increase, so host noise cannot trip it without a real slope.
fn check_large_q_gates(cells: &[LargeQCell]) {
    let cell = |policy: &str, q: usize| cells.iter().find(|c| c.policy == policy && c.q == q);
    let qs: Vec<usize> = {
        let mut qs: Vec<usize> = cells.iter().map(|c| c.q).collect();
        qs.sort_unstable();
        qs.dedup();
        qs
    };
    for c in cells {
        // The exact scan is the linear yardstick: it evaluates every ready
        // unit, so its evals/point must equal q exactly.
        if c.policy == "BSD-Exact" {
            assert_eq!(
                c.evals_per_point, c.q as f64,
                "exact BSD must evaluate every ready unit (q={})",
                c.q
            );
        }
        assert!(
            c.bytes_per_query > 0.0 && c.bytes_per_query < LARGE_Q_BYTES_PER_QUERY,
            "{} at q={} uses {:.1} resident bytes/query (cap {})",
            c.policy,
            c.q,
            c.bytes_per_query,
            LARGE_Q_BYTES_PER_QUERY
        );
    }
    let (&q_lo, &q_hi) = match (qs.first(), qs.last()) {
        (Some(lo), Some(hi)) if hi / lo >= 100 => (lo, hi),
        _ => return, // smoke-scale sweep: growth gates need a q span
    };
    for name in large_q::clustered_names() {
        let (lo, hi) = match (cell(name, q_lo), cell(name, q_hi)) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => continue,
        };
        let ratio = hi.evals_per_point / lo.evals_per_point.max(1.0);
        println!(
            "  gate {name}: evals/point {:.1} -> {:.1} over q {q_lo} -> {q_hi} ({ratio:.1}x)",
            lo.evals_per_point, hi.evals_per_point
        );
        assert!(
            ratio < LARGE_Q_EVALS_RATIO,
            "{name} scheduling cost is not sub-linear: evals/point grew {ratio:.1}x \
             (cap {LARGE_Q_EVALS_RATIO}x) while q grew {}x",
            q_hi / q_lo
        );
    }
    if let (Some(lo), Some(hi)) = (cell("C-BSD-log", 1_000), cell("C-BSD-log", 100_000)) {
        let ratio = hi.ns_per_point / lo.ns_per_point.max(1.0);
        println!(
            "  gate C-BSD-log: {:.1} -> {:.1} ns/point over q 1k -> 100k ({ratio:.2}x)",
            lo.ns_per_point, hi.ns_per_point
        );
        assert!(
            ratio < LARGE_Q_NS_RATIO,
            "C-BSD-log wall cost grew {ratio:.2}x from q=1k to q=100k \
             (cap {LARGE_Q_NS_RATIO}x)"
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    cfg: &ExpConfig,
    cores: usize,
    timings: &[PolicyTiming],
    runtime: &[RuntimeTiming],
    sweep_cfg: &ExpConfig,
    serial_s: f64,
    parallel_s: f64,
    par_jobs: usize,
    large_q_cells: Option<&[LargeQCell]>,
) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "{{").unwrap();
    writeln!(w, "  \"schema\": \"hcq-bench-v1\",").unwrap();
    writeln!(
        w,
        "  \"host\": {{\"cores\": {}, \"cores_detected\": {cores}, \"jobs\": {}}},",
        default_jobs(),
        cfg.jobs
    )
    .unwrap();
    writeln!(w, "  \"reference_workload\": {{").unwrap();
    writeln!(
        w,
        "    \"queries\": 60, \"cost_classes\": 5, \"utilization\": 0.9, \"arrivals\": {},",
        pipeline::ARRIVALS
    )
    .unwrap();
    writeln!(w, "    \"policies\": [").unwrap();
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        writeln!(
            w,
            "      {{\"policy\": \"{}\", \"wall_s\": {:.6}, \"sim_tuples_per_s\": {:.1}, \
             \"sched_evals_per_point\": {:.4}, \"emitted\": {}, \
             \"telemetry_wall_s\": {:.6}, \"telemetry_tuples_per_s\": {:.1}, \
             \"telemetry_samples\": {}, \
             \"governed_wall_s\": {:.6}, \"governed_tuples_per_s\": {:.1}, \
             \"governor_transitions\": {}, \
             \"miscal_wall_s\": {:.6}, \
             \"adaptive_wall_s\": {:.6}, \"adaptive_tuples_per_s\": {:.1}, \
             \"statics_updates\": {}, \"policy_switches\": {}}}{}",
            t.policy,
            t.wall_s,
            pipeline::ARRIVALS as f64 / t.wall_s,
            t.evals_per_point,
            t.emitted,
            t.telemetry_wall_s,
            pipeline::ARRIVALS as f64 / t.telemetry_wall_s.max(1e-12),
            t.telemetry_samples,
            t.governed_wall_s,
            pipeline::ARRIVALS as f64 / t.governed_wall_s.max(1e-12),
            t.governor_transitions,
            t.miscal_wall_s,
            t.adaptive_wall_s,
            pipeline::ARRIVALS as f64 / t.adaptive_wall_s.max(1e-12),
            t.statics_updates,
            t.policy_switches,
            comma
        )
        .unwrap();
    }
    writeln!(w, "    ]").unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"sweep_speedup\": {{").unwrap();
    writeln!(
        w,
        "    \"cells\": {}, \"queries\": {}, \"arrivals\": {},",
        PolicyKind::ALL.len() * ExpConfig::UTILIZATIONS.len(),
        sweep_cfg.queries,
        sweep_cfg.arrivals
    )
    .unwrap();
    // On a single-core host "serial vs parallel" measures timeslicing
    // overhead, not parallelism — annotate honestly instead of recording a
    // ~1.0x number that reads as a regression in the trajectory.
    let speedup = if cores < 2 {
        "\"n/a (single-core host)\"".to_string()
    } else {
        format!("{:.2}", serial_s / parallel_s.max(1e-9))
    };
    writeln!(
        w,
        "    \"serial_s\": {serial_s:.3}, \"parallel_s\": {parallel_s:.3}, \
         \"parallel_jobs\": {par_jobs}, \"speedup\": {speedup}",
    )
    .unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"runtime\": {{").unwrap();
    writeln!(
        w,
        "    \"policy\": \"HNR\", \"arrivals\": {RUNTIME_ARRIVALS}, \"points\": ["
    )
    .unwrap();
    for (i, t) in runtime.iter().enumerate() {
        let comma = if i + 1 < runtime.len() { "," } else { "" };
        writeln!(
            w,
            "      {{\"threads\": {}, \"wall_s\": {:.6}, \"tuples_per_s\": {:.1}, \
             \"stolen\": {}}}{}",
            t.threads, t.wall_s, t.tuples_per_s, t.stolen, comma
        )
        .unwrap();
    }
    writeln!(w, "    ],").unwrap();
    let scaling = match (
        runtime.iter().find(|t| t.threads == 1),
        runtime.iter().find(|t| t.threads == 2),
    ) {
        (Some(t1), Some(t2)) if cores >= 2 => {
            format!("{:.2}", t1.wall_s / t2.wall_s.max(1e-12))
        }
        _ => "\"n/a (single-core host)\"".to_string(),
    };
    writeln!(w, "    \"scaling_1_to_2\": {scaling}").unwrap();
    writeln!(w, "  }},").unwrap();
    if let Some(cells) = large_q_cells {
        writeln!(w, "  \"large_q\": {{").unwrap();
        writeln!(w, "    \"clusters\": {},", large_q::CLUSTERS).unwrap();
        writeln!(w, "    \"cells\": [").unwrap();
        for (i, c) in cells.iter().enumerate() {
            let comma = if i + 1 < cells.len() { "," } else { "" };
            writeln!(
                w,
                "      {{\"policy\": \"{}\", \"q\": {}, \"points\": {}, \
                 \"ns_per_point\": {:.1}, \"evals_per_point\": {:.2}, \
                 \"work_per_point\": {:.2}, \"bytes_per_query\": {:.1}, \
                 \"digest\": \"{}\"}}{}",
                c.policy,
                c.q,
                c.points,
                c.ns_per_point,
                c.evals_per_point,
                c.work_per_point,
                c.bytes_per_query,
                c.digest,
                comma
            )
            .unwrap();
        }
        writeln!(w, "    ]").unwrap();
        writeln!(w, "  }},").unwrap();
    }
    writeln!(w, "  \"criterion_pipeline\": [").unwrap();
    let entries = criterion_entries(timings);
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(w, "    {entry}{comma}").unwrap();
    }
    writeln!(w, "  ]").unwrap();
    writeln!(w, "}}").unwrap();
    out
}

/// Run the baseline benchmark and write the next `BENCH_<n>.json` snapshot
/// at the repository root. Returns the path written. When a previous
/// snapshot exists, this run's per-policy throughput is compared against it
/// first (see [`check_against_previous`]). With `large_q_max`, the large-q
/// scheduling-point sweep runs too (q ≤ the cap), its sub-linearity gates
/// are enforced, and its cells land in the snapshot's `large_q` section.
pub fn bench(cfg: &ExpConfig, large_q_max: Option<usize>) -> Result<PathBuf> {
    println!(
        "== bench: reference workload ({} policies) ==",
        pipeline::POLICIES.len()
    );
    let timings = time_reference_workload();
    for t in &timings {
        println!(
            "  {:>5}: {:.3} s/run, {:.0} simulated tuples/s, {:.4} evals/point",
            t.policy,
            t.wall_s,
            pipeline::ARRIVALS as f64 / t.wall_s,
            t.evals_per_point
        );
    }
    check_telemetry_overhead(&timings);
    check_governor_overhead(&timings);
    check_adaptive_overhead(&timings);
    let cores = detected_cores();
    println!("== bench: wall-clock runtime thread scaling ({cores} cores detected) ==");
    let runtime_timings = time_runtime();
    for t in &runtime_timings {
        println!(
            "  {} thread{}: {:.4} s, {:.0} tuples/s, {} stolen",
            t.threads,
            if t.threads == 1 { " " } else { "s" },
            t.wall_s,
            t.tuples_per_s,
            t.stolen
        );
    }
    check_runtime_scaling(cores, &runtime_timings);
    println!("== bench: sweep serial vs parallel ==");
    let (sweep_cfg, serial_s, parallel_s, par_jobs) = time_sweep(cfg);
    println!(
        "  serial {:.2} s, {} jobs {:.2} s, speedup {:.2}x",
        serial_s,
        par_jobs,
        parallel_s,
        serial_s / parallel_s.max(1e-9)
    );
    let large_q_cells = large_q_max.map(|max_q| {
        let cells = run_large_q(max_q);
        check_large_q_gates(&cells);
        cells
    });
    let root = repo_root();
    check_against_previous(&root, &timings)?;
    let json = render_json(
        cfg,
        cores,
        &timings,
        &runtime_timings,
        &sweep_cfg,
        serial_s,
        parallel_s,
        par_jobs,
        large_q_cells.as_deref(),
    );
    write_snapshot(&root, &json)
}

/// Write `json` to the next free `BENCH_<n>.json` with create-new
/// semantics: the snapshot trajectory is append-only, so an existing file
/// is never clobbered — a concurrent bench run (or a stale `next` guess)
/// just advances to the following index.
fn write_snapshot(root: &Path, json: &str) -> Result<PathBuf> {
    use std::io::Write as _;
    loop {
        let path = next_snapshot_path(root);
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                f.write_all(json.as_bytes()).map_err(|e| {
                    HcqError::Io(std::io::Error::new(
                        e.kind(),
                        format!("writing bench snapshot {}: {e}", path.display()),
                    ))
                })?;
                return Ok(path);
            }
            // Lost the index race to another writer: take the next one.
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => {
                return Err(HcqError::Io(std::io::Error::new(
                    e.kind(),
                    format!("creating bench snapshot {}: {e}", path.display()),
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_ordered() {
        let timings = vec![
            PolicyTiming {
                policy: "FCFS",
                wall_s: 0.01,
                min_ns: 9_000_000,
                mean_ns: 10_000_000,
                emitted: 480,
                evals_per_point: 1.0,
                telemetry_wall_s: 0.0125,
                telemetry_samples: 21,
                governed_wall_s: 0.0125,
                governor_transitions: 2,
                miscal_wall_s: 0.0140,
                adaptive_wall_s: 0.0125,
                statics_updates: 96,
                policy_switches: 1,
            },
            PolicyTiming {
                policy: "BSD",
                wall_s: 0.02,
                min_ns: 19_000_000,
                mean_ns: 20_000_000,
                emitted: 470,
                evals_per_point: 37.25,
                telemetry_wall_s: 0.02,
                telemetry_samples: 21,
                governed_wall_s: 0.02,
                governor_transitions: 0,
                miscal_wall_s: 0.02,
                adaptive_wall_s: 0.02,
                statics_updates: 0,
                policy_switches: 0,
            },
        ];
        let cfg = ExpConfig {
            jobs: 4,
            ..ExpConfig::default()
        };
        let cells = vec![
            fixed_cell("BSD-Exact", 1_000, 1_000.0, 120.0),
            fixed_cell("C-BSD-log", 1_000, 9.0, 260.0),
        ];
        let runtime = fixed_runtime();
        let json = render_json(&cfg, 4, &timings, &runtime, &cfg, 1.0, 0.5, 4, Some(&cells));
        assert!(json.contains("\"schema\": \"hcq-bench-v1\""));
        assert!(json.contains("\"cores_detected\": 4"));
        assert!(json.contains("\"runtime\": {"));
        assert!(json.contains("\"threads\": 2, \"wall_s\": 0.055000"));
        assert!(json.contains("\"scaling_1_to_2\": 1.82"));
        assert!(json.contains("\"large_q\""));
        assert!(json.contains("\"policy\": \"C-BSD-log\", \"q\": 1000"));
        assert!(json.contains("\"digest\": \"00000000deadbeef\""));
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.contains("\"sim_tuples_per_s\": 50000.0"));
        assert!(json.contains("\"sched_evals_per_point\": 37.25"));
        assert!(json.contains("\"telemetry_tuples_per_s\": 40000.0"));
        assert!(json.contains("\"telemetry_samples\": 21"));
        assert!(json.contains("\"governed_tuples_per_s\": 40000.0"));
        assert!(json.contains("\"governor_transitions\": 2"));
        assert!(json.contains("\"miscal_wall_s\": 0.014000"));
        assert!(json.contains("\"adaptive_tuples_per_s\": 40000.0"));
        assert!(json.contains("\"statics_updates\": 96"));
        assert!(json.contains("\"policy_switches\": 1"));
        assert!(json.contains("simulate_arrivals/FCFS"));
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_numbering_skips_existing() {
        let dir = std::env::temp_dir().join("hcq_bench_numbering");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        assert!(next_snapshot_path(&dir).ends_with("BENCH_2.json"));
        assert!(latest_snapshot_path(&dir)
            .unwrap()
            .ends_with("BENCH_1.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_snapshot_absent_when_none_written() {
        let dir = std::env::temp_dir().join("hcq_bench_empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_snapshot_path(&dir).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_rates_round_trip_through_snapshot_json() {
        let timings = vec![PolicyTiming {
            policy: "HNR",
            wall_s: 0.05,
            min_ns: 50_000_000,
            mean_ns: 50_000_000,
            emitted: 480,
            evals_per_point: 4.5,
            telemetry_wall_s: 0.055,
            telemetry_samples: 21,
            governed_wall_s: 0.052,
            governor_transitions: 4,
            miscal_wall_s: 0.058,
            adaptive_wall_s: 0.053,
            statics_updates: 96,
            policy_switches: 1,
        }];
        let cfg = ExpConfig::default();
        let json = render_json(&cfg, 4, &timings, &fixed_runtime(), &cfg, 1.0, 0.5, 4, None);
        let rates = parse_policy_rates(&json);
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, "HNR");
        // The untelemetered rate, not `telemetry_tuples_per_s` from the
        // same line — the trajectory gate compares like against like.
        let expected = pipeline::ARRIVALS as f64 / 0.05;
        assert!((rates[0].1 - expected).abs() / expected < 1e-3);
        assert!(parse_policy_rates("{}").is_empty());
    }

    fn fixed_runtime() -> Vec<RuntimeTiming> {
        vec![
            RuntimeTiming {
                threads: 1,
                wall_s: 0.1,
                tuples_per_s: 300_000.0,
                stolen: 0,
            },
            RuntimeTiming {
                threads: 2,
                wall_s: 0.055,
                tuples_per_s: 545_454.0,
                stolen: 120,
            },
            RuntimeTiming {
                threads: 4,
                wall_s: 0.03,
                tuples_per_s: 1_000_000.0,
                stolen: 400,
            },
        ]
    }

    #[test]
    fn single_core_speedups_are_annotated_not_asserted() {
        // On a 1-core host both the sweep speedup and the runtime scaling
        // must be recorded as "n/a", and the scaling gate must not fire
        // even though 2 threads measured *slower* than 1 (pure
        // timeslicing overhead).
        let cfg = ExpConfig::default();
        let mut runtime = fixed_runtime();
        runtime[1].wall_s = runtime[0].wall_s * 1.3;
        check_runtime_scaling(1, &runtime);
        let json = render_json(
            &cfg,
            1,
            &fixed_timings(),
            &runtime,
            &cfg,
            1.0,
            0.98,
            2,
            None,
        );
        assert!(json.contains("\"cores_detected\": 1"));
        assert!(json.contains("\"speedup\": \"n/a (single-core host)\""));
        assert!(json.contains("\"scaling_1_to_2\": \"n/a (single-core host)\""));
        assert!(!json.contains("\"speedup\": 1.02"));
        let opens = json.matches(['{', '[']).count();
        assert_eq!(opens, json.matches(['}', ']']).count());
    }

    #[test]
    fn runtime_scaling_gate_fires_on_multicore_regression() {
        let mut runtime = fixed_runtime();
        // 2 threads slower than 1 on a 4-core host: a real regression.
        runtime[1].wall_s = runtime[0].wall_s * 1.1;
        let outcome = std::panic::catch_unwind(|| check_runtime_scaling(4, &runtime));
        assert!(outcome.is_err(), "sub-1.0x scaling on 4 cores must abort");
        check_runtime_scaling(4, &fixed_runtime());
    }

    #[test]
    fn snapshot_writes_never_clobber() {
        let dir = std::env::temp_dir().join(format!("hcq_bench_noclobber_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_1.json"), "keep me").unwrap();
        let p2 = write_snapshot(&dir, "{\"n\":2}").unwrap();
        assert!(p2.ends_with("BENCH_2.json"));
        let p3 = write_snapshot(&dir, "{\"n\":3}").unwrap();
        assert!(p3.ends_with("BENCH_3.json"));
        assert_eq!(
            std::fs::read_to_string(dir.join("BENCH_1.json")).unwrap(),
            "keep me",
            "existing snapshots are never overwritten"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn fixed_cell(policy: &'static str, q: usize, evals: f64, ns: f64) -> LargeQCell {
        LargeQCell {
            policy,
            q,
            points: 100,
            ns_per_point: ns,
            evals_per_point: evals,
            work_per_point: evals * 3.0,
            bytes_per_query: 110.0,
            digest: "00000000deadbeef".to_string(),
        }
    }

    #[test]
    fn large_q_gates_pass_on_sub_linear_cells() {
        // Exact BSD linear (evals == q), clustered flat: all gates green.
        let cells = vec![
            fixed_cell("BSD-Exact", 1_000, 1_000.0, 500.0),
            fixed_cell("C-BSD-log", 1_000, 9.0, 120.0),
            fixed_cell("BSD-Exact", 1_000_000, 1_000_000.0, 500_000.0),
            fixed_cell("C-BSD-log", 1_000_000, 90.0, 300.0),
        ];
        check_large_q_gates(&cells);
    }

    #[test]
    fn large_q_gate_rejects_linear_clustered_cost() {
        let cells = vec![
            fixed_cell("C-BSD-log", 1_000, 1_000.0, 120.0),
            fixed_cell("C-BSD-log", 1_000_000, 1_000_000.0, 120.0),
        ];
        let outcome = std::panic::catch_unwind(|| check_large_q_gates(&cells));
        assert!(outcome.is_err(), "a 1000x evals growth must abort the run");
    }

    #[test]
    fn large_q_gate_rejects_wall_clock_slope() {
        let mut slow = fixed_cell("C-BSD-log", 100_000, 9.0, 1_000.0);
        slow.ns_per_point = 1_000.0;
        let cells = vec![fixed_cell("C-BSD-log", 1_000, 9.0, 100.0), slow];
        let outcome = std::panic::catch_unwind(|| check_large_q_gates(&cells));
        assert!(outcome.is_err(), "a 10x ns/point slope must abort the run");
    }

    #[test]
    fn large_q_gate_rejects_memory_blowup() {
        let mut fat = fixed_cell("C-BSD-log", 1_000, 9.0, 120.0);
        fat.bytes_per_query = 4_096.0;
        let outcome = std::panic::catch_unwind(|| check_large_q_gates(&[fat]));
        assert!(outcome.is_err(), "4 KiB/query must abort the run");
    }

    #[test]
    fn large_q_gates_skip_growth_checks_on_smoke_spans() {
        // A single-q smoke run has no growth to measure; only the per-cell
        // memory/linearity checks apply.
        let cells = vec![
            fixed_cell("BSD-Exact", 10_000, 10_000.0, 500.0),
            fixed_cell("C-BSD-log", 10_000, 2_000.0, 120.0),
        ];
        check_large_q_gates(&cells);
    }

    fn fixed_timings() -> Vec<PolicyTiming> {
        vec![PolicyTiming {
            policy: "FCFS",
            wall_s: 0.01,
            min_ns: 10_000_000,
            mean_ns: 10_000_000,
            emitted: 480,
            evals_per_point: 1.0,
            telemetry_wall_s: 0.0125,
            telemetry_samples: 21,
            governed_wall_s: 0.011,
            governor_transitions: 0,
            miscal_wall_s: 0.010,
            adaptive_wall_s: 0.012,
            statics_updates: 96,
            policy_switches: 1,
        }]
    }

    #[test]
    fn telemetry_overhead_gate_accepts_noise_and_rejects_regressions() {
        // 0.8x on/off ratio is inside the floor: no panic.
        check_telemetry_overhead(&fixed_timings());
        let mut slow = fixed_timings();
        slow[0].telemetry_wall_s = slow[0].wall_s / (REGRESSION_FLOOR / 2.0);
        let outcome = std::panic::catch_unwind(|| check_telemetry_overhead(&slow));
        assert!(outcome.is_err(), "a 0.125x ratio must abort the run");
    }

    #[test]
    fn governor_overhead_gate_accepts_noise_and_rejects_regressions() {
        // ~0.9x on/off ratio is well inside the floor: no panic.
        check_governor_overhead(&fixed_timings());
        let mut slow = fixed_timings();
        slow[0].governed_wall_s = slow[0].wall_s / (REGRESSION_FLOOR / 2.0);
        let outcome = std::panic::catch_unwind(|| check_governor_overhead(&slow));
        assert!(outcome.is_err(), "a 0.125x ratio must abort the run");
    }

    #[test]
    fn adaptive_overhead_gate_accepts_noise_and_rejects_regressions() {
        // ~0.83x on/off ratio is well inside the floor: no panic.
        check_adaptive_overhead(&fixed_timings());
        let mut slow = fixed_timings();
        slow[0].adaptive_wall_s = slow[0].miscal_wall_s / (REGRESSION_FLOOR / 2.0);
        let outcome = std::panic::catch_unwind(|| check_adaptive_overhead(&slow));
        assert!(outcome.is_err(), "a 0.125x ratio must abort the run");
    }

    #[test]
    fn first_run_has_no_previous_snapshot_and_passes() {
        let dir = std::env::temp_dir().join("hcq_bench_first_run");
        std::fs::create_dir_all(&dir).unwrap();
        // No BENCH_*.json at all: the comparison must be a clean no-op.
        assert!(check_against_previous(&dir, &fixed_timings()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_previous_snapshot_warns_instead_of_erroring() {
        let dir = std::env::temp_dir().join("hcq_bench_unreadable_prev");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A directory squatting on the snapshot name: `exists()` is true,
        // `read_to_string` fails. Before the fix this aborted the run.
        std::fs::create_dir_all(dir.join("BENCH_1.json")).unwrap();
        assert!(check_against_previous(&dir, &fixed_timings()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unparseable_previous_snapshot_skips_comparison() {
        let dir = std::env::temp_dir().join("hcq_bench_garbage_prev");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_1.json"), "not json at all").unwrap();
        assert!(check_against_previous(&dir, &fixed_timings()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
