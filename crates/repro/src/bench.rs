//! `repro bench`: the benchmark-trajectory baseline (`BENCH_*.json`).
//!
//! Times two things and writes one JSON snapshot per invocation:
//!
//! 1. **Reference workload** — the shared [`hcq_bench::pipeline`] fixture
//!    (the same cells the Criterion `pipeline` bench runs), per policy:
//!    wall-clock seconds per simulation and simulated source tuples per
//!    wall-clock second. The Criterion-compatible view of the same samples
//!    is emitted under `criterion_pipeline` with Criterion's benchmark ids,
//!    so JSON trajectories and `cargo bench` trends stay comparable. When
//!    the `CRITERION_JSON_OUT` environment variable names a readable
//!    JSON-lines file (as written by the criterion shim), its
//!    `simulate_arrivals/*` entries are ingested verbatim instead.
//! 2. **Sweep speedup** — the fig5–10 policy × load sweep run serially and
//!    with worker threads, recording both wall times and their ratio. The
//!    measured speedup is whatever the host delivers (a single-core machine
//!    honestly reports ~1.0×); outputs are byte-identical either way.
//!
//! Snapshots are numbered: the first run writes `BENCH_1.json` at the
//! repository root, the next `BENCH_2.json`, and so on, forming a
//! performance trajectory across commits. See `DESIGN.md` for the schema.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hcq_bench::pipeline;
use hcq_core::PolicyKind;

use crate::harness::{default_jobs, ExpConfig, SweepResults};

/// Timed samples for one policy on the reference workload.
#[derive(Debug)]
struct PolicyTiming {
    policy: &'static str,
    /// Mean wall-clock seconds per simulation.
    wall_s: f64,
    /// Fastest observed run, Criterion-style, in nanoseconds.
    min_ns: u128,
    /// Mean run in nanoseconds.
    mean_ns: u128,
    /// Output tuples emitted by the simulation (identical across samples).
    emitted: u64,
}

/// Warm-up runs per policy before timing.
const WARMUP: usize = 1;
/// Timed runs per policy.
const SAMPLES: usize = 3;

fn time_reference_workload() -> Vec<PolicyTiming> {
    let w = pipeline::workload();
    pipeline::POLICIES
        .iter()
        .map(|&kind| {
            for _ in 0..WARMUP {
                pipeline::run(kind, &w);
            }
            let mut emitted = 0;
            let mut total_ns = 0u128;
            let mut min_ns = u128::MAX;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                let report = pipeline::run(kind, &w);
                let ns = t0.elapsed().as_nanos();
                total_ns += ns;
                min_ns = min_ns.min(ns);
                emitted = report.emitted;
            }
            let mean_ns = total_ns / SAMPLES as u128;
            PolicyTiming {
                policy: kind.name(),
                wall_s: mean_ns as f64 / 1e9,
                min_ns,
                mean_ns,
                emitted,
            }
        })
        .collect()
}

/// Time the fig5–10 sweep at a bench-friendly scale, serially and with
/// worker threads. Returns `(sweep_cfg, serial_s, parallel_s, par_jobs)`.
fn time_sweep(cfg: &ExpConfig) -> (ExpConfig, f64, f64, usize) {
    let mut sweep_cfg = cfg.clone();
    // Cap the per-cell cost so `repro bench` stays seconds, not minutes,
    // at the default experiment scale; flags can push it either way.
    sweep_cfg.queries = sweep_cfg.queries.min(60);
    sweep_cfg.arrivals = sweep_cfg.arrivals.min(1_000);
    let par_jobs = cfg.jobs.max(2);

    sweep_cfg.jobs = 1;
    let t0 = Instant::now();
    let _ = SweepResults::collect(&sweep_cfg, |_| {});
    let serial_s = t0.elapsed().as_secs_f64();

    sweep_cfg.jobs = par_jobs;
    let t0 = Instant::now();
    let _ = SweepResults::collect(&sweep_cfg, |_| {});
    let parallel_s = t0.elapsed().as_secs_f64();

    (sweep_cfg, serial_s, parallel_s, par_jobs)
}

/// Criterion-shaped entries for the `criterion_pipeline` section: either
/// ingested from a `CRITERION_JSON_OUT` JSON-lines file (the criterion
/// shim's machine-readable output) or derived from our own samples.
fn criterion_entries(timings: &[PolicyTiming]) -> Vec<String> {
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if let Ok(contents) = std::fs::read_to_string(&path) {
            let ingested: Vec<String> = contents
                .lines()
                .filter(|l| l.contains("\"simulate_arrivals/"))
                .map(|l| l.trim().to_string())
                .collect();
            if !ingested.is_empty() {
                return ingested;
            }
        }
    }
    timings
        .iter()
        .map(|t| {
            format!(
                "{{\"id\":\"simulate_arrivals/{}\",\"mean_ns\":{},\"min_ns\":{},\"elems_per_iter\":{}}}",
                t.policy,
                t.mean_ns,
                t.min_ns,
                pipeline::ARRIVALS
            )
        })
        .collect()
}

/// Locate the repository root (nearest ancestor with a `Cargo.toml`) so the
/// snapshot lands beside the sources regardless of the invocation directory.
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() {
            // Prefer the outermost Cargo.toml (the workspace root).
            let mut root = dir;
            while let Some(parent) = root.parent() {
                if parent.join("Cargo.toml").is_file() {
                    root = parent;
                } else {
                    break;
                }
            }
            return root.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// The next free `BENCH_<n>.json` in `dir` (trajectory numbering).
fn next_snapshot_path(dir: &Path) -> PathBuf {
    for n in 1.. {
        let candidate = dir.join(format!("BENCH_{n}.json"));
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("some index is always free");
}

fn render_json(
    cfg: &ExpConfig,
    timings: &[PolicyTiming],
    sweep_cfg: &ExpConfig,
    serial_s: f64,
    parallel_s: f64,
    par_jobs: usize,
) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "{{").unwrap();
    writeln!(w, "  \"schema\": \"hcq-bench-v1\",").unwrap();
    writeln!(
        w,
        "  \"host\": {{\"cores\": {}, \"jobs\": {}}},",
        default_jobs(),
        cfg.jobs
    )
    .unwrap();
    writeln!(w, "  \"reference_workload\": {{").unwrap();
    writeln!(
        w,
        "    \"queries\": 60, \"cost_classes\": 5, \"utilization\": 0.9, \"arrivals\": {},",
        pipeline::ARRIVALS
    )
    .unwrap();
    writeln!(w, "    \"policies\": [").unwrap();
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        writeln!(
            w,
            "      {{\"policy\": \"{}\", \"wall_s\": {:.6}, \"sim_tuples_per_s\": {:.1}, \"emitted\": {}}}{}",
            t.policy,
            t.wall_s,
            pipeline::ARRIVALS as f64 / t.wall_s,
            t.emitted,
            comma
        )
        .unwrap();
    }
    writeln!(w, "    ]").unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"sweep_speedup\": {{").unwrap();
    writeln!(
        w,
        "    \"cells\": {}, \"queries\": {}, \"arrivals\": {},",
        PolicyKind::ALL.len() * ExpConfig::UTILIZATIONS.len(),
        sweep_cfg.queries,
        sweep_cfg.arrivals
    )
    .unwrap();
    writeln!(
        w,
        "    \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \"parallel_jobs\": {}, \"speedup\": {:.2}",
        serial_s,
        parallel_s,
        par_jobs,
        serial_s / parallel_s.max(1e-9)
    )
    .unwrap();
    writeln!(w, "  }},").unwrap();
    writeln!(w, "  \"criterion_pipeline\": [").unwrap();
    let entries = criterion_entries(timings);
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(w, "    {entry}{comma}").unwrap();
    }
    writeln!(w, "  ]").unwrap();
    writeln!(w, "}}").unwrap();
    out
}

/// Run the baseline benchmark and write the next `BENCH_<n>.json` snapshot
/// at the repository root. Returns the path written.
pub fn bench(cfg: &ExpConfig) -> PathBuf {
    println!(
        "== bench: reference workload ({} policies) ==",
        pipeline::POLICIES.len()
    );
    let timings = time_reference_workload();
    for t in &timings {
        println!(
            "  {:>5}: {:.3} s/run, {:.0} simulated tuples/s",
            t.policy,
            t.wall_s,
            pipeline::ARRIVALS as f64 / t.wall_s
        );
    }
    println!("== bench: sweep serial vs parallel ==");
    let (sweep_cfg, serial_s, parallel_s, par_jobs) = time_sweep(cfg);
    println!(
        "  serial {:.2} s, {} jobs {:.2} s, speedup {:.2}x",
        serial_s,
        par_jobs,
        parallel_s,
        serial_s / parallel_s.max(1e-9)
    );
    let json = render_json(cfg, &timings, &sweep_cfg, serial_s, parallel_s, par_jobs);
    let path = next_snapshot_path(&repo_root());
    std::fs::write(&path, json).expect("write bench snapshot");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_ordered() {
        let timings = vec![
            PolicyTiming {
                policy: "FCFS",
                wall_s: 0.01,
                min_ns: 9_000_000,
                mean_ns: 10_000_000,
                emitted: 480,
            },
            PolicyTiming {
                policy: "BSD",
                wall_s: 0.02,
                min_ns: 19_000_000,
                mean_ns: 20_000_000,
                emitted: 470,
            },
        ];
        let cfg = ExpConfig {
            jobs: 4,
            ..ExpConfig::default()
        };
        let json = render_json(&cfg, &timings, &cfg, 1.0, 0.5, 4);
        assert!(json.contains("\"schema\": \"hcq-bench-v1\""));
        assert!(json.contains("\"speedup\": 2.00"));
        assert!(json.contains("\"sim_tuples_per_s\": 50000.0"));
        assert!(json.contains("simulate_arrivals/FCFS"));
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_numbering_skips_existing() {
        let dir = std::env::temp_dir().join("hcq_bench_numbering");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        assert!(next_snapshot_path(&dir).ends_with("BENCH_2.json"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
