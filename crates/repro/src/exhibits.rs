//! One function per table/figure of §9.
//!
//! Every multi-cell exhibit fans its independent `(policy, load, seed, ...)`
//! cells out over [`run_jobs`] with `cfg.jobs` workers. Cells are pure
//! functions of the configuration and rows are assembled from the
//! index-ordered results, so the emitted tables and CSVs are byte-identical
//! at any job count.

use std::sync::atomic::AtomicUsize;

use hcq_common::{det, Nanos, StreamId};
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, Clustering, PolicyKind, SharingStrategy};
use hcq_engine::{
    simulate, simulate_monitored, AdaptConfig, AdaptMode, AdmissionMode, SimConfig, SimReport,
    Simulator, VecTelemetry,
};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::{
    DisconnectSource, DisconnectSpec, FaultSpec, FaultySource, PoissonSource, TraceReplay,
};
use hcq_workload::{multi_stream, shared, MultiStreamConfig, SharedConfig};

use crate::harness::{run_jobs, tick_progress, ExpConfig, SweepResults};
use crate::plot::Chart;
use crate::table::{fnum, AsciiTable};

/// A named policy factory: exhibits that fan variant runs out to worker
/// threads cannot move a prebuilt `Box<dyn Policy>` into a job (policies are
/// not `Send`), so each job builds its own instance from one of these.
type PolicyFactory = Box<dyn Fn() -> Box<dyn hcq_core::Policy> + Sync>;

/// Print one whole `  what: done/total cells done` line per finished cell.
/// Shared by the parallel exhibits below; whole-line writes keyed by a
/// completed-cell counter stay readable when workers finish concurrently.
fn print_tick(done: &AtomicUsize, total: usize, what: &str) {
    tick_progress(&|msg: &str| println!("{msg}"), done, total, what);
}

/// A rendered exhibit: the table plus where its CSV landed.
#[derive(Debug)]
pub struct ExhibitOutput {
    /// Exhibit id, e.g. `fig5`.
    pub name: &'static str,
    /// The series/rows the paper plots.
    pub table: AsciiTable,
}

impl ExhibitOutput {
    pub(crate) fn emit(self, cfg: &ExpConfig) -> ExhibitOutput {
        let path = cfg.out_dir.join(format!("{}.csv", self.name));
        self.table
            .write_csv(&path)
            .unwrap_or_else(|e| eprintln!("warning: could not write {path:?}: {e}"));
        println!("== {} ==\n{}", self.name, self.table.render());
        self
    }
}

// ---------------------------------------------------------------- Table 1

/// The four Table 1 numbers `(HR response, HR slowdown, HNR response, HNR
/// slowdown)` in milliseconds/ratios — used by the scorecard.
pub fn table1_values() -> (f64, f64, f64, f64) {
    let hr = run_example1(PolicyKind::Hr);
    let hnr = run_example1(PolicyKind::Hnr);
    (
        hr.qos.avg_response_ms,
        hr.qos.avg_slowdown,
        hnr.qos.avg_response_ms,
        hnr.qos.avg_slowdown,
    )
}

/// Table 1 (§3.4, Example 1): HR vs HNR on the two-query example. Exact.
pub fn table1(cfg: &ExpConfig) -> ExhibitOutput {
    let mut t = AsciiTable::new(vec!["policy", "response_ms", "slowdown"]);
    for kind in [PolicyKind::Hr, PolicyKind::Hnr] {
        let r = run_example1(kind);
        t.row(vec![
            kind.name().to_string(),
            fnum(r.qos.avg_response_ms),
            fnum(r.qos.avg_slowdown),
        ]);
    }
    ExhibitOutput {
        name: "table1",
        table: t,
    }
    .emit(cfg)
}

fn run_example1(kind: PolicyKind) -> SimReport {
    fn key_of(seed: u64, id: u64) -> u64 {
        det::unit_range(det::splitmix64(det::mix2(seed, id)), 1, 100)
    }
    // Example 1 needs exactly the middle tuple to pass Q2's 0.33-selective
    // predicate (`key ≤ 33`).
    let seed = (0..10_000u64)
        .find(|&s| key_of(s, 0) > 33 && key_of(s, 1) <= 33 && key_of(s, 2) > 33)
        .expect("suitable seed");
    let run = |kind: PolicyKind| -> SimReport {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(Nanos::from_millis(5), 1.0)
                .build()
                .unwrap(),
        );
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(Nanos::from_millis(2), 0.33)
                .build()
                .unwrap(),
        );
        let trace = TraceReplay::from_arrivals(vec![Nanos::ZERO; 3]).unwrap();
        simulate(
            &plan,
            &StreamRates::none(),
            vec![Box::new(trace)],
            kind.build(),
            SimConfig::new(3).with_seed(seed),
        )
        .unwrap()
    };
    run(kind)
}

// ----------------------------------------------------------- Figures 5–10

/// Figures 5–10 share one policy × utilization sweep; regenerate them all.
pub fn fig5_to_10(cfg: &ExpConfig) -> Vec<ExhibitOutput> {
    println!(
        "running policy x load sweep ({} queries, {} arrivals per cell)...",
        cfg.queries, cfg.arrivals
    );
    let sweep = SweepResults::collect(cfg, |msg| println!("{msg}"));
    let series = |name: &'static str,
                  policies: &[PolicyKind],
                  metric: fn(&SimReport) -> f64|
     -> ExhibitOutput {
        let mut header = vec!["utilization".to_string()];
        header.extend(policies.iter().map(|p| p.name().to_string()));
        let mut t = AsciiTable::new(header);
        for &util in &ExpConfig::UTILIZATIONS {
            let mut row = vec![format!("{util:.2}")];
            for &p in policies {
                row.push(fnum(metric(sweep.get(p, util))));
            }
            t.row(row);
        }
        // Terminal sketch of the figure (log-y; series letters per policy).
        let mut chart = Chart::new(
            format!("{name} (log y)"),
            ExpConfig::UTILIZATIONS
                .iter()
                .map(|u| format!("{u:.2}"))
                .collect(),
        );
        for &p in policies {
            chart = chart.series(
                p.name(),
                ExpConfig::UTILIZATIONS
                    .iter()
                    .map(|&u| metric(sweep.get(p, u)))
                    .collect(),
            );
        }
        let out = ExhibitOutput { name, table: t }.emit(cfg);
        println!("{}", chart.render(12));
        out
    };

    let avg_sd = |r: &SimReport| r.qos.avg_slowdown;
    let avg_rt = |r: &SimReport| r.qos.avg_response_ms;
    let max_sd = |r: &SimReport| r.qos.max_slowdown;
    let l2 = |r: &SimReport| r.qos.l2_slowdown;

    let classic = [
        PolicyKind::RoundRobin,
        PolicyKind::Fcfs,
        PolicyKind::Srpt,
        PolicyKind::Hr,
        PolicyKind::Hnr,
    ];
    let slowdown_trio = [PolicyKind::Hnr, PolicyKind::Lsf, PolicyKind::Bsd];

    vec![
        series("fig5", &classic, avg_sd),
        series("fig6", &classic, avg_rt),
        series(
            "fig7",
            &[PolicyKind::Hr, PolicyKind::Hnr, PolicyKind::Lsf],
            max_sd,
        ),
        series("fig8", &slowdown_trio, max_sd),
        series("fig9", &slowdown_trio, avg_sd),
        series("fig10", &slowdown_trio, l2),
        fig11_from_sweep(cfg, &sweep),
    ]
}

/// Figure 11: per-class slowdown of the low-cost queries (cost class 0) by
/// selectivity bucket, at 0.9 utilization.
fn fig11_from_sweep(cfg: &ExpConfig, sweep: &SweepResults) -> ExhibitOutput {
    let policies = [PolicyKind::Hr, PolicyKind::Hnr, PolicyKind::Bsd];
    let mut header = vec!["selectivity".to_string()];
    header.extend(policies.iter().map(|p| p.name().to_string()));
    let mut t = AsciiTable::new(header);
    for bucket in 0..10u8 {
        let mut row = vec![format!("{:.2}", 0.05 + 0.1 * f64::from(bucket))];
        let mut any = false;
        for &p in &policies {
            let r = sweep.get(p, 0.9);
            let cell = r
                .classes
                .by_cost_class(0)
                .into_iter()
                .find(|(b, _)| *b == bucket)
                .map(|(_, s)| {
                    any = true;
                    fnum(s.avg_slowdown)
                })
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        if any {
            t.row(row);
        }
    }
    ExhibitOutput {
        name: "fig11",
        table: t,
    }
    .emit(cfg)
}

/// Figure 11 standalone entry point (runs just the three needed cells).
pub fn fig11(cfg: &ExpConfig) -> ExhibitOutput {
    let policies = [PolicyKind::Hr, PolicyKind::Hnr, PolicyKind::Bsd];
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, policies.len(), |i| {
        let r = cfg.run_single(0.9, policies[i].build());
        print_tick(&done, policies.len(), "fig11");
        r
    });
    let mut header = vec!["selectivity".to_string()];
    header.extend(policies.iter().map(|p| p.name().to_string()));
    let mut t = AsciiTable::new(header);
    for bucket in 0..10u8 {
        let mut row = vec![format!("{:.2}", 0.05 + 0.1 * f64::from(bucket))];
        let mut any = false;
        for r in &reports {
            let cell = r
                .classes
                .by_cost_class(0)
                .into_iter()
                .find(|(b, _)| *b == bucket)
                .map(|(_, s)| {
                    any = true;
                    fnum(s.avg_slowdown)
                })
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        if any {
            t.row(row);
        }
    }
    ExhibitOutput {
        name: "fig11",
        table: t,
    }
    .emit(cfg)
}

// -------------------------------------------------------------- Figure 12

/// Figure 12: ℓ2 norm of slowdowns for multi-stream (window-join) queries.
pub fn fig12(cfg: &ExpConfig) -> ExhibitOutput {
    let policies = [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Hnr,
        PolicyKind::Bsd,
    ];
    // Window joins fan out; scale the population down and the inter-arrival
    // up so window occupancies stay in the paper's regime.
    let queries = (cfg.queries / 3).max(10);
    let mean_gap = Nanos::from_millis(500);
    let mut header = vec!["utilization".to_string()];
    header.extend(policies.iter().map(|p| p.name().to_string()));
    let mut t = AsciiTable::new(header);
    let utils = [0.5, 0.6, 0.7, 0.8, 0.9];
    // One cell per (utilization, policy); each job rebuilds its (fully
    // deterministic) workload so cells stay independent.
    let cells: Vec<(f64, PolicyKind)> = utils
        .iter()
        .flat_map(|&u| policies.iter().map(move |&p| (u, p)))
        .collect();
    let done = AtomicUsize::new(0);
    let l2s: Vec<f64> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (util, p) = cells[i];
        let w = multi_stream(&MultiStreamConfig {
            queries,
            cost_classes: 5,
            utilization: util,
            mean_gap,
            window_range: (Nanos::from_secs(1), Nanos::from_secs(10)),
            seed: cfg.seed,
        })
        .expect("valid multi-stream config");
        let sources: Vec<Box<dyn hcq_streams::ArrivalSource>> = vec![
            Box::new(PoissonSource::new(mean_gap, cfg.seed ^ 0xA)),
            Box::new(PoissonSource::new(mean_gap, cfg.seed ^ 0xB)),
        ];
        let r = simulate(
            &w.plan,
            &w.rates,
            sources,
            p.build(),
            SimConfig::new(cfg.arrivals).with_seed(cfg.seed),
        )
        .expect("valid simulation");
        print_tick(&done, cells.len(), "fig12");
        r.qos.l2_slowdown
    });
    for (ui, &util) in utils.iter().enumerate() {
        let mut row = vec![format!("{util:.2}")];
        for pi in 0..policies.len() {
            row.push(fnum(l2s[ui * policies.len() + pi]));
        }
        t.row(row);
    }
    ExhibitOutput {
        name: "fig12",
        table: t,
    }
    .emit(cfg)
}

// -------------------------------------------------------------- Figure 13

/// Figure 13: ℓ2 vs number of clusters at 0.95 utilization, with scheduling
/// overhead charged at the cheapest operator's cost.
pub fn fig13(cfg: &ExpConfig) -> ExhibitOutput {
    let util = 0.95;
    let ms: Vec<usize> = vec![2, 4, 6, 8, 10, 12, 16, 24, 32];
    let mut t = AsciiTable::new(vec![
        "clusters",
        "HNR",
        "BSD-Hypothetical",
        "BSD-Uniform",
        "BSD-Logarithmic",
    ]);
    /// One fig13 cell: which run a job performs.
    #[derive(Clone, Copy)]
    enum Cell {
        HnrRef,
        Hypothetical,
        Uniform(usize),
        Logarithmic(usize),
    }
    let mut cells = vec![Cell::HnrRef, Cell::Hypothetical];
    for &m in &ms {
        cells.push(Cell::Uniform(m));
        cells.push(Cell::Logarithmic(m));
    }
    let done = AtomicUsize::new(0);
    let l2s: Vec<f64> = run_jobs(cfg.jobs, cells.len(), |i| {
        let r = match cells[i] {
            Cell::HnrRef => {
                cfg.run_single_with(util, PolicyKind::Hnr.build(), |c| c.with_overhead(true))
            }
            Cell::Hypothetical => cfg.run_single(util, PolicyKind::Bsd.build()),
            Cell::Uniform(m) => cfg.run_single_with(
                util,
                Box::new(ClusteredBsdPolicy::new(ClusterConfig::uniform(m))),
                |c| c.with_overhead(true),
            ),
            Cell::Logarithmic(m) => cfg.run_single_with(
                util,
                Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(m))),
                |c| c.with_overhead(true),
            ),
        };
        print_tick(&done, cells.len(), "fig13");
        r.qos.l2_slowdown
    });
    let (hnr, hypo) = (l2s[0], l2s[1]);
    for (mi, &m) in ms.iter().enumerate() {
        t.row(vec![
            m.to_string(),
            fnum(hnr),
            fnum(hypo),
            fnum(l2s[2 + 2 * mi]),
            fnum(l2s[3 + 2 * mi]),
        ]);
    }
    ExhibitOutput {
        name: "fig13",
        table: t,
    }
    .emit(cfg)
}

// -------------------------------------------------------------- Figure 14

/// Figure 14: incremental implementation gains of the §6 techniques at
/// m = 12 logarithmic clusters, 0.95 utilization.
pub fn fig14(cfg: &ExpConfig) -> ExhibitOutput {
    let util = 0.95;
    let m = 12;
    let clustered = |use_fagin: bool, batch: bool| -> PolicyFactory {
        Box::new(move || {
            Box::new(ClusteredBsdPolicy::new(ClusterConfig {
                clustering: Clustering::Logarithmic,
                clusters: m,
                use_fagin,
                batch,
            }))
        })
    };
    // Factories, not prebuilt policies: each worker thread builds its own
    // instance (`Box<dyn Policy>` cannot move across threads).
    type Variant = (&'static str, PolicyFactory, bool);
    let variants: Vec<Variant> = vec![
        ("BSD-Naive", Box::new(|| PolicyKind::Bsd.build()), true),
        ("+Log-Clustering", clustered(false, false), true),
        ("+FA-Pruning", clustered(true, false), true),
        ("+Clustered-Processing", clustered(true, true), true),
        (
            "BSD-Hypothetical",
            Box::new(|| PolicyKind::Bsd.build()),
            false,
        ),
    ];
    let mut t = AsciiTable::new(vec![
        "variant",
        "l2_slowdown",
        "ops_per_point",
        "overhead_share",
    ]);
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, variants.len(), |i| {
        let (_, factory, charge) = &variants[i];
        let r = cfg.run_single_with(util, factory(), |c| c.with_overhead(*charge));
        print_tick(&done, variants.len(), "fig14");
        r
    });
    for ((name, _, _), r) in variants.iter().zip(&reports) {
        let share = r.overhead_time.ratio(r.end_time.max(Nanos(1)));
        t.row(vec![
            name.to_string(),
            fnum(r.qos.l2_slowdown),
            fnum(r.ops_per_sched_point()),
            fnum(share),
        ]);
    }
    ExhibitOutput {
        name: "fig14",
        table: t,
    }
    .emit(cfg)
}

// --------------------------------------------------------------- Table 2

/// Table 2: operator sharing — Max vs Sum vs PDT priorities, measured on
/// the metric each policy optimizes.
pub fn table2(cfg: &ExpConfig) -> ExhibitOutput {
    let util = 0.9;
    let groups = (cfg.queries / 10).max(3);
    let mut t = AsciiTable::new(vec!["metric", "policy", "Max", "Sum", "PDT"]);
    let build = || {
        shared(&SharedConfig {
            groups,
            group_size: 10,
            cost_classes: 5,
            utilization: util,
            mean_gap: cfg.mean_gap,
            seed: cfg.seed,
        })
        .expect("valid shared config")
    };
    let strategies = [
        SharingStrategy::Max,
        SharingStrategy::Sum,
        SharingStrategy::Pdt,
    ];
    // One cell per (strategy, policy); row-major by strategy, HNR then BSD.
    let cells: Vec<(SharingStrategy, PolicyKind)> = strategies
        .iter()
        .flat_map(|&s| [PolicyKind::Hnr, PolicyKind::Bsd].map(move |p| (s, p)))
        .collect();
    let done = AtomicUsize::new(0);
    let values: Vec<f64> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (strat, kind) = cells[i];
        let w = build();
        let r = simulate(
            &w.plan,
            &w.rates,
            vec![cfg.source(0)],
            kind.build(),
            SimConfig::new(cfg.arrivals)
                .with_seed(cfg.seed)
                .with_sharing(strat),
        )
        .expect("valid simulation");
        print_tick(&done, cells.len(), "table2");
        match kind {
            PolicyKind::Hnr => r.qos.avg_slowdown,
            _ => r.qos.l2_slowdown,
        }
    });
    for (ri, (metric, policy)) in [("avg_slowdown", "HNR"), ("l2_norm", "BSD")]
        .into_iter()
        .enumerate()
    {
        t.row(vec![
            metric.to_string(),
            policy.to_string(),
            fnum(values[ri]),
            fnum(values[2 + ri]),
            fnum(values[4 + ri]),
        ]);
    }
    ExhibitOutput {
        name: "table2",
        table: t,
    }
    .emit(cfg)
}

// ------------------------------------------------- Extension: memory ablation

/// Extension exhibit (beyond the paper's figures): memory footprint versus
/// QoS across policies, including Chain (Babcock et al., SIGMOD'03 — the
/// memory-optimal policy the paper's Table 3 classifies). Chain should give
/// the lowest time-averaged queue population; the slowdown-oriented policies
/// pay some memory for their QoS.
pub fn ext_memory(cfg: &ExpConfig) -> ExhibitOutput {
    use hcq_core::StaticPolicy;
    use hcq_engine::{SchedulingLevel, SimModel};

    let util = 0.9;
    let w = cfg.workload(util);
    let model = SimModel::build(
        &w.plan,
        &w.rates,
        SchedulingLevel::Query,
        SharingStrategy::Pdt,
    )
    .expect("valid model");
    let chain_priorities = model.chain_priorities();

    let mut t = AsciiTable::new(vec![
        "policy",
        "avg_pending",
        "peak_pending",
        "avg_slowdown",
        "l2_slowdown",
    ]);
    let variants: Vec<(&'static str, PolicyFactory)> = vec![
        (
            "Chain",
            Box::new(move || Box::new(StaticPolicy::custom("Chain", chain_priorities.clone()))),
        ),
        ("FCFS", Box::new(|| PolicyKind::Fcfs.build())),
        ("RR", Box::new(|| PolicyKind::RoundRobin.build())),
        ("HR", Box::new(|| PolicyKind::Hr.build())),
        ("HNR", Box::new(|| PolicyKind::Hnr.build())),
        ("BSD", Box::new(|| PolicyKind::Bsd.build())),
    ];
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, variants.len(), |i| {
        let r = simulate(
            &w.plan,
            &w.rates,
            vec![cfg.source(0)],
            variants[i].1(),
            SimConfig::new(cfg.arrivals).with_seed(cfg.seed),
        )
        .expect("valid simulation");
        print_tick(&done, variants.len(), "ext_memory");
        r
    });
    for ((name, _), r) in variants.iter().zip(&reports) {
        t.row(vec![
            name.to_string(),
            fnum(r.avg_pending),
            r.peak_pending.to_string(),
            fnum(r.qos.avg_slowdown),
            fnum(r.qos.l2_slowdown),
        ]);
    }
    ExhibitOutput {
        name: "ext_memory",
        table: t,
    }
    .emit(cfg)
}

// ------------------------------------------------ Extension: the ℓp knob

/// Extension exhibit: the ℓp-norm generalization of BSD. The §4.2.2
/// derivation at exponent `p` gives priority `(S/(C̄·T^p))·W^(p−1)`, which
/// interpolates HNR (p = 1) → BSD (p = 2) → LSF-like (p → ∞). Sweeping `p`
/// shows the single knob trading average slowdown against maximum slowdown.
pub fn ext_lp(cfg: &ExpConfig) -> ExhibitOutput {
    use hcq_core::LpPolicy;
    let util = 0.95;
    let mut t = AsciiTable::new(vec!["policy", "avg_slowdown", "max_slowdown", "l2_norm"]);
    let mut variants: Vec<(String, PolicyFactory)> =
        vec![("HNR (=p1)".into(), Box::new(|| PolicyKind::Hnr.build()))];
    for p in [1.5, 2.0, 3.0, 6.0, 12.0] {
        variants.push((
            format!("Lp p={p}"),
            Box::new(move || Box::new(LpPolicy::new(p))),
        ));
    }
    variants.push(("LSF (~p inf)".into(), Box::new(|| PolicyKind::Lsf.build())));
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, variants.len(), |i| {
        let r = cfg.run_single(util, variants[i].1());
        print_tick(&done, variants.len(), "ext_lp");
        r
    });
    for ((name, _), r) in variants.iter().zip(&reports) {
        t.row(vec![
            name.clone(),
            fnum(r.qos.avg_slowdown),
            fnum(r.qos.max_slowdown),
            fnum(r.qos.l2_slowdown),
        ]);
    }
    ExhibitOutput {
        name: "ext_lp",
        table: t,
    }
    .emit(cfg)
}

// ------------------------------------- Extension: scheduling granularity

/// Extension exhibit: query-level (non-preemptive) versus operator-level
/// (preemptive) scheduling points (§6's two levels) for the same policies.
/// Preemption lets a newly arrived high-priority tuple interrupt a long
/// pipeline between operators, at the price of many more scheduling points.
pub fn ext_preemption(cfg: &ExpConfig) -> ExhibitOutput {
    use hcq_engine::SchedulingLevel;
    let util = 0.9;
    let mut t = AsciiTable::new(vec![
        "policy",
        "level",
        "avg_slowdown",
        "max_slowdown",
        "sched_points",
    ]);
    let cells: Vec<(PolicyKind, &'static str, SchedulingLevel)> =
        [PolicyKind::Hnr, PolicyKind::Bsd, PolicyKind::Lsf]
            .into_iter()
            .flat_map(|kind| {
                [
                    ("query", SchedulingLevel::Query),
                    ("operator", SchedulingLevel::Operator),
                ]
                .map(move |(label, level)| (kind, label, level))
            })
            .collect();
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (kind, _, level) = cells[i];
        let r = cfg.run_single_with(util, kind.build(), |c| c.with_level(level));
        print_tick(&done, cells.len(), "ext_preemption");
        r
    });
    for ((kind, label, _), r) in cells.iter().zip(&reports) {
        t.row(vec![
            kind.name().to_string(),
            label.to_string(),
            fnum(r.qos.avg_slowdown),
            fnum(r.qos.max_slowdown),
            r.sched_points.to_string(),
        ]);
    }
    ExhibitOutput {
        name: "ext_preemption",
        table: t,
    }
    .emit(cfg)
}

// --------------------------------------------------------------- Table 3

/// Table 3: the paper's taxonomy of priority-based CQ scheduling policies,
/// annotated with where each lives in this repository.
pub fn table3(cfg: &ExpConfig) -> ExhibitOutput {
    let mut t = AsciiTable::new(vec![
        "policy",
        "objective",
        "metric",
        "multi_cq",
        "join_cq",
        "implementation",
    ]);
    let rows: [(&str, &str, &str, &str, &str, &str); 9] = [
        (
            "RB",
            "average",
            "response time",
            "no",
            "yes",
            "operator-level HR",
        ),
        (
            "ML",
            "average",
            "response time",
            "no",
            "no",
            "operator-level HR (≈)",
        ),
        (
            "RR",
            "average",
            "response time",
            "yes",
            "no",
            "RoundRobinPolicy",
        ),
        (
            "HR",
            "average",
            "response time",
            "yes",
            "yes",
            "StaticPolicy::hr",
        ),
        (
            "HNR",
            "average",
            "slowdown",
            "yes",
            "yes",
            "StaticPolicy::hnr",
        ),
        ("LSF", "maximum", "slowdown", "yes", "yes", "LsfPolicy"),
        (
            "BSD",
            "l2",
            "slowdown",
            "yes",
            "yes",
            "BsdPolicy / ClusteredBsdPolicy",
        ),
        (
            "Chain",
            "maximum",
            "memory",
            "yes",
            "yes",
            "StaticPolicy::custom + chain_priorities",
        ),
        (
            "FAS",
            "average",
            "freshness",
            "yes",
            "no",
            "not implemented (out of scope)",
        ),
    ];
    for (p, o, m, mc, jc, imp) in rows {
        t.row(vec![p, o, m, mc, jc, imp]);
    }
    ExhibitOutput {
        name: "table3",
        table: t,
    }
    .emit(cfg)
}

// --------------------------------------------- Extension: overload management

/// True when every per-query work unit is accounted for: each source arrival
/// fans out to one unit per registered query, and each such unit must end the
/// run as exactly one of emitted, dropped, shed, expired (missed its
/// deadline), or still pending (queued or quarantined after an operator
/// failure — both are folded into `pending_end`).
fn conserved(r: &SimReport, queries: usize) -> bool {
    r.emitted + r.dropped + r.shed + r.expired + r.pending_end as u64 == r.arrivals * queries as u64
}

/// Per-unit queue bound used by the overload exhibits. Small enough that
/// past-saturation runs at the default scale actually hit it, large enough
/// that sub-saturation runs rarely do.
const OVERLOAD_CAPACITY: usize = 32;

/// The QoS-shedding watermark for an experiment scale: total pending load
/// (across all queues) of four tuples per registered query.
fn overload_watermark(cfg: &ExpConfig) -> usize {
    cfg.queries * 4
}

/// Extension exhibit: overload management. Sweeps utilization from below to
/// well past saturation under the bursty ON/OFF source and compares the
/// three admission modes: `unbounded` (the paper's setting — backlog and
/// slowdown grow without bound past ρ = 1), `droptail` (hard per-queue bound,
/// arrivals discarded blindly), and `qos-shed` (bounded queues plus
/// shedding the tuple with the lowest static `S/(C̄·T)` contribution once
/// total pending load passes the watermark). The `conserved` column checks
/// tuple conservation per cell and is asserted by the CI smoke job.
pub fn ext_overload(cfg: &ExpConfig) -> ExhibitOutput {
    const UTILS: [f64; 4] = [0.9, 1.1, 1.3, 1.5];
    let modes: [(&'static str, AdmissionMode); 3] = [
        ("unbounded", AdmissionMode::Unbounded),
        ("droptail", AdmissionMode::DropTail),
        ("qos-shed", AdmissionMode::QosShed),
    ];
    let policies = [
        PolicyKind::Fcfs,
        PolicyKind::Hnr,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
    ];
    let watermark = overload_watermark(cfg);
    let mut cells: Vec<(f64, usize, PolicyKind)> = Vec::new();
    for &u in &UTILS {
        for m in 0..modes.len() {
            for &p in &policies {
                cells.push((u, m, p));
            }
        }
    }
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (util, mode_idx, kind) = cells[i];
        let r = cfg.run_single_with(util, kind.build(), |c| match modes[mode_idx].1 {
            AdmissionMode::Unbounded => c,
            AdmissionMode::DropTail => c.with_admission(AdmissionMode::DropTail, OVERLOAD_CAPACITY),
            AdmissionMode::QosShed => c
                .with_admission(AdmissionMode::QosShed, OVERLOAD_CAPACITY)
                .with_watermark(watermark),
        });
        print_tick(&done, cells.len(), "ext_overload");
        r
    });
    let mut t = AsciiTable::new(vec![
        "utilization",
        "mode",
        "policy",
        "avg_slowdown",
        "shed_fraction",
        "peak_pending",
        "pending_end",
        "overload_share",
        "conserved",
    ]);
    for ((util, mode_idx, kind), r) in cells.iter().zip(&reports) {
        t.row(vec![
            format!("{util:.2}"),
            modes[*mode_idx].0.to_string(),
            kind.name().to_string(),
            fnum(r.qos.avg_slowdown),
            fnum(r.shed_fraction()),
            r.peak_pending.to_string(),
            r.pending_end.to_string(),
            fnum(r.overload_share()),
            if conserved(r, cfg.queries) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    ExhibitOutput {
        name: "ext_overload",
        table: t,
    }
    .emit(cfg)
}

// ------------------------------------------------ Extension: fault injection

/// Extension exhibit: robustness under injected faults. Each scenario runs
/// the single-stream workload at 0.9 utilization with QoS-aware shedding
/// armed, and perturbs it one way: `burst` and `stall` inject seeded source
/// faults ([`FaultySource`]); `miscost` runs every operator at a persistent,
/// seeded multiple of its calibrated cost (actual cost ≠ C̄ₓ), so the
/// policies schedule on misestimates. Conservation must hold in every cell
/// and nothing may panic — overload is absorbed by shedding instead.
pub fn ext_faults(cfg: &ExpConfig) -> ExhibitOutput {
    #[derive(Clone, Copy)]
    enum Scenario {
        Baseline,
        Burst,
        Stall,
        Miscost,
    }
    let util = 0.9;
    let scenarios: [(&'static str, Scenario); 4] = [
        ("baseline", Scenario::Baseline),
        ("burst", Scenario::Burst),
        ("stall", Scenario::Stall),
        ("miscost", Scenario::Miscost),
    ];
    let policies = [PolicyKind::Fcfs, PolicyKind::Hnr, PolicyKind::Bsd];
    let watermark = overload_watermark(cfg);
    let cells: Vec<(usize, PolicyKind)> = (0..scenarios.len())
        .flat_map(|s| policies.iter().map(move |&p| (s, p)))
        .collect();
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (scenario_idx, kind) = cells[i];
        let scenario = scenarios[scenario_idx].1;
        let w = cfg.workload(util);
        let mut sim_cfg = SimConfig::new(cfg.arrivals)
            .with_seed(cfg.seed)
            .with_admission(AdmissionMode::QosShed, OVERLOAD_CAPACITY)
            .with_watermark(watermark);
        if let Scenario::Miscost = scenario {
            sim_cfg = sim_cfg.with_cost_miscalibration(0.3, cfg.seed ^ 0xFA);
        }
        let source: Box<dyn hcq_streams::ArrivalSource> = match scenario {
            // A 5% chance per arrival of a 12-tuple volley inside one mean
            // gap: instantaneous load far past the calibrated utilization.
            Scenario::Burst => Box::new(FaultySource::new(
                cfg.source(0),
                FaultSpec::bursts(0.05, 12, cfg.mean_gap, cfg.seed ^ 0xB0),
            )),
            // A 1% chance per arrival that the source lags by 50 mean gaps.
            Scenario::Stall => Box::new(FaultySource::new(
                cfg.source(0),
                FaultSpec::stalls(0.01, cfg.mean_gap.scale(50.0), cfg.seed ^ 0x57),
            )),
            _ => cfg.source(0),
        };
        let r =
            simulate(&w.plan, &w.rates, vec![source], kind.build(), sim_cfg).unwrap_or_else(|e| {
                panic!(
                    "simulating fault scenario '{}' (seed={}): {e}",
                    scenarios[scenario_idx].0, cfg.seed
                )
            });
        print_tick(&done, cells.len(), "ext_faults");
        r
    });
    let mut t = AsciiTable::new(vec![
        "scenario",
        "policy",
        "avg_slowdown",
        "max_slowdown",
        "shed_fraction",
        "peak_pending",
        "overload_share",
        "conserved",
    ]);
    for ((scenario_idx, kind), r) in cells.iter().zip(&reports) {
        t.row(vec![
            scenarios[*scenario_idx].0.to_string(),
            kind.name().to_string(),
            fnum(r.qos.avg_slowdown),
            fnum(r.qos.max_slowdown),
            fnum(r.shed_fraction()),
            r.peak_pending.to_string(),
            fnum(r.overload_share()),
            if conserved(r, cfg.queries) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    ExhibitOutput {
        name: "ext_faults",
        table: t,
    }
    .emit(cfg)
}

// ------------------------------------------ Extension: transient dynamics

/// Deterministic ON/OFF burst schedule: each cycle of [`BURST_PER_CYCLE`]
/// arrivals lands in the first fifth of a `BURST_PER_CYCLE · mean_gap`
/// span (5× the calibrated rate), followed by four fifths of silence. The
/// average rate over a cycle equals `1/mean_gap`, so the workload's
/// utilization calibration still describes the long-run load while the ON
/// phase runs well past saturation.
const BURST_PER_CYCLE: u64 = 100;

fn burst_arrivals(arrivals: u64, mean_gap: Nanos) -> Vec<Nanos> {
    let on_gap = Nanos(mean_gap.as_nanos() / 5);
    let cycle = mean_gap * BURST_PER_CYCLE;
    (0..arrivals)
        .map(|i| cycle * (i / BURST_PER_CYCLE) + on_gap * (i % BURST_PER_CYCLE))
        .collect()
}

/// Extension exhibit: transient dynamics through an ON/OFF burst cycle,
/// rendered from sampled telemetry. Each policy runs the §8 workload at
/// 0.85 average utilization against the deterministic burst schedule with
/// telemetry sampled once per ON span (one fifth of a cycle), so every
/// cycle contributes five windows: the burst peak and four drain windows.
/// Rows are window boundaries; per policy, `pending` is the backlog gauge
/// at the boundary and `p95` the 95th-percentile slowdown of the emissions
/// in the window ending there (`-` once the policy's run has finished).
/// The companion `ext_transient_totals` table carries per-policy run totals
/// with the tuple-conservation check CI asserts on.
pub fn ext_transient(cfg: &ExpConfig) -> Vec<ExhibitOutput> {
    let util = 0.85;
    let policies = [PolicyKind::Hnr, PolicyKind::Lsf, PolicyKind::Bsd];
    let window = cfg.mean_gap * (BURST_PER_CYCLE / 5);
    let done = AtomicUsize::new(0);
    let runs = run_jobs(cfg.jobs, policies.len(), |i| {
        let w = cfg.workload(util);
        let arrivals = burst_arrivals(cfg.arrivals, cfg.mean_gap);
        let replay = TraceReplay::from_arrivals(arrivals).expect("ordered arrivals");
        let sim_cfg = SimConfig::new(cfg.arrivals)
            .with_seed(cfg.seed)
            .with_telemetry_cadence(window);
        let (report, sink) = simulate_monitored(
            &w.plan,
            &w.rates,
            vec![Box::new(replay)],
            policies[i].build(),
            sim_cfg,
            VecTelemetry::new(),
        )
        .unwrap_or_else(|e| {
            panic!(
                "simulating transient workload ({}, seed={}): {e}",
                policies[i].name(),
                cfg.seed
            )
        });
        print_tick(&done, policies.len(), "ext_transient");
        (report, sink.samples)
    });

    // Per policy: window boundary (ns) → (pending gauge, p95 slowdown of
    // the window ending there). The final end-of-run snapshot can coincide
    // with a boundary whose sample was already taken — its summary window
    // is then empty, so the first (boundary-stamped) sample wins.
    let per_policy: Vec<std::collections::BTreeMap<u64, (f64, f64)>> = runs
        .iter()
        .map(|(_, samples)| {
            let mut map = std::collections::BTreeMap::new();
            for s in samples {
                if s.at.as_nanos() % window.as_nanos() != 0 {
                    continue;
                }
                let pending = s.gauge("hcq_pending_tuples").expect("registered gauge");
                let p95 = s.summary("hcq_slowdown").expect("registered summary").p95;
                map.entry(s.at.as_nanos()).or_insert((pending, p95));
            }
            map
        })
        .collect();
    let boundaries: std::collections::BTreeSet<u64> =
        per_policy.iter().flat_map(|m| m.keys().copied()).collect();

    let mut columns = vec!["window_end_ms".to_string()];
    for p in &policies {
        columns.push(format!("{}_pending", p.name()));
        columns.push(format!("{}_p95", p.name()));
    }
    let mut t = AsciiTable::new(columns);
    for at in &boundaries {
        let mut row = vec![(at / 1_000_000).to_string()];
        for m in &per_policy {
            match m.get(at) {
                Some(&(pending, p95)) => {
                    row.push((pending as u64).to_string());
                    row.push(fnum(p95));
                }
                None => {
                    row.push("-".to_string());
                    row.push("-".to_string());
                }
            }
        }
        t.row(row);
    }

    let mut totals = AsciiTable::new(vec![
        "policy",
        "arrivals",
        "emitted",
        "dropped",
        "shed",
        "pending_end",
        "peak_pending",
        "conserved",
    ]);
    for (p, (r, _)) in policies.iter().zip(&runs) {
        totals.row(vec![
            p.name().to_string(),
            r.arrivals.to_string(),
            r.emitted.to_string(),
            r.dropped.to_string(),
            r.shed.to_string(),
            r.pending_end.to_string(),
            r.peak_pending.to_string(),
            if conserved(r, cfg.queries) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }

    vec![
        ExhibitOutput {
            name: "ext_transient",
            table: t,
        }
        .emit(cfg),
        ExhibitOutput {
            name: "ext_transient_totals",
            table: totals,
        }
        .emit(cfg),
    ]
}

// --------------------------------------- Extension: graceful degradation

/// Extension exhibit: closed-loop recovery through injected fault episodes.
///
/// Three scenarios perturb the §8 single-stream workload at 0.9 utilization:
/// `burst` (seeded arrival volleys far past the calibrated rate),
/// `disconnect` (the source drops out and reconnects with exponential
/// backoff, losing arrivals while down), and `quarantine` (transient
/// operator failures park tuples for a cooldown before retrying). Each runs
/// twice — `static` keeps the paper's unbounded admission, `governed` arms
/// the [`ExpConfig::governor`] feedback loop — under windowed telemetry.
///
/// `ext_recovery` plots the backlog gauge and windowed p95 slowdown per
/// (scenario, mode) column: the governed runs should shed through each
/// episode and return to their pre-fault p95 band instead of compounding
/// backlog. `ext_recovery_totals` carries run totals (expired, operator
/// failures, governor transitions) with the conservation check the CI smoke
/// job greps for.
pub fn ext_recovery(cfg: &ExpConfig) -> Vec<ExhibitOutput> {
    #[derive(Clone, Copy)]
    enum Scenario {
        Burst,
        Disconnect,
        Quarantine,
    }
    let util = 0.9;
    let window = cfg.mean_gap * (BURST_PER_CYCLE / 5);
    let scenarios: [(&'static str, Scenario); 3] = [
        ("burst", Scenario::Burst),
        ("disconnect", Scenario::Disconnect),
        ("quarantine", Scenario::Quarantine),
    ];
    let cells: Vec<(usize, bool)> = (0..scenarios.len())
        .flat_map(|s| [false, true].map(move |governed| (s, governed)))
        .collect();
    let done = AtomicUsize::new(0);
    let runs = run_jobs(cfg.jobs, cells.len(), |i| {
        let (scenario_idx, governed) = cells[i];
        let scenario = scenarios[scenario_idx].1;
        let w = cfg.workload(util);
        let mut sim_cfg = SimConfig::new(cfg.arrivals)
            .with_seed(cfg.seed)
            .with_telemetry_cadence(window);
        if let Scenario::Quarantine = scenario {
            sim_cfg = sim_cfg.with_op_failures(0.15, cfg.mean_gap * 4, 2);
        }
        if governed {
            sim_cfg = sim_cfg.with_governor(cfg.governor());
        }
        let source: Box<dyn hcq_streams::ArrivalSource> = match scenario {
            // A 5% chance per arrival of a 12-tuple volley inside one mean
            // gap — the same episode shape `ext_faults` uses.
            Scenario::Burst => Box::new(FaultySource::new(
                cfg.source(0),
                FaultSpec::bursts(0.05, 12, cfg.mean_gap, cfg.seed ^ 0xB0),
            )),
            // A 1% chance per arrival that the feed drops; reconnection
            // backs off exponentially and only lands with probability 0.7
            // per attempt, so downtime windows vary in length.
            Scenario::Disconnect => Box::new(DisconnectSource::new(
                cfg.source(0),
                DisconnectSpec {
                    disconnect_prob: 0.01,
                    retry_base: cfg.mean_gap * 10,
                    retry_factor: 2.0,
                    retry_jitter: 0.25,
                    max_retries: 6,
                    reconnect_prob: 0.7,
                    seed: cfg.seed ^ 0xD15C,
                },
            )),
            Scenario::Quarantine => cfg.source(0),
        };
        let (report, sink) = simulate_monitored(
            &w.plan,
            &w.rates,
            vec![source],
            PolicyKind::Hnr.build(),
            sim_cfg,
            VecTelemetry::new(),
        )
        .unwrap_or_else(|e| {
            panic!(
                "simulating recovery scenario '{}' (governed={governed}, seed={}): {e}",
                scenarios[scenario_idx].0, cfg.seed
            )
        });
        print_tick(&done, cells.len(), "ext_recovery");
        (report, sink.samples)
    });

    // Per cell: window boundary (ns) → (pending gauge, p95 slowdown of the
    // window ending there); boundary-stamped samples win over the end-of-run
    // snapshot, exactly as in `ext_transient`.
    let per_cell: Vec<std::collections::BTreeMap<u64, (f64, f64)>> = runs
        .iter()
        .map(|(_, samples)| {
            let mut map = std::collections::BTreeMap::new();
            for s in samples {
                if s.at.as_nanos() % window.as_nanos() != 0 {
                    continue;
                }
                let pending = s.gauge("hcq_pending_tuples").expect("registered gauge");
                let p95 = s.summary("hcq_slowdown").expect("registered summary").p95;
                map.entry(s.at.as_nanos()).or_insert((pending, p95));
            }
            map
        })
        .collect();
    let boundaries: std::collections::BTreeSet<u64> =
        per_cell.iter().flat_map(|m| m.keys().copied()).collect();

    let mode_name = |governed: bool| if governed { "gov" } else { "static" };
    let mut columns = vec!["window_end_ms".to_string()];
    for &(scenario_idx, governed) in &cells {
        let label = format!("{}_{}", scenarios[scenario_idx].0, mode_name(governed));
        columns.push(format!("{label}_pending"));
        columns.push(format!("{label}_p95"));
    }
    let mut t = AsciiTable::new(columns);
    for at in &boundaries {
        let mut row = vec![(at / 1_000_000).to_string()];
        for m in &per_cell {
            match m.get(at) {
                Some(&(pending, p95)) => {
                    row.push((pending as u64).to_string());
                    row.push(fnum(p95));
                }
                None => {
                    row.push("-".to_string());
                    row.push("-".to_string());
                }
            }
        }
        t.row(row);
    }

    let mut totals = AsciiTable::new(vec![
        "scenario",
        "mode",
        "emitted",
        "dropped",
        "shed",
        "expired",
        "pending_end",
        "peak_pending",
        "op_failures",
        "disconnects",
        "lost_arrivals",
        "transitions",
        "avg_slowdown",
        "max_slowdown",
        "conserved",
    ]);
    for (&(scenario_idx, governed), (r, _)) in cells.iter().zip(&runs) {
        totals.row(vec![
            scenarios[scenario_idx].0.to_string(),
            mode_name(governed).to_string(),
            r.emitted.to_string(),
            r.dropped.to_string(),
            r.shed.to_string(),
            r.expired.to_string(),
            r.pending_end.to_string(),
            r.peak_pending.to_string(),
            r.op_failures.to_string(),
            r.source_disconnects.to_string(),
            r.source_lost_arrivals.to_string(),
            r.governor_transitions.to_string(),
            fnum(r.qos.avg_slowdown),
            fnum(r.qos.max_slowdown),
            if conserved(r, cfg.queries) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }

    vec![
        ExhibitOutput {
            name: "ext_recovery",
            table: t,
        }
        .emit(cfg),
        ExhibitOutput {
            name: "ext_recovery_totals",
            table: totals,
        }
        .emit(cfg),
    ]
}

// ------------------------------------------- Extension: seed sensitivity

/// Extension exhibit: robustness of the headline orderings across workload
/// seeds. Each row is an independent draw of the §8 workload (parameters
/// *and* arrivals); the orderings the paper reports should hold for every
/// seed, not just a lucky one.
pub fn ext_seeds(cfg: &ExpConfig) -> ExhibitOutput {
    let util = 0.9;
    let mut t = AsciiTable::new(vec![
        "seed",
        "hnr_best_avg",
        "hr_best_resp",
        "lsf_best_max",
        "bsd_best_l2",
    ]);
    let policies = [
        PolicyKind::Hnr,
        PolicyKind::Hr,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
        PolicyKind::Fcfs,
    ];
    let seeds: Vec<u64> = (0..5u64).map(|s| cfg.seed.wrapping_add(s * 7919)).collect();
    // One cell per (seed, policy): 25 independent simulations.
    let cells: Vec<(u64, PolicyKind)> = seeds
        .iter()
        .flat_map(|&seed| policies.iter().map(move |&p| (seed, p)))
        .collect();
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (seed, kind) = cells[i];
        let seeded = ExpConfig {
            seed,
            ..cfg.clone()
        };
        let r = seeded.run_single(util, kind.build());
        print_tick(&done, cells.len(), "ext_seeds");
        r
    });
    for (si, &seed) in seeds.iter().enumerate() {
        let by = |pi: usize| &reports[si * policies.len() + pi];
        let (hnr, hr, lsf, bsd, fcfs) = (by(0), by(1), by(2), by(3), by(4));
        let mark = |ok: bool| if ok { "yes" } else { "NO" }.to_string();
        t.row(vec![
            seed.to_string(),
            mark(
                hnr.qos.avg_slowdown < hr.qos.avg_slowdown
                    && hnr.qos.avg_slowdown < fcfs.qos.avg_slowdown,
            ),
            mark(hr.qos.avg_response_ms <= hnr.qos.avg_response_ms),
            mark(
                lsf.qos.max_slowdown < hnr.qos.max_slowdown
                    && lsf.qos.max_slowdown < bsd.qos.max_slowdown,
            ),
            mark(
                bsd.qos.l2_slowdown < hnr.qos.l2_slowdown
                    && bsd.qos.l2_slowdown < lsf.qos.l2_slowdown,
            ),
        ]);
    }
    ExhibitOutput {
        name: "ext_seeds",
        table: t,
    }
    .emit(cfg)
}

// ---------------------------------------- Extension: scheduler overhead

/// Extension exhibit: the §6 scheduler-cost comparison, measured in exact
/// operation counts instead of wall time. Sweeps the number of registered
/// queries `q` and runs four BSD implementations at 0.95 utilization:
/// the exact `O(q)` argmax scan, uniform and logarithmic Φ-clustering
/// (`m = 12` clusters), and logarithmic clustering with Fagin top-1
/// pruning. Columns report average priority evaluations and average total
/// scheduler work (scans + evals + comparisons + cluster + heap ops) per
/// scheduling point, from [`SimReport::overhead`] — deterministic and
/// machine-independent. The exact scan's evals/point grows ~linearly with
/// `q`; the clustered variants stay bounded by the cluster count.
pub fn ext_overhead(cfg: &ExpConfig) -> ExhibitOutput {
    let util = 0.95;
    let m = 12;
    let mut qs: Vec<usize> = [
        cfg.queries / 4,
        cfg.queries / 2,
        cfg.queries,
        cfg.queries * 2,
    ]
    .into_iter()
    .map(|q| q.max(5))
    .collect();
    qs.dedup();
    let clustered = |clustering: Clustering, use_fagin: bool| -> PolicyFactory {
        Box::new(move || {
            Box::new(ClusteredBsdPolicy::new(ClusterConfig {
                clustering,
                clusters: m,
                use_fagin,
                batch: false,
            }))
        })
    };
    type Variant = (&'static str, PolicyFactory);
    let variants: Vec<Variant> = vec![
        ("BSD-Exact", Box::new(|| PolicyKind::Bsd.build())),
        ("BSD-Uniform", clustered(Clustering::Uniform, false)),
        ("BSD-Log", clustered(Clustering::Logarithmic, false)),
        ("BSD-Log-Fagin", clustered(Clustering::Logarithmic, true)),
    ];
    // One cell per (q, variant); counters don't need long runs, so cap the
    // per-cell arrivals the same way `repro bench` caps its sweep.
    let cells: Vec<(usize, usize)> = qs
        .iter()
        .flat_map(|&q| (0..variants.len()).map(move |v| (q, v)))
        .collect();
    let done = AtomicUsize::new(0);
    let reports: Vec<SimReport> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (q, v) = cells[i];
        let scaled = ExpConfig {
            queries: q,
            arrivals: cfg.arrivals.min(1_000),
            ..cfg.clone()
        };
        let r = scaled.run_single(util, variants[v].1());
        print_tick(&done, cells.len(), "ext_overhead");
        r
    });
    let mut t = AsciiTable::new(vec![
        "queries",
        "exact_evals",
        "uniform_evals",
        "log_evals",
        "fagin_evals",
        "exact_work",
        "uniform_work",
        "log_work",
        "fagin_work",
    ]);
    for (qi, &q) in qs.iter().enumerate() {
        let by = |v: usize| &reports[qi * variants.len() + v];
        t.row(vec![
            q.to_string(),
            fnum(by(0).evals_per_sched_point()),
            fnum(by(1).evals_per_sched_point()),
            fnum(by(2).evals_per_sched_point()),
            fnum(by(3).evals_per_sched_point()),
            fnum(by(0).overhead.work_per_point()),
            fnum(by(1).overhead.work_per_point()),
            fnum(by(2).overhead.work_per_point()),
            fnum(by(3).overhead.work_per_point()),
        ]);
    }
    ExhibitOutput {
        name: "ext_overhead",
        table: t,
    }
    .emit(cfg)
}

// ---------------------------------------------- Extension: large-q sweep

/// Extension exhibit: the large-q scheduling-point sweep from
/// [`hcq_bench::large_q`] as a table/CSV — the exact O(q) BSD scan against
/// the incrementally-maintained clustered variants at q up to `max_q`
/// (capped at 10⁶). Cells run serially in deterministic order; the op
/// counts, byte footprints and selection digests are pure functions of the
/// fixture, so the CSV is byte-identical across hosts and `--jobs` values —
/// the digest column is what the CI smoke compares between job counts.
pub fn ext_large_q(cfg: &ExpConfig, max_q: usize) -> ExhibitOutput {
    let mut t = AsciiTable::new(vec![
        "policy",
        "q",
        "points",
        "ns_per_point",
        "evals_per_point",
        "work_per_point",
        "bytes_per_query",
        "digest",
    ]);
    let total = hcq_bench::large_q::QS
        .iter()
        .filter(|&&q| q <= max_q)
        .count()
        * hcq_bench::large_q::variants().len();
    let done = AtomicUsize::new(0);
    let cells = hcq_bench::large_q::sweep(max_q, |_| {
        print_tick(&done, total, "ext_large_q");
    });
    for c in &cells {
        t.row(vec![
            c.policy.to_string(),
            c.q.to_string(),
            c.points.to_string(),
            fnum(c.ns_per_point),
            fnum(c.evals_per_point),
            fnum(c.work_per_point),
            fnum(c.bytes_per_query),
            c.digest.clone(),
        ]);
    }
    ExhibitOutput {
        name: "ext_large_q",
        table: t,
    }
    .emit(cfg)
}

// ------------------------------------------- Extension: adaptive statistics

/// Extension exhibit: closing the miscalibration gap online (ROADMAP item
/// 3). Every operator's actual cost runs at a persistent, seeded multiple
/// of its calibrated C̄ₓ (the ext_faults `miscost` fault at 3×), so a
/// static policy schedules on statics that are wrong for the whole run.
/// Three runs per (utilization × policy) cell:
///
/// * `stale` — the miscalibrated run, statics never corrected; an inert
///   windowed probe (publish off, cadence beyond the horizon) harvests the
///   observed per-unit means without touching a single decision;
/// * `adaptive` — the same run with batch-mean EWMA re-estimation
///   publishing corrected statics at every cadence;
/// * `oracle` — the same run with the probe's harvested statics installed
///   before the first arrival: the best any online estimator could reach.
///
/// `recovery` is the share of the stale → oracle QoS gap (average
/// slowdown) the adaptive run closes; the CI adaptive-smoke job gates
/// clustered BSD at ≥ 0.5 in every cell. The exhibit ignores `--govern`:
/// all three runs must differ only in estimation.
pub fn ext_adaptive(cfg: &ExpConfig) -> ExhibitOutput {
    const UTILS: [f64; 3] = [0.9, 1.1, 1.3];
    const MISCALIBRATION: f64 = 3.0;
    let policies: Vec<(&'static str, PolicyFactory)> = vec![
        (
            "C-BSD-log3",
            Box::new(|| {
                Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(3)))
                    as Box<dyn hcq_core::Policy>
            }),
        ),
        (
            "C-BSD-log8",
            Box::new(|| {
                Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(8)))
                    as Box<dyn hcq_core::Policy>
            }),
        ),
        (
            "C-BSD-log16",
            Box::new(|| {
                Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(16)))
                    as Box<dyn hcq_core::Policy>
            }),
        ),
        ("HNR", Box::new(|| PolicyKind::Hnr.build())),
    ];
    // The probe never flushes (cadence beyond any horizon) and never
    // publishes; the online config is the tuned batch-mean EWMA.
    let probe = AdaptConfig {
        enabled: true,
        mode: AdaptMode::Windowed,
        alpha: 0.1,
        cadence: Nanos::from_millis(1 << 40),
        min_observations: 2,
        refreeze_factor: 1.5,
        publish: false,
    };
    let online = AdaptConfig {
        mode: AdaptMode::Ewma,
        alpha: 0.05,
        cadence: Nanos::from_millis(200),
        publish: true,
        ..probe
    };

    let cells: Vec<(f64, usize)> = UTILS
        .iter()
        .flat_map(|&u| (0..policies.len()).map(move |p| (u, p)))
        .collect();
    let done = AtomicUsize::new(0);
    let reports: Vec<(SimReport, SimReport, SimReport)> = run_jobs(cfg.jobs, cells.len(), |i| {
        let (util, p) = cells[i];
        let make = &policies[p].1;
        let run = |adapt: Option<AdaptConfig>, preapply: Option<&[hcq_core::UnitStatics]>| {
            let w = cfg.workload(util);
            let mut sim_cfg = SimConfig::new(cfg.arrivals)
                .with_seed(cfg.seed)
                .with_cost_miscalibration(MISCALIBRATION, cfg.seed);
            if let Some(a) = adapt {
                sim_cfg = sim_cfg.with_adaptation(a);
            }
            let mut sim = Simulator::new(&w.plan, &w.rates, vec![cfg.source(0)], make(), sim_cfg)
                .expect("exhibit workloads are valid");
            if let Some(est) = preapply {
                for (u, s) in est.iter().enumerate() {
                    sim.update_unit_statics(u as u32, *s);
                }
            }
            sim.run().expect("built-in policies respect the contract")
        };
        let stale = run(Some(probe), None);
        let adaptive = run(Some(online), None);
        let est = stale
            .estimates
            .clone()
            .expect("the probe harvests estimates");
        let oracle = run(None, Some(&est));
        print_tick(&done, cells.len(), "ext_adaptive");
        (stale, adaptive, oracle)
    });

    let mut t = AsciiTable::new(vec![
        "utilization",
        "policy",
        "stale_avg_slowdown",
        "adaptive_avg_slowdown",
        "oracle_avg_slowdown",
        "statics_updates",
        "refreezes",
        "recovery",
        "conserved",
    ]);
    for ((util, p), (stale, adaptive, oracle)) in cells.iter().zip(&reports) {
        let gap = stale.qos.avg_slowdown - oracle.qos.avg_slowdown;
        let recovery = if gap.abs() > f64::EPSILON {
            (stale.qos.avg_slowdown - adaptive.qos.avg_slowdown) / gap
        } else {
            1.0
        };
        let all_conserved = conserved(stale, cfg.queries)
            && conserved(adaptive, cfg.queries)
            && conserved(oracle, cfg.queries);
        t.row(vec![
            format!("{util:.2}"),
            policies[*p].0.to_string(),
            fnum(stale.qos.avg_slowdown),
            fnum(adaptive.qos.avg_slowdown),
            fnum(oracle.qos.avg_slowdown),
            adaptive.statics_updates.to_string(),
            adaptive.domain_refreezes.to_string(),
            fnum(recovery),
            if all_conserved { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ExhibitOutput {
        name: "ext_adaptive",
        table: t,
    }
    .emit(cfg)
}
