//! Reproduction harness for every table and figure of §9.
//!
//! Each `figNN`/`tableN` function regenerates one exhibit: it builds the §8
//! workload at the requested scale, runs the relevant policies through the
//! simulator, prints the series the paper plots, and writes a CSV next to
//! the binary's `--out` directory. `EXPERIMENTS.md` records a reference run
//! against the paper's reported shapes.
//!
//! Absolute values are not expected to match the paper (different hardware
//! model, trace substitute, scaled-down defaults); orderings, gaps and
//! crossovers are the reproduction target.

pub mod bench;
pub mod exhibits;
pub mod fuzz;
pub mod harness;
pub mod inspect;
pub mod monitor;
pub mod plot;
pub mod runtime;
pub mod table;
pub mod validate;

pub use bench::{bench, snapshot_dir};
pub use exhibits::{
    ext_adaptive, ext_faults, ext_large_q, ext_lp, ext_memory, ext_overhead, ext_overload,
    ext_preemption, ext_recovery, ext_seeds, ext_transient, fig11, fig12, fig13, fig14, fig5_to_10,
    table1, table2, table3, ExhibitOutput,
};
pub use fuzz::{fuzz, fuzz_replay, FuzzSummary};
pub use harness::{default_jobs, run_jobs, ExpConfig, SweepResults};
pub use inspect::{bench_history, ext_inspect, guard_overwrite, inspect_trace, InspectFormat};
pub use monitor::{monitor, MonitorOutput};
pub use plot::Chart;
pub use runtime::run_runtime;
pub use table::AsciiTable;
pub use validate::{validate, ClaimResult};
