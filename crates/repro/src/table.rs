//! Minimal aligned ASCII tables + CSV emission.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table with a header row.
#[derive(Debug, Clone)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Start a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        AsciiTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write as CSV (header + rows, comma-separated; cells are numeric or
    /// simple identifiers, so no quoting is needed).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(path, out)
    }
}

/// Format a float compactly for table cells.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = AsciiTable::new(vec!["util", "HNR", "HR"]);
        t.row(vec!["0.5", "1.23", "1.30"]);
        t.row(vec!["0.97", "10.5", "12.75"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("util"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("12.75"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("hcq_repro_test");
        let path = dir.join("t.csv");
        let mut t = AsciiTable::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.500");
        assert_eq!(fnum(123.456), "123.5");
        assert!(fnum(2.5e7).contains('e'));
        assert!(fnum(1e-5).contains('e'));
    }
}
