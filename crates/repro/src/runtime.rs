//! `repro run --runtime`: execute the reference pipeline workload on real
//! OS threads through `hcq-runtime` instead of the virtual-time simulator.
//!
//! Runs every bench policy at the requested thread count, prints one row
//! per policy (wall time, throughput, emission/shed/steal counts), and
//! checks tuple conservation on every run. The emitted counts are also
//! cross-checked against the simulator's on the same workload — the same
//! invariant the `hcq-runtime` differential test suite enforces, surfaced
//! here as a user-runnable exhibit.

use hcq_bench::pipeline;
use hcq_streams::{ArrivalSource, PoissonSource};

use crate::harness::ExpConfig;
use crate::table::{fnum, AsciiTable};

fn sources() -> Vec<Box<dyn ArrivalSource>> {
    vec![Box::new(PoissonSource::new(pipeline::mean_gap(), 9))]
}

/// Execute the reference workload on `threads` worker threads under every
/// bench policy. Returns `false` if any run failed or broke conservation.
pub fn run_runtime(cfg: &ExpConfig, threads: usize) -> bool {
    let w = pipeline::workload();
    let arrivals = cfg.arrivals.clamp(1, 5_000);
    println!(
        "== runtime: reference workload on {threads} thread{} ({arrivals} arrivals, seed {}) ==",
        if threads == 1 { "" } else { "s" },
        cfg.seed
    );
    let mut table = AsciiTable::new(vec![
        "policy",
        "wall_ms",
        "tuples_per_s",
        "emitted",
        "dropped",
        "shed",
        "stolen",
    ]);
    let mut ok = true;
    for kind in pipeline::POLICIES {
        let rt_cfg = hcq_runtime::RuntimeConfig::new(arrivals)
            .with_seed(cfg.seed)
            .with_threads(threads);
        let report = match hcq_runtime::run(&w.plan, &w.rates, sources(), kind, &rt_cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("runtime run failed for {}: {e}", kind.name());
                ok = false;
                continue;
            }
        };
        if !report.conserved() {
            eprintln!(
                "conservation violated for {}: {} injected vs {} emitted + {} dropped + {} shed",
                kind.name(),
                report.injected,
                report.emitted,
                report.dropped,
                report.shed
            );
            ok = false;
        }
        table.row(vec![
            kind.name().to_string(),
            format!("{:.1}", report.wall_ns as f64 / 1e6),
            fnum(report.tuples_per_sec),
            report.emitted.to_string(),
            report.dropped.to_string(),
            report.shed.to_string(),
            report.stolen.to_string(),
        ]);
    }
    println!("{}", table.render());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_exhibit_runs_clean() {
        let cfg = ExpConfig {
            arrivals: 60,
            seed: 3,
            ..ExpConfig::default()
        };
        assert!(run_runtime(&cfg, 2));
    }
}
