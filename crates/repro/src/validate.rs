//! The reproduction scorecard: every §9 claim as a programmatic check.
//!
//! `repro validate` runs the workloads once and prints PASS/FAIL per claim,
//! so a reader can audit the reproduction in one command instead of eyeing
//! figures. Checks are *orderings and relative gaps* — the reproduction
//! targets — not absolute values.

use hcq_common::Nanos;
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, PolicyKind, SharingStrategy};
use hcq_engine::{simulate, SimConfig, SimReport};
use hcq_streams::PoissonSource;
use hcq_workload::{multi_stream, shared, MultiStreamConfig, SharedConfig};

use crate::harness::{run_jobs, ExpConfig};
use crate::table::AsciiTable;

/// One claim's outcome.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Short claim id, e.g. `fig5.hnr_best_avg_slowdown`.
    pub id: &'static str,
    /// What the paper asserts.
    pub claim: &'static str,
    /// Whether the reproduction exhibits it.
    pub pass: bool,
    /// Measured evidence (human-readable).
    pub evidence: String,
}

/// Run the whole scorecard. Returns the results and prints a table.
pub fn validate(cfg: &ExpConfig) -> Vec<ClaimResult> {
    let mut results = Vec::new();
    let util = 0.95;

    println!(
        "running scorecard workloads ({} queries, {} arrivals)...",
        cfg.queries, cfg.arrivals
    );
    // The seven single-stream runs are independent cells; fan them out on
    // the harness job pool (order fixed by the `kinds` list, so results are
    // identical at any job count).
    let kinds = [
        PolicyKind::Hnr,
        PolicyKind::Hr,
        PolicyKind::Srpt,
        PolicyKind::RoundRobin,
        PolicyKind::Fcfs,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
    ];
    let mut reports = run_jobs(cfg.jobs, kinds.len(), |i| {
        cfg.run_single(util, kinds[i].build())
    })
    .into_iter();
    let (hnr, hr, srpt, rr, fcfs, lsf, bsd) = (
        reports.next().unwrap(),
        reports.next().unwrap(),
        reports.next().unwrap(),
        reports.next().unwrap(),
        reports.next().unwrap(),
        reports.next().unwrap(),
        reports.next().unwrap(),
    );

    let mut check = |id, claim, pass: bool, evidence: String| {
        results.push(ClaimResult {
            id,
            claim,
            pass,
            evidence,
        });
    };

    check(
        "table1.exact",
        "Example 1 reproduces HR=(12.25, 3.875), HNR=(13.0, 2.9) exactly",
        {
            let t1 = crate::exhibits::table1_values();
            (t1.0 - 12.25).abs() < 1e-9
                && (t1.1 - 3.875).abs() < 1e-9
                && (t1.2 - 13.0).abs() < 1e-9
                && (t1.3 - 2.9).abs() < 1e-9
        },
        "see `repro table1`".into(),
    );
    check(
        "fig5.hnr_best_avg_slowdown",
        "HNR gives the lowest average slowdown (vs HR, SRPT, RR, FCFS)",
        hnr.qos.avg_slowdown < hr.qos.avg_slowdown
            && hnr.qos.avg_slowdown < srpt.qos.avg_slowdown
            && hnr.qos.avg_slowdown < rr.qos.avg_slowdown
            && hnr.qos.avg_slowdown < fcfs.qos.avg_slowdown,
        format!(
            "HNR {:.0} | HR {:.0} | SRPT {:.0} | RR {:.0} | FCFS {:.0}",
            hnr.qos.avg_slowdown,
            hr.qos.avg_slowdown,
            srpt.qos.avg_slowdown,
            rr.qos.avg_slowdown,
            fcfs.qos.avg_slowdown
        ),
    );
    check(
        "fig6.hr_best_response_small_gap",
        "HR gives the lowest average response time; HNR within ~10%",
        hr.qos.avg_response_ms <= hnr.qos.avg_response_ms
            && hnr.qos.avg_response_ms <= hr.qos.avg_response_ms * 1.10,
        format!(
            "HR {:.1}ms | HNR {:.1}ms ({:+.1}%)",
            hr.qos.avg_response_ms,
            hnr.qos.avg_response_ms,
            (hnr.qos.avg_response_ms / hr.qos.avg_response_ms - 1.0) * 100.0
        ),
    );
    check(
        "fig7.lsf_best_max_slowdown",
        "LSF gives a far lower maximum slowdown than HNR",
        lsf.qos.max_slowdown < hnr.qos.max_slowdown * 0.6,
        format!(
            "LSF {:.0} | HNR {:.0} ({:.0}% lower)",
            lsf.qos.max_slowdown,
            hnr.qos.max_slowdown,
            (1.0 - lsf.qos.max_slowdown / hnr.qos.max_slowdown) * 100.0
        ),
    );
    check(
        "fig8.bsd_between_on_max",
        "BSD's maximum slowdown sits between LSF's and HNR's",
        lsf.qos.max_slowdown <= bsd.qos.max_slowdown
            && bsd.qos.max_slowdown <= hnr.qos.max_slowdown,
        format!(
            "LSF {:.0} ≤ BSD {:.0} ≤ HNR {:.0}",
            lsf.qos.max_slowdown, bsd.qos.max_slowdown, hnr.qos.max_slowdown
        ),
    );
    check(
        "fig9.bsd_between_on_avg",
        "BSD's average slowdown sits between HNR's and LSF's",
        hnr.qos.avg_slowdown <= bsd.qos.avg_slowdown
            && bsd.qos.avg_slowdown <= lsf.qos.avg_slowdown,
        format!(
            "HNR {:.0} ≤ BSD {:.0} ≤ LSF {:.0}",
            hnr.qos.avg_slowdown, bsd.qos.avg_slowdown, lsf.qos.avg_slowdown
        ),
    );
    check(
        "fig10.bsd_best_l2",
        "BSD gives the lowest ℓ2 norm of slowdowns",
        bsd.qos.l2_slowdown < hnr.qos.l2_slowdown && bsd.qos.l2_slowdown < lsf.qos.l2_slowdown,
        format!(
            "BSD {:.2e} | HNR {:.2e} | LSF {:.2e}",
            bsd.qos.l2_slowdown, hnr.qos.l2_slowdown, lsf.qos.l2_slowdown
        ),
    );

    // Figure 11: class bias.
    let bias = |r: &SimReport| -> Option<f64> {
        let classes = r.classes.by_cost_class(0);
        if classes.len() < 2 {
            return None;
        }
        Some(classes.first().unwrap().1.avg_slowdown / classes.last().unwrap().1.avg_slowdown)
    };
    match (bias(&hr), bias(&hnr), bias(&bsd)) {
        (Some(bhr), Some(bhnr), Some(bbsd)) => check(
            "fig11.bias_ordering",
            "HR is most biased against low-selectivity low-cost queries",
            bhr > bhnr && bhr > bbsd,
            format!("bias HR {bhr:.1}x | HNR {bhnr:.1}x | BSD {bbsd:.1}x"),
        ),
        _ => check(
            "fig11.bias_ordering",
            "HR is most biased against low-selectivity low-cost queries",
            false,
            "too few populated classes at this scale; rerun with --queries ≥ 100".into(),
        ),
    }

    // Figure 12: multi-stream.
    {
        let mean_gap = Nanos::from_millis(500);
        let w = multi_stream(&MultiStreamConfig {
            queries: (cfg.queries / 3).max(10),
            cost_classes: 5,
            utilization: 0.9,
            mean_gap,
            window_range: (Nanos::from_secs(1), Nanos::from_secs(10)),
            seed: cfg.seed,
        })
        .expect("valid workload");
        let runj = |kind: PolicyKind| {
            let sources: Vec<Box<dyn hcq_streams::ArrivalSource>> = vec![
                Box::new(PoissonSource::new(mean_gap, cfg.seed ^ 0xA)),
                Box::new(PoissonSource::new(mean_gap, cfg.seed ^ 0xB)),
            ];
            simulate(
                &w.plan,
                &w.rates,
                sources,
                kind.build(),
                SimConfig::new(cfg.arrivals).with_seed(cfg.seed),
            )
            .expect("valid simulation")
        };
        let jb = runj(PolicyKind::Bsd);
        let jh = runj(PolicyKind::Hnr);
        let jr = runj(PolicyKind::RoundRobin);
        check(
            "fig12.bsd_best_multistream",
            "BSD gives the lowest ℓ2 for window-join queries, far below RR",
            jb.qos.l2_slowdown <= jh.qos.l2_slowdown
                && jb.qos.l2_slowdown * 2.0 < jr.qos.l2_slowdown,
            format!(
                "BSD {:.2e} | HNR {:.2e} | RR {:.2e} ({:.1}x)",
                jb.qos.l2_slowdown,
                jh.qos.l2_slowdown,
                jr.qos.l2_slowdown,
                jr.qos.l2_slowdown / jb.qos.l2_slowdown
            ),
        );
    }

    // Figures 13–14: the implementation story under charged overhead.
    {
        let charged = |policy: Box<dyn hcq_core::Policy>| {
            cfg.run_single_with(util, policy, |c| c.with_overhead(true))
        };
        let naive = charged(PolicyKind::Bsd.build());
        let best = charged(Box::new(ClusteredBsdPolicy::new(
            ClusterConfig::logarithmic(8),
        )));
        let hypo = cfg.run_single(util, PolicyKind::Bsd.build());
        check(
            "fig14.clustering_recovers_naive_loss",
            "charged naive BSD is far worse than hypothetical; the §6 machinery recovers most of it",
            naive.qos.l2_slowdown > hypo.qos.l2_slowdown * 3.0
                && best.qos.l2_slowdown < naive.qos.l2_slowdown * 0.5,
            format!(
                "naive {:.2e} | clustered {:.2e} | hypothetical {:.2e}",
                naive.qos.l2_slowdown, best.qos.l2_slowdown, hypo.qos.l2_slowdown
            ),
        );
    }

    // Table 2: sharing strategies.
    {
        let w = shared(&SharedConfig {
            groups: (cfg.queries / 10).max(3),
            group_size: 10,
            cost_classes: 5,
            utilization: 0.9,
            mean_gap: cfg.mean_gap,
            seed: cfg.seed,
        })
        .expect("valid workload");
        let runs = |strat: SharingStrategy| {
            simulate(
                &w.plan,
                &w.rates,
                vec![cfg.source(0)],
                PolicyKind::Hnr.build(),
                SimConfig::new(cfg.arrivals)
                    .with_seed(cfg.seed)
                    .with_sharing(strat),
            )
            .expect("valid simulation")
        };
        let max = runs(SharingStrategy::Max);
        let sum = runs(SharingStrategy::Sum);
        let pdt = runs(SharingStrategy::Pdt);
        check(
            "table2.pdt_best",
            "the PDT strategy beats Max and Sum on HNR average slowdown",
            pdt.qos.avg_slowdown <= max.qos.avg_slowdown
                && pdt.qos.avg_slowdown <= sum.qos.avg_slowdown,
            format!(
                "PDT {:.0} | Sum {:.0} | Max {:.0}",
                pdt.qos.avg_slowdown, sum.qos.avg_slowdown, max.qos.avg_slowdown
            ),
        );
    }

    // Print the scorecard.
    let mut t = AsciiTable::new(vec!["claim", "status", "evidence"]);
    for r in &results {
        t.row(vec![
            r.id.to_string(),
            if r.pass {
                "PASS".into()
            } else {
                "FAIL".to_string()
            },
            r.evidence.clone(),
        ]);
    }
    println!("== scorecard ==\n{}", t.render());
    let passed = results.iter().filter(|r| r.pass).count();
    println!("{passed}/{} claims reproduced", results.len());
    results
}
