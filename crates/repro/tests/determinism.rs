//! Regression: parallel execution must be invisible in the outputs.
//!
//! Every experiment cell is a pure function of its configuration and the
//! harness reassembles results in job-index order, so running with worker
//! threads must produce byte-identical CSVs to a serial run. This pins the
//! tentpole guarantee at a miniature scale.

use hcq_common::Nanos;
use hcq_core::PolicyKind;
use hcq_repro::{
    ext_faults, ext_overhead, ext_overload, ext_recovery, ext_seeds, ext_transient, fig12,
    fig5_to_10, monitor, ExpConfig,
};

fn cfg(jobs: usize, tag: &str) -> ExpConfig {
    ExpConfig {
        queries: 10,
        arrivals: 120,
        mean_gap: Nanos::from_millis(10),
        seed: 11,
        out_dir: std::env::temp_dir().join(format!("hcq_determinism_{tag}")),
        bursty: false,
        jobs,
        govern: false,
    }
}

/// Compare every CSV in two output directories byte for byte.
fn assert_dirs_identical(serial: &ExpConfig, parallel: &ExpConfig) {
    let mut names: Vec<String> = std::fs::read_dir(&serial.out_dir)
        .expect("serial out dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "serial run produced no CSVs");
    for name in &names {
        let a = std::fs::read(serial.out_dir.join(name)).expect("serial csv");
        let b = std::fs::read(parallel.out_dir.join(name))
            .unwrap_or_else(|_| panic!("parallel run missing {name}"));
        assert_eq!(a, b, "{name} differs between jobs=1 and jobs=4");
    }
}

#[test]
fn sweep_is_byte_identical_across_job_counts() {
    let serial = cfg(1, "sweep_serial");
    let parallel = cfg(4, "sweep_parallel");
    fig5_to_10(&serial);
    fig5_to_10(&parallel);
    assert_dirs_identical(&serial, &parallel);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}

#[test]
fn multi_axis_exhibits_are_byte_identical_across_job_counts() {
    let serial = cfg(1, "cells_serial");
    let parallel = cfg(4, "cells_parallel");
    fig12(&serial);
    ext_seeds(&serial);
    fig12(&parallel);
    ext_seeds(&parallel);
    assert_dirs_identical(&serial, &parallel);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}

/// The overload and fault exhibits cover shedding and fault injection: both
/// must stay deterministic under parallel cell execution (the fault draws
/// and shedding decisions are pure functions of each cell's configuration,
/// never of worker scheduling). Uses the bursty ON/OFF source like the real
/// exhibit defaults.
/// The scheduler-overhead exhibit reports pure operation counters; its CSV
/// must not depend on how cells are spread over workers.
#[test]
fn overhead_exhibit_is_byte_identical_across_job_counts() {
    let serial = cfg(1, "overhead_serial");
    let parallel = cfg(4, "overhead_parallel");
    ext_overhead(&serial);
    ext_overhead(&parallel);
    assert_dirs_identical(&serial, &parallel);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}

/// A JSONL scheduling trace is a pure function of the configuration: the
/// harness's worker-thread setting and repeated invocations must stream the
/// exact same bytes.
#[test]
fn traces_are_byte_identical_across_job_counts_and_runs() {
    let serial = cfg(1, "trace_serial");
    let parallel = cfg(4, "trace_parallel");
    let (ra, a) = serial.run_single_traced(0.9, PolicyKind::Hnr.build());
    let (rb, b) = parallel.run_single_traced(0.9, PolicyKind::Hnr.build());
    let (_, c) = serial.run_single_traced(0.9, PolicyKind::Hnr.build());
    assert!(!a.is_empty(), "trace must carry events");
    assert_eq!(a, b, "trace differs between jobs=1 and jobs=4");
    assert_eq!(a, c, "trace differs between repeated runs");
    assert_eq!(ra.emitted, rb.emitted);
    assert_eq!(ra.overhead, rb.overhead);
}

/// Telemetry sampling is driven by virtual time, so the transient-dynamics
/// exhibit (per-window queue depth and p95 slowdown read from telemetry
/// snapshots) must be byte-identical at any worker count, like every other
/// CSV. Uses the bursty default the real exhibit runs with.
#[test]
fn transient_exhibit_is_byte_identical_across_job_counts() {
    let mut serial = cfg(1, "transient_serial");
    let mut parallel = cfg(4, "transient_parallel");
    serial.bursty = true;
    parallel.bursty = true;
    ext_transient(&serial);
    ext_transient(&parallel);
    assert_dirs_identical(&serial, &parallel);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}

/// Both telemetry exports — the JSONL snapshot stream and the Prometheus
/// exposition text — are pure functions of the configuration: repeated
/// `monitor` runs at different job counts must write the exact same bytes.
#[test]
fn monitor_exports_are_byte_identical_across_job_counts_and_runs() {
    let serial = cfg(1, "monitor_serial");
    let parallel = cfg(4, "monitor_parallel");
    let cadence = Nanos::from_millis(100);
    let a = monitor(&serial, cadence, false).expect("serial monitor");
    let b = monitor(&parallel, cadence, false).expect("parallel monitor");
    let a_jsonl = std::fs::read(&a.jsonl_path).unwrap();
    let b_jsonl = std::fs::read(&b.jsonl_path).unwrap();
    assert!(!a_jsonl.is_empty(), "snapshot stream must carry samples");
    assert_eq!(
        a_jsonl, b_jsonl,
        "telemetry.jsonl differs across job counts"
    );
    let a_prom = std::fs::read(&a.prom_path).unwrap();
    let b_prom = std::fs::read(&b.prom_path).unwrap();
    assert_eq!(a_prom, b_prom, "metrics.prom differs across job counts");
    let c = monitor(&serial, cadence, true).expect("repeat monitor");
    assert_eq!(
        std::fs::read(&c.jsonl_path).unwrap(),
        a_jsonl,
        "telemetry.jsonl differs between repeated runs"
    );
    assert_eq!(a.report.emitted, b.report.emitted);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}

/// The recovery exhibit mixes every robustness dimension — governed
/// admission, source disconnects, operator quarantine, burst faults — and
/// its fault draws and governor decisions are all keyed on virtual time and
/// seeds, so its CSVs (including the conservation column) must be
/// byte-identical at any worker count.
#[test]
fn recovery_exhibit_is_byte_identical_across_job_counts() {
    let mut serial = cfg(1, "recovery_serial");
    let mut parallel = cfg(4, "recovery_parallel");
    serial.bursty = true;
    parallel.bursty = true;
    ext_recovery(&serial);
    ext_recovery(&parallel);
    assert_dirs_identical(&serial, &parallel);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}

#[test]
fn overload_and_fault_exhibits_are_byte_identical_across_job_counts() {
    let mut serial = cfg(1, "overload_serial");
    let mut parallel = cfg(4, "overload_parallel");
    serial.bursty = true;
    parallel.bursty = true;
    ext_overload(&serial);
    ext_faults(&serial);
    ext_overload(&parallel);
    ext_faults(&parallel);
    assert_dirs_identical(&serial, &parallel);
    std::fs::remove_dir_all(&serial.out_dir).ok();
    std::fs::remove_dir_all(&parallel.out_dir).ok();
}
