//! Smoke tests: every exhibit function runs at miniature scale and produces
//! a well-formed table (right columns, non-empty, finite values).

use hcq_common::Nanos;
use hcq_repro::{ext_memory, fig12, fig13, fig14, table1, table2, ExpConfig};

fn tiny() -> ExpConfig {
    ExpConfig {
        queries: 12,
        arrivals: 150,
        mean_gap: Nanos::from_millis(10),
        seed: 3,
        out_dir: std::env::temp_dir().join("hcq_exhibit_smoke"),
        bursty: false,
        jobs: 2,
    }
}

#[test]
fn table1_is_exact_regardless_of_scale_flags() {
    let out = table1(&tiny());
    assert_eq!(out.name, "table1");
    let rendered = out.table.render();
    assert!(rendered.contains("12.250"));
    assert!(rendered.contains("3.875"));
    assert!(rendered.contains("13.000"));
    assert!(rendered.contains("2.900"));
}

#[test]
fn fig12_has_all_policy_columns() {
    let out = fig12(&tiny());
    assert_eq!(out.name, "fig12");
    let rendered = out.table.render();
    for col in ["FCFS", "RR", "HNR", "BSD"] {
        assert!(rendered.contains(col), "missing column {col}");
    }
    assert_eq!(out.table.len(), 5, "five load points");
}

#[test]
fn fig13_covers_cluster_range() {
    let out = fig13(&tiny());
    assert_eq!(out.name, "fig13");
    assert_eq!(out.table.len(), 9, "nine m values");
    let rendered = out.table.render();
    assert!(rendered.contains("BSD-Logarithmic"));
    assert!(rendered.contains("BSD-Uniform"));
    assert!(rendered.contains("BSD-Hypothetical"));
}

#[test]
fn fig14_lists_all_variants() {
    let out = fig14(&tiny());
    assert_eq!(out.table.len(), 5);
    let rendered = out.table.render();
    for v in [
        "BSD-Naive",
        "+Log-Clustering",
        "+FA-Pruning",
        "+Clustered-Processing",
        "BSD-Hypothetical",
    ] {
        assert!(rendered.contains(v), "missing variant {v}");
    }
}

#[test]
fn table2_compares_three_strategies() {
    let out = table2(&tiny());
    assert_eq!(out.table.len(), 2);
    let rendered = out.table.render();
    for col in ["Max", "Sum", "PDT", "HNR", "BSD"] {
        assert!(rendered.contains(col), "missing {col}");
    }
}

#[test]
fn ext_memory_includes_chain() {
    let out = ext_memory(&tiny());
    assert_eq!(out.table.len(), 6);
    assert!(out.table.render().contains("Chain"));
}

#[test]
fn csvs_land_in_out_dir() {
    let cfg = tiny();
    let _ = table1(&cfg);
    let path = cfg.out_dir.join("table1.csv");
    let content = std::fs::read_to_string(&path).expect("csv written");
    assert!(content.starts_with("policy,response_ms,slowdown"));
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

#[test]
fn ext_lp_interpolates() {
    let out = hcq_repro::ext_lp(&tiny());
    assert_eq!(out.table.len(), 7);
    assert!(out.table.render().contains("Lp p=2"));
}

#[test]
fn ext_preemption_compares_levels() {
    let out = hcq_repro::ext_preemption(&tiny());
    assert_eq!(out.table.len(), 6);
    let rendered = out.table.render();
    assert!(rendered.contains("query"));
    assert!(rendered.contains("operator"));
}

#[test]
fn table3_taxonomy_complete() {
    let out = hcq_repro::table3(&tiny());
    assert_eq!(out.table.len(), 9);
    for policy in ["RB", "ML", "RR", "HR", "HNR", "LSF", "BSD", "Chain", "FAS"] {
        assert!(out.table.render().contains(policy));
    }
}
