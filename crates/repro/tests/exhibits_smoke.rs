//! Smoke tests: every exhibit function runs at miniature scale and produces
//! a well-formed table (right columns, non-empty, finite values).

use hcq_common::Nanos;
use hcq_repro::{ext_memory, fig12, fig13, fig14, table1, table2, ExpConfig};

fn tiny() -> ExpConfig {
    ExpConfig {
        queries: 12,
        arrivals: 150,
        mean_gap: Nanos::from_millis(10),
        seed: 3,
        out_dir: std::env::temp_dir().join("hcq_exhibit_smoke"),
        bursty: false,
        jobs: 2,
        govern: false,
    }
}

#[test]
fn table1_is_exact_regardless_of_scale_flags() {
    let out = table1(&tiny());
    assert_eq!(out.name, "table1");
    let rendered = out.table.render();
    assert!(rendered.contains("12.250"));
    assert!(rendered.contains("3.875"));
    assert!(rendered.contains("13.000"));
    assert!(rendered.contains("2.900"));
}

#[test]
fn fig12_has_all_policy_columns() {
    let out = fig12(&tiny());
    assert_eq!(out.name, "fig12");
    let rendered = out.table.render();
    for col in ["FCFS", "RR", "HNR", "BSD"] {
        assert!(rendered.contains(col), "missing column {col}");
    }
    assert_eq!(out.table.len(), 5, "five load points");
}

#[test]
fn fig13_covers_cluster_range() {
    let out = fig13(&tiny());
    assert_eq!(out.name, "fig13");
    assert_eq!(out.table.len(), 9, "nine m values");
    let rendered = out.table.render();
    assert!(rendered.contains("BSD-Logarithmic"));
    assert!(rendered.contains("BSD-Uniform"));
    assert!(rendered.contains("BSD-Hypothetical"));
}

#[test]
fn fig14_lists_all_variants() {
    let out = fig14(&tiny());
    assert_eq!(out.table.len(), 5);
    let rendered = out.table.render();
    for v in [
        "BSD-Naive",
        "+Log-Clustering",
        "+FA-Pruning",
        "+Clustered-Processing",
        "BSD-Hypothetical",
    ] {
        assert!(rendered.contains(v), "missing variant {v}");
    }
}

#[test]
fn table2_compares_three_strategies() {
    let out = table2(&tiny());
    assert_eq!(out.table.len(), 2);
    let rendered = out.table.render();
    for col in ["Max", "Sum", "PDT", "HNR", "BSD"] {
        assert!(rendered.contains(col), "missing {col}");
    }
}

#[test]
fn ext_memory_includes_chain() {
    let out = ext_memory(&tiny());
    assert_eq!(out.table.len(), 6);
    assert!(out.table.render().contains("Chain"));
}

#[test]
fn csvs_land_in_out_dir() {
    let cfg = tiny();
    let _ = table1(&cfg);
    let path = cfg.out_dir.join("table1.csv");
    let content = std::fs::read_to_string(&path).expect("csv written");
    assert!(content.starts_with("policy,response_ms,slowdown"));
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

#[test]
fn ext_lp_interpolates() {
    let out = hcq_repro::ext_lp(&tiny());
    assert_eq!(out.table.len(), 7);
    assert!(out.table.render().contains("Lp p=2"));
}

#[test]
fn ext_preemption_compares_levels() {
    let out = hcq_repro::ext_preemption(&tiny());
    assert_eq!(out.table.len(), 6);
    let rendered = out.table.render();
    assert!(rendered.contains("query"));
    assert!(rendered.contains("operator"));
}

/// The acceptance criterion of the overhead exhibit, pinned at miniature
/// scale: exact BSD's priority evaluations per scheduling point track the
/// number of registered queries (~linear), while logarithmic clustering
/// stays measurably sub-linear — straight from the emitted CSV.
#[test]
fn ext_overhead_shows_exact_linear_and_clustered_sublinear() {
    let mut cfg = tiny();
    cfg.queries = 24;
    cfg.out_dir = std::env::temp_dir().join("hcq_overhead_smoke");
    let out = hcq_repro::ext_overhead(&cfg);
    assert_eq!(out.name, "ext_overhead");
    let csv = std::fs::read_to_string(cfg.out_dir.join("ext_overhead.csv")).expect("csv written");
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let col = |name: &str| header.iter().position(|&h| h == name).expect(name);
    let (qi, exact_i, log_i) = (col("queries"), col("exact_evals"), col("log_evals"));
    let rows: Vec<Vec<f64>> = lines
        .map(|l| l.split(',').map(|v| v.parse::<f64>().unwrap()).collect())
        .collect();
    assert!(rows.len() >= 3, "needs a q sweep, got {} rows", rows.len());
    let (first, last) = (&rows[0], &rows[rows.len() - 1]);
    let q_growth = last[qi] / first[qi];
    let exact_growth = last[exact_i] / first[exact_i];
    let log_growth = last[log_i] / first[log_i];
    assert!(
        exact_growth > q_growth * 0.5,
        "exact BSD evals/point must track q (q grew {q_growth:.1}x, evals {exact_growth:.1}x)"
    );
    assert!(
        log_growth < exact_growth * 0.5,
        "log-clustered evals/point must stay sub-linear \
         (exact grew {exact_growth:.1}x, clustered {log_growth:.1}x)"
    );
    assert!(
        last[log_i] < last[exact_i],
        "at the largest q, clustering must undercut the exact scan"
    );
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

/// The transient-dynamics exhibit at miniature scale: both tables present,
/// all policies covered, every burst window accounted for, and the totals
/// table conserving tuples for every policy.
#[test]
fn ext_transient_tracks_bursts_and_conserves_tuples() {
    let mut cfg = tiny();
    cfg.bursty = true;
    cfg.out_dir = std::env::temp_dir().join("hcq_transient_smoke");
    let outs = hcq_repro::ext_transient(&cfg);
    assert_eq!(outs.len(), 2);
    assert_eq!(outs[0].name, "ext_transient");
    assert_eq!(outs[1].name, "ext_transient_totals");
    let windows = outs[0].table.render();
    for col in ["window_end_ms", "HNR_pending", "LSF_p95", "BSD_pending"] {
        assert!(windows.contains(col), "missing column {col}");
    }
    assert!(outs[0].table.len() >= 5, "needs at least one burst cycle");
    let totals = outs[1].table.render();
    for policy in ["HNR", "LSF", "BSD"] {
        assert!(totals.contains(policy), "missing policy {policy}");
    }
    assert!(!totals.contains("NO"), "a policy failed tuple conservation");
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

/// The graceful-degradation exhibit at miniature scale: both tables present,
/// every (scenario, mode) column covered, tuple conservation (now including
/// deadline-expired units) holding in every cell, and the governed runs
/// actually exercising the admission ladder under at least one fault
/// scenario.
#[test]
fn ext_recovery_governs_faults_and_conserves_tuples() {
    let mut cfg = tiny();
    cfg.bursty = true;
    cfg.arrivals = 400;
    cfg.out_dir = std::env::temp_dir().join("hcq_recovery_smoke");
    let outs = hcq_repro::ext_recovery(&cfg);
    assert_eq!(outs.len(), 2);
    assert_eq!(outs[0].name, "ext_recovery");
    assert_eq!(outs[1].name, "ext_recovery_totals");
    let windows = outs[0].table.render();
    for col in [
        "window_end_ms",
        "burst_static_pending",
        "burst_gov_p95",
        "disconnect_gov_pending",
        "quarantine_static_p95",
    ] {
        assert!(windows.contains(col), "missing column {col}");
    }
    let csv = std::fs::read_to_string(cfg.out_dir.join("ext_recovery_totals.csv")).expect("csv");
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let col = |name: &str| header.iter().position(|&h| h == name).expect(name);
    let (mode_i, trans_i, cons_i) = (col("mode"), col("transitions"), col("conserved"));
    let mut governed_transitions = 0u64;
    let mut rows = 0;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        rows += 1;
        assert_eq!(fields[cons_i], "yes", "conservation failed: {line}");
        let transitions: u64 = fields[trans_i].parse().unwrap();
        match fields[mode_i] {
            "gov" => governed_transitions += transitions,
            _ => assert_eq!(transitions, 0, "static rows cannot transition: {line}"),
        }
    }
    assert_eq!(rows, 6, "three scenarios x two modes");
    assert!(
        governed_transitions > 0,
        "the governed runs must exercise the admission ladder"
    );
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

#[test]
fn table3_taxonomy_complete() {
    let out = hcq_repro::table3(&tiny());
    assert_eq!(out.table.len(), 9);
    for policy in ["RB", "ML", "RR", "HR", "HNR", "LSF", "BSD", "Chain", "FAS"] {
        assert!(out.table.render().contains(policy));
    }
}
