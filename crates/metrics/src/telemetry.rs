//! Typed telemetry instruments and point-in-time snapshots.
//!
//! A [`TelemetryRegistry`] holds three instrument kinds:
//!
//! * **counters** — monotonically non-decreasing `u64` totals (arrivals,
//!   emissions, sheds, virtual nanoseconds of busy time),
//! * **gauges** — instantaneous `f64` state (queue depth, backlog age,
//!   utilization),
//! * **summaries** — *windowed* quantile summaries backed by a
//!   [`SlowdownHistogram`]: each [`TelemetryRegistry::snapshot`] reports
//!   p50/p95/p99 estimates plus the exact count/sum/max of the observations
//!   made since the previous snapshot, then resets the window (the same
//!   per-window convention as [`crate::QosTimeSeries`]).
//!
//! A snapshot is plain data ([`TelemetrySnapshot`]) so exporters — the
//! Prometheus text renderer in [`crate::prometheus`] and the JSONL stream
//! via [`TelemetrySnapshot::to_jsonl`] — need no access to the live
//! registry. Everything is deterministic: instruments render in
//! registration order, label pairs in insertion order, and floats with
//! Rust's shortest-roundtrip formatting, so a snapshot stream is a pure
//! function of the observations that produced it.

use std::fmt::Write as _;
use std::sync::Arc;

use hcq_common::Nanos;

use crate::histogram::SlowdownHistogram;

/// Handle to one registered instrument. Cheap to copy; only valid for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrumentId(u32);

/// The three instrument kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotonically non-decreasing total.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Windowed quantile summary (drained by each snapshot).
    Summary,
}

impl InstrumentKind {
    /// Lower-case kind name, as rendered in exports.
    pub fn name(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Summary => "summary",
        }
    }
}

/// Windowed observation aggregate behind a summary instrument.
#[derive(Debug, Clone)]
struct WindowedSummary {
    hist: SlowdownHistogram,
    sum: f64,
    max: f64,
}

impl WindowedSummary {
    fn new() -> Self {
        WindowedSummary {
            hist: SlowdownHistogram::default(),
            sum: 0.0,
            max: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        self.hist.record(value);
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Summarize and reset the window.
    fn drain(&mut self) -> SummaryValue {
        let value = SummaryValue {
            count: self.hist.total(),
            sum: self.sum,
            p50: self.hist.quantile(0.5),
            p95: self.hist.quantile(0.95),
            p99: self.hist.quantile(0.99),
            max: self.max,
        };
        *self = WindowedSummary::new();
        value
    }
}

/// Current value of one instrument.
#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Summary(WindowedSummary),
}

struct Instrument {
    name: &'static str,
    help: &'static str,
    // Shared with every snapshot's [`MetricSample`]: snapshotting a few
    // hundred labelled instruments per cadence tick must not re-allocate
    // the label sets each time.
    labels: Arc<[(&'static str, String)]>,
    value: Value,
}

/// A registry of typed instruments. See the module docs.
#[derive(Default)]
pub struct TelemetryRegistry {
    instruments: Vec<Instrument>,
    seq: u64,
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TelemetryRegistry::default()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.instruments.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.instruments.is_empty()
    }

    fn register(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        value: Value,
    ) -> InstrumentId {
        let id = InstrumentId(self.instruments.len() as u32);
        self.instruments.push(Instrument {
            name,
            help,
            labels: labels.into(),
            value,
        });
        id
    }

    /// Register a counter. Instruments sharing a `name` (one per label set)
    /// must be registered contiguously — exporters group samples by family.
    pub fn counter(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> InstrumentId {
        self.register(name, help, labels, Value::Counter(0))
    }

    /// Register a gauge (same contiguity rule as [`Self::counter`]).
    pub fn gauge(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> InstrumentId {
        self.register(name, help, labels, Value::Gauge(0.0))
    }

    /// Register a windowed summary (same contiguity rule as
    /// [`Self::counter`]).
    pub fn summary(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> InstrumentId {
        self.register(name, help, labels, Value::Summary(WindowedSummary::new()))
    }

    /// Set a counter to its new (monotonically non-decreasing) total.
    pub fn set_counter(&mut self, id: InstrumentId, total: u64) {
        match &mut self.instruments[id.0 as usize].value {
            Value::Counter(c) => {
                debug_assert!(total >= *c, "counter moved backwards: {total} < {c}");
                *c = total;
            }
            _ => debug_assert!(false, "set_counter on a non-counter instrument"),
        }
    }

    /// Set a gauge.
    pub fn set_gauge(&mut self, id: InstrumentId, value: f64) {
        match &mut self.instruments[id.0 as usize].value {
            Value::Gauge(g) => *g = value,
            _ => debug_assert!(false, "set_gauge on a non-gauge instrument"),
        }
    }

    /// Record one observation into a summary's current window.
    pub fn observe(&mut self, id: InstrumentId, value: f64) {
        match &mut self.instruments[id.0 as usize].value {
            Value::Summary(s) => s.observe(value),
            _ => debug_assert!(false, "observe on a non-summary instrument"),
        }
    }

    /// Take a snapshot stamped `at`: counters and gauges are read, summary
    /// windows are drained (summarized and reset). The snapshot sequence
    /// number increments per call.
    pub fn snapshot(&mut self, at: Nanos) -> TelemetrySnapshot {
        self.seq += 1;
        let metrics = self
            .instruments
            .iter_mut()
            .map(|inst| MetricSample {
                name: inst.name,
                help: inst.help,
                labels: Arc::clone(&inst.labels),
                value: match &mut inst.value {
                    Value::Counter(c) => MetricValue::Counter(*c),
                    Value::Gauge(g) => MetricValue::Gauge(*g),
                    Value::Summary(s) => MetricValue::Summary(s.drain()),
                },
            })
            .collect();
        TelemetrySnapshot {
            at,
            seq: self.seq,
            metrics,
        }
    }
}

/// One window of a summary instrument, as reported by a snapshot.
///
/// Quantiles are [`SlowdownHistogram`] estimates (lower bucket edges, so
/// values below 1.0 report as 1.0); `count`, `sum` and `max` are exact.
/// An empty window reports all zeros.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryValue {
    /// Observations in the window.
    pub count: u64,
    /// Exact sum of the window's observations.
    pub sum: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Exact maximum of the window's observations.
    pub max: f64,
}

/// Value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Drained summary window.
    Summary(SummaryValue),
}

/// One metric in a snapshot: family name, help text, label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric family name (e.g. `hcq_queue_depth`).
    pub name: &'static str,
    /// One-line description, rendered as the Prometheus `# HELP` text.
    pub help: &'static str,
    /// Label pairs in registration order, shared with the registry (cloning
    /// a snapshot or taking one is a refcount bump per sample, not a
    /// re-allocation of every label set).
    pub labels: Arc<[(&'static str, String)]>,
    /// The sampled value.
    pub value: MetricValue,
}

impl MetricSample {
    /// The sample's instrument kind.
    pub fn kind(&self) -> InstrumentKind {
        match self.value {
            MetricValue::Counter(_) => InstrumentKind::Counter,
            MetricValue::Gauge(_) => InstrumentKind::Gauge,
            MetricValue::Summary(_) => InstrumentKind::Summary,
        }
    }
}

/// A point-in-time view of every instrument, in registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Virtual time of the sample.
    pub at: Nanos,
    /// 1-based snapshot ordinal within the producing registry.
    pub seq: u64,
    /// Every instrument's sample.
    pub metrics: Vec<MetricSample>,
}

impl TelemetrySnapshot {
    /// Look up a metric by family name and exact label pairs.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| {
                m.name == name
                    && m.labels.len() == labels.len()
                    && m.labels
                        .iter()
                        .zip(labels)
                        .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
            })
            .map(|m| &m.value)
    }

    /// The value of an unlabeled counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name, &[]) {
            Some(&MetricValue::Counter(c)) => Some(c),
            _ => None,
        }
    }

    /// The value of an unlabeled gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name, &[]) {
            Some(&MetricValue::Gauge(g)) => Some(g),
            _ => None,
        }
    }

    /// The window of an unlabeled summary, if present.
    pub fn summary(&self, name: &str) -> Option<&SummaryValue> {
        match self.get(name, &[]) {
            Some(MetricValue::Summary(s)) => Some(s),
            _ => None,
        }
    }

    /// Render the snapshot as one JSON Lines object (no trailing newline):
    /// `{"type":"telemetry","at":…,"seq":…,"metrics":[…]}` — the same
    /// self-describing one-object-per-line convention as the scheduling
    /// trace, so PR-3 trace tooling can interleave both streams. Byte-
    /// deterministic: field order is fixed and floats use shortest-roundtrip
    /// formatting.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        write!(
            w,
            "{{\"type\":\"telemetry\",\"at\":{},\"seq\":{},\"metrics\":[",
            self.at.as_nanos(),
            self.seq
        )
        .unwrap();
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                w.push(',');
            }
            write!(w, "{{\"name\":\"{}\"", m.name).unwrap();
            if !m.labels.is_empty() {
                w.push_str(",\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        w.push(',');
                    }
                    write!(w, "\"{}\":\"{}\"", k, escape(v)).unwrap();
                }
                w.push('}');
            }
            write!(w, ",\"kind\":\"{}\",\"value\":", m.kind().name()).unwrap();
            match &m.value {
                MetricValue::Counter(c) => write!(w, "{c}").unwrap(),
                MetricValue::Gauge(g) => write!(w, "{g}").unwrap(),
                MetricValue::Summary(s) => write!(
                    w,
                    "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                    s.count, s.sum, s.p50, s.p95, s.p99, s.max
                )
                .unwrap(),
            }
            w.push('}');
        }
        w.push_str("]}");
        out
    }
}

/// Escape a label value for embedding in a double-quoted JSON or Prometheus
/// string: backslash, double quote, and newline.
pub(crate) fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> (TelemetryRegistry, InstrumentId, InstrumentId, InstrumentId) {
        let mut reg = TelemetryRegistry::new();
        let c = reg.counter("hcq_emitted_total", "Tuples emitted", vec![]);
        let g = reg.gauge(
            "hcq_queue_depth",
            "Pending tuples",
            vec![("unit", "0".into())],
        );
        let s = reg.summary("hcq_slowdown", "Windowed slowdown", vec![]);
        (reg, c, g, s)
    }

    #[test]
    fn counters_gauges_and_summaries_round_trip() {
        let (mut reg, c, g, s) = sample_registry();
        assert_eq!(reg.len(), 3);
        reg.set_counter(c, 7);
        reg.set_gauge(g, 2.5);
        reg.observe(s, 1.0);
        reg.observe(s, 3.0);
        let snap = reg.snapshot(Nanos::from_millis(10));
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.counter("hcq_emitted_total"), Some(7));
        assert_eq!(
            snap.get("hcq_queue_depth", &[("unit", "0")]),
            Some(&MetricValue::Gauge(2.5))
        );
        let sv = snap.summary("hcq_slowdown").unwrap();
        assert_eq!(sv.count, 2);
        assert_eq!(sv.sum, 4.0);
        assert_eq!(sv.max, 3.0);
    }

    #[test]
    fn snapshot_drains_summary_windows() {
        let (mut reg, _, _, s) = sample_registry();
        reg.observe(s, 2.0);
        let first = reg.snapshot(Nanos(1));
        assert_eq!(first.summary("hcq_slowdown").unwrap().count, 1);
        // The window reset: a second snapshot with no observations is empty.
        let second = reg.snapshot(Nanos(2));
        let sv = second.summary("hcq_slowdown").unwrap();
        assert_eq!(sv.count, 0);
        assert_eq!(sv.sum, 0.0);
        assert_eq!(sv.max, 0.0);
        assert_eq!(sv.p95, 0.0);
        assert_eq!(second.seq, 2);
    }

    #[test]
    fn summary_quantiles_come_from_the_histogram() {
        let mut reg = TelemetryRegistry::new();
        let s = reg.summary("x", "", vec![]);
        for i in 1..=100 {
            reg.observe(s, i as f64);
        }
        let snap = reg.snapshot(Nanos(1));
        let sv = snap.summary("x").unwrap();
        assert_eq!(sv.p50, 32.0); // median 50 lies in [32, 64)
        assert_eq!(sv.p99, 64.0);
        assert_eq!(sv.max, 100.0); // max is exact, not bucketed
    }

    #[test]
    fn lookup_misses_return_none() {
        let (mut reg, ..) = sample_registry();
        let snap = reg.snapshot(Nanos(1));
        assert!(snap.get("absent", &[]).is_none());
        assert!(snap.get("hcq_queue_depth", &[("unit", "9")]).is_none());
        assert!(snap.counter("hcq_queue_depth").is_none(), "kind mismatch");
        assert!(snap.gauge("hcq_emitted_total").is_none(), "kind mismatch");
    }

    #[test]
    fn jsonl_is_one_self_describing_object() {
        let (mut reg, c, g, s) = sample_registry();
        reg.set_counter(c, 5);
        reg.set_gauge(g, 1.5);
        reg.observe(s, 2.0);
        let line = reg.snapshot(Nanos(1000)).to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"telemetry\",\"at\":1000,\"seq\":1,\"metrics\":[\
             {\"name\":\"hcq_emitted_total\",\"kind\":\"counter\",\"value\":5},\
             {\"name\":\"hcq_queue_depth\",\"labels\":{\"unit\":\"0\"},\"kind\":\"gauge\",\"value\":1.5},\
             {\"name\":\"hcq_slowdown\",\"kind\":\"summary\",\"value\":\
             {\"count\":1,\"sum\":2,\"p50\":2,\"p95\":2,\"p99\":2,\"max\":2}}]}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn jsonl_is_deterministic_across_identical_registries() {
        let build = || {
            let (mut reg, c, g, s) = sample_registry();
            reg.set_counter(c, 3);
            reg.set_gauge(g, 0.25);
            reg.observe(s, 1.75);
            reg.snapshot(Nanos(77)).to_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "counter moved backwards"))]
    fn counters_must_not_decrease() {
        let (mut reg, c, ..) = sample_registry();
        reg.set_counter(c, 5);
        reg.set_counter(c, 4);
        // Release builds skip the debug assertion; make the test vacuous.
        #[cfg(debug_assertions)]
        unreachable!();
    }
}
