//! Per-class QoS breakdown (Figure 11).
//!
//! The paper defines a query class by the cost class and selectivity of its
//! operators and studies how each policy treats each class — revealing, for
//! example, HR's unfairness to low-selectivity low-cost queries. This module
//! keys a [`QosAccumulator`] per [`QueryTag`].

use std::collections::BTreeMap;

use hcq_common::Nanos;
use hcq_plan::QueryTag;

use crate::accumulator::{QosAccumulator, QosSummary};

/// Sortable key form of a [`QueryTag`].
type Key = (u8, u8); // (cost_class, selectivity_bucket)

/// Per-class metric accumulators.
#[derive(Debug, Clone, Default)]
pub struct ClassBreakdown {
    classes: BTreeMap<Key, QosAccumulator>,
}

impl ClassBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        ClassBreakdown::default()
    }

    /// Record an emission for a query with tag `tag`.
    pub fn record(&mut self, tag: QueryTag, response: Nanos, slowdown: f64) {
        self.classes
            .entry((tag.cost_class, tag.selectivity_bucket))
            .or_default()
            .record(response, slowdown);
    }

    /// Summaries in (cost_class, selectivity_bucket) order.
    pub fn summaries(&self) -> Vec<(QueryTag, QosSummary)> {
        self.classes
            .iter()
            .map(|(&(cost_class, selectivity_bucket), acc)| {
                (
                    QueryTag {
                        cost_class,
                        selectivity_bucket,
                    },
                    acc.summary(),
                )
            })
            .collect()
    }

    /// Summaries restricted to one cost class, ordered by selectivity bucket
    /// — exactly the Figure 11 slice ("low-cost queries, varying
    /// selectivity").
    pub fn by_cost_class(&self, cost_class: u8) -> Vec<(u8, QosSummary)> {
        self.classes
            .range((cost_class, 0)..=(cost_class, u8::MAX))
            .map(|(&(_, bucket), acc)| (bucket, acc.summary()))
            .collect()
    }

    /// Total over all classes.
    pub fn overall(&self) -> QosSummary {
        let mut total = QosAccumulator::new();
        for acc in self.classes.values() {
            total.merge(acc);
        }
        total.summary()
    }

    /// Number of distinct classes seen.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(c: u8, s: u8) -> QueryTag {
        QueryTag {
            cost_class: c,
            selectivity_bucket: s,
        }
    }

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn classes_are_separated() {
        let mut b = ClassBreakdown::new();
        b.record(tag(0, 1), ms(10), 2.0);
        b.record(tag(0, 1), ms(20), 4.0);
        b.record(tag(2, 5), ms(30), 10.0);
        assert_eq!(b.class_count(), 2);
        let sums = b.summaries();
        assert_eq!(sums[0].0, tag(0, 1));
        assert_eq!(sums[0].1.count, 2);
        assert!((sums[0].1.avg_slowdown - 3.0).abs() < 1e-12);
        assert_eq!(sums[1].0, tag(2, 5));
        assert_eq!(sums[1].1.count, 1);
    }

    #[test]
    fn cost_class_slice_ordered_by_bucket() {
        let mut b = ClassBreakdown::new();
        b.record(tag(0, 9), ms(1), 9.0);
        b.record(tag(0, 2), ms(1), 2.0);
        b.record(tag(1, 0), ms(1), 1.0);
        b.record(tag(0, 5), ms(1), 5.0);
        let slice = b.by_cost_class(0);
        assert_eq!(
            slice.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            vec![2, 5, 9]
        );
        assert!(slice.iter().all(|(_, s)| s.count == 1));
    }

    #[test]
    fn overall_matches_flat_accumulation() {
        let mut b = ClassBreakdown::new();
        let mut flat = QosAccumulator::new();
        for i in 0..20u64 {
            let t = tag((i % 3) as u8, (i % 7) as u8);
            b.record(t, ms(i + 1), i as f64);
            flat.record(ms(i + 1), i as f64);
        }
        let (o, f) = (b.overall(), flat.summary());
        assert_eq!(o.count, f.count);
        assert!((o.avg_slowdown - f.avg_slowdown).abs() < 1e-12);
        assert!((o.l2_slowdown - f.l2_slowdown).abs() < 1e-9);
        assert_eq!(o.max_slowdown, f.max_slowdown);
    }

    #[test]
    fn empty_breakdown() {
        let b = ClassBreakdown::new();
        assert_eq!(b.class_count(), 0);
        assert_eq!(b.overall().count, 0);
        assert!(b.by_cost_class(0).is_empty());
    }
}
