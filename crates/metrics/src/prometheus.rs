//! Prometheus text-exposition-format export.
//!
//! [`render_prometheus`] turns a [`TelemetrySnapshot`] into the text format
//! scraped by Prometheus (version 0.0.4): one `# HELP`/`# TYPE` pair per
//! metric family followed by its samples, counters suffixed `_total`,
//! summaries expanded into `quantile`-labeled lines plus `_sum`/`_count`.
//! Rendering is deterministic — families appear in registration order and
//! floats use Rust's shortest-roundtrip formatting.
//!
//! [`check_exposition`] is a small hand-written validator of the grammar
//! (no network, no regex crate): CI uses it to prove exported files parse
//! before anything scrapes them. The optional `http-export` feature adds a
//! minimal std-only scrape endpoint in [`http`].

use crate::telemetry::{escape, MetricValue, TelemetrySnapshot};

/// Render a snapshot in Prometheus text exposition format. Each family gets
/// `# HELP` and `# TYPE` lines at its first sample; families must be
/// registered contiguously (the registry's convention), which keeps the
/// output grammatical.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for m in &snapshot.metrics {
        if last_family != Some(m.name) {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind().name());
            last_family = Some(m.name);
        }
        match &m.value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{}{} {}", m.name, labels(&m.labels, None), c);
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{}{} {}", m.name, labels(&m.labels, None), g);
            }
            MetricValue::Summary(s) => {
                for (q, v) in [
                    ("0.5", s.p50),
                    ("0.95", s.p95),
                    ("0.99", s.p99),
                    ("1", s.max),
                ] {
                    let _ = writeln!(out, "{}{} {}", m.name, labels(&m.labels, Some(q)), v);
                }
                let _ = writeln!(out, "{}_sum{} {}", m.name, labels(&m.labels, None), s.sum);
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    m.name,
                    labels(&m.labels, None),
                    s.count
                );
            }
        }
    }
    out
}

/// Render a label set, optionally with a trailing `quantile` label. Empty
/// label sets render as nothing (no `{}`).
fn labels(pairs: &[(&'static str, String)], quantile: Option<&str>) -> String {
    if pairs.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape(v));
        out.push('"');
    }
    if let Some(q) = quantile {
        if !pairs.is_empty() {
            out.push(',');
        }
        out.push_str("quantile=\"");
        out.push_str(q);
        out.push('"');
    }
    out.push('}');
    out
}

/// Validate text against the exposition-format grammar. Checks line shapes
/// (`# HELP`, `# TYPE`, comments, samples), metric/label name charsets,
/// label-value escaping, numeric sample values, at most one HELP/TYPE per
/// family, TYPE declarations preceding their samples, known TYPE keywords,
/// and that family blocks do not interleave. Returns the first violation
/// with its 1-based line number.
pub fn check_exposition(text: &str) -> Result<(), String> {
    let mut declared_type: Vec<(String, String)> = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    let mut closed: Vec<String> = Vec::new();
    let mut current: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: HELP without help text"))?;
            check_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
            if helped.iter().any(|h| h == name) {
                return Err(format!("line {n}: duplicate HELP for family {name}"));
            }
            helped.push(name.to_string());
            enter_family(name, &mut current, &mut closed).map_err(|e| format!("line {n}: {e}"))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            check_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {n}: unknown TYPE kind {kind:?}"));
            }
            if declared_type.iter().any(|(f, _)| f == name) {
                return Err(format!("line {n}: duplicate TYPE for family {name}"));
            }
            declared_type.push((name.to_string(), kind.to_string()));
            enter_family(name, &mut current, &mut closed).map_err(|e| format!("line {n}: {e}"))?;
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        parse_sample(line, &declared_type, &mut current, &mut closed)
            .map_err(|e| format!("line {n}: {e}"))?;
    }
    Ok(())
}

/// Track the family a line belongs to; re-entering a family after another
/// family's block began is the interleaving the grammar forbids.
fn enter_family(
    family: &str,
    current: &mut Option<String>,
    closed: &mut Vec<String>,
) -> Result<(), String> {
    if current.as_deref() == Some(family) {
        return Ok(());
    }
    if closed.iter().any(|c| c == family) {
        return Err(format!("family {family} interleaves with another family"));
    }
    if let Some(prev) = current.take() {
        closed.push(prev);
    }
    *current = Some(family.to_string());
    Ok(())
}

/// Validate one sample line and attribute it to its family (stripping the
/// summary/histogram `_sum`/`_count`/`_bucket` suffixes when the base name
/// was declared with a matching TYPE).
fn parse_sample(
    line: &str,
    declared_type: &[(String, String)],
    current: &mut Option<String>,
    closed: &mut Vec<String>,
) -> Result<(), String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| "sample without a value".to_string())?;
    let name = &line[..name_end];
    check_metric_name(name)?;
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        let end = find_label_block_end(after_brace)
            .ok_or_else(|| "unterminated label block".to_string())?;
        check_labels(&after_brace[..end])?;
        rest = &after_brace[end + 1..];
    }
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| "missing space before sample value".to_string())?;
    let mut parts = rest.split(' ');
    let value = parts.next().unwrap_or("");
    if !is_valid_value(value) {
        return Err(format!("invalid sample value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("invalid timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err("trailing tokens after timestamp".to_string());
    }
    // Attribute the sample to its declared family, honoring suffixes.
    let family = family_of(name, declared_type);
    if let Some((_, kind)) = declared_type.iter().find(|(f, _)| f == family) {
        let suffix = &name[family.len()..];
        let ok = match kind.as_str() {
            "summary" => matches!(suffix, "" | "_sum" | "_count"),
            "histogram" => matches!(suffix, "" | "_sum" | "_count" | "_bucket"),
            _ => suffix.is_empty(),
        };
        if !ok {
            return Err(format!(
                "sample {name} not allowed for {kind} family {family}"
            ));
        }
        enter_family(family, current, closed)?;
    } else {
        // Untyped families are legal; samples must still not interleave,
        // and TYPE (if any) must come before the samples it describes.
        enter_family(name, current, closed)?;
    }
    Ok(())
}

/// Resolve the declared family a sample name belongs to, stripping the
/// `_sum`/`_count`/`_bucket` suffix when the base was declared.
fn family_of<'a>(name: &'a str, declared_type: &[(String, String)]) -> &'a str {
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if declared_type.iter().any(|(f, _)| f == base) {
                return base;
            }
        }
    }
    name
}

/// The end index of a label block's interior (position of the closing `}`),
/// skipping quoted strings with escapes.
fn find_label_block_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validate a label block interior: `name="value"` pairs, comma-separated,
/// with only `\\`, `\"`, and `\n` escapes inside values.
fn check_labels(interior: &str) -> Result<(), String> {
    let mut rest = interior;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without '='".to_string())?;
        check_label_name(&rest[..eq])?;
        let after_eq = &rest[eq + 1..];
        let value = after_eq
            .strip_prefix('"')
            .ok_or_else(|| "label value must be quoted".to_string())?;
        let mut end = None;
        let mut escaped = false;
        for (i, c) in value.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("invalid escape \\{c} in label value"));
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        rest = &value[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| "labels must be comma-separated".to_string())?;
    }
}

fn check_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(())
}

fn check_label_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("invalid label name {name:?}"));
    }
    Ok(())
}

fn is_valid_value(value: &str) -> bool {
    matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok()
}

/// Minimal std-only HTTP scrape endpoint (feature `http-export`).
///
/// A [`http::ScrapeServer`] binds a `TcpListener`, serves the most recently
/// [`http::ScrapeServer::publish`]ed exposition text to every request, and
/// shuts its accept thread down on drop. No dependencies, no TLS, no
/// routing — just enough for `prometheus` or `curl` to scrape a live run.
#[cfg(feature = "http-export")]
pub mod http {
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;

    /// A background thread serving the last published exposition text.
    pub struct ScrapeServer {
        addr: SocketAddr,
        body: Arc<Mutex<String>>,
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl ScrapeServer {
        /// Bind and start serving. Use port 0 to let the OS pick.
        pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
            let listener = TcpListener::bind(addr)?;
            let addr = listener.local_addr()?;
            let body = Arc::new(Mutex::new(String::new()));
            let stop = Arc::new(AtomicBool::new(false));
            let handle = {
                let body = Arc::clone(&body);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(mut stream) = stream {
                            let text = body.lock().map(|b| b.clone()).unwrap_or_default();
                            let _ = serve_one(&mut stream, &text);
                        }
                    }
                })
            };
            Ok(ScrapeServer {
                addr,
                body,
                stop,
                handle: Some(handle),
            })
        }

        /// The bound address (useful with port 0).
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }

        /// Replace the served exposition text.
        pub fn publish(&self, text: String) {
            if let Ok(mut body) = self.body.lock() {
                *body = text;
            }
        }
    }

    /// Read the request line, answer with the body. HTTP/1.0, connection
    /// closed per request — the simplest thing a scraper accepts.
    fn serve_one(stream: &mut TcpStream, text: &str) -> io::Result<()> {
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf)?;
        write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\n\r\n{}",
            text.len(),
            text
        )?;
        stream.flush()
    }

    impl Drop for ScrapeServer {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn serves_published_text_and_shuts_down() {
            let server = ScrapeServer::bind("127.0.0.1:0").unwrap();
            server.publish("# TYPE x gauge\nx 1\n".to_string());
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.0 200 OK\r\n"));
            assert!(response.contains("text/plain; version=0.0.4"));
            assert!(response.ends_with("# TYPE x gauge\nx 1\n"));
            drop(server); // must not hang
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryRegistry;
    use hcq_common::Nanos;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut reg = TelemetryRegistry::new();
        let c = reg.counter("hcq_emitted_total", "Tuples emitted", vec![]);
        let g0 = reg.gauge(
            "hcq_queue_depth",
            "Pending tuples",
            vec![("unit", "0".into())],
        );
        let g1 = reg.gauge(
            "hcq_queue_depth",
            "Pending tuples",
            vec![("unit", "1".into())],
        );
        let s = reg.summary("hcq_slowdown", "Windowed slowdown", vec![]);
        reg.set_counter(c, 42);
        reg.set_gauge(g0, 3.0);
        reg.set_gauge(g1, 0.5);
        reg.observe(s, 1.0);
        reg.observe(s, 4.0);
        reg.snapshot(Nanos::from_millis(100))
    }

    #[test]
    fn renders_families_in_exposition_format() {
        let text = render_prometheus(&sample_snapshot());
        let expected = "\
# HELP hcq_emitted_total Tuples emitted
# TYPE hcq_emitted_total counter
hcq_emitted_total 42
# HELP hcq_queue_depth Pending tuples
# TYPE hcq_queue_depth gauge
hcq_queue_depth{unit=\"0\"} 3
hcq_queue_depth{unit=\"1\"} 0.5
# HELP hcq_slowdown Windowed slowdown
# TYPE hcq_slowdown summary
hcq_slowdown{quantile=\"0.5\"} 1
hcq_slowdown{quantile=\"0.95\"} 4
hcq_slowdown{quantile=\"0.99\"} 4
hcq_slowdown{quantile=\"1\"} 4
hcq_slowdown_sum 5
hcq_slowdown_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn rendered_output_passes_the_checker() {
        check_exposition(&render_prometheus(&sample_snapshot())).unwrap();
    }

    #[test]
    fn checker_accepts_valid_corner_cases() {
        check_exposition("").unwrap();
        check_exposition("# a plain comment\n").unwrap();
        check_exposition("x 1\n").unwrap(); // untyped family, no declarations
        check_exposition("x{a=\"b\\\"c\\\\d\\ne\"} +Inf 123\n").unwrap();
        check_exposition("# TYPE h histogram\nh_bucket{le=\"1\"} 0\nh_sum 0\nh_count 0\n").unwrap();
    }

    #[test]
    fn checker_rejects_malformed_lines() {
        let cases: &[(&str, &str)] = &[
            ("1bad_name 1\n", "invalid metric name"),
            ("x{1a=\"v\"} 1\n", "invalid label name"),
            ("x{a=v} 1\n", "label value must be quoted"),
            ("x{a=\"v} 1\n", "unterminated label block"),
            ("x{a=\"\\x\"} 1\n", "invalid escape"),
            ("x notanumber\n", "invalid sample value"),
            ("x 1 notatimestamp\n", "invalid timestamp"),
            ("x 1 2 3\n", "trailing tokens"),
            ("# HELP x one\n# HELP x two\nx 1\n", "duplicate HELP"),
            ("# TYPE x gauge\n# TYPE x gauge\nx 1\n", "duplicate TYPE"),
            ("# TYPE x widget\nx 1\n", "unknown TYPE kind"),
            ("x 1\ny 2\nx 3\n", "interleaves"),
            ("# TYPE x gauge\nx_sum 1\n", "not allowed"),
            ("x\n", "sample without a value"),
        ];
        for (text, want) in cases {
            let err = check_exposition(text).unwrap_err();
            assert!(
                err.contains(want),
                "for {text:?}: expected {want:?} in error, got {err:?}"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = check_exposition("ok 1\nbroken !\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "got {err:?}");
    }
}
