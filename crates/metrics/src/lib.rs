//! QoS metric accumulators.
//!
//! The paper evaluates schedulers on tuple-level metrics (§3–§4):
//!
//! * **response time** `R_i = D_i − A_i` (Definition 1),
//! * **slowdown** `H_i = R_i / T_k` (Definition 2) — for composite join
//!   tuples, `H_i = 1 + (D_actual − D_ideal)/T_k` (§5.1.2),
//! * **maximum slowdown** (Definition 3) for worst-case behaviour,
//! * the **ℓ2 norm of slowdowns** `√(Σ H_i²)` (Definition 4) balancing the
//!   two.
//!
//! [`QosAccumulator`] ingests one record per emitted tuple and reports all
//! of these in a [`QosSummary`]; [`ClassBreakdown`] keeps one accumulator
//! per query class for the Figure 11 analysis; [`SlowdownHistogram`] gives
//! log-bucketed distribution shape and quantile estimates;
//! [`QosTimeSeries`] tracks the trajectory through bursts.
//!
//! For live observation, [`TelemetryRegistry`] holds typed instruments
//! (counters, gauges, windowed quantile summaries) that snapshot into
//! [`TelemetrySnapshot`]s, exportable as JSONL or Prometheus text
//! exposition format ([`render_prometheus`], validated by
//! [`check_exposition`]).
//!
//! ```
//! use hcq_common::Nanos;
//! use hcq_metrics::QosAccumulator;
//!
//! let mut acc = QosAccumulator::new();
//! // A tuple that waited 8 ms beyond its 2 ms ideal processing time:
//! acc.record_emission(Nanos::ZERO, Nanos::from_millis(10), Nanos::from_millis(2));
//! let s = acc.summary();
//! assert_eq!(s.avg_slowdown, 5.0);
//! assert_eq!(s.max_slowdown, 5.0);
//! ```

pub mod accumulator;
pub mod class;
pub mod histogram;
pub mod kahan;
pub mod overhead;
pub mod prometheus;
pub mod telemetry;
pub mod timeseries;

pub use accumulator::{QosAccumulator, QosSummary};
pub use class::ClassBreakdown;
pub use histogram::SlowdownHistogram;
pub use kahan::KahanSum;
pub use overhead::OverheadTotals;
pub use prometheus::{check_exposition, render_prometheus};
pub use telemetry::{
    InstrumentId, InstrumentKind, MetricSample, MetricValue, SummaryValue, TelemetryRegistry,
    TelemetrySnapshot,
};
pub use timeseries::QosTimeSeries;
