//! Compensated (Kahan–Babuška) summation.
//!
//! Long simulation runs accumulate millions of slowdown terms spanning many
//! orders of magnitude (a handful of starved tuples can have slowdowns 10⁵×
//! the median). Plain `f64` accumulation loses the small terms once the
//! running sum grows; Neumaier's variant of Kahan summation keeps the error
//! independent of `n`.

/// A compensated running sum (Neumaier's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// An empty sum.
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Add a term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        // Neumaier: compensate on whichever operand lost precision.
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Merge another compensated sum into this one.
    pub fn merge(&mut self, other: &KahanSum) {
        self.add(other.sum);
        self.add(other.compensation);
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = KahanSum::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_on_small_sets() {
        let s: KahanSum = [1.0, 2.0, 3.5].into_iter().collect();
        assert_eq!(s.value(), 6.5);
    }

    #[test]
    fn classic_cancellation_case() {
        // 1 + 1e100 + 1 - 1e100 = 2 exactly under Neumaier, 0 under naive.
        let s: KahanSum = [1.0, 1e100, 1.0, -1e100].into_iter().collect();
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn beats_naive_on_many_small_terms() {
        let big = 1e16;
        let mut kahan = KahanSum::new();
        kahan.add(big);
        let mut naive = big;
        for _ in 0..1_000 {
            kahan.add(1.0);
            naive += 1.0;
        }
        // Naive f64 cannot represent 1e16 + k for small k increments exactly;
        // Kahan recovers the true total.
        assert_eq!(kahan.value(), big + 1_000.0);
        // (naive may or may not round correctly; assert kahan is at least as close)
        assert!((kahan.value() - (big + 1000.0)).abs() <= (naive - (big + 1000.0)).abs());
    }

    #[test]
    fn merge_matches_sequential() {
        let a: KahanSum = (0..100).map(|i| i as f64 * 0.1).collect();
        let b: KahanSum = (100..200).map(|i| i as f64 * 0.1).collect();
        let mut merged = a;
        merged.merge(&b);
        let all: KahanSum = (0..200).map(|i| i as f64 * 0.1).collect();
        assert!((merged.value() - all.value()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn tracks_f64_sum_on_benign_input(values in proptest::collection::vec(0.0f64..1e6, 0..200)) {
            let kahan: KahanSum = values.iter().copied().collect();
            let reference: f64 = values.iter().sum();
            // On benign inputs both agree to high relative precision.
            let scale = reference.abs().max(1.0);
            prop_assert!((kahan.value() - reference).abs() / scale < 1e-9);
        }
    }
}
