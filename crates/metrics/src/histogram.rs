//! Log-bucketed slowdown histogram.
//!
//! Slowdowns under load are heavy-tailed — exactly why the paper contrasts
//! average against maximum and ℓ2. A logarithmic histogram captures the
//! whole distribution cheaply (one counter increment per record) and
//! supports quantile estimates for reporting beyond the paper's headline
//! metrics.

/// Histogram over `[1, ∞)` with logarithmic buckets.
///
/// Bucket `i` covers slowdowns in `[base^i, base^(i+1))`; slowdowns below 1
/// (possible only for composite tuples measured against generous ideals,
/// and clamped here) land in bucket 0.
#[derive(Debug, Clone)]
pub struct SlowdownHistogram {
    base: f64,
    ln_base: f64,
    counts: Vec<u64>,
    total: u64,
}

impl SlowdownHistogram {
    /// Create a histogram with the given bucket growth factor (must exceed
    /// 1; 2.0 gives power-of-two buckets).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "histogram base must exceed 1");
        SlowdownHistogram {
            base,
            ln_base: base.ln(),
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Record one slowdown observation.
    pub fn record(&mut self, slowdown: f64) {
        let bucket = self.bucket_of(slowdown);
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
    }

    fn bucket_of(&self, slowdown: f64) -> usize {
        if !slowdown.is_finite() || slowdown <= 1.0 {
            return 0;
        }
        (slowdown.ln() / self.ln_base).floor() as usize
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_low(&self, i: usize) -> f64 {
        self.base.powi(i as i32)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Non-empty `(bucket_low, count)` pairs in ascending slowdown order.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_low(i), c))
            .collect()
    }

    /// Estimate the `q`-quantile as the lower edge of the bucket containing
    /// the rank-`⌈q·total⌉` observation. Edge cases are pinned:
    ///
    /// * empty histogram → `0.0` (the only reachable value below 1),
    /// * `q = 0.0` → lower edge of the first non-empty bucket,
    /// * `q = 1.0` → lower edge of the last non-empty bucket (the bucket
    ///   holding the maximum observation),
    /// * `q` outside `[0, 1]` (including NaN) clamps into range.
    ///
    /// The rank is clamped to `[1, total]`, so the bucket scan always
    /// terminates at a non-empty bucket — no fallthrough value exists.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_low(i);
            }
        }
        unreachable!("rank {rank} exceeds recorded total {}", self.total)
    }
}

impl Default for SlowdownHistogram {
    fn default() -> Self {
        SlowdownHistogram::new(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_log_spaced() {
        let mut h = SlowdownHistogram::new(2.0);
        for &v in &[1.0, 1.5, 2.0, 3.9, 4.0, 100.0] {
            h.record(v);
        }
        // [1,2): 1.0,1.5 -> 2; [2,4): 2.0,3.9 -> 2; [4,8): 4.0 -> 1; [64,128): 100 -> 1
        let buckets = h.buckets();
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (2.0, 2));
        assert_eq!(buckets[2], (4.0, 1));
        assert_eq!(*buckets.last().unwrap(), (64.0, 1));
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn sub_one_values_clamp_to_first_bucket() {
        let mut h = SlowdownHistogram::default();
        h.record(0.2);
        h.record(f64::NAN);
        assert_eq!(h.buckets(), vec![(1.0, 2)]);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = SlowdownHistogram::new(2.0);
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        // median of 1..=100 is 50, which lies in [32,64)
        assert_eq!(h.quantile(0.5), 32.0);
        // p99 = 99 lies in [64,128)
        assert_eq!(h.quantile(0.99), 64.0);
        assert_eq!(h.quantile(1.0), 64.0);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(SlowdownHistogram::default().quantile(0.5), 0.0);
        assert_eq!(SlowdownHistogram::default().quantile(0.0), 0.0);
        assert_eq!(SlowdownHistogram::default().quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_edges_are_pinned() {
        // Known distribution: 3 in [1,2), 1 in [4,8), 1 in [64,128).
        let mut h = SlowdownHistogram::new(2.0);
        for &v in &[1.0, 1.2, 1.9, 5.0, 100.0] {
            h.record(v);
        }
        // p0: first non-empty bucket's lower edge.
        assert_eq!(h.quantile(0.0), 1.0);
        // p50: rank ceil(0.5*5)=3 is the last of the three in [1,2).
        assert_eq!(h.quantile(0.5), 1.0);
        // p100: the bucket holding the maximum, not a fallthrough.
        assert_eq!(h.quantile(1.0), 64.0);
    }

    #[test]
    fn out_of_range_q_clamps() {
        let mut h = SlowdownHistogram::new(2.0);
        h.record(3.0);
        h.record(9.0);
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    #[should_panic(expected = "base must exceed")]
    fn rejects_base_one() {
        let _ = SlowdownHistogram::new(1.0);
    }

    proptest! {
        #[test]
        fn bucket_contains_value(v in 1.0f64..1e12, base in 1.1f64..10.0) {
            let h = SlowdownHistogram::new(base);
            let b = h.bucket_of(v);
            let lo = h.bucket_low(b);
            let hi = h.bucket_low(b + 1);
            // Floating-point edge: value may sit exactly on a boundary.
            prop_assert!(lo <= v * (1.0 + 1e-12));
            prop_assert!(v < hi * (1.0 + 1e-12));
        }

        #[test]
        fn total_counts_everything(values in proptest::collection::vec(0.5f64..1e6, 0..300)) {
            let mut h = SlowdownHistogram::default();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.total(), values.len() as u64);
            let bucket_total: u64 = h.buckets().iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(bucket_total, values.len() as u64);
        }

        #[test]
        fn quantile_is_monotone(values in proptest::collection::vec(1.0f64..1e6, 1..200)) {
            let mut h = SlowdownHistogram::default();
            for &v in &values {
                h.record(v);
            }
            let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
            for w in qs.windows(2) {
                prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
            }
        }
    }
}
