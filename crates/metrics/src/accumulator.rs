//! The core QoS accumulator and its summary.

use hcq_common::Nanos;

use crate::kahan::KahanSum;

/// Streaming accumulator over emitted tuples.
///
/// One record per tuple that reaches a query root. Tuples filtered out on
/// the way contribute nothing, per Definition 1 ("tuples that are filtered
/// out do not contribute to the metric as they do not represent any event").
#[derive(Debug, Clone, Default)]
pub struct QosAccumulator {
    count: u64,
    response_sum_ns: KahanSum,
    slowdown_sum: KahanSum,
    slowdown_sq_sum: KahanSum,
    max_slowdown: f64,
    max_response_ns: f64,
}

impl QosAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        QosAccumulator::default()
    }

    /// Record an emitted tuple with response time `response` and slowdown
    /// `slowdown`.
    ///
    /// The caller computes the slowdown because its definition differs
    /// between single-stream (`R/T`) and composite tuples
    /// (`1 + (D_act − D_ideal)/T`, §5.1.2).
    #[inline]
    pub fn record(&mut self, response: Nanos, slowdown: f64) {
        debug_assert!(slowdown >= 0.0 && slowdown.is_finite());
        self.count += 1;
        let r = response.as_nanos() as f64;
        self.response_sum_ns.add(r);
        self.slowdown_sum.add(slowdown);
        self.slowdown_sq_sum.add(slowdown * slowdown);
        if slowdown > self.max_slowdown {
            self.max_slowdown = slowdown;
        }
        if r > self.max_response_ns {
            self.max_response_ns = r;
        }
    }

    /// Convenience: record a single-stream emission given its arrival and
    /// departure instants and the query's ideal processing time `T_k`
    /// (Definitions 1 and 2).
    #[inline]
    pub fn record_emission(&mut self, arrival: Nanos, departure: Nanos, ideal: Nanos) {
        let response = departure.saturating_since(arrival);
        self.record(response, response.ratio(ideal));
    }

    /// Number of recorded tuples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merge another accumulator (e.g. per-class partials) into this one.
    pub fn merge(&mut self, other: &QosAccumulator) {
        self.count += other.count;
        self.response_sum_ns.merge(&other.response_sum_ns);
        self.slowdown_sum.merge(&other.slowdown_sum);
        self.slowdown_sq_sum.merge(&other.slowdown_sq_sum);
        self.max_slowdown = self.max_slowdown.max(other.max_slowdown);
        self.max_response_ns = self.max_response_ns.max(other.max_response_ns);
    }

    /// Snapshot all metrics.
    pub fn summary(&self) -> QosSummary {
        let n = self.count as f64;
        QosSummary {
            count: self.count,
            avg_response_ms: if self.count == 0 {
                0.0
            } else {
                self.response_sum_ns.value() / n * 1e-6
            },
            max_response_ms: self.max_response_ns * 1e-6,
            avg_slowdown: if self.count == 0 {
                0.0
            } else {
                self.slowdown_sum.value() / n
            },
            max_slowdown: self.max_slowdown,
            l2_slowdown: self.slowdown_sq_sum.value().max(0.0).sqrt(),
        }
    }
}

/// Point-in-time summary of a [`QosAccumulator`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QosSummary {
    /// Emitted tuples recorded.
    pub count: u64,
    /// Average response time, milliseconds (Definition 1).
    pub avg_response_ms: f64,
    /// Maximum response time, milliseconds.
    pub max_response_ms: f64,
    /// Average slowdown (Definition 2).
    pub avg_slowdown: f64,
    /// Maximum slowdown (Definition 3).
    pub max_slowdown: f64,
    /// ℓ2 norm of slowdowns `√(Σ H²)` (Definition 4). Note this is a *norm*,
    /// not an average: it grows with tuple count, exactly as in the paper's
    /// Figures 10–14.
    pub l2_slowdown: f64,
}

impl QosSummary {
    /// Root-mean-square slowdown — the ℓ2 norm scaled to be population-size
    /// independent; convenient for comparing runs of different lengths.
    pub fn rms_slowdown(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.l2_slowdown / (self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = QosAccumulator::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_slowdown, 0.0);
        assert_eq!(s.max_slowdown, 0.0);
        assert_eq!(s.l2_slowdown, 0.0);
        assert_eq!(s.rms_slowdown(), 0.0);
    }

    #[test]
    fn example1_hand_numbers() {
        // Paper Table 1, HNR schedule: responses {7,12,17,4} ms with ideals
        // {5,5,5,2} ms -> avg response 10ms... (the paper reports 13.0 and
        // 2.9 for its exact schedule; here we verify our arithmetic on a
        // hand-computed set).
        let mut acc = QosAccumulator::new();
        acc.record_emission(Nanos::ZERO, ms(7), ms(5));
        acc.record_emission(Nanos::ZERO, ms(12), ms(5));
        acc.record_emission(Nanos::ZERO, ms(17), ms(5));
        acc.record_emission(Nanos::ZERO, ms(4), ms(2));
        let s = acc.summary();
        assert_eq!(s.count, 4);
        assert!((s.avg_response_ms - 10.0).abs() < 1e-9);
        // slowdowns: 1.4, 2.4, 3.4, 2.0 -> avg 2.3, max 3.4
        assert!((s.avg_slowdown - 2.3).abs() < 1e-9);
        assert!((s.max_slowdown - 3.4).abs() < 1e-9);
        let l2 = (1.4f64 * 1.4 + 2.4 * 2.4 + 3.4 * 3.4 + 4.0).sqrt();
        assert!((s.l2_slowdown - l2).abs() < 1e-9);
        assert!((s.max_response_ms - 17.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = QosAccumulator::new();
        let mut b = QosAccumulator::new();
        let mut all = QosAccumulator::new();
        for i in 1..50u64 {
            let (arr, dep, ideal) = (ms(0), ms(i * 3), ms(i));
            if i % 2 == 0 {
                a.record_emission(arr, dep, ideal);
            } else {
                b.record_emission(arr, dep, ideal);
            }
            all.record_emission(arr, dep, ideal);
        }
        a.merge(&b);
        let (sa, sall) = (a.summary(), all.summary());
        assert_eq!(sa.count, sall.count);
        assert!((sa.avg_slowdown - sall.avg_slowdown).abs() < 1e-9);
        assert!((sa.l2_slowdown - sall.l2_slowdown).abs() < 1e-9);
        assert_eq!(sa.max_slowdown, sall.max_slowdown);
    }

    proptest! {
        /// Metric sanity: avg ≤ max; ℓ2 ≥ avg·√n is false in general but
        /// ℓ2² ≥ n·avg² holds (Cauchy–Schwarz), and ℓ2 ≤ max·√n.
        #[test]
        fn norm_inequalities(slowdowns in proptest::collection::vec(0.0f64..1e4, 1..100)) {
            let mut acc = QosAccumulator::new();
            for &h in &slowdowns {
                acc.record(Nanos::from_millis(1), h);
            }
            let s = acc.summary();
            let n = slowdowns.len() as f64;
            prop_assert!(s.avg_slowdown <= s.max_slowdown + 1e-9);
            prop_assert!(s.l2_slowdown * s.l2_slowdown + 1e-6 >= n * s.avg_slowdown * s.avg_slowdown);
            prop_assert!(s.l2_slowdown <= s.max_slowdown * n.sqrt() + 1e-9);
            prop_assert!(s.rms_slowdown() >= s.avg_slowdown - 1e-9);
        }

        /// A slowdown must never be below 1 when departure ≥ arrival + ideal
        /// (the system cannot beat ideal processing).
        #[test]
        fn slowdown_at_least_one_with_queuing(wait_ms in 0u64..1000, ideal_ms in 1u64..100) {
            let mut acc = QosAccumulator::new();
            let dep = Nanos::from_millis(wait_ms + ideal_ms);
            acc.record_emission(Nanos::ZERO, dep, Nanos::from_millis(ideal_ms));
            prop_assert!(acc.summary().avg_slowdown >= 1.0 - 1e-12);
        }
    }
}
