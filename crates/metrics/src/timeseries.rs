//! Windowed QoS time series.
//!
//! The headline metrics aggregate a whole run; under bursty arrivals the
//! *trajectory* matters too — backlogs build during ON periods and drain
//! during OFF periods, and policies differ most at the burst peaks. A
//! [`QosTimeSeries`] buckets emissions into fixed virtual-time windows and
//! reports one [`QosSummary`] per window.

use hcq_common::Nanos;

use crate::accumulator::{QosAccumulator, QosSummary};

/// Per-window QoS aggregation over virtual time.
#[derive(Debug, Clone)]
pub struct QosTimeSeries {
    window: Nanos,
    buckets: Vec<QosAccumulator>,
}

impl QosTimeSeries {
    /// Aggregate into windows of the given width (must be positive).
    pub fn new(window: Nanos) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        QosTimeSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// Record an emission that departed at `at`.
    ///
    /// Windows are half-open: window `k` covers `[k·w, (k+1)·w)`, so an
    /// emission landing *exactly* on a boundary `k·w` belongs to window `k`
    /// (the later window), never the one that just closed. This is the
    /// integer-division convention — deterministic by construction.
    pub fn record(&mut self, at: Nanos, response: Nanos, slowdown: f64) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize_with(idx + 1, QosAccumulator::new);
        }
        self.buckets[idx].record(response, slowdown);
    }

    /// The window width.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// Number of windows spanned so far (including empty ones).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Iterate `(window start, summary)` over every window, including empty
    /// ones (count 0) so plots keep their time axis. Window `k` starts at
    /// `k·w` and covers `[k·w, (k+1)·w)`.
    pub fn windows(&self) -> impl Iterator<Item = (Nanos, QosSummary)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, acc)| (self.window * i as u64, acc.summary()))
    }

    /// Collected form of [`Self::windows`].
    pub fn series(&self) -> Vec<(Nanos, QosSummary)> {
        self.windows().collect()
    }

    /// The window with the worst average slowdown, if any emissions exist.
    pub fn worst_window(&self) -> Option<(Nanos, QosSummary)> {
        self.series()
            .into_iter()
            .filter(|(_, s)| s.count > 0)
            .max_by(|a, b| a.1.avg_slowdown.total_cmp(&b.1.avg_slowdown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    #[test]
    fn buckets_by_departure_time() {
        let mut ts = QosTimeSeries::new(ms(10));
        ts.record(ms(1), ms(1), 1.0);
        ts.record(ms(9), ms(2), 3.0);
        ts.record(ms(10), ms(3), 5.0); // next window
        ts.record(ms(35), ms(4), 7.0); // window 3, leaving window 2 empty
        assert_eq!(ts.len(), 4);
        let series = ts.series();
        assert_eq!(series[0].1.count, 2);
        assert!((series[0].1.avg_slowdown - 2.0).abs() < 1e-12);
        assert_eq!(series[1].1.count, 1);
        assert_eq!(series[2].1.count, 0);
        assert_eq!(series[3].1.count, 1);
        assert_eq!(series[3].0, ms(30));
    }

    #[test]
    fn boundary_emissions_land_in_the_later_window() {
        // Windows are [k·w, (k+1)·w): an emission at exactly k·w belongs to
        // window k, so window 0 stays empty here.
        let mut ts = QosTimeSeries::new(ms(10));
        ts.record(ms(10), ms(1), 2.0);
        assert_eq!(ts.len(), 2);
        let series = ts.series();
        assert_eq!(series[0].1.count, 0);
        assert_eq!(series[1].0, ms(10));
        assert_eq!(series[1].1.count, 1);
    }

    #[test]
    fn windows_iterator_matches_series() {
        let mut ts = QosTimeSeries::new(ms(10));
        ts.record(ms(3), ms(1), 1.5);
        ts.record(ms(27), ms(2), 4.0);
        let collected: Vec<_> = ts.windows().collect();
        assert_eq!(collected, ts.series());
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2].0, ms(20));
    }

    #[test]
    fn worst_window_found() {
        let mut ts = QosTimeSeries::new(ms(10));
        ts.record(ms(5), ms(1), 2.0);
        ts.record(ms(15), ms(1), 9.0);
        ts.record(ms(25), ms(1), 4.0);
        let (start, worst) = ts.worst_window().unwrap();
        assert_eq!(start, ms(10));
        assert!((worst.avg_slowdown - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let ts = QosTimeSeries::new(ms(1));
        assert!(ts.is_empty());
        assert!(ts.worst_window().is_none());
        assert!(ts.series().is_empty());
        assert_eq!(ts.window(), ms(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = QosTimeSeries::new(Nanos::ZERO);
    }
}
