//! Scheduler-overhead accumulator.
//!
//! §6 argues that BSD's value lies in being implementable *cheaply*: the
//! naive scheduler pays `O(q)` priority evaluations per scheduling point,
//! clustering drops that to `O(m)` and Fagin pruning to a handful of list
//! accesses. [`OverheadTotals`] aggregates the per-decision work counters a
//! policy reports so a whole run can be summarized as
//! *work-per-scheduling-point* — the quantity Figure 14's "scheduling
//! overhead vs number of queries" axis plots — without timing anything
//! (wall time is noisy and machine-bound; operation counts are exact and
//! deterministic).
//!
//! The counter taxonomy mirrors `hcq_core::SchedStats`; this crate only
//! depends on `hcq-common`, so the bridge passes raw integers.

/// Running totals of scheduler-internal work over a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadTotals {
    /// Scheduling decisions made.
    pub sched_points: u64,
    /// Ready candidates (units, clusters, or list positions) inspected.
    pub candidates_scanned: u64,
    /// Dynamic priority computations.
    pub priority_evals: u64,
    /// Priority comparisons.
    pub comparisons: u64,
    /// Cluster maintenance operations (inserts, shed repairs).
    pub cluster_ops: u64,
    /// Heap / ordered-index operations.
    pub heap_ops: u64,
}

impl OverheadTotals {
    /// An empty accumulator.
    pub fn new() -> Self {
        OverheadTotals::default()
    }

    /// Fold in one scheduling decision's itemized work.
    pub fn record(
        &mut self,
        candidates_scanned: u64,
        priority_evals: u64,
        comparisons: u64,
        cluster_ops: u64,
        heap_ops: u64,
    ) {
        self.sched_points += 1;
        self.candidates_scanned += candidates_scanned;
        self.priority_evals += priority_evals;
        self.comparisons += comparisons;
        self.cluster_ops += cluster_ops;
        self.heap_ops += heap_ops;
    }

    /// Merge another accumulator (e.g. per-shard totals).
    pub fn merge(&mut self, other: &OverheadTotals) {
        self.sched_points += other.sched_points;
        self.candidates_scanned += other.candidates_scanned;
        self.priority_evals += other.priority_evals;
        self.comparisons += other.comparisons;
        self.cluster_ops += other.cluster_ops;
        self.heap_ops += other.heap_ops;
    }

    /// Sum of every work counter (excluding the decision count itself).
    pub fn total_work(&self) -> u64 {
        self.candidates_scanned
            + self.priority_evals
            + self.comparisons
            + self.cluster_ops
            + self.heap_ops
    }

    /// Average priority evaluations per scheduling point — the §6 cost
    /// measure (0.0 when no decision was made).
    pub fn evals_per_point(&self) -> f64 {
        self.per_point(self.priority_evals)
    }

    /// Average candidates inspected per scheduling point.
    pub fn scans_per_point(&self) -> f64 {
        self.per_point(self.candidates_scanned)
    }

    /// Average total work per scheduling point.
    pub fn work_per_point(&self) -> f64 {
        self.per_point(self.total_work())
    }

    fn per_point(&self, total: u64) -> f64 {
        if self.sched_points == 0 {
            0.0
        } else {
            total as f64 / self.sched_points as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_totals_are_zero() {
        let t = OverheadTotals::new();
        assert_eq!(t.total_work(), 0);
        assert_eq!(t.evals_per_point(), 0.0);
        assert_eq!(t.scans_per_point(), 0.0);
        assert_eq!(t.work_per_point(), 0.0);
    }

    #[test]
    fn record_accumulates_and_averages() {
        let mut t = OverheadTotals::new();
        t.record(10, 10, 10, 0, 2);
        t.record(6, 6, 6, 4, 0);
        assert_eq!(t.sched_points, 2);
        assert_eq!(t.priority_evals, 16);
        assert_eq!(t.cluster_ops, 4);
        assert_eq!(t.evals_per_point(), 8.0);
        assert_eq!(t.scans_per_point(), 8.0);
        assert_eq!(t.total_work(), 54);
        assert_eq!(t.work_per_point(), 27.0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = OverheadTotals::new();
        a.record(1, 2, 3, 4, 5);
        let mut b = OverheadTotals::new();
        b.record(10, 20, 30, 40, 50);
        a.merge(&b);
        assert_eq!(a.sched_points, 2);
        assert_eq!(a.candidates_scanned, 11);
        assert_eq!(a.priority_evals, 22);
        assert_eq!(a.comparisons, 33);
        assert_eq!(a.cluster_ops, 44);
        assert_eq!(a.heap_ops, 55);
    }
}
