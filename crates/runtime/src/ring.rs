//! A lock-free bounded MPMC ring: the index-queue channel between the
//! ingest thread and the query shards, and the surface work stealing pops
//! from.
//!
//! The design is the classic bounded MPMC queue built from a power-of-two
//! slot array where each slot carries its own sequence number (the same
//! family as SNIPPETS' scq/ncq index queues: producers and consumers agree
//! on slot ownership through per-slot counters rather than a shared lock).
//! A producer claims slot `tail & mask` when the slot's sequence equals
//! `tail`; a consumer claims slot `head & mask` when the sequence equals
//! `head + 1`. Claim, write/read the payload, then publish by bumping the
//! sequence — every handoff is a single acquire/release pair per side.
//!
//! `try_push`/`try_pop` never block and never spin unboundedly: a full ring
//! returns the value to the caller (admission backpressure is the caller's
//! policy decision), an empty ring returns `None` (the shard goes on to
//! steal or park).
//!
//! Under `--cfg loom` the atomics and cells route through the `loom` crate
//! so the push/pop/steal handoff can be model-checked (exhaustively with
//! upstream loom; as a seeded stress run with the in-repo `shims/loom`
//! stand-in — see that crate's docs for the distinction).

#[cfg(loom)]
use loom::cell::UnsafeCell as PayloadCell;
#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};

#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// `loom::cell::UnsafeCell`-compatible wrapper over the std cell, so the
/// ring body is written once against the closure API.
#[cfg(not(loom))]
#[derive(Debug, Default)]
struct PayloadCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> PayloadCell<T> {
    fn new(v: T) -> Self {
        PayloadCell(std::cell::UnsafeCell::new(v))
    }

    fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}

/// Pad to a cache line so the producer and consumer cursors do not
/// false-share.
#[repr(align(64))]
struct CacheAligned<T>(T);

struct Slot<T> {
    /// Slot state: `seq == lap` ⇒ free for the producer whose tail is
    /// `lap`; `seq == lap + 1` ⇒ holds the value pushed at tail `lap`.
    seq: AtomicUsize,
    val: PayloadCell<Option<T>>,
}

/// Bounded lock-free MPMC ring. `T` crosses threads by value.
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    tail: CacheAligned<AtomicUsize>,
    head: CacheAligned<AtomicUsize>,
}

// The payload cells are only written by the thread that won the slot's
// sequence CAS and only read by the thread that observed the published
// sequence — the per-slot acquire/release pair orders every access.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// A ring with capacity `capacity.next_power_of_two()` (at least 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: PayloadCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            mask: cap - 1,
            tail: CacheAligned(AtomicUsize::new(0)),
            head: CacheAligned(AtomicUsize::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Push `v`, or hand it back when the ring is full.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = (seq as isize).wrapping_sub(tail as isize);
            if diff == 0 {
                // Free slot for this lap: claim it.
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.val.with_mut(|p| unsafe { *p = Some(v) });
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if diff < 0 {
                // The slot still holds the value from one lap ago: full.
                return Err(v);
            } else {
                // Another producer claimed this tail; reload.
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest value, or `None` when the ring is empty. Safe from
    /// any thread — work stealing is just `try_pop` by a non-owner.
    pub fn try_pop(&self) -> Option<T> {
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = (seq as isize).wrapping_sub(head.wrapping_add(1) as isize);
            if diff == 0 {
                // Published value for this lap: claim it.
                match self.head.0.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = slot.val.with_mut(|p| unsafe { (*p).take() });
                        // Free the slot for the producer one lap ahead.
                        slot.seq
                            .store(head.wrapping_add(self.mask + 1), Ordering::Release);
                        debug_assert!(v.is_some(), "claimed slot holds a value");
                        return v;
                    }
                    Err(h) => head = h,
                }
            } else if diff < 0 {
                // Nothing published at head: empty (or a producer is
                // mid-publish; the caller retries on its next loop).
                return None;
            } else {
                // Another consumer claimed this head; reload.
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate occupancy (racy by nature; used for idle heuristics and
    /// gauges only).
    pub fn approx_len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Racy emptiness check (see [`Ring::approx_len`]).
    pub fn is_empty(&self) -> bool {
        self.approx_len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let r: Ring<u32> = Ring::new(4);
        assert_eq!(r.capacity(), 4);
        assert!(r.is_empty());
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.try_push(99), Err(99), "full ring hands the value back");
        for i in 0..4 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert_eq!(r.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Ring::<u8>::new(0).capacity(), 2);
        assert_eq!(Ring::<u8>::new(3).capacity(), 4);
        assert_eq!(Ring::<u8>::new(8).capacity(), 8);
    }

    #[test]
    fn wraps_many_laps() {
        let r: Ring<usize> = Ring::new(2);
        for lap in 0..1000 {
            r.try_push(lap).unwrap();
            r.try_push(lap + 1_000_000).unwrap();
            assert_eq!(r.try_pop(), Some(lap));
            assert_eq!(r.try_pop(), Some(lap + 1_000_000));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        const PER_PRODUCER: u64 = 20_000;
        let ring: Arc<Ring<u64>> = Arc::new(Ring::new(64));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match ring.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ring = ring.clone();
                let sum = sum.clone();
                let count = count.clone();
                std::thread::spawn(move || loop {
                    match ring.try_pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if count.load(Ordering::Relaxed) == 2 * PER_PRODUCER {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        let n = 2 * PER_PRODUCER;
        assert_eq!(count.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
