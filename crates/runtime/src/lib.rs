//! # hcq-runtime — the wall-clock multicore executor
//!
//! Every other crate in this workspace schedules *virtual* time; this one
//! runs the same query plans and the same [`hcq_core::Policy`]
//! implementations on real OS threads against real queue contention.
//!
//! ## Architecture
//!
//! ```text
//!  ingest thread                     worker threads (shards)
//!  ─────────────                     ───────────────────────
//!  pre-generated arrival schedule       ┌─ shard 0: Policy + UnitQueues
//!  (same ids/keys/ideal departures  ──► │  inbox Ring (MPMC)
//!   as the simulator's inject)          ├─ shard 1: Policy + UnitQueues
//!                                   ──► │  inbox Ring (MPMC)   ▲
//!                                       └─ ...                 │ steal
//!                                          idle shards ────────┘
//! ```
//!
//! - **Shards**: each schedulable unit is pinned to the worker
//!   `unit % threads`. A shard owns a private [`UnitQueues`] and its own
//!   policy instance, so the scheduling hot path (enqueue callbacks,
//!   `select`, pop) is single-threaded per shard — exactly the contract the
//!   simulator gives a policy, replicated per thread.
//! - **Rings**: cross-thread tuple movement happens only through bounded
//!   lock-free MPMC rings ([`ring::Ring`]); a full inbox backpressures the
//!   ingest thread rather than growing unboundedly.
//! - **Work stealing**: a shard with nothing queued locally pops from
//!   sibling *inboxes* (MPMC pop by a non-owner) and executes the stolen
//!   tuple directly. Unary pipeline outcomes are pure functions of the
//!   tuple ([`hcq_engine::exec`]), so a stolen execution emits exactly what
//!   the owner would have emitted.
//! - **Admission**: the simulator's ladder — `Unbounded`, `DropTail`,
//!   [`exec::shed_victim`]-driven `QosShed` — applies when a shard moves an
//!   inbox item into its unit queue, and an optional closed-loop governor
//!   walks the ladder from global backlog, mapping the engine's overload
//!   machinery onto the real queues.
//!
//! ## Determinism contract (and its limits)
//!
//! The arrival schedule (ids, keys, virtual arrival timestamps, ideal
//! departures) is pre-generated exactly as the simulator's `inject`, and
//! every drop/emit decision is a pure function of `(tuple, operator,
//! seed)`. Therefore, for workloads where nothing is shed, the **multiset
//! of emissions** — total and per-query emitted counts, and the
//! order-insensitive lineage fingerprint — is identical across thread
//! counts, policies, and runs, and identical to the simulator's
//! ([`differential`] proves it). What is *not* deterministic: emission
//! order, wall-clock QoS (response/slowdown), and which tuples are shed
//! once bounded queues actually overflow.

pub mod ring;

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

use hcq_common::{EngineError, HcqError, Nanos, Result, TupleId};
use hcq_core::{Policy, PolicyKind, QueueView, UnitId};
use hcq_engine::exec;
use hcq_engine::queues::UnitQueues;
use hcq_engine::{AdmissionMode, OverloadConfig, SimModel, SimTuple, UnitKind};
use hcq_metrics::{QosAccumulator, QosSummary, TelemetryRegistry, TelemetrySnapshot};
use hcq_plan::{CompiledOpKind, GlobalPlan, StreamRates};
use hcq_streams::ArrivalSource;

use ring::Ring;

/// One queued tuple crossing a ring: the target unit, the tuple, and the
/// wall-clock enqueue instant (nanoseconds since run start) that anchors
/// the runtime's response-time measurement.
#[derive(Debug, Clone, Copy)]
struct RtItem {
    unit: UnitId,
    tuple: SimTuple,
    enq_ns: u64,
}

/// Closed-loop admission governor thresholds: the ingest thread walks the
/// `Unbounded → DropTail → QosShed` ladder one rung at a time from the
/// global in-flight backlog.
#[derive(Debug, Clone, Copy)]
pub struct GovernorThresholds {
    /// Escalate one rung when the in-flight backlog exceeds this.
    pub escalate_pending: usize,
    /// De-escalate one rung when it falls below this.
    pub deescalate_pending: usize,
    /// Minimum injected items between transitions (hysteresis dwell).
    pub min_dwell_items: u64,
}

/// Wall-clock executor configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker (shard) threads.
    pub threads: usize,
    /// Per-shard inbox ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Admission ladder position and per-unit queue bounds, with the same
    /// semantics as the simulator's [`OverloadConfig`].
    pub overload: OverloadConfig,
    /// Let idle shards pop from sibling inboxes.
    pub steal: bool,
    /// Master seed for attribute values and selectivity coins (must match
    /// the simulator's seed for differential runs).
    pub seed: u64,
    /// Total source arrivals to inject (summed over all streams).
    pub max_arrivals: u64,
    /// Closed-loop admission governor (`None` = the configured mode is
    /// fixed for the whole run).
    pub govern: Option<GovernorThresholds>,
}

impl RuntimeConfig {
    /// Single-threaded, unbounded-admission run of `max_arrivals` arrivals.
    pub fn new(max_arrivals: u64) -> Self {
        RuntimeConfig {
            threads: 1,
            ring_capacity: 1024,
            overload: OverloadConfig::default(),
            steal: true,
            seed: 0,
            max_arrivals,
            govern: None,
        }
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bound every unit queue at `capacity` tuples under `mode`.
    pub fn with_admission(mut self, mode: AdmissionMode, capacity: usize) -> Self {
        self.overload.mode = mode;
        self.overload.capacity = capacity;
        self
    }

    /// Set the global pending-tuple watermark for QoS shedding.
    pub fn with_watermark(mut self, watermark: usize) -> Self {
        self.overload.watermark = watermark;
        self
    }
}

/// What a run produced, merged over all shards.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Worker threads the run used.
    pub threads: usize,
    /// Physical source arrivals injected.
    pub arrivals: u64,
    /// Tuple copies entering unit queues (arrivals × per-stream fan-out).
    pub injected: u64,
    /// Root emissions.
    pub emitted: u64,
    /// Tuples dropped by operator predicates.
    pub dropped: u64,
    /// Tuples shed by admission control.
    pub shed: u64,
    /// Tuples executed by a non-owner shard via work stealing.
    pub stolen: u64,
    /// Scheduling points (policy `select` calls) across all shards.
    pub selections: u64,
    /// Emissions per query — ordering-insensitive, deterministic for
    /// no-shed workloads.
    pub per_query_emitted: Vec<u64>,
    /// Commutative (xor, sum) hash over emitted `(query, lineage)` pairs —
    /// equal iff the emission multisets are equal (up to hash collision).
    pub fingerprint: (u64, u64),
    /// Wall-clock QoS over emissions (response anchored at ring enqueue;
    /// nondeterministic — excluded from differential comparison).
    pub qos: QosSummary,
    /// Wall-clock duration of the run.
    pub wall_ns: u64,
    /// Completed tuple copies (emitted + dropped + shed) per wall second.
    pub tuples_per_sec: f64,
    /// Governor ladder transitions.
    pub governor_transitions: u64,
    /// Admission mode at the end of the run.
    pub final_mode: AdmissionMode,
    /// Counter snapshot in the engine's telemetry-registry format.
    pub telemetry: TelemetrySnapshot,
}

impl RuntimeReport {
    /// Tuple conservation: every injected copy was emitted, dropped, or
    /// shed.
    pub fn conserved(&self) -> bool {
        self.injected == self.emitted + self.dropped + self.shed
    }
}

/// The admission ladder as an atomic (governor-walkable) position.
const LADDER: [AdmissionMode; 3] = [
    AdmissionMode::Unbounded,
    AdmissionMode::DropTail,
    AdmissionMode::QosShed,
];

fn ladder_index(mode: AdmissionMode) -> u8 {
    match mode {
        AdmissionMode::Unbounded => 0,
        AdmissionMode::DropTail => 1,
        AdmissionMode::QosShed => 2,
    }
}

/// State shared by the ingest thread and every shard.
struct Shared<'a> {
    model: &'a SimModel,
    shed_priority: Vec<f64>,
    inboxes: Vec<Ring<RtItem>>,
    /// Injected copies not yet emitted/dropped/shed.
    in_flight: AtomicUsize,
    ingest_done: AtomicBool,
    /// Current ladder position (index into [`LADDER`]).
    mode: AtomicU8,
    transitions: AtomicU64,
    /// A worker hit an engine error; everyone winds down.
    failed: AtomicBool,
    capacity: usize,
    watermark: usize,
    steal: bool,
    seed: u64,
    threads: usize,
    start: Instant,
}

impl Shared<'_> {
    fn mode(&self) -> AdmissionMode {
        LADDER[self.mode.load(Ordering::Relaxed) as usize]
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// A tuple copy reached its final outcome.
    fn complete_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// Per-shard tallies, merged into the [`RuntimeReport`] after join.
struct ShardStats {
    emitted: u64,
    dropped: u64,
    shed: u64,
    stolen: u64,
    selections: u64,
    per_query: Vec<u64>,
    fingerprint: (u64, u64),
    qos: QosAccumulator,
}

impl ShardStats {
    fn new(queries: usize) -> Self {
        ShardStats {
            emitted: 0,
            dropped: 0,
            shed: 0,
            stolen: 0,
            selections: 0,
            per_query: vec![0; queries],
            fingerprint: (0, 0),
            qos: QosAccumulator::new(),
        }
    }
}

/// One shard's scheduling state: a private policy instance over private
/// queues. Only this worker thread touches either.
struct Shard<'a> {
    id: usize,
    policy: Box<dyn Policy>,
    queues: UnitQueues,
    /// Virtual watermark: max arrival admitted so far. Policies receive it
    /// as `now`, keeping priority arithmetic in the virtual-time domain the
    /// arrival timestamps live in (see DESIGN §14 for the caveat).
    watermark: Nanos,
    /// Wall enqueue instants, per unit FIFO — parallel to `queues` so
    /// responses are measured from ring enqueue to emission.
    enq_ns: Vec<std::collections::VecDeque<u64>>,
    stats: ShardStats,
    shared: &'a Shared<'a>,
}

impl<'a> Shard<'a> {
    fn new(id: usize, kind: PolicyKind, shared: &'a Shared<'a>) -> Self {
        let n_units = shared.model.unit_count();
        let mut policy = kind.build();
        policy.on_register(&shared.model.unit_statics());
        Shard {
            id,
            policy,
            queues: UnitQueues::new(n_units),
            watermark: Nanos::ZERO,
            enq_ns: (0..n_units)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            stats: ShardStats::new(shared.model.compiled.len()),
            shared,
        }
    }

    /// The worker loop: drain the inbox, schedule, execute; steal when
    /// idle; exit when ingest is done and nothing is in flight anywhere.
    fn run(mut self) -> Result<ShardStats, EngineError> {
        const DRAIN_BATCH: usize = 64;
        let mut idle_spins: u32 = 0;
        loop {
            let mut drained = 0;
            while drained < DRAIN_BATCH {
                match self.shared.inboxes[self.id].try_pop() {
                    Some(item) => {
                        self.admit(item)?;
                        drained += 1;
                    }
                    None => break,
                }
            }
            if self.queues.pending() > 0 {
                idle_spins = 0;
                self.schedule_once()?;
                continue;
            }
            if drained > 0 {
                idle_spins = 0;
                continue;
            }
            if self.shared.steal && self.shared.threads > 1 {
                if let Some(item) = self.try_steal() {
                    idle_spins = 0;
                    self.stats.stolen += 1;
                    self.execute(item.unit, item.tuple, item.enq_ns)?;
                    continue;
                }
            }
            if self.shared.failed.load(Ordering::Relaxed) {
                break;
            }
            if self.shared.ingest_done.load(Ordering::Acquire)
                && self.shared.in_flight.load(Ordering::Acquire) == 0
            {
                break;
            }
            idle_spins = idle_spins.saturating_add(1);
            if idle_spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        Ok(self.stats)
    }

    /// Move one ring item into the local queues under the current
    /// admission mode (the simulator's `admit`, on real queues).
    fn admit(&mut self, item: RtItem) -> Result<(), EngineError> {
        let unit = item.unit;
        match self.shared.mode() {
            AdmissionMode::Unbounded => {}
            AdmissionMode::DropTail => {
                if self.queues.len(unit) >= self.shared.capacity {
                    self.stats.shed += 1;
                    self.shared.complete_one();
                    return Ok(());
                }
            }
            AdmissionMode::QosShed => {
                if self.queues.len(unit) >= self.shared.capacity
                    && self.queues.pending() >= self.shared.watermark
                {
                    match exec::shed_victim(
                        self.queues.nonempty(),
                        &self.shared.shed_priority,
                        unit,
                    ) {
                        Some(victim) => {
                            if let Some(t) = self.queues.shed_tail(victim) {
                                self.enq_ns[victim as usize].pop_back();
                                self.policy.on_shed(victim, t.id);
                                self.stats.shed += 1;
                                self.shared.complete_one();
                            }
                        }
                        None => {
                            // The arriving unit is itself the least
                            // valuable: reject the arrival.
                            self.stats.shed += 1;
                            self.shared.complete_one();
                            return Ok(());
                        }
                    }
                }
            }
        }
        self.watermark = self.watermark.max(item.tuple.arrival);
        self.queues.push(unit, item.tuple);
        self.enq_ns[unit as usize].push_back(item.enq_ns);
        self.policy
            .on_enqueue(unit, item.tuple.id, item.tuple.arrival, self.watermark);
        Ok(())
    }

    /// One scheduling point: ask the policy, execute every selected unit.
    fn schedule_once(&mut self) -> Result<(), EngineError> {
        let selection =
            self.policy
                .select(&self.queues, self.watermark)
                .ok_or(EngineError::NoSelection {
                    pending: self.queues.pending(),
                })?;
        self.stats.selections += 1;
        for unit in selection.units {
            let tuple = self.queues.pop(unit)?;
            let enq = self.enq_ns[unit as usize]
                .pop_front()
                .unwrap_or_else(|| self.shared.now_ns());
            self.execute(unit, tuple, enq)?;
        }
        Ok(())
    }

    /// Pop one item from a sibling inbox (MPMC pop by a non-owner).
    fn try_steal(&self) -> Option<RtItem> {
        // Start from a shard-dependent offset so thieves spread out.
        for off in 1..self.shared.threads {
            let victim = (self.id + off) % self.shared.threads;
            if let Some(item) = self.shared.inboxes[victim].try_pop() {
                return Some(item);
            }
        }
        None
    }

    /// Run one tuple through its unit's unary pipeline to the root.
    fn execute(&mut self, unit: UnitId, tuple: SimTuple, enq_ns: u64) -> Result<(), EngineError> {
        let model = self.shared.model;
        let desc = model
            .units
            .get(unit as usize)
            .ok_or(EngineError::UnknownUnit {
                unit,
                unit_count: model.unit_count(),
            })?;
        let UnitKind::Leaf { query, leaf } = desc.kind else {
            // `build` validated a pure query-level unary workload.
            return Err(EngineError::UnknownUnit {
                unit,
                unit_count: model.unit_count(),
            });
        };
        let cq = &model.compiled[query];
        let mut cursor = Some(cq.leaves[leaf.index()].entry);
        while let Some((oi, _port)) = cursor {
            let op = &cq.ops[oi];
            match op.kind {
                CompiledOpKind::Unary(spec) => {
                    if !exec::unary_passes(
                        self.shared.seed,
                        query,
                        oi,
                        &spec,
                        spec.selectivity,
                        &tuple,
                    ) {
                        self.stats.dropped += 1;
                        self.shared.complete_one();
                        return Ok(());
                    }
                    cursor = op.downstream;
                }
                CompiledOpKind::Join(_) => {
                    return Err(EngineError::UnexpectedJoin { query, op: oi })
                }
            }
        }
        // Root emission.
        self.stats.emitted += 1;
        self.stats.per_query[query] += 1;
        self.stats.fingerprint = exec::fold_emission(self.stats.fingerprint, query, tuple.lineage);
        let response = Nanos::from_nanos(self.shared.now_ns().saturating_sub(enq_ns));
        let ideal = model.stats[query].ideal_time;
        let slowdown = if ideal.is_zero() {
            1.0
        } else {
            (response.as_nanos() as f64 / ideal.as_nanos() as f64).max(1.0)
        };
        self.stats.qos.record(response, slowdown);
        self.shared.complete_one();
        Ok(())
    }
}

/// Pre-generate the full injection schedule: the same merge over sources,
/// the same global arrival ordinals, keys, and per-route ideal departures
/// as the simulator's `inject`.
fn build_schedule(
    model: &SimModel,
    mut sources: Vec<Box<dyn ArrivalSource>>,
    seed: u64,
    max_arrivals: u64,
) -> (u64, Vec<(UnitId, SimTuple)>) {
    let mut heap = BinaryHeap::new();
    for (s, src) in sources.iter_mut().enumerate() {
        if let Some(t) = src.next_arrival() {
            heap.push(Reverse((t, s)));
        }
    }
    let mut out = Vec::new();
    let mut injected = 0u64;
    while injected < max_arrivals {
        let Some(Reverse((t, s))) = heap.pop() else {
            break;
        };
        if let Some(next) = sources[s].next_arrival() {
            heap.push(Reverse((next, s)));
        }
        let id = TupleId::new(injected);
        injected += 1;
        let key = exec::arrival_key(seed, id);
        if s >= model.routes.len() {
            continue;
        }
        for route in &model.routes[s] {
            out.push((
                route.unit,
                SimTuple {
                    id,
                    arrival: t,
                    ts: t,
                    key,
                    ideal_depart: t + route.alone,
                    lineage: id,
                },
            ));
        }
    }
    (injected, out)
}

/// Execute `plan` on `cfg.threads` OS threads under `kind` scheduling.
///
/// Supports the same workload family the differential harness certifies:
/// query-level scheduling of unary pipelines (no window joins, no shared
/// operators, no fault injection). Anything else is rejected up front.
pub fn run(
    plan: &GlobalPlan,
    rates: &StreamRates,
    sources: Vec<Box<dyn ArrivalSource>>,
    kind: PolicyKind,
    cfg: &RuntimeConfig,
) -> Result<RuntimeReport> {
    if cfg.threads == 0 {
        return Err(HcqError::config("runtime needs at least one thread"));
    }
    if cfg.overload.mode != AdmissionMode::Unbounded && cfg.overload.capacity == 0 {
        return Err(HcqError::config(
            "bounded admission needs a per-unit capacity of at least 1",
        ));
    }
    let model = SimModel::build(
        plan,
        rates,
        hcq_engine::SchedulingLevel::Query,
        hcq_core::SharingStrategy::Pdt,
    )?;
    if !model.groups.is_empty() {
        return Err(HcqError::config(
            "the wall-clock runtime does not execute shared-operator groups yet",
        ));
    }
    if model
        .compiled
        .iter()
        .any(|cq| !cq.join_indices().is_empty())
    {
        return Err(HcqError::config(
            "the wall-clock runtime does not execute window joins yet",
        ));
    }
    for (s, routes) in model.routes.iter().enumerate() {
        if !routes.is_empty() && s >= sources.len() {
            return Err(HcqError::config(format!(
                "stream {s} is referenced by the plan but has no source"
            )));
        }
    }

    let (arrivals, schedule) = build_schedule(&model, sources, cfg.seed, cfg.max_arrivals);
    let injected = schedule.len() as u64;

    let shared = Shared {
        model: &model,
        shed_priority: model
            .unit_statics()
            .iter()
            .map(|u| u.hnr_priority())
            .collect(),
        inboxes: (0..cfg.threads)
            .map(|_| Ring::new(cfg.ring_capacity))
            .collect(),
        in_flight: AtomicUsize::new(0),
        ingest_done: AtomicBool::new(false),
        mode: AtomicU8::new(ladder_index(cfg.overload.mode)),
        transitions: AtomicU64::new(0),
        failed: AtomicBool::new(false),
        capacity: cfg.overload.capacity,
        watermark: cfg.overload.watermark,
        steal: cfg.steal,
        seed: cfg.seed,
        threads: cfg.threads,
        start: Instant::now(),
    };

    let mut shard_results: Vec<Result<ShardStats, EngineError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|i| {
                let shared = &shared;
                scope.spawn(move || {
                    let result = Shard::new(i, kind, shared).run();
                    if result.is_err() {
                        shared.failed.store(true, Ordering::Release);
                    }
                    result
                })
            })
            .collect();

        // Ingest: push every scheduled copy to its owner shard's inbox,
        // walking the governor ladder from the global backlog.
        let mut since_transition = 0u64;
        for (unit, tuple) in &schedule {
            if shared.failed.load(Ordering::Relaxed) {
                break;
            }
            let target = (*unit as usize) % cfg.threads;
            shared.in_flight.fetch_add(1, Ordering::Release);
            let mut item = RtItem {
                unit: *unit,
                tuple: *tuple,
                enq_ns: shared.now_ns(),
            };
            loop {
                match shared.inboxes[target].try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        if shared.failed.load(Ordering::Relaxed) {
                            shared.complete_one();
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            since_transition += 1;
            if let Some(g) = cfg.govern {
                if since_transition >= g.min_dwell_items {
                    let backlog = shared.in_flight.load(Ordering::Relaxed);
                    let rung = shared.mode.load(Ordering::Relaxed);
                    if backlog > g.escalate_pending && (rung as usize) < LADDER.len() - 1 {
                        shared.mode.store(rung + 1, Ordering::Relaxed);
                        shared.transitions.fetch_add(1, Ordering::Relaxed);
                        since_transition = 0;
                    } else if backlog < g.deescalate_pending && rung > 0 {
                        shared.mode.store(rung - 1, Ordering::Relaxed);
                        shared.transitions.fetch_add(1, Ordering::Relaxed);
                        since_transition = 0;
                    }
                }
            }
        }
        shared.ingest_done.store(true, Ordering::Release);
        shard_results = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
    });

    let wall_ns = shared.now_ns().max(1);
    let mut emitted = 0u64;
    let mut dropped = 0u64;
    let mut shed = 0u64;
    let mut stolen = 0u64;
    let mut selections = 0u64;
    let mut per_query = vec![0u64; model.compiled.len()];
    let mut fingerprint = (0u64, 0u64);
    let mut qos = QosAccumulator::new();
    for r in shard_results {
        let s = r.map_err(HcqError::Engine)?;
        emitted += s.emitted;
        dropped += s.dropped;
        shed += s.shed;
        stolen += s.stolen;
        selections += s.selections;
        for (acc, q) in per_query.iter_mut().zip(&s.per_query) {
            *acc += q;
        }
        fingerprint.0 ^= s.fingerprint.0;
        fingerprint.1 = fingerprint.1.wrapping_add(s.fingerprint.1);
        qos.merge(&s.qos);
    }

    let completed = emitted + dropped + shed;
    let mut reg = TelemetryRegistry::new();
    let c_arrivals = reg.counter("hcq_arrivals_total", "source arrivals injected", vec![]);
    let c_emitted = reg.counter("hcq_emitted_total", "root emissions", vec![]);
    let c_dropped = reg.counter("hcq_dropped_total", "predicate drops", vec![]);
    let c_shed = reg.counter("hcq_shed_total", "admission sheds", vec![]);
    let c_stolen = reg.counter("hcq_stolen_total", "work-stolen executions", vec![]);
    let g_threads = reg.gauge("hcq_runtime_threads", "worker threads", vec![]);
    reg.set_counter(c_arrivals, arrivals);
    reg.set_counter(c_emitted, emitted);
    reg.set_counter(c_dropped, dropped);
    reg.set_counter(c_shed, shed);
    reg.set_counter(c_stolen, stolen);
    reg.set_gauge(g_threads, cfg.threads as f64);
    let telemetry = reg.snapshot(Nanos::from_nanos(wall_ns));

    Ok(RuntimeReport {
        threads: cfg.threads,
        arrivals,
        injected,
        emitted,
        dropped,
        shed,
        stolen,
        selections,
        per_query_emitted: per_query,
        fingerprint,
        qos: qos.summary(),
        wall_ns,
        tuples_per_sec: completed as f64 / (wall_ns as f64 / 1e9),
        governor_transitions: shared.transitions.load(Ordering::Relaxed),
        final_mode: shared.mode(),
        telemetry,
    })
}

pub mod differential {
    //! The runtime ⇄ simulator differential harness.
    //!
    //! For a deterministic no-shed workload the two executors must agree
    //! exactly on the emission multiset; this module runs both and compares
    //! the ordering-insensitive aggregates.

    use super::*;
    use hcq_engine::{simulate_traced, SimConfig, VecTrace};

    /// The ordering-insensitive aggregates both executors must agree on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Aggregates {
        /// Root emissions.
        pub emitted: u64,
        /// Predicate drops.
        pub dropped: u64,
        /// Admission sheds.
        pub shed: u64,
        /// Emissions per query.
        pub per_query_emitted: Vec<u64>,
        /// Commutative `(xor, sum)` emission-multiset hash.
        pub fingerprint: (u64, u64),
    }

    /// Run the simulator on the identical workload and reduce its trace to
    /// [`Aggregates`].
    pub fn simulator_aggregates(
        plan: &GlobalPlan,
        rates: &StreamRates,
        sources: Vec<Box<dyn ArrivalSource>>,
        kind: PolicyKind,
        cfg: &SimConfig,
    ) -> Result<Aggregates> {
        let queries = plan.queries.len();
        let (report, trace) = simulate_traced(
            plan,
            rates,
            sources,
            kind.build(),
            cfg.clone(),
            VecTrace::new(),
        )?;
        let mut per_query = vec![0u64; queries];
        let mut fingerprint = (0u64, 0u64);
        for ev in &trace.events {
            if let hcq_engine::TraceEvent::Emit { query, lineage, .. } = ev {
                per_query[*query as usize] += 1;
                fingerprint =
                    exec::fold_emission(fingerprint, *query as usize, TupleId::new(*lineage));
            }
        }
        Ok(Aggregates {
            emitted: report.emitted,
            dropped: report.dropped,
            shed: report.shed,
            per_query_emitted: per_query,
            fingerprint,
        })
    }

    /// Reduce a runtime report to the comparable aggregates.
    pub fn runtime_aggregates(report: &RuntimeReport) -> Aggregates {
        Aggregates {
            emitted: report.emitted,
            dropped: report.dropped,
            shed: report.shed,
            per_query_emitted: report.per_query_emitted.clone(),
            fingerprint: report.fingerprint,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use hcq_common::Nanos;
    use hcq_plan::QueryBuilder;
    use hcq_streams::PoissonSource;

    fn small_plan() -> GlobalPlan {
        let mut plan = GlobalPlan::default();
        for q in 0..4u64 {
            plan.add_query(
                QueryBuilder::on(hcq_common::StreamId::new(0))
                    .select(Nanos::from_micros(50 + 10 * q), 0.2 + 0.15 * q as f64)
                    .project(Nanos::from_micros(20))
                    .build()
                    .unwrap(),
            );
        }
        plan
    }

    fn sources() -> Vec<Box<dyn ArrivalSource>> {
        vec![Box::new(PoissonSource::new(Nanos::from_millis(1), 9))]
    }

    #[test]
    fn runtime_conserves_and_reports() {
        let report = run(
            &small_plan(),
            &StreamRates::none(),
            sources(),
            PolicyKind::Hnr,
            &RuntimeConfig::new(300).with_seed(3),
        )
        .unwrap();
        assert_eq!(report.arrivals, 300);
        assert_eq!(report.injected, 1200, "4 queries on one stream fan out 4x");
        assert!(report.conserved(), "emitted+dropped+shed == injected");
        assert_eq!(report.shed, 0, "unbounded admission sheds nothing");
        assert!(report.emitted > 0);
        assert_eq!(
            report.telemetry.counter("hcq_emitted_total"),
            Some(report.emitted)
        );
        assert!(report.tuples_per_sec > 0.0);
    }

    #[test]
    fn emission_multiset_is_thread_count_invariant() {
        let base = run(
            &small_plan(),
            &StreamRates::none(),
            sources(),
            PolicyKind::Bsd,
            &RuntimeConfig::new(400).with_seed(3),
        )
        .unwrap();
        for threads in [2, 4] {
            let multi = run(
                &small_plan(),
                &StreamRates::none(),
                sources(),
                PolicyKind::Bsd,
                &RuntimeConfig::new(400).with_seed(3).with_threads(threads),
            )
            .unwrap();
            assert_eq!(multi.emitted, base.emitted);
            assert_eq!(multi.per_query_emitted, base.per_query_emitted);
            assert_eq!(multi.fingerprint, base.fingerprint);
            assert!(multi.conserved());
        }
    }

    #[test]
    fn droptail_sheds_and_conserves_under_tight_capacity() {
        let report = run(
            &small_plan(),
            &StreamRates::none(),
            sources(),
            PolicyKind::Fcfs,
            &RuntimeConfig::new(500)
                .with_seed(3)
                .with_threads(2)
                .with_admission(AdmissionMode::DropTail, 1),
        )
        .unwrap();
        assert!(report.conserved());
    }

    #[test]
    fn governor_walks_the_ladder_under_backlog() {
        let mut cfg = RuntimeConfig::new(500)
            .with_seed(3)
            .with_admission(AdmissionMode::Unbounded, 4)
            .with_watermark(8);
        cfg.govern = Some(GovernorThresholds {
            escalate_pending: 10,
            deescalate_pending: 2,
            min_dwell_items: 20,
        });
        // A single slow shard guarantees backlog builds while ingest runs.
        let report = run(
            &small_plan(),
            &StreamRates::none(),
            sources(),
            PolicyKind::RoundRobin,
            &cfg,
        )
        .unwrap();
        assert!(report.conserved());
        assert!(
            report.governor_transitions > 0,
            "backlog of hundreds of tuples must trip the escalate threshold"
        );
    }

    #[test]
    fn rejects_unsupported_workloads() {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(hcq_common::StreamId::new(0))
                .select(Nanos::from_micros(50), 0.5)
                .build()
                .unwrap(),
        );
        // Zero threads.
        assert!(run(
            &plan,
            &StreamRates::none(),
            sources(),
            PolicyKind::Fcfs,
            &RuntimeConfig::new(10).with_threads(0),
        )
        .is_err());
        // Bounded admission with no capacity.
        assert!(run(
            &plan,
            &StreamRates::none(),
            sources(),
            PolicyKind::Fcfs,
            &RuntimeConfig::new(10).with_admission(AdmissionMode::DropTail, 0),
        )
        .is_err());
    }
}
