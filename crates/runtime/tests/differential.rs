//! Runtime ⇄ simulator differential: for deterministic no-shed workloads,
//! the wall-clock runtime and the virtual-time simulator must agree
//! **exactly** on the emission multiset — total and per-query emitted
//! counts and the order-insensitive lineage fingerprint — across every
//! policy and every admission-ladder rung.
//!
//! Under tight capacity the two executors shed *different* tuples (wall
//! clocks differ run to run), so there the contract weakens to tuple
//! conservation on both sides; that path is covered separately.

use hcq_core::PolicyKind;
use hcq_engine::{AdmissionMode, SimConfig};
use hcq_runtime::differential::{runtime_aggregates, simulator_aggregates};
use hcq_runtime::{run, RuntimeConfig};
use hcq_streams::{ArrivalSource, PoissonSource};

const ARRIVALS: u64 = hcq_bench::pipeline::ARRIVALS;
const SEED: u64 = 3;
/// Far above any queue depth the reference workload reaches: bounded modes
/// are armed but never fire, so the no-shed determinism contract holds.
const GENEROUS_CAPACITY: usize = 1 << 20;

fn sources() -> Vec<Box<dyn ArrivalSource>> {
    vec![Box::new(PoissonSource::new(
        hcq_bench::pipeline::mean_gap(),
        9,
    ))]
}

const MODES: [AdmissionMode; 3] = [
    AdmissionMode::Unbounded,
    AdmissionMode::DropTail,
    AdmissionMode::QosShed,
];

#[test]
fn runtime_matches_simulator_across_policies_and_admission_modes() {
    let w = hcq_bench::pipeline::workload();
    for kind in hcq_bench::pipeline::POLICIES {
        for mode in MODES {
            let sim_cfg = SimConfig::new(ARRIVALS)
                .with_seed(SEED)
                .with_admission(mode, GENEROUS_CAPACITY)
                .with_watermark(GENEROUS_CAPACITY);
            let sim = simulator_aggregates(&w.plan, &w.rates, sources(), kind, &sim_cfg)
                .expect("simulator run");
            assert_eq!(
                sim.shed, 0,
                "{kind:?}/{mode:?}: generous capacity must not shed"
            );

            for threads in [1, 2, 4] {
                let rt_cfg = RuntimeConfig::new(ARRIVALS)
                    .with_seed(SEED)
                    .with_threads(threads)
                    .with_admission(mode, GENEROUS_CAPACITY)
                    .with_watermark(GENEROUS_CAPACITY);
                let report = run(&w.plan, &w.rates, sources(), kind, &rt_cfg).expect("runtime run");
                assert!(report.conserved(), "{kind:?}/{mode:?}/{threads}t conserves");
                let rt = runtime_aggregates(&report);
                assert_eq!(
                    rt, sim,
                    "{kind:?}/{mode:?}/{threads}t: emission multiset diverged from simulator"
                );
            }
        }
    }
}

#[test]
fn tight_capacity_conserves_on_both_executors() {
    let w = hcq_bench::pipeline::workload();
    let sim_cfg = SimConfig::new(ARRIVALS)
        .with_seed(SEED)
        .with_admission(AdmissionMode::DropTail, 2);
    let sim = simulator_aggregates(&w.plan, &w.rates, sources(), PolicyKind::Hnr, &sim_cfg)
        .expect("simulator run");
    assert!(sim.shed > 0, "capacity 2 must shed in the simulator");

    let rt_cfg = RuntimeConfig::new(ARRIVALS)
        .with_seed(SEED)
        .with_threads(2)
        .with_admission(AdmissionMode::DropTail, 2);
    let report = run(&w.plan, &w.rates, sources(), PolicyKind::Hnr, &rt_cfg).expect("runtime run");
    assert!(report.conserved(), "every injected copy accounted for");
    // Shed decisions depend on wall-clock interleaving; only the
    // conservation identity and the injected totals are comparable.
    assert_eq!(
        report.emitted + report.dropped + report.shed,
        sim.emitted + sim.dropped + sim.shed,
        "both executors account for the same injected copies"
    );
}

#[test]
fn qos_shed_under_pressure_stays_conserved() {
    let w = hcq_bench::pipeline::workload();
    let rt_cfg = RuntimeConfig::new(ARRIVALS)
        .with_seed(SEED)
        .with_threads(2)
        .with_admission(AdmissionMode::QosShed, 2)
        .with_watermark(4);
    let report = run(&w.plan, &w.rates, sources(), PolicyKind::Bsd, &rt_cfg).expect("runtime run");
    assert!(report.conserved());
}
