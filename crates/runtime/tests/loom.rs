//! Model-checked (or, with the in-repo shim, stress-checked) concurrency
//! tests for the bounded MPMC ring: push/pop/steal handoffs.
//!
//! Written against the `loom` API: each test wraps a tiny concurrent body
//! in `loom::model`. With upstream loom (swap the workspace path dependency
//! and build with `RUSTFLAGS="--cfg loom"`) the bodies are explored
//! exhaustively; with the offline `shims/loom` stand-in each body re-runs
//! `LOOM_STRESS_ITERS` times (default 200) on real threads. Bodies are kept
//! to ≤3 threads and a handful of operations so exhaustive exploration
//! stays tractable when the real checker is in play.

use hcq_runtime::ring::Ring;
use loom::sync::Arc;
use loom::thread;

/// Pop with bounded retries — under the shim, a concurrent producer may
/// not have published yet; under real loom, yielding lets the scheduler
/// explore the producer's steps.
fn pop_eventually(ring: &Ring<u32>) -> u32 {
    loop {
        if let Some(v) = ring.try_pop() {
            return v;
        }
        thread::yield_now();
    }
}

#[test]
fn spsc_handoff_preserves_order() {
    loom::model(|| {
        let ring: Arc<Ring<u32>> = Arc::new(Ring::new(2));
        let producer = {
            let ring = ring.clone();
            thread::spawn(move || {
                for v in [10, 11, 12] {
                    let mut item = v;
                    while let Err(back) = ring.try_push(item) {
                        item = back;
                        thread::yield_now();
                    }
                }
            })
        };
        let got = [
            pop_eventually(&ring),
            pop_eventually(&ring),
            pop_eventually(&ring),
        ];
        producer.join().unwrap();
        assert_eq!(got, [10, 11, 12], "SPSC order is FIFO");
        assert_eq!(ring.try_pop(), None);
    });
}

#[test]
fn steal_races_with_owner_without_loss_or_duplication() {
    loom::model(|| {
        let ring: Arc<Ring<u32>> = Arc::new(Ring::new(4));
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        // The "owner" and a "thief" race over the same two items: exactly
        // one of them gets each item, none are lost or duplicated.
        let thief = {
            let ring = ring.clone();
            thread::spawn(move || ring.try_pop())
        };
        let own = ring.try_pop();
        let stolen = thief.join().unwrap();
        let mut got: Vec<u32> = own.into_iter().chain(stolen).collect();
        got.sort_unstable();
        match got.len() {
            // The thief may observe head before the owner's claim settles
            // and see "empty"; the item stays claimable.
            1 => assert_eq!(got[0], 1, "a lone pop gets the oldest item"),
            2 => assert_eq!(got, [1, 2], "both items handed out exactly once"),
            n => panic!("{n} pops from 2 items"),
        }
        // Whatever raced, the remainder drains without loss.
        let mut rest: Vec<u32> = std::iter::from_fn(|| ring.try_pop()).collect();
        got.append(&mut rest);
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    });
}

#[test]
fn concurrent_producers_conserve_into_one_consumer() {
    loom::model(|| {
        let ring: Arc<Ring<u32>> = Arc::new(Ring::new(2));
        let producers: Vec<_> = [100u32, 200u32]
            .into_iter()
            .map(|base| {
                let ring = ring.clone();
                thread::spawn(move || {
                    let mut item = base;
                    while let Err(back) = ring.try_push(item) {
                        item = back;
                        thread::yield_now();
                    }
                })
            })
            .collect();
        let mut got = [pop_eventually(&ring), pop_eventually(&ring)];
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, [100, 200], "each push consumed exactly once");
        assert_eq!(ring.try_pop(), None);
    });
}
