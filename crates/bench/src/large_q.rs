//! The large-q scheduling-cost sweep (q = 10³ … 10⁶ registered queries).
//!
//! §6's whole argument is asymptotic: the exact BSD argmax pays O(q) per
//! scheduling point while clustering pays O(m) plus Fagin's pruned probe, so
//! the gap only becomes decisive at query counts far beyond the §9
//! simulation scale. This fixture measures exactly that regime without the
//! simulator: q units, every one ready, one pending tuple each, driven
//! through `select → consume → re-arrive` scheduling points.
//!
//! Measured per cell (policy × q):
//!
//! * `ns_per_point` — wall-clock cost of one scheduling point, including
//!   the policy's own enqueue bookkeeping for the re-arrival (host-noisy).
//! * `evals_per_point` / `work_per_point` — exact deterministic operation
//!   counts from [`SchedStats`], machine-independent.
//! * `bytes_per_query` — [`Policy::memory_footprint`] over q: the slab +
//!   SoA resident cost of one registered query.
//! * `digest` — FNV-1a over every selected unit id in point order; byte
//!   identical across hosts and `--jobs` values, which is what the CI smoke
//!   compares.
//!
//! The queue fixture is O(1) per operation (unlike [`crate::BenchQueues`],
//! whose `pop` is a linear retain), so the harness itself stays flat while
//! q grows five orders of magnitude — whatever slope shows up is the
//! policy's.

use std::time::Instant;

use hcq_common::{Nanos, TupleId};
use hcq_core::{
    BsdPolicy, ClusterConfig, ClusteredBsdPolicy, Policy, QueueView, SchedStats, UnitId,
};

use crate::spread_units;

/// Cluster count for the clustered variants; large enough that the m-sized
/// front index is exercised, small against every swept q.
pub const CLUSTERS: usize = 64;

/// The default q sweep: one decade per step up to a million queries.
pub const QS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Saturated one-tuple-per-unit queues: every unit is always ready with
/// exactly one pending tuple. `refill` is O(1), so the fixture adds no
/// q-dependent cost around the policy under test.
#[derive(Debug)]
pub struct SaturatedQueues {
    heads: Vec<Nanos>,
    nonempty: Vec<UnitId>,
}

impl SaturatedQueues {
    /// `n` ready units with staggered head arrivals.
    pub fn new(n: usize) -> Self {
        SaturatedQueues {
            heads: (0..n)
                .map(|i| Nanos::from_nanos(i as u64 * 1_000))
                .collect(),
            nonempty: (0..n as UnitId).collect(),
        }
    }

    /// Consume `unit`'s head and replace it with a fresh arrival.
    pub fn refill(&mut self, unit: UnitId, arrival: Nanos) {
        self.heads[unit as usize] = arrival;
    }
}

impl QueueView for SaturatedQueues {
    fn len(&self, _unit: UnitId) -> usize {
        1
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        Some(self.heads[unit as usize])
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// One measured (policy, q) cell.
#[derive(Debug, Clone)]
pub struct LargeQCell {
    /// Variant name (`BSD-Exact`, `C-BSD-log`, …).
    pub policy: &'static str,
    /// Registered (and ready) query count.
    pub q: usize,
    /// Timed scheduling points.
    pub points: u64,
    /// Mean wall-clock nanoseconds per scheduling point (host-dependent).
    pub ns_per_point: f64,
    /// Mean exact priority evaluations per point (deterministic).
    pub evals_per_point: f64,
    /// Mean total scheduler work per point, all [`SchedStats`] counters.
    pub work_per_point: f64,
    /// Resident policy bytes per registered query, from
    /// [`Policy::memory_footprint`] (0 when the policy does not report).
    pub bytes_per_query: f64,
    /// FNV-1a over selected unit ids in point order.
    pub digest: String,
}

/// The swept implementations: the exact O(q) scan and the three clustered
/// variants whose cost §6 claims is sub-linear in q.
pub fn variants() -> Vec<(&'static str, Box<dyn Policy>)> {
    let log = ClusterConfig::logarithmic(CLUSTERS);
    vec![
        ("BSD-Exact", Box::new(BsdPolicy::new())),
        ("C-BSD-log", Box::new(ClusteredBsdPolicy::new(log))),
        (
            "C-BSD-logscan",
            Box::new(ClusteredBsdPolicy::new(ClusterConfig {
                use_fagin: false,
                batch: false,
                ..log
            })),
        ),
        (
            "C-BSD-uni",
            Box::new(ClusteredBsdPolicy::new(ClusterConfig::uniform(CLUSTERS))),
        ),
    ]
}

/// Names of the clustered variants (the sub-linear claimants).
pub fn clustered_names() -> Vec<&'static str> {
    variants()
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| n.starts_with("C-BSD"))
        .collect()
}

/// Timed scheduling points for a given q, budgeted so a full sweep stays
/// seconds even with the exact O(q) scan at q = 10⁶.
pub fn points_for(q: usize) -> u64 {
    (4_000_000 / q as u64).clamp(16, 2_000)
}

/// 64-bit FNV-1a fold.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Run one (policy, q) cell: register q units, saturate the queues, then
/// drive `points_for(q)` scheduling points of `select → consume →
/// re-arrive`, timing the loop and accumulating the exact op counters.
pub fn run_cell(name: &'static str, mut policy: Box<dyn Policy>, q: usize) -> LargeQCell {
    let units = spread_units(q);
    policy.on_register(&units);
    let mut queues = SaturatedQueues::new(q);
    let mut next_tuple = q as u64;
    for u in 0..q as UnitId {
        let arrival = queues.head_arrival(u).expect("saturated");
        policy.on_enqueue(u, TupleId::new(u as u64), arrival, arrival);
    }
    let mut now = Nanos::from_nanos(q as u64 * 1_000 + 1_000_000);

    // One untimed warm-up point: drains the registration-era maintenance
    // counters (the clustered build charges its q setup inserts to the first
    // decision) and faults the slab/SoA pages in, so the timed loop sees
    // steady state.
    let step = |policy: &mut Box<dyn Policy>,
                queues: &mut SaturatedQueues,
                now: Nanos,
                next_tuple: &mut u64|
     -> Option<(Vec<UnitId>, u64, SchedStats)> {
        let sel = policy.select(queues, now)?;
        let picked = sel.units.as_slice().to_vec();
        for &u in &picked {
            let t = TupleId::new(*next_tuple);
            *next_tuple += 1;
            queues.refill(u, now);
            policy.on_enqueue(u, t, now, now);
        }
        Some((picked, sel.ops_counted, sel.stats))
    };
    step(&mut policy, &mut queues, now, &mut next_tuple);
    now += Nanos::from_nanos(1_000);

    let points = points_for(q);
    let mut evals = 0u64;
    let mut work = 0u64;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let t0 = Instant::now();
    for _ in 0..points {
        let (picked, _, stats) =
            step(&mut policy, &mut queues, now, &mut next_tuple).expect("queues stay saturated");
        evals += stats.priority_evals;
        work += stats.total();
        for &u in &picked {
            digest = fnv1a(&u.to_le_bytes(), digest);
        }
        now += Nanos::from_nanos(1_000);
    }
    let elapsed = t0.elapsed().as_nanos();
    LargeQCell {
        policy: name,
        q,
        points,
        ns_per_point: elapsed as f64 / points as f64,
        evals_per_point: evals as f64 / points as f64,
        work_per_point: work as f64 / points as f64,
        bytes_per_query: policy.memory_footprint().unwrap_or(0) as f64 / q as f64,
        digest: format!("{:016x}", digest),
    }
}

/// The full sweep: every variant at every q up to `max_q`, in deterministic
/// (q, variant) order. `tick` is called once per finished cell.
pub fn sweep(max_q: usize, mut tick: impl FnMut(&LargeQCell)) -> Vec<LargeQCell> {
    let mut cells = Vec::new();
    for &q in QS.iter().filter(|&&q| q <= max_q) {
        for (name, policy) in variants() {
            let cell = run_cell(name, policy, q);
            tick(&cell);
            cells.push(cell);
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_and_digests_are_deterministic() {
        for (name, _) in variants() {
            let a = run_cell(name, rebuild(name), 500);
            let b = run_cell(name, rebuild(name), 500);
            assert_eq!(a.digest, b.digest, "{name}");
            assert_eq!(a.evals_per_point, b.evals_per_point, "{name}");
            assert_eq!(a.work_per_point, b.work_per_point, "{name}");
        }
    }

    fn rebuild(name: &str) -> Box<dyn Policy> {
        variants()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p)
            .expect("known variant")
    }

    #[test]
    fn exact_scan_is_linear_and_clustering_is_not() {
        let q_lo = 200;
        let q_hi = 2_000;
        let exact_lo = run_cell("BSD-Exact", rebuild("BSD-Exact"), q_lo);
        let exact_hi = run_cell("BSD-Exact", rebuild("BSD-Exact"), q_hi);
        // The exact scan evaluates every ready unit: evals/point == q.
        assert_eq!(exact_lo.evals_per_point, q_lo as f64);
        assert_eq!(exact_hi.evals_per_point, q_hi as f64);
        for name in clustered_names() {
            let lo = run_cell(name, rebuild(name), q_lo);
            let hi = run_cell(name, rebuild(name), q_hi);
            let ratio = hi.evals_per_point / lo.evals_per_point.max(1.0);
            assert!(
                ratio < 5.0,
                "{name}: evals grew {ratio:.1}x over a 10x q increase \
                 ({} -> {})",
                lo.evals_per_point,
                hi.evals_per_point
            );
        }
    }

    #[test]
    fn memory_footprint_is_reported_and_bounded() {
        for (name, policy) in variants() {
            let cell = run_cell(name, policy, 1_000);
            assert!(
                cell.bytes_per_query > 0.0 && cell.bytes_per_query < 200.0,
                "{name}: {} bytes/query",
                cell.bytes_per_query
            );
        }
    }

    #[test]
    fn sweep_respects_the_q_cap() {
        let cells = sweep(1_000, |_| {});
        assert_eq!(cells.len(), variants().len());
        assert!(cells.iter().all(|c| c.q == 1_000));
    }
}
