//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench target maps to a claim in the paper's implementation sections:
//!
//! * `sched_overhead` — the per-scheduling-point cost that §6.2 reduces:
//!   naive-BSD's O(q) scan versus clustering (O(m)) versus Fagin pruning,
//!   alongside the static-priority policies' heap costs.
//! * `clustering` — cluster construction (`on_register`) for the uniform
//!   and logarithmic methods at various m and q.
//! * `fagin` — top-1 search versus a linear scan over two graded lists.
//! * `shj` — symmetric-hash-join insert/probe throughput versus window size.
//! * `pipeline` — end-to-end simulated tuple throughput per policy.
//! * `workload` — §8 plan-statistics derivation and utilization calibration.
//! * [`large_q`] — the 10³…10⁶-query scheduling-point sweep behind
//!   `repro bench --large-q` and the CI sub-linearity gate.

use hcq_common::{Nanos, TupleId};
use hcq_core::{Policy, QueueView, UnitId, UnitStatics};

pub mod large_q;

/// The fixed reference workload behind the `pipeline` bench and the
/// `repro bench` baseline emitter (`BENCH_*.json`). Both time exactly this
/// fixture, so Criterion trends and the JSON trajectory stay comparable.
pub mod pipeline {
    use hcq_common::Nanos;
    use hcq_core::PolicyKind;
    use hcq_engine::{
        simulate, simulate_monitored, AdaptConfig, AdaptMode, GovernorConfig, MetricsSink,
        SimConfig, SimReport, TelemetrySnapshot,
    };
    use hcq_streams::PoissonSource;
    use hcq_workload::{single_stream, PaperWorkload, SingleStreamConfig};

    /// Counts snapshots without storing them. Exporter-shaped: a real sink
    /// consumes the borrowed snapshot in place, so the bench should not pay
    /// for a deep clone the way the test-suite's `VecTelemetry` does.
    #[derive(Debug, Default)]
    struct CountingSink {
        samples: usize,
    }

    impl MetricsSink for CountingSink {
        fn sample(&mut self, _snapshot: &TelemetrySnapshot) {
            self.samples += 1;
        }
    }

    /// Source arrivals per simulation.
    pub const ARRIVALS: u64 = 500;
    /// Policies timed by the bench, in emission order.
    pub const POLICIES: [PolicyKind; 5] = [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Hnr,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
    ];

    /// Mean inter-arrival gap of the Poisson source.
    pub fn mean_gap() -> Nanos {
        Nanos::from_millis(10)
    }

    /// The reference workload: 60 queries, 5 cost classes, 0.9 utilization.
    pub fn workload() -> PaperWorkload {
        single_stream(&SingleStreamConfig {
            queries: 60,
            cost_classes: 5,
            utilization: 0.9,
            mean_gap: mean_gap(),
            seed: 5,
        })
        .expect("valid workload")
    }

    /// One timed simulation of the reference workload under `kind`.
    pub fn run(kind: PolicyKind, w: &PaperWorkload) -> SimReport {
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(PoissonSource::new(mean_gap(), 9))],
            kind.build(),
            SimConfig::new(ARRIVALS).with_seed(3),
        )
        .expect("valid simulation")
    }

    /// Telemetry sampling cadence for the monitored variant of the fixture
    /// (virtual time between snapshots).
    pub fn telemetry_cadence() -> Nanos {
        Nanos::from_millis(250)
    }

    /// The governor configuration for the governed variant of the fixture:
    /// a decision every five mean gaps, a four-decision dwell, and a
    /// pending-tuple hysteresis band of (queries, 4·queries) — the same
    /// shape the repro harness's `--govern` switch arms.
    pub fn governor() -> GovernorConfig {
        GovernorConfig {
            enabled: true,
            cadence: mean_gap() * 5,
            min_dwell: mean_gap() * 20,
            escalate_pending: 240,
            deescalate_pending: 60,
            capacity: 32,
            watermark: 120,
            ..GovernorConfig::default()
        }
    }

    /// The same fixture as [`run`] with the closed-loop overload governor
    /// armed. The governed run may legitimately make different scheduling
    /// decisions (that is the point), so callers compare wall time and
    /// record the transition count rather than asserting identical output.
    pub fn run_governed(kind: PolicyKind, w: &PaperWorkload) -> SimReport {
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(PoissonSource::new(mean_gap(), 9))],
            kind.build(),
            SimConfig::new(ARRIVALS)
                .with_seed(3)
                .with_governor(governor()),
        )
        .expect("valid simulation")
    }

    /// The adaptation configuration for the adaptive variant of the
    /// fixture: batch-mean EWMA re-estimation publishing every five mean
    /// gaps — the tuned shape the engine's adaptive test suite uses.
    pub fn adaptation() -> AdaptConfig {
        AdaptConfig {
            enabled: true,
            mode: AdaptMode::Ewma,
            alpha: 0.1,
            cadence: mean_gap() * 5,
            min_observations: 2,
            refreeze_factor: 1.5,
            publish: true,
        }
    }

    /// The miscalibrated baseline the adaptive overhead gate compares
    /// against: 3× seeded cost miscalibration and the policy-switching
    /// governor, but no re-estimation. Sharing the fault and governor
    /// settings with [`run_adaptive`] isolates what adaptation itself
    /// costs — a plain-fixture comparison would fold the (deliberately
    /// heavier) miscalibrated workload into the ratio.
    pub fn run_miscalibrated(kind: PolicyKind, w: &PaperWorkload) -> SimReport {
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(PoissonSource::new(mean_gap(), 9))],
            kind.build(),
            SimConfig::new(ARRIVALS)
                .with_seed(3)
                .with_cost_miscalibration(3.0, 3)
                .with_governor(GovernorConfig {
                    switch_policy: true,
                    ..governor()
                }),
        )
        .expect("valid simulation")
    }

    /// [`run_miscalibrated`] with the full feedback stack armed on top:
    /// online re-estimation ([`adaptation`]) correcting the miscalibrated
    /// statics while the governor's policy-switching rung watches overload.
    /// The adaptive run legitimately makes different scheduling decisions;
    /// callers compare wall time and record the update/switch counts rather
    /// than asserting identical output.
    pub fn run_adaptive(kind: PolicyKind, w: &PaperWorkload) -> SimReport {
        simulate(
            &w.plan,
            &w.rates,
            vec![Box::new(PoissonSource::new(mean_gap(), 9))],
            kind.build(),
            SimConfig::new(ARRIVALS)
                .with_seed(3)
                .with_cost_miscalibration(3.0, 3)
                .with_adaptation(adaptation())
                .with_governor(GovernorConfig {
                    switch_policy: true,
                    ..governor()
                }),
        )
        .expect("valid simulation")
    }

    /// The same simulation as [`run`], but with telemetry sampling on.
    /// Returns the report plus the number of snapshots taken, so the
    /// `repro bench` overhead check can compare like against like.
    pub fn run_monitored(kind: PolicyKind, w: &PaperWorkload) -> (SimReport, usize) {
        let (report, telemetry) = simulate_monitored(
            &w.plan,
            &w.rates,
            vec![Box::new(PoissonSource::new(mean_gap(), 9))],
            kind.build(),
            SimConfig::new(ARRIVALS)
                .with_seed(3)
                .with_telemetry_cadence(telemetry_cadence()),
            CountingSink::default(),
        )
        .expect("valid simulation");
        (report, telemetry.samples)
    }
}

/// A heterogeneous unit population with Φ spread over several decades.
pub fn spread_units(n: usize) -> Vec<UnitStatics> {
    (0..n)
        .map(|i| {
            let c = Nanos::from_millis(1 << (i % 5));
            UnitStatics::new(0.15 + 0.1 * (i % 8) as f64, c, c * 3)
        })
        .collect()
}

/// A standalone queue fixture implementing [`QueueView`] for driving
/// policies outside the engine.
#[derive(Debug, Default)]
pub struct BenchQueues {
    lens: Vec<usize>,
    heads: Vec<Option<Nanos>>,
    nonempty: Vec<UnitId>,
}

impl BenchQueues {
    /// `n` units, all empty.
    pub fn new(n: usize) -> Self {
        BenchQueues {
            lens: vec![0; n],
            heads: vec![None; n],
            nonempty: Vec::new(),
        }
    }

    /// Mark one tuple pending on `unit` with the given head arrival.
    pub fn push(&mut self, unit: UnitId, arrival: Nanos) {
        if self.lens[unit as usize] == 0 {
            self.nonempty.push(unit);
            self.heads[unit as usize] = Some(arrival);
        }
        self.lens[unit as usize] += 1;
    }

    /// Remove one tuple from `unit` (head arrival of any remainder bumps by
    /// 1 ms — benches only need plausible dynamics, not exact FIFO replay).
    pub fn pop(&mut self, unit: UnitId) {
        let len = &mut self.lens[unit as usize];
        *len -= 1;
        if *len == 0 {
            self.nonempty.retain(|&u| u != unit);
            self.heads[unit as usize] = None;
        } else if let Some(h) = self.heads[unit as usize].as_mut() {
            *h += Nanos::from_millis(1);
        }
    }
}

impl QueueView for BenchQueues {
    fn len(&self, unit: UnitId) -> usize {
        self.lens[unit as usize]
    }
    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.heads[unit as usize]
    }
    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

/// Load a policy with `n` ready units (one pending tuple each, staggered
/// arrivals) and return the pair ready for `select` benchmarking.
pub fn loaded_policy(mut policy: Box<dyn Policy>, n: usize) -> (Box<dyn Policy>, BenchQueues) {
    let units = spread_units(n);
    policy.on_register(&units);
    let mut q = BenchQueues::new(n);
    for u in 0..n as UnitId {
        let arrival = Nanos::from_millis(u as u64 * 3);
        q.push(u, arrival);
        policy.on_enqueue(u, TupleId::new(u as u64), arrival, arrival);
    }
    (policy, q)
}
