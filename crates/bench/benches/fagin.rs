//! Fagin top-1 search versus a full linear scan over graded objects
//! (§6.2.2). The FA advantage grows with list length when the grade
//! distributions are even mildly correlated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcq_common::det;
use hcq_core::fagin::fagin_top1;

fn graded_objects(n: usize, correlated: bool) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let a = det::unit_f64(det::splitmix64(i as u64));
            let b = if correlated {
                (a + 0.1 * det::unit_f64(det::splitmix64(i as u64 ^ 0xABCD))).min(1.0)
            } else {
                det::unit_f64(det::splitmix64(i as u64 ^ 0xABCD))
            };
            (a, b)
        })
        .collect()
}

fn bench_fagin(c: &mut Criterion) {
    let mut group = c.benchmark_group("top1");
    group.sample_size(50);
    for &n in &[16usize, 128, 1024] {
        for &correlated in &[true, false] {
            let objects = graded_objects(n, correlated);
            let mut by_a: Vec<(u32, f64)> = objects
                .iter()
                .enumerate()
                .map(|(i, &(a, _))| (i as u32, a))
                .collect();
            by_a.sort_by(|x, y| y.1.total_cmp(&x.1));
            let mut by_b: Vec<(u32, f64)> = objects
                .iter()
                .enumerate()
                .map(|(i, &(_, b))| (i as u32, b))
                .collect();
            by_b.sort_by(|x, y| y.1.total_cmp(&x.1));
            let tag = if correlated { "corr" } else { "anti" };
            group.bench_with_input(
                BenchmarkId::new(format!("fagin_{tag}"), n),
                &objects,
                |bench, objects| {
                    bench.iter(|| {
                        fagin_top1(
                            by_a.iter().copied(),
                            by_b.iter().copied(),
                            |o| objects[o as usize].0,
                            |o| objects[o as usize].1,
                        )
                        .expect("non-empty")
                        .object
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("linear_{tag}"), n),
                &objects,
                |bench, objects| {
                    bench.iter(|| {
                        objects
                            .iter()
                            .enumerate()
                            .max_by(|(_, x), (_, y)| (x.0 * x.1).total_cmp(&(y.0 * y.1)))
                            .expect("non-empty")
                            .0
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fagin);
criterion_main!(benches);
