//! Online-runtime throughput: records pushed + fully processed per second
//! through the `hcq-aqsios` mini-DSMS under each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcq_aqsios::{
    Cmp, Dsms, DsmsConfig, ManualClock, Predicate, Record, RtOp, RtPlan, RuntimePolicy,
};
use hcq_common::{Nanos, StreamId};

fn build(policy: RuntimePolicy, queries: usize) -> (Dsms, ManualClock) {
    let clock = ManualClock::new();
    let mut dsms = Dsms::new(DsmsConfig::new(policy).with_clock(Box::new(clock.clone()))).unwrap();
    for i in 0..queries {
        dsms.register(RtPlan::single(
            StreamId::new(0),
            vec![
                RtOp::select(
                    Predicate::new(0, Cmp::Ge, (i as i64) * 7 % 100),
                    Nanos::from_micros(5),
                    0.5,
                ),
                RtOp::project(vec![0], Nanos::from_micros(1)),
            ],
        ))
        .unwrap();
    }
    (dsms, clock)
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("aqsios_push_run");
    group.sample_size(20);
    for policy in [RuntimePolicy::Fcfs, RuntimePolicy::Hnr, RuntimePolicy::Bsd] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let (mut dsms, clock) = build(policy, 32);
                let mut i = 0i64;
                b.iter(|| {
                    i += 1;
                    dsms.push(StreamId::new(0), Record::new(vec![i % 100, i]));
                    clock.advance(Nanos::from_micros(50));
                    dsms.run_until_idle().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
