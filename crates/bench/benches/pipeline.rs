//! End-to-end simulated throughput: source arrivals per wall-clock second
//! for a complete workload × policy simulation. This is the figure-of-merit
//! for the reproduction harness itself (how long a §9 sweep takes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcq_common::Nanos;
use hcq_core::PolicyKind;
use hcq_engine::{simulate, SimConfig};
use hcq_streams::PoissonSource;
use hcq_workload::{single_stream, SingleStreamConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mean_gap = Nanos::from_millis(10);
    let w = single_stream(&SingleStreamConfig {
        queries: 60,
        cost_classes: 5,
        utilization: 0.9,
        mean_gap,
        seed: 5,
    })
    .expect("valid workload");
    let arrivals = 500u64;
    let mut group = c.benchmark_group("simulate_arrivals");
    group.sample_size(10);
    group.throughput(Throughput::Elements(arrivals));
    for kind in [
        PolicyKind::Fcfs,
        PolicyKind::RoundRobin,
        PolicyKind::Hnr,
        PolicyKind::Lsf,
        PolicyKind::Bsd,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    simulate(
                        &w.plan,
                        &w.rates,
                        vec![Box::new(PoissonSource::new(mean_gap, 9))],
                        kind.build(),
                        SimConfig::new(arrivals).with_seed(3),
                    )
                    .expect("valid simulation")
                    .emitted
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
