//! End-to-end simulated throughput: source arrivals per wall-clock second
//! for a complete workload × policy simulation. This is the figure-of-merit
//! for the reproduction harness itself (how long a §9 sweep takes).
//!
//! The fixture lives in `hcq_bench::pipeline` and is shared with the
//! `repro bench` baseline emitter, so Criterion trends and the
//! `BENCH_*.json` trajectory time exactly the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcq_bench::pipeline;

fn bench_pipeline(c: &mut Criterion) {
    let w = pipeline::workload();
    let mut group = c.benchmark_group("simulate_arrivals");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pipeline::ARRIVALS));
    for kind in pipeline::POLICIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| pipeline::run(kind, &w).emitted);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
