//! Workload-construction costs: §8 plan building with utilization
//! calibration (two statistics passes over the whole population), and the
//! underlying per-plan statistics derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcq_common::{Nanos, StreamId};
use hcq_plan::{CompiledQuery, PlanStats, QueryBuilder, StreamRates};
use hcq_workload::{single_stream, SingleStreamConfig};

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_build");
    group.sample_size(10);
    for &q in &[100usize, 500] {
        group.bench_with_input(BenchmarkId::new("single_stream", q), &q, |b, &q| {
            b.iter(|| {
                single_stream(&SingleStreamConfig {
                    queries: q,
                    cost_classes: 5,
                    utilization: 0.9,
                    mean_gap: Nanos::from_millis(10),
                    seed: 7,
                })
                .expect("valid workload")
                .k_ns
            });
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let plan = QueryBuilder::on(StreamId::new(0))
        .select(Nanos::from_millis(1), 0.5)
        .window_join(
            QueryBuilder::on(StreamId::new(1)).select(Nanos::from_millis(1), 0.5),
            Nanos::from_millis(2),
            0.3,
            Nanos::from_secs(5),
        )
        .project(Nanos::from_millis(1))
        .build()
        .expect("valid plan");
    let rates = StreamRates::none()
        .with(StreamId::new(0), Nanos::from_millis(10))
        .with(StreamId::new(1), Nanos::from_millis(10));
    c.bench_function("plan_stats_join_query", |b| {
        b.iter(|| {
            let cq = CompiledQuery::compile(&plan);
            PlanStats::compute(&cq, &rates)
                .expect("valid stats")
                .ideal_time
        });
    });
}

criterion_group!(benches, bench_calibration, bench_stats);
criterion_main!(benches);
