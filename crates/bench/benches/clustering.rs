//! Cluster-structure construction cost: assigning q units to m clusters for
//! the uniform and logarithmic methods (§6.2.1). Construction happens once
//! per registration (or per adaptive refresh), so it must stay cheap even
//! at thousands of queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcq_bench::spread_units;
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, Clustering, Policy};

fn bench_register(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_on_register");
    group.sample_size(30);
    for &q in &[100usize, 1_000, 10_000] {
        let units = spread_units(q);
        for clustering in [Clustering::Uniform, Clustering::Logarithmic] {
            let label = match clustering {
                Clustering::Uniform => "uniform",
                Clustering::Logarithmic => "logarithmic",
            };
            group.bench_with_input(BenchmarkId::new(label, q), &units, |b, units| {
                b.iter(|| {
                    let mut p = ClusteredBsdPolicy::new(ClusterConfig {
                        clustering,
                        clusters: 12,
                        use_fagin: true,
                        batch: true,
                    });
                    p.on_register(units);
                    p.cluster_count()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_register);
criterion_main!(benches);
