//! Symmetric-hash-join throughput versus window size.
//!
//! The per-tuple cost of `insert_probe` is (amortized) the number of live
//! window partners plus eviction work; this bench shows it scaling with the
//! window population, which is the constant behind §5's `V/τ` occupancy
//! estimates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcq_common::{Nanos, TupleId};
use hcq_engine::SimTuple;
use hcq_join::{Side, SymmetricHashJoin};

fn tuple(i: u64) -> SimTuple {
    let ts = Nanos::from_millis(i);
    SimTuple {
        id: TupleId::new(i),
        arrival: ts,
        ts,
        key: 1 + i % 100,
        ideal_depart: ts,
        lineage: TupleId::new(i),
    }
}

fn bench_shj(c: &mut Criterion) {
    let mut group = c.benchmark_group("shj_insert_probe");
    group.sample_size(20);
    // 1ms-spaced alternating arrivals; window W ms ⇒ ~W live partners.
    for &window_ms in &[10u64, 100, 1000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(window_ms),
            &window_ms,
            |b, &window_ms| {
                let mut j: SymmetricHashJoin<SimTuple> =
                    SymmetricHashJoin::new(Nanos::from_millis(window_ms));
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let side = if i.is_multiple_of(2) {
                        Side::Left
                    } else {
                        Side::Right
                    };
                    let m = j.insert_probe(side, &tuple(i));
                    m.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shj);
criterion_main!(benches);
