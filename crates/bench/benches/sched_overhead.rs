//! Per-scheduling-point decision cost (the quantity §6.2 attacks).
//!
//! Regenerates the implementation-cost story of Figures 13–14 in wall-clock
//! terms: the naive BSD scan is O(ready queries) per decision, clustering
//! collapses it to O(m), and Fagin pruning usually touches only the top of
//! each list. The static policies (HNR/HR/SRPT) pay one lazy heap peek.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcq_bench::loaded_policy;
use hcq_common::{Nanos, TupleId};
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, Clustering, PolicyKind};

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_per_point");
    group.sample_size(30);
    for &n in &[64usize, 256, 1024] {
        // Naive BSD: O(n) scan.
        group.bench_with_input(BenchmarkId::new("bsd_naive", n), &n, |b, &n| {
            let (mut p, mut q) = loaded_policy(PolicyKind::Bsd.build(), n);
            let mut now = Nanos::from_secs(10);
            b.iter(|| {
                let sel = p.select(&q, now).expect("ready");
                // Re-arm: pop and push back so the ready set stays at n.
                for &u in &sel.units {
                    q.pop(u);
                    q.push(u, now);
                    p.on_enqueue(u, TupleId::new(u as u64), now, now);
                }
                now += Nanos::from_millis(1);
                sel.ops_counted
            });
        });
        // Clustered BSD, scan over m clusters.
        group.bench_with_input(BenchmarkId::new("bsd_clustered_scan", n), &n, |b, &n| {
            let cfg = ClusterConfig {
                clustering: Clustering::Logarithmic,
                clusters: 12,
                use_fagin: false,
                batch: false,
            };
            let (mut p, mut q) = loaded_policy(Box::new(ClusteredBsdPolicy::new(cfg)), n);
            let mut now = Nanos::from_secs(10);
            b.iter(|| {
                let sel = p.select(&q, now).expect("ready");
                for &u in &sel.units {
                    q.pop(u);
                    q.push(u, now);
                    p.on_enqueue(u, TupleId::new(u as u64), now, now);
                }
                now += Nanos::from_millis(1);
                sel.ops_counted
            });
        });
        // Clustered BSD with Fagin pruning.
        group.bench_with_input(BenchmarkId::new("bsd_clustered_fagin", n), &n, |b, &n| {
            let cfg = ClusterConfig {
                clustering: Clustering::Logarithmic,
                clusters: 12,
                use_fagin: true,
                batch: false,
            };
            let (mut p, mut q) = loaded_policy(Box::new(ClusteredBsdPolicy::new(cfg)), n);
            let mut now = Nanos::from_secs(10);
            b.iter(|| {
                let sel = p.select(&q, now).expect("ready");
                for &u in &sel.units {
                    q.pop(u);
                    q.push(u, now);
                    p.on_enqueue(u, TupleId::new(u as u64), now, now);
                }
                now += Nanos::from_millis(1);
                sel.ops_counted
            });
        });
        // Static policy: lazy heap.
        group.bench_with_input(BenchmarkId::new("hnr_heap", n), &n, |b, &n| {
            let (mut p, mut q) = loaded_policy(PolicyKind::Hnr.build(), n);
            let now = Nanos::from_secs(10);
            b.iter(|| {
                let sel = p.select(&q, now).expect("ready");
                for &u in &sel.units {
                    q.pop(u);
                    q.push(u, now);
                    p.on_enqueue(u, TupleId::new(u as u64), now, now);
                }
                sel.ops_counted
            });
        });
        // LSF: dynamic scan.
        group.bench_with_input(BenchmarkId::new("lsf_scan", n), &n, |b, &n| {
            let (mut p, mut q) = loaded_policy(PolicyKind::Lsf.build(), n);
            let mut now = Nanos::from_secs(10);
            b.iter(|| {
                let sel = p.select(&q, now).expect("ready");
                for &u in &sel.units {
                    q.pop(u);
                    q.push(u, now);
                    p.on_enqueue(u, TupleId::new(u as u64), now, now);
                }
                now += Nanos::from_millis(1);
                sel.ops_counted
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
