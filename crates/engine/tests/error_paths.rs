//! Configuration-error paths: the engine must reject unusable setups with
//! actionable messages rather than misbehave — and runtime contract
//! violations (queue misuse, broken policies) must come back as typed
//! [`EngineError`]s, never panics.

use hcq_common::{EngineError, HcqError, Nanos, StreamId, TupleId};
use hcq_core::{Policy, PolicyKind, QueueView, Selection, UnitId, UnitStatics};
use hcq_engine::queues::UnitQueues;
use hcq_engine::{simulate, AdmissionMode, SimConfig, SimTuple};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::{PoissonSource, TraceReplay};

fn ms(n: u64) -> Nanos {
    Nanos::from_millis(n)
}

#[test]
fn empty_plan_rejected() {
    let err = simulate(
        &GlobalPlan::default(),
        &StreamRates::none(),
        vec![],
        PolicyKind::Fcfs.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("no queries"));
}

#[test]
fn missing_source_rejected() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(1)) // stream 1 but only source 0 given
            .select(ms(1), 0.5)
            .build()
            .unwrap(),
    );
    let err = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(1), 0))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("M1"), "{err}");
    assert!(err.to_string().contains("no source"), "{err}");
}

#[test]
fn join_without_rates_rejected() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .window_join(
                QueryBuilder::on(StreamId::new(1)),
                ms(1),
                0.5,
                Nanos::from_secs(1),
            )
            .build()
            .unwrap(),
    );
    let sources: Vec<Box<dyn hcq_streams::ArrivalSource>> = vec![
        Box::new(PoissonSource::new(ms(1), 0)),
        Box::new(PoissonSource::new(ms(1), 1)),
    ];
    let err = simulate(
        &plan,
        &StreamRates::none(), // <- no τ for the join's occupancy estimate
        sources,
        PolicyKind::Hnr.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("inter-arrival"), "{err}");
}

#[test]
fn invalid_sharing_rejected_at_simulation() {
    let mut plan = GlobalPlan::default();
    let a = plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .build()
            .unwrap(),
    );
    // Manually corrupt the sharing structure (bypasses share_first_op's
    // checks) to prove validation happens again at build time.
    plan.sharing.push(hcq_plan::SharedSelect {
        stream: StreamId::new(0),
        op: hcq_plan::OperatorSpec::select(ms(2), 0.5), // wrong cost
        members: vec![a],
    });
    let err = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(1), 0))],
        PolicyKind::Hnr.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("sharing"), "{err}");
}

#[test]
fn zero_arrival_budget_is_a_clean_noop() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .build()
            .unwrap(),
    );
    let r = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(1), 0))],
        PolicyKind::Bsd.build(),
        SimConfig::new(0),
    )
    .unwrap();
    assert_eq!(r.arrivals, 0);
    assert_eq!(r.emitted, 0);
    assert_eq!(r.sched_points, 0);
    assert_eq!(r.end_time, Nanos::ZERO);
}

fn base_tuple(id: u64) -> SimTuple {
    SimTuple {
        id: TupleId::new(id),
        arrival: Nanos::ZERO,
        ts: Nanos::ZERO,
        key: 1,
        ideal_depart: ms(1),
        lineage: TupleId::new(id),
    }
}

fn tiny_plan() -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .map(ms(2), 1.0)
            .build()
            .unwrap(),
    );
    plan
}

#[test]
fn popping_an_empty_queue_is_a_typed_error() {
    let mut q = UnitQueues::new(3);
    q.push(1, base_tuple(0));
    assert_eq!(q.pop(0), Err(EngineError::EmptyQueuePop { unit: 0 }));
    assert!(q.pop(1).is_ok());
    assert_eq!(q.pop(1), Err(EngineError::EmptyQueuePop { unit: 1 }));
}

#[test]
fn popping_an_unknown_unit_is_a_typed_error() {
    let mut q = UnitQueues::new(2);
    assert_eq!(
        q.pop(9),
        Err(EngineError::UnknownUnit {
            unit: 9,
            unit_count: 2
        })
    );
}

/// A policy that answers "nothing to run" despite pending work.
struct SilentPolicy;

impl Policy for SilentPolicy {
    fn name(&self) -> &'static str {
        "silent"
    }
    fn on_register(&mut self, _units: &[UnitStatics]) {}
    fn on_enqueue(&mut self, _unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {}
    fn select(&mut self, _queues: &dyn QueueView, _now: Nanos) -> Option<Selection> {
        None
    }
}

#[test]
fn policy_returning_no_selection_surfaces_as_engine_error() {
    let arrivals = vec![ms(1), ms(2)];
    let err = simulate(
        &tiny_plan(),
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        Box::new(SilentPolicy),
        SimConfig::new(2),
    )
    .unwrap_err();
    match err {
        HcqError::Engine(EngineError::NoSelection { pending }) => assert!(pending > 0),
        other => panic!("expected NoSelection, got {other}"),
    }
}

/// A policy that dequeues the same unit twice per decision, hitting an
/// empty queue on the second pop (contract violation).
struct DoubleSelectPolicy;

impl Policy for DoubleSelectPolicy {
    fn name(&self) -> &'static str {
        "double-select"
    }
    fn on_register(&mut self, _units: &[UnitStatics]) {}
    fn on_enqueue(&mut self, _unit: UnitId, _tuple: TupleId, _arrival: Nanos, _now: Nanos) {}
    fn select(&mut self, queues: &dyn QueueView, _now: Nanos) -> Option<Selection> {
        let unit = queues.nonempty()[0];
        let mut sel = Selection::one(unit, 0);
        sel.units.push(unit);
        Some(sel)
    }
}

#[test]
fn selecting_an_empty_queue_surfaces_as_engine_error() {
    // One pending tuple, but the policy schedules its unit twice.
    let err = simulate(
        &tiny_plan(),
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(vec![ms(1)]).unwrap())],
        Box::new(DoubleSelectPolicy),
        SimConfig::new(1),
    )
    .unwrap_err();
    match err {
        HcqError::Engine(EngineError::EmptyQueuePop { unit }) => assert_eq!(unit, 0),
        other => panic!("expected EmptyQueuePop, got {other}"),
    }
}

#[test]
fn bounded_admission_requires_positive_capacity() {
    for mode in [AdmissionMode::DropTail, AdmissionMode::QosShed] {
        let err = simulate(
            &tiny_plan(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(1), 0))],
            PolicyKind::Fcfs.build(),
            SimConfig::new(2).with_admission(mode, 0),
        )
        .unwrap_err();
        assert!(
            matches!(err, HcqError::InvalidConfig(_)),
            "expected InvalidConfig for {mode:?}, got {err}"
        );
    }
}

#[test]
fn engine_errors_convert_into_hcq_error() {
    let e: HcqError = EngineError::EmptyQueuePop { unit: 4 }.into();
    assert!(e.to_string().contains("unit 4"), "{e}");
    assert!(std::error::Error::source(&e).is_some());
}
