//! Configuration-error paths: the engine must reject unusable setups with
//! actionable messages rather than misbehave.

use hcq_common::{Nanos, StreamId};
use hcq_core::PolicyKind;
use hcq_engine::{simulate, SimConfig};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::PoissonSource;

fn ms(n: u64) -> Nanos {
    Nanos::from_millis(n)
}

#[test]
fn empty_plan_rejected() {
    let err = simulate(
        &GlobalPlan::default(),
        &StreamRates::none(),
        vec![],
        PolicyKind::Fcfs.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("no queries"));
}

#[test]
fn missing_source_rejected() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(1)) // stream 1 but only source 0 given
            .select(ms(1), 0.5)
            .build()
            .unwrap(),
    );
    let err = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(1), 0))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("M1"), "{err}");
    assert!(err.to_string().contains("no source"), "{err}");
}

#[test]
fn join_without_rates_rejected() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .window_join(
                QueryBuilder::on(StreamId::new(1)),
                ms(1),
                0.5,
                Nanos::from_secs(1),
            )
            .build()
            .unwrap(),
    );
    let sources: Vec<Box<dyn hcq_streams::ArrivalSource>> = vec![
        Box::new(PoissonSource::new(ms(1), 0)),
        Box::new(PoissonSource::new(ms(1), 1)),
    ];
    let err = simulate(
        &plan,
        &StreamRates::none(), // <- no τ for the join's occupancy estimate
        sources,
        PolicyKind::Hnr.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("inter-arrival"), "{err}");
}

#[test]
fn invalid_sharing_rejected_at_simulation() {
    let mut plan = GlobalPlan::default();
    let a = plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .build()
            .unwrap(),
    );
    // Manually corrupt the sharing structure (bypasses share_first_op's
    // checks) to prove validation happens again at build time.
    plan.sharing.push(hcq_plan::SharedSelect {
        stream: StreamId::new(0),
        op: hcq_plan::OperatorSpec::select(ms(2), 0.5), // wrong cost
        members: vec![a],
    });
    let err = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(1), 0))],
        PolicyKind::Hnr.build(),
        SimConfig::new(10),
    )
    .unwrap_err();
    assert!(err.to_string().contains("sharing"), "{err}");
}

#[test]
fn zero_arrival_budget_is_a_clean_noop() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.5)
            .build()
            .unwrap(),
    );
    let r = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(1), 0))],
        PolicyKind::Bsd.build(),
        SimConfig::new(0),
    )
    .unwrap();
    assert_eq!(r.arrivals, 0);
    assert_eq!(r.emitted, 0);
    assert_eq!(r.sched_points, 0);
    assert_eq!(r.end_time, Nanos::ZERO);
}
