//! Randomized invariants of the scheduling-event trace: for arbitrary small
//! workloads, arrival patterns, policies, and overload settings, the trace
//! must (a) be causally ordered — every `Emit` follows the `UnitRun` of the
//! unit that produced it, (b) agree with the [`SimReport`] it accompanies —
//! event counts and counter sums match the report's totals exactly, and
//! (c) observe without steering — a traced run's report is identical to the
//! untraced run's, and its JSONL rendering is byte-stable across runs.

use hcq_common::{Nanos, StreamId};
use hcq_core::PolicyKind;
use hcq_engine::{
    simulate, simulate_traced, AdmissionMode, JsonlTrace, SimConfig, SimReport, TraceEvent,
    VecTrace,
};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::TraceReplay;
use proptest::prelude::*;

/// Random single-stream chains: per query, 1–4 operators with ms costs and
/// coarse selectivities.
fn plan_strategy() -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((1u64..=16, 0.1f64..=1.0), 1..=4),
        1..=6,
    )
}

/// Random arrival gaps (ms); replayed identically for every run.
fn arrivals_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=60, 5..=60)
}

fn build_plan(chains: &[Vec<(u64, f64)>]) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    for chain in chains {
        let mut b = QueryBuilder::on(StreamId::new(0));
        for &(cost, sel) in chain {
            b = b.map(Nanos::from_millis(cost), sel);
        }
        plan.add_query(b.build().expect("valid chain"));
    }
    plan
}

fn config(arrivals: u64, seed: u64, overload: bool) -> SimConfig {
    let cfg = SimConfig::new(arrivals).with_seed(seed);
    if overload {
        // A tight bound with QoS shedding armed: sheds become likely, so the
        // Shed-event invariants get exercised rather than trivially hold.
        cfg.with_admission(AdmissionMode::QosShed, 2)
            .with_watermark(4)
    } else {
        cfg
    }
}

fn run_traced(
    chains: &[Vec<(u64, f64)>],
    gaps: &[u64],
    kind: PolicyKind,
    seed: u64,
    overload: bool,
) -> (SimReport, Vec<TraceEvent>) {
    let plan = build_plan(chains);
    let mut t = Nanos::ZERO;
    let arrivals: Vec<Nanos> = gaps
        .iter()
        .map(|&g| {
            t += Nanos::from_millis(g);
            t
        })
        .collect();
    let n = arrivals.len() as u64;
    let (report, sink) = simulate_traced(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        config(n, seed, overload),
        VecTrace::new(),
    )
    .unwrap();
    (report, sink.events)
}

fn run_untraced(
    chains: &[Vec<(u64, f64)>],
    gaps: &[u64],
    kind: PolicyKind,
    seed: u64,
    overload: bool,
) -> SimReport {
    let plan = build_plan(chains);
    let mut t = Nanos::ZERO;
    let arrivals: Vec<Nanos> = gaps
        .iter()
        .map(|&g| {
            t += Nanos::from_millis(g);
            t
        })
        .collect();
    let n = arrivals.len() as u64;
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        config(n, seed, overload),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every `Emit` names the unit of the most recent `UnitRun`, and no
    /// emission precedes the first execution.
    #[test]
    fn every_emit_follows_a_unit_run_of_its_unit(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
        overload in any::<bool>(),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let (_, events) = run_traced(&chains, &gaps, kind, seed, overload);
        let mut current_run: Option<u32> = None;
        for e in &events {
            match *e {
                TraceEvent::UnitRun { unit, .. } => current_run = Some(unit),
                TraceEvent::Emit { unit, .. } => {
                    prop_assert_eq!(
                        current_run, Some(unit),
                        "emission attributed to unit {} outside its execution", unit
                    );
                }
                _ => {}
            }
        }
    }

    /// Event counts and counter sums reconcile with the report: sheds,
    /// scheduling points, emissions, per-run emission totals, and the
    /// itemized overhead counters all match.
    #[test]
    fn trace_reconciles_with_report_totals(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
        overload in any::<bool>(),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let (report, events) = run_traced(&chains, &gaps, kind, seed, overload);
        let mut sheds = 0u64;
        let mut points = 0u64;
        let mut emits = 0u64;
        let mut run_tuples = 0u64;
        let (mut cand, mut evals, mut comps, mut clust, mut heaps) = (0u64, 0, 0, 0, 0);
        for e in &events {
            match *e {
                TraceEvent::Shed { .. } => sheds += 1,
                TraceEvent::SchedulingPoint {
                    candidates_scanned,
                    priority_evals,
                    comparisons,
                    cluster_ops,
                    heap_ops,
                    ..
                } => {
                    points += 1;
                    cand += candidates_scanned;
                    evals += priority_evals;
                    comps += comparisons;
                    clust += cluster_ops;
                    heaps += heap_ops;
                }
                TraceEvent::Emit { .. } => emits += 1,
                TraceEvent::UnitRun { tuples, .. } => run_tuples += tuples,
                TraceEvent::Fault { .. }
                | TraceEvent::Expire { .. }
                | TraceEvent::GovernorTransition { .. }
                | TraceEvent::PolicySwitch { .. }
                | TraceEvent::OpFailure { .. } => {}
            }
        }
        prop_assert_eq!(sheds, report.shed);
        prop_assert_eq!(points, report.sched_points);
        prop_assert_eq!(points, report.overhead.sched_points);
        prop_assert_eq!(emits, report.emitted);
        prop_assert_eq!(run_tuples, report.emitted, "UnitRun.tuples partition emissions");
        prop_assert_eq!(cand, report.overhead.candidates_scanned);
        prop_assert_eq!(evals, report.overhead.priority_evals);
        prop_assert_eq!(comps, report.overhead.comparisons);
        prop_assert_eq!(clust, report.overhead.cluster_ops);
        prop_assert_eq!(heaps, report.overhead.heap_ops);
    }

    /// Tracing observes, never steers: the traced report matches the
    /// untraced one, and event timestamps never decrease across scheduling
    /// points (virtual time is monotone).
    #[test]
    fn tracing_never_changes_the_simulation(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
        overload in any::<bool>(),
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let (traced, events) = run_traced(&chains, &gaps, kind, seed, overload);
        let plain = run_untraced(&chains, &gaps, kind, seed, overload);
        prop_assert_eq!(traced.qos, plain.qos);
        prop_assert_eq!(traced.emitted, plain.emitted);
        prop_assert_eq!(traced.shed, plain.shed);
        prop_assert_eq!(traced.sched_points, plain.sched_points);
        prop_assert_eq!(traced.end_time, plain.end_time);
        prop_assert_eq!(traced.overhead, plain.overhead);
        let mut last_point = Nanos::ZERO;
        for e in &events {
            if let TraceEvent::SchedulingPoint { at, .. } = *e {
                prop_assert!(at >= last_point, "scheduling points moved backwards");
                last_point = at;
            }
        }
    }

    /// The JSONL rendering of a run is byte-identical across repeated runs.
    #[test]
    fn jsonl_trace_is_byte_deterministic(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let render = || -> Vec<u8> {
            let plan = build_plan(&chains);
            let mut t = Nanos::ZERO;
            let arrivals: Vec<Nanos> = gaps
                .iter()
                .map(|&g| {
                    t += Nanos::from_millis(g);
                    t
                })
                .collect();
            let n = arrivals.len() as u64;
            let (_, sink) = simulate_traced(
                &plan,
                &StreamRates::none(),
                vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
                kind.build(),
                SimConfig::new(n).with_seed(seed),
                JsonlTrace::new(Vec::new()),
            )
            .unwrap();
            sink.finish().unwrap()
        };
        prop_assert_eq!(render(), render());
    }
}
