//! Golden-trace snapshot: the full JSONL scheduling trace of a small fixed
//! workload, pinned byte-for-byte.
//!
//! The trace is a pure function of (workload, policy, config) — integer
//! virtual time, seeded randomness, shortest-roundtrip float formatting —
//! so any byte of drift means the scheduler's observable behaviour changed:
//! a different decision, a different counter, a different emission time.
//! That is exactly what this test exists to catch; CSV-level exhibits
//! average too much to notice a swapped pair of decisions.
//!
//! The fixture deliberately exercises every event type: a cost-
//! miscalibration fault (`fault`), overhead charging (nonzero `charged` on
//! `sched_point`), a clustered policy (nonzero `cluster_ops`), a bounded
//! queue with QoS shedding (`shed`), and enough arrivals to emit (`unit_run`
//! + `emit`).
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p hcq-engine --test golden_trace
//! ```
//!
//! and review the diff like any other code change.

use hcq_common::{Nanos, StreamId};
use hcq_core::{ClusterConfig, ClusteredBsdPolicy};
use hcq_engine::{simulate_traced, AdmissionMode, JsonlTrace, SimConfig, SimReport};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::TraceReplay;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/small_workload.jsonl"
);

fn ms(n: u64) -> Nanos {
    Nanos::from_millis(n)
}

/// Four heterogeneous single-stream queries (costs 1–8 ms, mixed
/// selectivities) fed by a fixed burst-heavy arrival schedule.
fn golden_run() -> (SimReport, Vec<u8>) {
    let mut plan = GlobalPlan::default();
    for i in 0..4u64 {
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(1 << i), 0.3 + 0.2 * i as f64)
                .project(ms(1))
                .build()
                .unwrap(),
        );
    }
    // Two bursts: five tuples at t=0 (overflowing capacity-2 queues, so
    // sheds appear) and five spaced tuples from t=40ms (drained normally).
    let mut arrivals = vec![Nanos::ZERO; 5];
    arrivals.extend((0..5).map(|i| ms(40 + 20 * i)));
    let n = arrivals.len() as u64;
    let cfg = SimConfig::new(n)
        .with_seed(17)
        .with_admission(AdmissionMode::QosShed, 2)
        .with_watermark(6)
        .with_overhead(true)
        .with_cost_miscalibration(0.25, 99);
    let (report, sink) = simulate_traced(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(3))),
        cfg,
        JsonlTrace::new(Vec::new()),
    )
    .unwrap();
    let bytes = sink.finish().unwrap();
    (report, bytes)
}

#[test]
fn trace_matches_golden_snapshot() {
    let (report, bytes) = golden_run();
    let text = std::str::from_utf8(&bytes).expect("trace is UTF-8");

    // The fixture must keep exercising every event type — a golden full of
    // nothing would still "match".
    for kind in ["fault", "sched_point", "unit_run", "emit", "shed"] {
        assert!(
            text.contains(&format!("{{\"type\":\"{kind}\",")),
            "fixture no longer produces any '{kind}' event:\n{text}"
        );
    }
    assert!(report.shed > 0, "fixture must shed");
    assert!(report.emitted > 0, "fixture must emit");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN, &bytes).unwrap();
        eprintln!("golden trace regenerated at {GOLDEN}");
        return;
    }

    let golden = std::fs::read(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {GOLDEN}: {e}\n\
             run `UPDATE_GOLDEN=1 cargo test -p hcq-engine --test golden_trace` to create it"
        )
    });
    if bytes != golden {
        let golden_text = String::from_utf8_lossy(&golden);
        let first_diff = text
            .lines()
            .zip(golden_text.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first differing line {}:\n  got:    {}\n  golden: {}",
                    i + 1,
                    text.lines().nth(i).unwrap_or(""),
                    golden_text.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: got {}, golden {}",
                    text.lines().count(),
                    golden_text.lines().count()
                )
            });
        panic!(
            "scheduling trace drifted from the golden snapshot ({} vs {} bytes).\n{}\n\
             If this change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff.",
            bytes.len(),
            golden.len(),
            first_diff
        );
    }
}

#[test]
fn golden_run_is_reproducible_in_process() {
    let (a_report, a) = golden_run();
    let (b_report, b) = golden_run();
    assert_eq!(a, b, "same config must stream identical bytes");
    assert_eq!(a_report.emitted, b_report.emitted);
    assert_eq!(a_report.shed, b_report.shed);
    assert_eq!(a_report.overhead, b_report.overhead);
}
