//! End-to-end simulator tests, including the paper's worked Example 1
//! (Table 1) reproduced exactly.

use hcq_common::{det, Nanos, StreamId};
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, PolicyKind};
use hcq_engine::{simulate, SchedulingLevel, SimConfig, SimReport};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::{PoissonSource, TraceReplay};

fn ms(n: u64) -> Nanos {
    Nanos::from_millis(n)
}

/// The key attribute the engine assigns to physical tuple `id` under `seed`
/// (mirrors `Simulator::inject`).
fn key_of(seed: u64, id: u64) -> u64 {
    det::unit_range(det::splitmix64(det::mix2(seed, id)), 1, 100)
}

/// Example 1 needs the middle of three tuples (and only it) to satisfy the
/// selectivity-0.33 predicate `key ≤ 33`.
fn example1_seed() -> u64 {
    (0..10_000u64)
        .find(|&seed| key_of(seed, 0) > 33 && key_of(seed, 1) <= 33 && key_of(seed, 2) > 33)
        .expect("a suitable seed exists in the first 10k")
}

/// Build Example 1 (§3.4): Q1 = one operator (c = 5 ms, s = 1.0); Q2 = one
/// operator (c = 2 ms, s = 0.33); three tuples arrive at t = 0.
fn example1(policy: PolicyKind) -> SimReport {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(5), 1.0)
            .build()
            .unwrap(),
    );
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(2), 0.33)
            .build()
            .unwrap(),
    );
    let trace = TraceReplay::from_arrivals(vec![Nanos::ZERO, Nanos::ZERO, Nanos::ZERO]).unwrap();
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(trace)],
        policy.build(),
        SimConfig::new(3).with_seed(example1_seed()),
    )
    .unwrap()
}

#[test]
fn table1_hr_numbers_exact() {
    let r = example1(PolicyKind::Hr);
    // Paper Table 1: HR gives average response 12.25 ms, slowdown 3.875.
    assert_eq!(r.emitted, 4);
    assert_eq!(r.dropped, 2);
    assert!((r.qos.avg_response_ms - 12.25).abs() < 1e-9, "{r:?}");
    assert!((r.qos.avg_slowdown - 3.875).abs() < 1e-9, "{r:?}");
}

#[test]
fn table1_hnr_numbers_exact() {
    let r = example1(PolicyKind::Hnr);
    // Paper Table 1: HNR gives average response 13.0 ms, slowdown 2.9.
    assert_eq!(r.emitted, 4);
    assert!((r.qos.avg_response_ms - 13.0).abs() < 1e-9, "{r:?}");
    assert!((r.qos.avg_slowdown - 2.9).abs() < 1e-9, "{r:?}");
}

/// A small heterogeneous single-stream workload.
fn small_workload() -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    for i in 0..8u64 {
        let cost = ms(1 << (i % 4));
        let sel = 0.2 + 0.1 * (i % 8) as f64;
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(cost, sel)
                .stored_join(cost, sel)
                .project(cost)
                .build()
                .unwrap(),
        );
    }
    plan
}

fn run_small(policy: PolicyKind, seed: u64) -> SimReport {
    simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        policy.build(),
        SimConfig::new(500).with_seed(seed),
    )
    .unwrap()
}

#[test]
fn workload_realization_is_policy_independent() {
    // Every policy must see identical tuple outcomes: emitted and dropped
    // counts agree across all seven policies.
    let reference = run_small(PolicyKind::Fcfs, 5);
    assert!(reference.emitted > 0);
    for kind in PolicyKind::ALL {
        let r = run_small(kind, 5);
        assert_eq!(r.emitted, reference.emitted, "{}", kind.name());
        assert_eq!(r.dropped, reference.dropped, "{}", kind.name());
        assert_eq!(r.arrivals, reference.arrivals, "{}", kind.name());
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_small(PolicyKind::Bsd, 7);
    let b = run_small(PolicyKind::Bsd, 7);
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.sched_points, b.sched_points);
}

#[test]
fn slowdowns_are_at_least_one() {
    for kind in PolicyKind::ALL {
        let r = run_small(kind, 3);
        assert!(
            r.qos.avg_slowdown >= 1.0,
            "{}: avg slowdown {}",
            kind.name(),
            r.qos.avg_slowdown
        );
        assert!(r.qos.max_slowdown >= r.qos.avg_slowdown);
        assert!(r.qos.l2_slowdown >= r.qos.max_slowdown);
    }
}

#[test]
fn hnr_beats_others_on_avg_slowdown_under_load() {
    // Saturate the system: mean gap 10ms versus ~8 queries whose expected
    // per-arrival cost is several ms.
    let run = |kind: PolicyKind| {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(12), 4))],
            kind.build(),
            SimConfig::new(2_000).with_seed(1),
        )
        .unwrap()
    };
    let hnr = run(PolicyKind::Hnr);
    let fcfs = run(PolicyKind::Fcfs);
    let rr = run(PolicyKind::RoundRobin);
    assert!(
        hnr.qos.avg_slowdown < fcfs.qos.avg_slowdown,
        "HNR {} vs FCFS {}",
        hnr.qos.avg_slowdown,
        fcfs.qos.avg_slowdown
    );
    assert!(hnr.qos.avg_slowdown < rr.qos.avg_slowdown);
}

#[test]
fn lsf_beats_hnr_on_max_slowdown_under_load() {
    let run = |kind: PolicyKind| {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(12), 4))],
            kind.build(),
            SimConfig::new(2_000).with_seed(1),
        )
        .unwrap()
    };
    let lsf = run(PolicyKind::Lsf);
    let hnr = run(PolicyKind::Hnr);
    assert!(
        lsf.qos.max_slowdown < hnr.qos.max_slowdown,
        "LSF {} vs HNR {}",
        lsf.qos.max_slowdown,
        hnr.qos.max_slowdown
    );
}

#[test]
fn operator_level_emits_the_same_tuples() {
    let q = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        PolicyKind::Hnr.build(),
        SimConfig::new(300).with_seed(2),
    )
    .unwrap();
    let o = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        PolicyKind::Hnr.build(),
        SimConfig::new(300)
            .with_seed(2)
            .with_level(SchedulingLevel::Operator),
    )
    .unwrap();
    assert_eq!(q.emitted, o.emitted);
    assert_eq!(q.dropped, o.dropped);
    // Operator-level takes (many) more scheduling points.
    assert!(o.sched_points > q.sched_points);
}

#[test]
fn clustered_bsd_emits_like_exact_bsd() {
    let plan = small_workload();
    let exact = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(20), 11))],
        PolicyKind::Bsd.build(),
        SimConfig::new(800).with_seed(6),
    )
    .unwrap();
    for m in [1, 4, 16] {
        let clustered = simulate(
            &plan,
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(20), 11))],
            Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(m))),
            SimConfig::new(800).with_seed(6),
        )
        .unwrap();
        assert_eq!(clustered.emitted, exact.emitted, "m={m}");
        // Batching collapses scheduling points.
        assert!(clustered.sched_points <= exact.sched_points, "m={m}");
    }
}

#[test]
fn overhead_charging_slows_the_system() {
    let free = run_small(PolicyKind::Bsd, 9);
    let charged = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        PolicyKind::Bsd.build(),
        SimConfig::new(500).with_seed(9).with_overhead(true),
    )
    .unwrap();
    assert!(charged.overhead_time > Nanos::ZERO);
    assert!(charged.qos.avg_slowdown >= free.qos.avg_slowdown);
    assert_eq!(charged.emitted, free.emitted, "outcomes unchanged");
}

#[test]
fn join_query_produces_composites() {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.8)
            .window_join(
                QueryBuilder::on(StreamId::new(1)).select(ms(1), 0.8),
                ms(2),
                0.5,
                Nanos::from_secs(1),
            )
            .project(ms(1))
            .build()
            .unwrap(),
    );
    let rates = StreamRates::none()
        .with(StreamId::new(0), ms(50))
        .with(StreamId::new(1), ms(50));
    let sources: Vec<Box<dyn hcq_streams::ArrivalSource>> = vec![
        Box::new(PoissonSource::new(ms(50), 21)),
        Box::new(PoissonSource::new(ms(50), 22)),
    ];
    let r = simulate(
        &plan,
        &rates,
        sources,
        PolicyKind::Hnr.build(),
        SimConfig::new(2_000).with_seed(3),
    )
    .unwrap();
    assert!(r.emitted > 100, "emitted {}", r.emitted);
    assert!(r.qos.avg_slowdown >= 1.0);
    // Expected matches per arrival ≈ s_sel²·s_J·(S·V/τ) = 0.64·0.5·(0.8·20)
    // ≈ 5 per surviving arrival; just check the order of magnitude.
    let per_arrival = r.emitted as f64 / r.arrivals as f64;
    assert!(per_arrival > 0.5 && per_arrival < 50.0, "{per_arrival}");
}

#[test]
fn join_emissions_are_policy_independent() {
    let mut counts = Vec::new();
    for kind in [
        PolicyKind::Fcfs,
        PolicyKind::Hnr,
        PolicyKind::Bsd,
        PolicyKind::Lsf,
    ] {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(1), 0.9)
                .window_join(
                    QueryBuilder::on(StreamId::new(1)).select(ms(1), 0.9),
                    ms(1),
                    0.4,
                    Nanos::from_millis(400),
                )
                .build()
                .unwrap(),
        );
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(30))
            .with(StreamId::new(1), ms(30));
        let sources: Vec<Box<dyn hcq_streams::ArrivalSource>> = vec![
            Box::new(PoissonSource::new(ms(30), 31)),
            Box::new(PoissonSource::new(ms(30), 32)),
        ];
        let r = simulate(
            &plan,
            &rates,
            sources,
            kind.build(),
            SimConfig::new(1_000).with_seed(8),
        )
        .unwrap();
        counts.push((kind.name(), r.emitted, r.arrivals));
    }
    for w in counts.windows(2) {
        assert_eq!(w[0].1, w[1].1, "{:?}", counts);
        assert_eq!(w[0].2, w[1].2);
    }
}

#[test]
fn sharing_strategies_emit_identical_tuples() {
    use hcq_core::SharingStrategy;
    let build_shared = || {
        let mut plan = GlobalPlan::default();
        let members: Vec<_> = (0..10)
            .map(|i| {
                plan.add_query(
                    QueryBuilder::on(StreamId::new(0))
                        .select(ms(1), 0.5)
                        .stored_join(ms(1 << (i % 4)), 0.3 + 0.07 * i as f64)
                        .project(ms(1))
                        .build()
                        .unwrap(),
                )
            })
            .collect();
        plan.share_first_op(members).unwrap();
        plan
    };
    let mut results = Vec::new();
    for strat in [
        SharingStrategy::Max,
        SharingStrategy::Sum,
        SharingStrategy::Pdt,
    ] {
        let r = simulate(
            &build_shared(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(25), 77))],
            PolicyKind::Hnr.build(),
            SimConfig::new(800).with_seed(12).with_sharing(strat),
        )
        .unwrap();
        results.push((strat, r.emitted, r.qos.avg_slowdown));
        assert!(r.emitted > 0);
    }
    assert_eq!(results[0].1, results[1].1);
    assert_eq!(results[1].1, results[2].1);
}

#[test]
fn drain_false_stops_at_last_arrival() {
    let mut cfg = SimConfig::new(200).with_seed(1);
    cfg.drain = false;
    let undrained = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(5), 50))],
        PolicyKind::Fcfs.build(),
        cfg,
    )
    .unwrap();
    let drained = run_small(PolicyKind::Fcfs, 1);
    // Overloaded at 5ms gaps: work remains when injection stops.
    assert!(undrained.emitted < drained.emitted + undrained.arrivals as u64);
    assert!(undrained.end_time > Nanos::ZERO);
}

#[test]
fn per_class_breakdown_covers_all_emissions() {
    let r = run_small(PolicyKind::Hnr, 5);
    assert_eq!(r.classes.overall().count, r.qos.count);
    assert_eq!(r.histogram.total(), r.qos.count);
}

#[test]
fn measured_utilization_tracks_offered_load() {
    // Light load: utilization well below 1.
    let light = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(200), 5))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(500).with_seed(5),
    )
    .unwrap();
    assert!(
        light.measured_utilization() < 0.4,
        "{}",
        light.measured_utilization()
    );
    let heavy = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(12), 5))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(500).with_seed(5),
    )
    .unwrap();
    assert!(heavy.measured_utilization() > light.measured_utilization());
}

#[test]
fn chain_priorities_drop_fastest_filters_first() {
    use hcq_core::StaticPolicy;
    use hcq_engine::SimModel;
    // Query A drops 90% in its first cheap operator; query B keeps
    // everything until an expensive tail. Chain must rank A far above B.
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(1), 0.1)
            .project(ms(1))
            .build()
            .unwrap(),
    );
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .project(ms(1))
            .select(ms(10), 0.9)
            .build()
            .unwrap(),
    );
    let model = SimModel::build(
        &plan,
        &StreamRates::none(),
        SchedulingLevel::Query,
        hcq_core::SharingStrategy::Pdt,
    )
    .unwrap();
    let slopes = model.chain_priorities();
    assert_eq!(slopes.len(), 2);
    assert!(
        slopes[0] > 10.0 * slopes[1],
        "chain slopes {slopes:?} should strongly prefer the fast-dropping query"
    );
    // And the custom policy is pluggable end-to-end.
    let r = simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(30), 1))],
        Box::new(StaticPolicy::custom("Chain", slopes)),
        SimConfig::new(300).with_seed(1),
    )
    .unwrap();
    assert!(r.emitted > 0);
}

#[test]
fn chain_reduces_memory_versus_fcfs_under_load() {
    use hcq_core::StaticPolicy;
    use hcq_engine::SimModel;
    let plan = small_workload();
    let model = SimModel::build(
        &plan,
        &StreamRates::none(),
        SchedulingLevel::Query,
        hcq_core::SharingStrategy::Pdt,
    )
    .unwrap();
    let chain_priorities = model.chain_priorities();
    let run = |policy: Box<dyn hcq_core::Policy>| {
        simulate(
            &plan,
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(12), 4))],
            policy,
            SimConfig::new(2_000).with_seed(1),
        )
        .unwrap()
    };
    let chain = run(Box::new(StaticPolicy::custom("Chain", chain_priorities)));
    let fcfs = run(PolicyKind::Fcfs.build());
    assert!(
        chain.avg_pending < fcfs.avg_pending,
        "Chain {} vs FCFS {}",
        chain.avg_pending,
        fcfs.avg_pending
    );
    assert!(chain.peak_pending <= fcfs.peak_pending);
    assert_eq!(chain.emitted, fcfs.emitted);
}

#[test]
fn memory_accounting_tracks_queue_population() {
    let r = run_small(PolicyKind::Fcfs, 5);
    assert!(r.avg_pending > 0.0);
    assert!(
        r.peak_pending >= 8,
        "peak at least one burst across 8 queries"
    );
    assert!(r.avg_pending <= r.peak_pending as f64);
}

#[test]
fn sample_window_collects_trajectory() {
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        PolicyKind::Hnr.build(),
        SimConfig::new(500)
            .with_seed(5)
            .with_sample_window(Nanos::from_secs(1)),
    )
    .unwrap();
    let series = r.series.expect("sampling enabled");
    let total: u64 = series.series().iter().map(|(_, s)| s.count).sum();
    assert_eq!(total, r.qos.count, "every emission lands in some window");
    assert!(series.len() > 1, "run spans multiple windows");
    let (_, worst) = series.worst_window().expect("emissions exist");
    assert!(worst.avg_slowdown >= r.qos.avg_slowdown * 0.99);
}

#[test]
fn cost_jitter_zero_is_identical_to_baseline() {
    let base = run_small(PolicyKind::Hnr, 5);
    let zero = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        PolicyKind::Hnr.build(),
        SimConfig::new(500).with_seed(5).with_cost_jitter(0.0),
    )
    .unwrap();
    assert_eq!(base.qos, zero.qos);
    assert_eq!(base.end_time, zero.end_time);
}

#[test]
fn cost_jitter_preserves_policy_independence_and_orderings() {
    let run = |kind: PolicyKind| {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(12), 4))],
            kind.build(),
            SimConfig::new(2_000).with_seed(1).with_cost_jitter(0.3),
        )
        .unwrap()
    };
    let hnr = run(PolicyKind::Hnr);
    let fcfs = run(PolicyKind::Fcfs);
    // Outcomes still agree (jitter is policy-independent) …
    assert_eq!(hnr.emitted, fcfs.emitted);
    assert_eq!(hnr.busy_time, fcfs.busy_time);
    // … and the headline ordering survives ±30% per-execution noise.
    assert!(hnr.qos.avg_slowdown < fcfs.qos.avg_slowdown);
    // Jitter actually changed the timeline relative to the deterministic run.
    let det = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(12), 4))],
        PolicyKind::Hnr.build(),
        SimConfig::new(2_000).with_seed(1),
    )
    .unwrap();
    assert_ne!(det.busy_time, hnr.busy_time);
}

#[test]
fn mid_run_statics_update_crosses_the_policy_boundary() {
    // Two deterministic queries (selectivity 1), one tuple at t = 0.
    // SRPT ranks by 1/T: baseline prefers Q2 (T = 2ms); after the engine
    // installs fresh statics declaring Q1 much shorter, Q1 must run first.
    let build = || {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(5), 1.0)
                .build()
                .unwrap(),
        );
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(2), 1.0)
                .build()
                .unwrap(),
        );
        let trace = TraceReplay::from_arrivals(vec![Nanos::ZERO]).unwrap();
        hcq_engine::Simulator::new(
            &plan,
            &StreamRates::none(),
            vec![Box::new(trace)],
            PolicyKind::Srpt.build(),
            SimConfig::new(1).with_seed(3),
        )
        .unwrap()
    };
    // Baseline: Q2 (2ms) then Q1 (5ms) -> responses 2ms and 7ms.
    let base = build().run().unwrap();
    assert!((base.qos.avg_response_ms - 4.5).abs() < 1e-9, "{base:?}");
    // Updated: Q1 re-estimated at T = 1ms outranks Q2; execution still costs
    // the plan's 5ms -> responses 5ms and 7ms.
    let mut sim = build();
    sim.update_unit_statics(0, hcq_core::UnitStatics::new(1.0, ms(1), ms(1)));
    let flipped = sim.run().unwrap();
    assert!(
        (flipped.qos.avg_response_ms - 6.0).abs() < 1e-9,
        "{flipped:?}"
    );
    assert_eq!(base.emitted, flipped.emitted);
}

// ---------------------------------------------------------------------------
// Overload governor, deadlines, and the expanded fault model
// ---------------------------------------------------------------------------

use hcq_engine::{AdmissionMode, GovernorConfig};
use hcq_streams::{ArrivalSource, FaultSpec, FaultySource};

/// Work-unit conservation with the expanded fault model: every per-query
/// tuple copy ends in exactly one bucket.
fn assert_conserved(r: &SimReport, queries: u64) {
    assert_eq!(
        r.arrivals * queries,
        r.emitted + r.dropped + r.shed + r.expired + r.pending_end as u64,
        "conservation: {r:?}"
    );
}

fn governor_cfg() -> GovernorConfig {
    GovernorConfig {
        enabled: true,
        cadence: ms(50),
        min_dwell: ms(200),
        escalate_pending: 48,
        deescalate_pending: 8,
        escalate_share: 0.5,
        deescalate_share: 0.1,
        capacity: 16,
        watermark: 32,
        ..GovernorConfig::default()
    }
}

#[test]
fn disabled_governor_changes_nothing() {
    // `SimConfig::new` leaves the governor disabled; the default config's
    // report must match a run that never mentions the governor at all.
    let base = run_small(PolicyKind::Hnr, 5);
    let r = run_small(PolicyKind::Hnr, 5);
    assert_eq!(base.qos, r.qos);
    assert_eq!(base.end_time, r.end_time);
    assert_eq!(r.governor_transitions, 0);
    assert_eq!(r.expired, 0);
    assert_eq!(r.op_failures, 0);
}

#[test]
fn governor_escalates_under_overload_and_sheds() {
    // 12ms gaps saturate the 8-query workload; the governor must leave
    // Unbounded, and once bounded the run sheds.
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(12), 4))],
        PolicyKind::Hnr.build(),
        SimConfig::new(2_000)
            .with_seed(1)
            .with_governor(governor_cfg()),
    )
    .unwrap();
    assert!(r.governor_transitions > 0, "{r:?}");
    assert!(r.shed > 0, "an escalated governor must bound the queues");
    assert_conserved(&r, 8);
}

#[test]
fn governor_transition_rate_is_dwell_bounded() {
    let cfg = governor_cfg();
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(12), 4))],
        PolicyKind::Hnr.build(),
        SimConfig::new(2_000).with_seed(1).with_governor(cfg),
    )
    .unwrap();
    let max = r.end_time.as_nanos() / cfg.min_dwell.as_nanos() + 1;
    assert!(
        r.governor_transitions <= max,
        "{} transitions over {} ns violates the {} ns dwell",
        r.governor_transitions,
        r.end_time.as_nanos(),
        cfg.min_dwell.as_nanos()
    );
}

#[test]
fn governor_runs_are_deterministic() {
    let run = || {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(12), 4))],
            PolicyKind::Bsd.build(),
            SimConfig::new(2_000)
                .with_seed(7)
                .with_governor(governor_cfg()),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.governor_transitions, b.governor_transitions);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn governor_never_worse_than_worst_static_mode() {
    // Calibrated workload: sustained overload where bounding queues is the
    // right call. The governed run's average slowdown must not exceed the
    // worst static admission mode's (with slack for discretization).
    let run = |cfg: SimConfig| {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(12), 4))],
            PolicyKind::Hnr.build(),
            cfg,
        )
        .unwrap()
    };
    let governed = run(SimConfig::new(2_000)
        .with_seed(1)
        .with_governor(governor_cfg()));
    let worst = [
        run(SimConfig::new(2_000).with_seed(1)),
        run(SimConfig::new(2_000)
            .with_seed(1)
            .with_admission(AdmissionMode::DropTail, 16)),
        run(SimConfig::new(2_000)
            .with_seed(1)
            .with_admission(AdmissionMode::QosShed, 16)
            .with_watermark(32)),
    ]
    .iter()
    .map(|r| r.qos.avg_slowdown)
    .fold(0.0f64, f64::max);
    assert!(
        governed.qos.avg_slowdown <= worst * 1.05,
        "governed {} vs worst static {}",
        governed.qos.avg_slowdown,
        worst
    );
}

/// Single cheap query so deadline arithmetic is exact: one 5ms operator,
/// selectivity 1, tuples at fixed instants.
fn deadline_plan(deadline: Option<Nanos>) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    let mut b = QueryBuilder::on(StreamId::new(0)).select(ms(5), 1.0);
    if let Some(d) = deadline {
        b = b.with_deadline(d);
    }
    plan.add_query(b.build().unwrap());
    plan
}

fn run_deadline(deadline: Option<Nanos>, arrivals: Vec<Nanos>) -> SimReport {
    let n = arrivals.len() as u64;
    let trace = TraceReplay::from_arrivals(arrivals).unwrap();
    simulate(
        &deadline_plan(deadline),
        &StreamRates::none(),
        vec![Box::new(trace)],
        PolicyKind::Fcfs.build(),
        SimConfig::new(n).with_seed(1),
    )
    .unwrap()
}

#[test]
fn deadline_expires_stale_tuples() {
    // Three tuples at t = 0 under FCFS run at 0, 5, 10 ms. A 6ms response
    // budget lets the first two start in time; the third is 4ms late.
    let r = run_deadline(Some(ms(6)), vec![Nanos::ZERO; 3]);
    assert_eq!(r.emitted, 2, "{r:?}");
    assert_eq!(r.expired, 1, "{r:?}");
    assert_conserved(&r, 1);
    // No deadline: all three emit.
    let free = run_deadline(None, vec![Nanos::ZERO; 3]);
    assert_eq!(free.emitted, 3);
    assert_eq!(free.expired, 0);
}

#[test]
fn deadline_zero_requires_immediate_service() {
    // Deadline 0: a tuple must be dequeued at its arrival instant. The
    // first tuple starts at t = 0 and survives; the backlogged rest expire.
    let r = run_deadline(Some(Nanos::ZERO), vec![Nanos::ZERO; 4]);
    assert_eq!(r.emitted, 1, "{r:?}");
    assert_eq!(r.expired, 3, "{r:?}");
    assert_conserved(&r, 1);
}

#[test]
fn deadline_equal_to_ideal_time_is_exact_boundary() {
    // Budget == operator cost (5 ms). Tuple 2 dequeues at exactly
    // arrival + 5ms: `clock > due` is false, so it runs; tuple 3 at +10ms
    // expires.
    let r = run_deadline(Some(ms(5)), vec![Nanos::ZERO; 3]);
    assert_eq!(r.emitted, 2, "{r:?}");
    assert_eq!(r.expired, 1, "{r:?}");
    assert_conserved(&r, 1);
}

#[test]
fn all_tuples_expired_is_panic_free() {
    // A huge backlog under deadline 0: everything after the head expires,
    // the run terminates, and conservation still holds.
    let r = run_deadline(Some(Nanos::ZERO), vec![Nanos::ZERO; 64]);
    assert_eq!(r.emitted, 1);
    assert_eq!(r.expired, 63);
    assert_eq!(r.pending_end, 0);
    assert_conserved(&r, 1);
}

#[test]
fn op_failures_charge_time_and_conserve_tuples() {
    let run = |p: f64| {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(40), 99))],
            PolicyKind::Hnr.build(),
            SimConfig::new(500)
                .with_seed(5)
                .with_op_failures(p, ms(20), 2),
        )
        .unwrap()
    };
    let faulty = run(0.1);
    let clean = run(0.0);
    assert!(faulty.op_failures > 0, "{faulty:?}");
    assert!(faulty.quarantine_time > Nanos::ZERO);
    assert_conserved(&faulty, 8);
    assert_conserved(&clean, 8);
    // Failed runs are charged: busy time exceeds the clean run's.
    assert!(faulty.busy_time > clean.busy_time);
    assert_eq!(clean.op_failures, 0);
}

#[test]
fn op_failure_runs_are_rerun_deterministic() {
    let run = || {
        simulate(
            &small_workload(),
            &StreamRates::none(),
            vec![Box::new(PoissonSource::new(ms(40), 99))],
            PolicyKind::Bsd.build(),
            SimConfig::new(500)
                .with_seed(5)
                .with_op_failures(0.15, ms(10), 1),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.op_failures, b.op_failures);
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.quarantine_time, b.quarantine_time);
}

#[test]
fn exhausted_retries_abandon_the_tuple() {
    // p close to 1 with 0 retries: nearly every dequeue fails once and is
    // abandoned (counted dropped), so almost nothing emits — yet the run
    // terminates and conserves.
    let r = simulate(
        &deadline_plan(None),
        &StreamRates::none(),
        vec![Box::new(
            TraceReplay::from_arrivals(vec![Nanos::ZERO; 8]).unwrap(),
        )],
        PolicyKind::Fcfs.build(),
        SimConfig::new(8)
            .with_seed(1)
            .with_op_failures(0.99, ms(5), 0),
    )
    .unwrap();
    assert!(r.op_failures >= 6, "{r:?}");
    assert_eq!(r.pending_end, 0);
    assert_conserved(&r, 1);
}

#[test]
fn stall_windows_reconcile_schedule_with_report() {
    // Satellite: a stall scheduled near the end of injection extends past
    // the final clock; the report must split the scheduled stall time into
    // an observed part and a truncated part that sum to the schedule.
    // Every arrival stalls: the coin rolled for the engine's one-ahead
    // buffered arrival (never injected) guarantees a window past the end.
    let spec = FaultSpec {
        burst_prob: 0.0,
        burst_len: 0,
        burst_spread: Nanos::ZERO,
        stall_prob: 1.0,
        stall_len: Nanos::from_secs(1),
        seed: 13,
    };
    let src = FaultySource::new(PoissonSource::new(ms(40), 99), spec);
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(src)],
        PolicyKind::Fcfs.build(),
        SimConfig::new(200).with_seed(5),
    )
    .unwrap();
    // Rebuild the schedule independently: an identically-seeded source
    // reports identical decision-time windows. The engine pre-buffers one
    // arrival beyond the 200 it injects, so it rolls 201 stall coins.
    let mut twin = FaultySource::new(PoissonSource::new(ms(40), 99), spec);
    let _ = hcq_streams::collect_arrivals(&mut twin, 201);
    let scheduled = twin.fault_stats().total_window_time();
    assert_eq!(scheduled, Nanos::from_secs(201), "201 coins, all stalls");
    assert_eq!(
        r.fault_stall_time + r.fault_stall_truncated,
        scheduled,
        "schedule/report reconciliation: {r:?}"
    );
    assert!(
        r.fault_stall_truncated > Nanos::ZERO,
        "a 30s stall near the end must outlive the run: {r:?}"
    );
    assert_conserved(&r, 8);
}

#[test]
fn disconnect_source_recovers_through_the_engine() {
    use hcq_streams::{DisconnectSource, DisconnectSpec};
    let spec = DisconnectSpec {
        disconnect_prob: 0.02,
        retry_base: ms(80),
        retry_factor: 2.0,
        retry_jitter: 0.25,
        max_retries: 6,
        reconnect_prob: 0.7,
        seed: 17,
    };
    let src = DisconnectSource::new(PoissonSource::new(ms(40), 99), spec);
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(src)],
        PolicyKind::Hnr.build(),
        SimConfig::new(500).with_seed(5),
    )
    .unwrap();
    assert!(r.source_disconnects > 0, "{r:?}");
    assert!(r.source_retry_attempts >= r.source_disconnects);
    assert!(r.source_lost_arrivals > 0, "downtime swallows arrivals");
    // Lost arrivals never reached the engine: conservation is over the
    // delivered arrivals only.
    assert_conserved(&r, 8);
    assert!(r.emitted > 0, "the feed comes back after reconnection");
}
