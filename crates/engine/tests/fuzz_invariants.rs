//! Randomized whole-engine invariants: arbitrary small workloads and
//! arrival patterns must preserve the simulator's core guarantees under
//! every policy.

use hcq_common::{Nanos, StreamId};
use hcq_core::PolicyKind;
use hcq_engine::{simulate, SimConfig, SimReport};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::TraceReplay;
use proptest::prelude::*;

/// Random single-stream chains: per query, 1–4 operators with ms costs and
/// coarse selectivities.
fn plan_strategy() -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((1u64..=16, 0.1f64..=1.0), 1..=4),
        1..=6,
    )
}

/// Random arrival gaps (ms); replayed identically for every policy.
fn arrivals_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=60, 5..=60)
}

fn build_plan(chains: &[Vec<(u64, f64)>]) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    for chain in chains {
        let mut b = QueryBuilder::on(StreamId::new(0));
        for &(cost, sel) in chain {
            b = b.map(Nanos::from_millis(cost), sel);
        }
        plan.add_query(b.build().expect("valid chain"));
    }
    plan
}

fn run(chains: &[Vec<(u64, f64)>], gaps: &[u64], kind: PolicyKind, seed: u64) -> SimReport {
    let plan = build_plan(chains);
    let mut t = Nanos::ZERO;
    let arrivals: Vec<Nanos> = gaps
        .iter()
        .map(|&g| {
            t += Nanos::from_millis(g);
            t
        })
        .collect();
    let n = arrivals.len() as u64;
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        SimConfig::new(n).with_seed(seed),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Outcomes (emissions, drops) are identical across all seven policies,
    /// and every report is internally consistent.
    #[test]
    fn outcomes_policy_independent_and_consistent(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        let reference = run(&chains, &gaps, PolicyKind::Fcfs, seed);
        let per_query_work: u64 = gaps.len() as u64 * chains.len() as u64;
        prop_assert_eq!(reference.emitted + reference.dropped, per_query_work);
        for kind in PolicyKind::ALL {
            let r = run(&chains, &gaps, kind, seed);
            prop_assert_eq!(r.emitted, reference.emitted, "{}", kind.name());
            prop_assert_eq!(r.dropped, reference.dropped, "{}", kind.name());
            prop_assert_eq!(r.qos.count, r.emitted);
            prop_assert_eq!(r.histogram.total(), r.emitted);
            if r.emitted > 0 {
                prop_assert!(r.qos.avg_slowdown >= 1.0 - 1e-9, "{}", kind.name());
                prop_assert!(r.qos.max_slowdown + 1e-9 >= r.qos.avg_slowdown);
                prop_assert!(r.qos.l2_slowdown + 1e-9 >= r.qos.max_slowdown);
            }
            prop_assert!(r.busy_time <= r.end_time);
            // Work conservation: the busy time equals the per-tuple costs
            // actually executed, which is policy-independent too.
            prop_assert_eq!(
                r.busy_time,
                reference.busy_time,
                "busy time differs under {}",
                kind.name()
            );
        }
    }

    /// Reruns with the same seed are bit-identical; different seeds change
    /// the realization (almost surely) but never the invariants.
    #[test]
    fn determinism_per_seed(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        let a = run(&chains, &gaps, PolicyKind::Bsd, seed);
        let b = run(&chains, &gaps, PolicyKind::Bsd, seed);
        prop_assert_eq!(a.qos, b.qos);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.sched_points, b.sched_points);
        prop_assert_eq!(a.sched_ops, b.sched_ops);
    }

    /// Operator-level scheduling preserves outcomes for join-free plans.
    #[test]
    fn operator_level_preserves_outcomes(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
    ) {
        let plan = build_plan(&chains);
        let mut t = Nanos::ZERO;
        let arrivals: Vec<Nanos> = gaps
            .iter()
            .map(|&g| {
                t += Nanos::from_millis(g);
                t
            })
            .collect();
        let n = arrivals.len() as u64;
        let mk = |level| {
            simulate(
                &plan,
                &StreamRates::none(),
                vec![Box::new(TraceReplay::from_arrivals(arrivals.clone()).unwrap())],
                PolicyKind::Hnr.build(),
                SimConfig::new(n).with_seed(3).with_level(level),
            )
            .unwrap()
        };
        let q = mk(hcq_engine::SchedulingLevel::Query);
        let o = mk(hcq_engine::SchedulingLevel::Operator);
        prop_assert_eq!(q.emitted, o.emitted);
        prop_assert_eq!(q.dropped, o.dropped);
        prop_assert_eq!(q.busy_time, o.busy_time);
    }
}
