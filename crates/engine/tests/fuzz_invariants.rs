//! Randomized whole-engine invariants: arbitrary small workloads and
//! arrival patterns must preserve the simulator's core guarantees under
//! every policy.

use hcq_common::{Nanos, StreamId};
use hcq_core::PolicyKind;
use hcq_engine::{simulate, AdmissionMode, SimConfig, SimReport};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::TraceReplay;
use proptest::prelude::*;

/// Random single-stream chains: per query, 1–4 operators with ms costs and
/// coarse selectivities.
fn plan_strategy() -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((1u64..=16, 0.1f64..=1.0), 1..=4),
        1..=6,
    )
}

/// Random arrival gaps (ms); replayed identically for every policy.
fn arrivals_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=60, 5..=60)
}

fn build_plan(chains: &[Vec<(u64, f64)>]) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    for chain in chains {
        let mut b = QueryBuilder::on(StreamId::new(0));
        for &(cost, sel) in chain {
            b = b.map(Nanos::from_millis(cost), sel);
        }
        plan.add_query(b.build().expect("valid chain"));
    }
    plan
}

fn run(chains: &[Vec<(u64, f64)>], gaps: &[u64], kind: PolicyKind, seed: u64) -> SimReport {
    let plan = build_plan(chains);
    let mut t = Nanos::ZERO;
    let arrivals: Vec<Nanos> = gaps
        .iter()
        .map(|&g| {
            t += Nanos::from_millis(g);
            t
        })
        .collect();
    let n = arrivals.len() as u64;
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        SimConfig::new(n).with_seed(seed),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Outcomes (emissions, drops) are identical across all seven policies,
    /// and every report is internally consistent.
    #[test]
    fn outcomes_policy_independent_and_consistent(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        let reference = run(&chains, &gaps, PolicyKind::Fcfs, seed);
        let per_query_work: u64 = gaps.len() as u64 * chains.len() as u64;
        prop_assert_eq!(reference.emitted + reference.dropped, per_query_work);
        for kind in PolicyKind::ALL {
            let r = run(&chains, &gaps, kind, seed);
            prop_assert_eq!(r.emitted, reference.emitted, "{}", kind.name());
            prop_assert_eq!(r.dropped, reference.dropped, "{}", kind.name());
            prop_assert_eq!(r.qos.count, r.emitted);
            prop_assert_eq!(r.histogram.total(), r.emitted);
            if r.emitted > 0 {
                prop_assert!(r.qos.avg_slowdown >= 1.0 - 1e-9, "{}", kind.name());
                prop_assert!(r.qos.max_slowdown + 1e-9 >= r.qos.avg_slowdown);
                prop_assert!(r.qos.l2_slowdown + 1e-9 >= r.qos.max_slowdown);
            }
            prop_assert!(r.busy_time <= r.end_time);
            // Work conservation: the busy time equals the per-tuple costs
            // actually executed, which is policy-independent too.
            prop_assert_eq!(
                r.busy_time,
                reference.busy_time,
                "busy time differs under {}",
                kind.name()
            );
        }
    }

    /// Reruns with the same seed are bit-identical; different seeds change
    /// the realization (almost surely) but never the invariants.
    #[test]
    fn determinism_per_seed(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        let a = run(&chains, &gaps, PolicyKind::Bsd, seed);
        let b = run(&chains, &gaps, PolicyKind::Bsd, seed);
        prop_assert_eq!(a.qos, b.qos);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.sched_points, b.sched_points);
        prop_assert_eq!(a.sched_ops, b.sched_ops);
    }

    /// Operator-level scheduling preserves outcomes for join-free plans.
    #[test]
    fn operator_level_preserves_outcomes(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
    ) {
        let plan = build_plan(&chains);
        let mut t = Nanos::ZERO;
        let arrivals: Vec<Nanos> = gaps
            .iter()
            .map(|&g| {
                t += Nanos::from_millis(g);
                t
            })
            .collect();
        let n = arrivals.len() as u64;
        let mk = |level| {
            simulate(
                &plan,
                &StreamRates::none(),
                vec![Box::new(TraceReplay::from_arrivals(arrivals.clone()).unwrap())],
                PolicyKind::Hnr.build(),
                SimConfig::new(n).with_seed(3).with_level(level),
            )
            .unwrap()
        };
        let q = mk(hcq_engine::SchedulingLevel::Query);
        let o = mk(hcq_engine::SchedulingLevel::Operator);
        prop_assert_eq!(q.emitted, o.emitted);
        prop_assert_eq!(q.dropped, o.dropped);
        prop_assert_eq!(q.busy_time, o.busy_time);
    }
}

/// Like [`run`] but with admission control configured.
fn run_overload(
    chains: &[Vec<(u64, f64)>],
    gaps: &[u64],
    kind: PolicyKind,
    seed: u64,
    mode: AdmissionMode,
    capacity: usize,
    watermark: usize,
) -> SimReport {
    let plan = build_plan(chains);
    let mut t = Nanos::ZERO;
    let arrivals: Vec<Nanos> = gaps
        .iter()
        .map(|&g| {
            t += Nanos::from_millis(g);
            t
        })
        .collect();
    let n = arrivals.len() as u64;
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        SimConfig::new(n)
            .with_seed(seed)
            .with_admission(mode, capacity)
            .with_watermark(watermark),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tuple conservation under every policy × admission mode: every
    /// per-query work unit ends the run as exactly one of emitted, dropped
    /// (by a filter), shed (by the overload manager), or still pending.
    #[test]
    fn conservation_under_admission_control(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
        capacity in 1usize..4,
    ) {
        let work = gaps.len() as u64 * chains.len() as u64;
        for kind in PolicyKind::ALL {
            for (mode, watermark) in [
                (AdmissionMode::Unbounded, 0usize),
                (AdmissionMode::DropTail, 0),
                (AdmissionMode::QosShed, 0),
                (AdmissionMode::QosShed, 4),
            ] {
                let r = run_overload(&chains, &gaps, kind, seed, mode, capacity, watermark);
                prop_assert_eq!(
                    r.emitted + r.dropped + r.shed + r.pending_end as u64,
                    work,
                    "conservation violated: {} under {:?}/cap={}/wm={}",
                    kind.name(), mode, capacity, watermark
                );
                if mode == AdmissionMode::Unbounded {
                    prop_assert_eq!(r.shed, 0);
                }
            }
        }
    }

    /// A watermark the backlog can never reach means QoS shedding never
    /// arms: zero shed and outcomes identical to unbounded queues.
    #[test]
    fn qos_shedding_never_fires_below_watermark(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        let watermark = gaps.len() * chains.len() + 1;
        let baseline = run(&chains, &gaps, PolicyKind::Hnr, seed);
        let r = run_overload(
            &chains, &gaps, PolicyKind::Hnr, seed,
            AdmissionMode::QosShed, 1, watermark,
        );
        prop_assert!(r.peak_pending < watermark);
        prop_assert_eq!(r.shed, 0);
        prop_assert_eq!(r.emitted, baseline.emitted);
        prop_assert_eq!(r.dropped, baseline.dropped);
        prop_assert_eq!(r.qos, baseline.qos);
    }

    /// Shedding decisions are a pure function of (workload, seed, config):
    /// reruns agree on every overload counter.
    #[test]
    fn shedding_is_deterministic(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        for mode in [AdmissionMode::DropTail, AdmissionMode::QosShed] {
            let a = run_overload(&chains, &gaps, PolicyKind::Bsd, seed, mode, 2, 3);
            let b = run_overload(&chains, &gaps, PolicyKind::Bsd, seed, mode, 2, 3);
            prop_assert_eq!(a.shed, b.shed);
            prop_assert_eq!(a.emitted, b.emitted);
            prop_assert_eq!(a.overload_time, b.overload_time);
            prop_assert_eq!(a.qos, b.qos);
        }
    }

    /// Cost miscalibration perturbs every operator identically for every
    /// policy (the fault is a property of the workload, not the scheduler),
    /// so outcomes and busy time stay policy-independent under faults.
    #[test]
    fn miscalibration_is_policy_independent(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        seed in 0u64..1000,
    ) {
        let plan = build_plan(&chains);
        let mut t = Nanos::ZERO;
        let arrivals: Vec<Nanos> = gaps
            .iter()
            .map(|&g| {
                t += Nanos::from_millis(g);
                t
            })
            .collect();
        let n = arrivals.len() as u64;
        let mk = |kind: PolicyKind| {
            simulate(
                &plan,
                &StreamRates::none(),
                vec![Box::new(TraceReplay::from_arrivals(arrivals.clone()).unwrap())],
                kind.build(),
                SimConfig::new(n)
                    .with_seed(seed)
                    .with_cost_miscalibration(0.5, seed ^ 0xFA17),
            )
            .unwrap()
        };
        let reference = mk(PolicyKind::Fcfs);
        for kind in PolicyKind::ALL {
            let r = mk(kind);
            prop_assert_eq!(r.emitted, reference.emitted, "{}", kind.name());
            prop_assert_eq!(r.dropped, reference.dropped, "{}", kind.name());
            prop_assert_eq!(r.busy_time, reference.busy_time, "{}", kind.name());
        }
    }
}
