//! End-to-end tests for the online statistics estimator, the drifting
//! statics fault model, and the governor's policy-switching meta-scheduler.

use hcq_common::Nanos;
use hcq_core::{ClusterConfig, ClusteredBsdPolicy, PolicyKind};
use hcq_engine::{
    simulate, simulate_traced, AdaptConfig, AdaptMode, DriftStep, GovernorConfig, SimConfig,
    SimReport, TraceEvent, VecTrace,
};
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::PoissonSource;

fn ms(n: u64) -> Nanos {
    Nanos::from_millis(n)
}

/// A small heterogeneous single-stream workload (mirrors the integration
/// suite's).
fn small_workload() -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    for i in 0..8u64 {
        let cost = ms(1 << (i % 4));
        let sel = 0.2 + 0.1 * (i % 8) as f64;
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(cost, sel)
                .stored_join(cost, sel)
                .project(cost)
                .build()
                .unwrap(),
        );
    }
    plan
}

use hcq_common::StreamId;

fn run_with(cfg: SimConfig, policy: Box<dyn hcq_core::Policy>, gap: Nanos) -> SimReport {
    simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(gap, 99))],
        policy,
        cfg,
    )
    .unwrap()
}

fn ewma_adapt() -> AdaptConfig {
    AdaptConfig {
        enabled: true,
        mode: AdaptMode::Ewma,
        alpha: 0.3,
        cadence: ms(20),
        min_observations: 2,
        refreeze_factor: 1.5,
        publish: true,
    }
}

/// A whole-run observation probe: windowed means, never flushed (the
/// cadence exceeds any run here), never published.
fn probe_adapt() -> AdaptConfig {
    AdaptConfig {
        enabled: true,
        mode: AdaptMode::Windowed,
        cadence: Nanos::from_millis(1 << 40),
        publish: false,
        ..ewma_adapt()
    }
}

// ---------------------------------------------------------------------------
// Adaptation disabled / observe-only: bit-identical decisions
// ---------------------------------------------------------------------------

#[test]
fn disabled_adaptation_changes_nothing() {
    // `SimConfig::new` leaves adaptation disabled; the default config's
    // report must match a run that never mentions the feature, across a
    // couple of seeds.
    for seed in [3, 5] {
        let base = run_with(
            SimConfig::new(400).with_seed(seed),
            PolicyKind::Hnr.build(),
            ms(40),
        );
        let again = run_with(
            SimConfig::new(400).with_seed(seed),
            PolicyKind::Hnr.build(),
            ms(40),
        );
        assert_eq!(base.qos, again.qos);
        assert_eq!(base.end_time, again.end_time);
        assert_eq!(again.statics_updates, 0);
        assert_eq!(again.domain_refreezes, 0);
        assert_eq!(again.policy_switches, 0);
        assert!(again.estimates.is_none());
    }
}

#[test]
fn observe_only_probe_is_decision_identical() {
    // publish = false: the estimator watches every execution but never
    // feeds the policy, so scheduling is identical to a non-adaptive run —
    // while the report still carries the harvested estimates.
    let plain = run_with(
        SimConfig::new(600)
            .with_seed(11)
            .with_cost_miscalibration(0.5, 42),
        PolicyKind::Bsd.build(),
        ms(30),
    );
    let probed = run_with(
        SimConfig::new(600)
            .with_seed(11)
            .with_cost_miscalibration(0.5, 42)
            .with_adaptation(probe_adapt()),
        PolicyKind::Bsd.build(),
        ms(30),
    );
    assert_eq!(plain.qos, probed.qos);
    assert_eq!(plain.end_time, probed.end_time);
    assert_eq!(plain.emitted, probed.emitted);
    assert_eq!(probed.statics_updates, 0, "observe-only must not publish");
    let est = probed.estimates.expect("probe run reports estimates");
    assert_eq!(est.len(), 8);
    assert!(est.iter().all(|s| s.avg_cost_ns >= 1.0));
}

// ---------------------------------------------------------------------------
// Convergence: estimates approach the true (drifted/miscalibrated) statics
// ---------------------------------------------------------------------------

/// One query, selectivity 1 (every execution emits exactly one tuple), no
/// jitter: the only uncertainty is the cost scale we inject.
fn single_query_plan(cost: Nanos) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(cost, 1.0)
            .build()
            .unwrap(),
    );
    plan
}

#[test]
fn ewma_estimate_converges_to_the_true_cost() {
    // The plan says 4 ms; a drift step in force from t = 0 makes every
    // execution really cost 8 ms. The EWMA must unlearn the plan value.
    let r = simulate(
        &single_query_plan(ms(4)),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(20), 7))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(200)
            .with_seed(2)
            .with_drift(vec![DriftStep {
                at: Nanos::ZERO,
                cost_factor: 2.0,
                selectivity_factor: 1.0,
            }])
            .with_adaptation(AdaptConfig {
                publish: false,
                ..ewma_adapt()
            }),
    )
    .unwrap();
    let est = r.estimates.expect("adaptive run reports estimates");
    let cost_ms = est[0].avg_cost_ns / 1e6;
    assert!(
        (cost_ms - 8.0).abs() < 0.08,
        "estimated {cost_ms} ms, true 8 ms"
    );
    assert!(
        (est[0].selectivity - 1.0).abs() < 1e-9,
        "unit selectivity is exactly 1: {}",
        est[0].selectivity
    );
}

#[test]
fn windowed_estimates_track_the_active_phase() {
    // On-off drift: 4 ms until 2 s, then 12 ms. Windowed estimation with a
    // short cadence forgets the early phase; the final open window sees
    // only the late one.
    let r = simulate(
        &single_query_plan(ms(4)),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(20), 7))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(400)
            .with_seed(2)
            .with_drift(vec![DriftStep {
                at: Nanos::from_millis(2_000),
                cost_factor: 3.0,
                selectivity_factor: 1.0,
            }])
            .with_adaptation(AdaptConfig {
                mode: AdaptMode::Windowed,
                cadence: ms(100),
                publish: false,
                ..ewma_adapt()
            }),
    )
    .unwrap();
    let est = r.estimates.expect("adaptive run reports estimates");
    let cost_ms = est[0].avg_cost_ns / 1e6;
    assert!(
        (cost_ms - 12.0).abs() < 0.5,
        "final window should reflect the 12 ms phase, got {cost_ms} ms"
    );
}

// ---------------------------------------------------------------------------
// Closed loop: adaptive clustered BSD under seeded miscalibration
// ---------------------------------------------------------------------------

fn clustered() -> Box<dyn hcq_core::Policy> {
    Box::new(ClusteredBsdPolicy::new(ClusterConfig::logarithmic(3)))
}

#[test]
fn adaptive_clustered_bsd_is_never_worse_under_miscalibration() {
    // Heterogeneous per-operator miscalibration (each operator gets its own
    // persistent factor, magnitude 3): the frozen priorities are wrong.
    // Closing the loop must not lose QoS, and the estimator must actually
    // publish along the way.
    let cfg = |adapt: bool| {
        let mut c = SimConfig::new(1_500)
            .with_seed(6)
            .with_cost_miscalibration(3.0, 99);
        if adapt {
            // A damped loop: the EWMA smooths per-cadence window means, so
            // a small alpha trades convergence speed for stability.
            c = c.with_adaptation(AdaptConfig {
                alpha: 0.1,
                cadence: ms(50),
                ..ewma_adapt()
            });
        }
        c
    };
    for gap in [14u64, 20, 25, 30, 40] {
        let stale = run_with(cfg(false), clustered(), ms(gap));
        let adaptive = run_with(cfg(true), clustered(), ms(gap));
        assert!(
            adaptive.statics_updates > 0,
            "gap {gap}ms: loop never closed"
        );
        assert!(
            adaptive.qos.avg_slowdown <= stale.qos.avg_slowdown * 1.02,
            "gap {gap}ms: adaptive avg slowdown {:.2} worse than stale {:.2}",
            adaptive.qos.avg_slowdown,
            stale.qos.avg_slowdown
        );
        assert!(
            adaptive.qos.rms_slowdown() <= stale.qos.rms_slowdown() * 1.02,
            "gap {gap}ms: adaptive rms slowdown {:.2} worse than stale {:.2}",
            adaptive.qos.rms_slowdown(),
            stale.qos.rms_slowdown()
        );
    }
}

#[test]
fn adaptive_runs_are_deterministic() {
    let run = || {
        run_with(
            SimConfig::new(1_000)
                .with_seed(9)
                .with_cost_miscalibration(2.0, 17)
                .with_adaptation(ewma_adapt()),
            clustered(),
            ms(14),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.statics_updates, b.statics_updates);
    assert_eq!(a.domain_refreezes, b.domain_refreezes);
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn domain_refreeze_fires_when_estimates_leave_the_frozen_span() {
    // A 100x cost drift pushes every re-estimated Φ far outside the span
    // frozen at registration; the engine must ask the policy to refreeze.
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(40), 99))],
        clustered(),
        SimConfig::new(800)
            .with_seed(4)
            .with_drift(vec![DriftStep {
                at: Nanos::ZERO,
                cost_factor: 100.0,
                selectivity_factor: 1.0,
            }])
            .with_adaptation(ewma_adapt()),
    )
    .unwrap();
    assert!(r.statics_updates > 0, "{r:?}");
    assert!(r.domain_refreezes > 0, "{r:?}");
}

// ---------------------------------------------------------------------------
// Drifting statics as a fault model
// ---------------------------------------------------------------------------

#[test]
fn drift_changes_the_workload_realization() {
    let base = run_with(
        SimConfig::new(500).with_seed(5),
        PolicyKind::Hnr.build(),
        ms(40),
    );
    // Doubling every cost mid-run must cost virtual time.
    let slowed = run_with(
        SimConfig::new(500).with_seed(5).with_drift(vec![DriftStep {
            at: Nanos::from_millis(1_000),
            cost_factor: 2.0,
            selectivity_factor: 1.0,
        }]),
        PolicyKind::Hnr.build(),
        ms(40),
    );
    assert!(slowed.busy_time > base.busy_time, "{slowed:?}");
    // Zeroing selectivity mid-run must suppress emissions after the step.
    let muted = run_with(
        SimConfig::new(500).with_seed(5).with_drift(vec![DriftStep {
            at: Nanos::from_millis(1_000),
            cost_factor: 1.0,
            selectivity_factor: 0.0,
        }]),
        PolicyKind::Hnr.build(),
        ms(40),
    );
    assert!(muted.emitted < base.emitted, "{muted:?}");
    assert!(muted.emitted > 0, "pre-drift phase still emits");
}

#[test]
fn drift_preserves_work_conservation() {
    for kind in PolicyKind::ALL {
        let r = run_with(
            SimConfig::new(400).with_seed(8).with_drift(vec![
                DriftStep {
                    at: Nanos::from_millis(500),
                    cost_factor: 2.5,
                    selectivity_factor: 0.6,
                },
                DriftStep {
                    at: Nanos::from_millis(4_000),
                    cost_factor: 0.5,
                    selectivity_factor: 1.4,
                },
            ]),
            kind.build(),
            ms(40),
        );
        assert_eq!(
            r.arrivals * 8,
            r.emitted + r.dropped + r.shed + r.expired + r.pending_end as u64,
            "conservation under drift for {}: {r:?}",
            kind.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Meta-scheduler: policy switching under sustained overload
// ---------------------------------------------------------------------------

fn switching_governor() -> GovernorConfig {
    GovernorConfig {
        enabled: true,
        cadence: ms(50),
        min_dwell: ms(200),
        escalate_pending: 48,
        deescalate_pending: 8,
        escalate_share: 0.5,
        deescalate_share: 0.1,
        capacity: 16,
        watermark: 32,
        switch_policy: true,
        overload_policy: PolicyKind::Lsf,
        switch_share: 0.6,
        return_share: 0.15,
        switch_sustain: 2,
    }
}

#[test]
fn sustained_overload_switches_the_policy() {
    // 12 ms gaps saturate the 8-query workload: the overload share pins at
    // 1, the streak completes, and the meta-scheduler engages LSF.
    let (r, sink) = simulate_traced(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(12), 4))],
        PolicyKind::Hnr.build(),
        SimConfig::new(2_000)
            .with_seed(1)
            .with_governor(switching_governor()),
        VecTrace::new(),
    )
    .unwrap();
    assert!(r.policy_switches > 0, "{r:?}");
    let switches: Vec<_> = sink
        .events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::PolicySwitch {
                from, to, share, ..
            } => Some((from, to, share)),
            _ => None,
        })
        .collect();
    assert_eq!(switches.len() as u64, r.policy_switches);
    assert_eq!(switches[0].0, "HNR");
    assert_eq!(switches[0].1, "LSF");
    assert!(switches[0].2 >= 0.6, "engage share {}", switches[0].2);
    // Work conservation survives the swap (the replayed backlog is neither
    // duplicated nor lost).
    assert_eq!(
        r.arrivals * 8,
        r.emitted + r.dropped + r.shed + r.expired + r.pending_end as u64,
        "conservation across policy switches: {r:?}"
    );
}

#[test]
fn policy_switching_is_deterministic() {
    let run = || {
        run_with(
            SimConfig::new(2_000)
                .with_seed(1)
                .with_governor(switching_governor()),
            PolicyKind::Hnr.build(),
            ms(12),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.policy_switches, b.policy_switches);
    assert_eq!(a.governor_transitions, b.governor_transitions);
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn round_trip_switch_resets_the_standby_mirror() {
    // Regression: FCFS mirrors every enqueue in a FIFO. When the
    // meta-scheduler engages LSF and later returns, the standby FCFS is
    // re-registered and the live backlog replayed — if `on_register` kept
    // the pre-switch FIFO entries (as it once did), the replay would
    // double-count them and `select` would pick a unit with an empty
    // queue. Bursty arrivals force the round trip: overload during bursts
    // engages, silence disengages with backlog still queued.
    use hcq_streams::{OnOffConfig, OnOffSource};
    let cfg = OnOffConfig {
        on_gap: ms(2),
        mean_on: ms(300),
        mean_off: ms(500),
        alpha: 1.6,
        max_sojourn_factor: 20.0,
    };
    let mut g = switching_governor();
    g.min_dwell = ms(100);
    g.return_share = 0.2;
    let r = simulate(
        &small_workload(),
        &StreamRates::none(),
        vec![Box::new(OnOffSource::new(cfg, 11))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(3_000).with_seed(3).with_governor(g),
    )
    .unwrap();
    assert!(
        r.policy_switches >= 2,
        "need an engage and a return to exercise the resync: {r:?}"
    );
    assert_eq!(
        r.arrivals * 8,
        r.emitted + r.dropped + r.shed + r.expired + r.pending_end as u64,
        "conservation across the round trip: {r:?}"
    );
}

#[test]
fn switching_to_the_already_running_policy_is_a_no_op() {
    // Base policy == overload policy: the meta-scheduler must not swap a
    // policy for itself, however overloaded the run gets.
    let mut g = switching_governor();
    g.overload_policy = PolicyKind::Hnr;
    let r = run_with(
        SimConfig::new(2_000).with_seed(1).with_governor(g),
        PolicyKind::Hnr.build(),
        ms(12),
    );
    assert_eq!(r.policy_switches, 0, "{r:?}");
}

#[test]
fn governed_adaptive_closed_loop_never_worse_than_worst_static() {
    // The full feedback stack — governor rungs, policy switching, and
    // statistics adaptation — must not lose to the worst static admission
    // mode on a calibrated overloaded workload.
    use hcq_engine::AdmissionMode;
    let governed = run_with(
        SimConfig::new(2_000)
            .with_seed(1)
            .with_governor(switching_governor())
            .with_adaptation(ewma_adapt()),
        PolicyKind::Hnr.build(),
        ms(12),
    );
    let worst = [
        run_with(
            SimConfig::new(2_000).with_seed(1),
            PolicyKind::Hnr.build(),
            ms(12),
        ),
        run_with(
            SimConfig::new(2_000)
                .with_seed(1)
                .with_admission(AdmissionMode::DropTail, 16),
            PolicyKind::Hnr.build(),
            ms(12),
        ),
        run_with(
            SimConfig::new(2_000)
                .with_seed(1)
                .with_admission(AdmissionMode::QosShed, 16)
                .with_watermark(32),
            PolicyKind::Hnr.build(),
            ms(12),
        ),
    ]
    .iter()
    .map(|r| r.qos.avg_slowdown)
    .fold(0.0f64, f64::max);
    assert!(
        governed.qos.avg_slowdown <= worst * 1.05,
        "closed loop {} vs worst static {}",
        governed.qos.avg_slowdown,
        worst
    );
}

// ---------------------------------------------------------------------------
// Governor de-escalation: complete-window gate (regression)
// ---------------------------------------------------------------------------

#[test]
fn deescalation_waits_for_a_complete_window() {
    // One 200 ms query, six tuples at the start, cadence == min_dwell ==
    // 50 ms: the first execution overshoots four decision boundaries. The
    // first caught-up boundary sees the accrued overload and escalates; the
    // trailing boundaries see an empty window *at the same clock*. Before
    // the complete-window gate they read that empty window as calm and
    // de-escalated on the spot — an escalate/de-escalate flap within one
    // batch. Pin: a de-escalation never shares its clock stamp with the
    // transition it reverses, and only fires a full cadence after it.
    let mut plan = GlobalPlan::default();
    plan.add_query(
        QueryBuilder::on(StreamId::new(0))
            .select(ms(200), 1.0)
            .build()
            .unwrap(),
    );
    let g = GovernorConfig {
        enabled: true,
        cadence: ms(50),
        min_dwell: ms(50),
        escalate_pending: 100,
        deescalate_pending: 8,
        escalate_share: 0.5,
        deescalate_share: 0.1,
        capacity: 32,
        watermark: 4,
        ..GovernorConfig::default()
    };
    let (r, sink) = simulate_traced(
        &plan,
        &StreamRates::none(),
        vec![Box::new(PoissonSource::new(ms(5), 3))],
        PolicyKind::Fcfs.build(),
        SimConfig::new(6).with_seed(1).with_governor(g),
        VecTrace::new(),
    )
    .unwrap();
    let transitions: Vec<(Nanos, &str, &str)> = sink
        .events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::GovernorTransition { at, from, to, .. } => Some((at, from, to)),
            _ => None,
        })
        .collect();
    assert!(
        !transitions.is_empty(),
        "the accrued overload must escalate: {r:?}"
    );
    assert_eq!(transitions[0].1, "Unbounded");
    assert_eq!(transitions[0].2, "DropTail");
    for w in transitions.windows(2) {
        let (prev_at, _, prev_to) = w[0];
        let (at, from, _) = w[1];
        if from == prev_to && at == prev_at {
            panic!("flap: transition out of {from} at the same instant it was entered");
        }
        assert!(
            at.saturating_since(prev_at) >= ms(50),
            "transitions {prev_at:?} -> {at:?} closer than one cadence"
        );
    }
}
