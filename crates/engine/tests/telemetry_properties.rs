//! Randomized invariants of the telemetry subsystem: for arbitrary small
//! workloads, arrival patterns, policies, and overload settings, sampling
//! must (a) observe without steering — a monitored run's report is identical
//! to the unmonitored run's, (b) reconcile — the final snapshot's counters
//! equal the report's totals exactly, and (c) be deterministic — the JSONL
//! snapshot stream is byte-stable across runs and sample timestamps fall on
//! cadence boundaries (except the closing end-of-run snapshot).

use hcq_common::{Nanos, StreamId};
use hcq_core::PolicyKind;
use hcq_engine::{
    simulate, simulate_monitored, AdmissionMode, JsonlTelemetry, SimConfig, SimReport, VecTelemetry,
};
use hcq_metrics::TelemetrySnapshot;
use hcq_plan::{GlobalPlan, QueryBuilder, StreamRates};
use hcq_streams::TraceReplay;
use proptest::prelude::*;

/// Random single-stream chains: per query, 1–4 operators with ms costs and
/// coarse selectivities.
fn plan_strategy() -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((1u64..=16, 0.1f64..=1.0), 1..=4),
        1..=6,
    )
}

/// Random arrival gaps (ms); replayed identically for every run.
fn arrivals_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=60, 5..=60)
}

fn build_plan(chains: &[Vec<(u64, f64)>]) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    for chain in chains {
        let mut b = QueryBuilder::on(StreamId::new(0));
        for &(cost, sel) in chain {
            b = b.map(Nanos::from_millis(cost), sel);
        }
        plan.add_query(b.build().expect("valid chain"));
    }
    plan
}

fn arrival_times(gaps: &[u64]) -> Vec<Nanos> {
    let mut t = Nanos::ZERO;
    gaps.iter()
        .map(|&g| {
            t += Nanos::from_millis(g);
            t
        })
        .collect()
}

fn config(arrivals: u64, seed: u64, overload: bool, cadence_ms: u64) -> SimConfig {
    let cfg = SimConfig::new(arrivals)
        .with_seed(seed)
        .with_telemetry_cadence(Nanos::from_millis(cadence_ms));
    if overload {
        cfg.with_admission(AdmissionMode::QosShed, 2)
            .with_watermark(4)
    } else {
        cfg
    }
}

fn run_monitored(
    chains: &[Vec<(u64, f64)>],
    gaps: &[u64],
    kind: PolicyKind,
    seed: u64,
    overload: bool,
    cadence_ms: u64,
) -> (SimReport, Vec<TelemetrySnapshot>) {
    let plan = build_plan(chains);
    let arrivals = arrival_times(gaps);
    let n = arrivals.len() as u64;
    let (report, sink) = simulate_monitored(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        config(n, seed, overload, cadence_ms),
        VecTelemetry::new(),
    )
    .unwrap();
    (report, sink.samples)
}

fn run_plain(
    chains: &[Vec<(u64, f64)>],
    gaps: &[u64],
    kind: PolicyKind,
    seed: u64,
    overload: bool,
    cadence_ms: u64,
) -> SimReport {
    let plan = build_plan(chains);
    let arrivals = arrival_times(gaps);
    let n = arrivals.len() as u64;
    simulate(
        &plan,
        &StreamRates::none(),
        vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
        kind.build(),
        config(n, seed, overload, cadence_ms),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Telemetry observes, never steers: the monitored report matches the
    /// unmonitored one in every field that drives the exhibits.
    #[test]
    fn telemetry_never_changes_the_simulation(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
        overload in any::<bool>(),
        cadence_ms in 1u64..=300,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let (monitored, _) = run_monitored(&chains, &gaps, kind, seed, overload, cadence_ms);
        let plain = run_plain(&chains, &gaps, kind, seed, overload, cadence_ms);
        prop_assert_eq!(monitored.qos, plain.qos);
        prop_assert_eq!(monitored.arrivals, plain.arrivals);
        prop_assert_eq!(monitored.emitted, plain.emitted);
        prop_assert_eq!(monitored.dropped, plain.dropped);
        prop_assert_eq!(monitored.shed, plain.shed);
        prop_assert_eq!(monitored.sched_points, plain.sched_points);
        prop_assert_eq!(monitored.end_time, plain.end_time);
        prop_assert_eq!(monitored.overhead, plain.overhead);
        prop_assert_eq!(monitored.busy_time, plain.busy_time);
        prop_assert_eq!(monitored.overload_time, plain.overload_time);
        prop_assert_eq!(monitored.pending_end, plain.pending_end);
        prop_assert_eq!(monitored.peak_pending, plain.peak_pending);
    }

    /// The final snapshot's counters equal the report's totals exactly, and
    /// its pending/peak gauges match the report's end-of-run state.
    #[test]
    fn final_snapshot_reconciles_with_report(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
        overload in any::<bool>(),
        cadence_ms in 1u64..=300,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let (report, samples) = run_monitored(&chains, &gaps, kind, seed, overload, cadence_ms);
        let last = samples.last().expect("a final snapshot always exists");
        prop_assert_eq!(last.at, report.end_time);
        prop_assert_eq!(last.counter("hcq_arrivals_total"), Some(report.arrivals));
        prop_assert_eq!(last.counter("hcq_emitted_total"), Some(report.emitted));
        prop_assert_eq!(last.counter("hcq_dropped_total"), Some(report.dropped));
        prop_assert_eq!(last.counter("hcq_shed_total"), Some(report.shed));
        prop_assert_eq!(
            last.counter("hcq_sched_points_total"),
            Some(report.sched_points)
        );
        prop_assert_eq!(
            last.counter("hcq_busy_time_ns_total"),
            Some(report.busy_time.as_nanos())
        );
        prop_assert_eq!(
            last.counter("hcq_overload_time_ns_total"),
            Some(report.overload_time.as_nanos())
        );
        prop_assert_eq!(
            last.gauge("hcq_pending_tuples"),
            Some(report.pending_end as f64)
        );
        prop_assert_eq!(
            last.gauge("hcq_peak_pending_tuples"),
            Some(report.peak_pending as f64)
        );
        // Emission summaries across all windows partition the emissions.
        let windowed: u64 = samples
            .iter()
            .map(|s| s.summary("hcq_slowdown").expect("registered").count)
            .sum();
        prop_assert_eq!(windowed, report.emitted);
    }

    /// Samples are stamped on cadence boundaries (except the closing one),
    /// strictly ordered in time-then-sequence, and the stream is
    /// byte-deterministic across repeated runs.
    #[test]
    fn snapshot_stream_is_cadenced_and_byte_deterministic(
        chains in plan_strategy(),
        gaps in arrivals_strategy(),
        kind_idx in 0usize..PolicyKind::ALL.len(),
        seed in 0u64..50,
        cadence_ms in 1u64..=300,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let (_, samples) = run_monitored(&chains, &gaps, kind, seed, false, cadence_ms);
        let cadence = Nanos::from_millis(cadence_ms);
        for (i, s) in samples.iter().enumerate() {
            prop_assert_eq!(s.seq, i as u64 + 1);
            if i + 1 < samples.len() {
                prop_assert_eq!(
                    s.at.as_nanos() % cadence.as_nanos(),
                    0,
                    "non-final sample off the cadence grid at {:?}",
                    s.at
                );
            }
            if i > 0 {
                prop_assert!(samples[i - 1].at <= s.at, "samples moved backwards");
            }
        }
        let render = || -> Vec<u8> {
            let plan = build_plan(&chains);
            let arrivals = arrival_times(&gaps);
            let n = arrivals.len() as u64;
            let (_, sink) = simulate_monitored(
                &plan,
                &StreamRates::none(),
                vec![Box::new(TraceReplay::from_arrivals(arrivals).unwrap())],
                kind.build(),
                config(n, seed, false, cadence_ms),
                JsonlTelemetry::new(Vec::new()),
            )
            .unwrap();
            sink.finish().unwrap()
        };
        prop_assert_eq!(render(), render());
    }
}
