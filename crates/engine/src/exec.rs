//! The `Policy`/`Executor` boundary: the pure decision core shared by the
//! virtual-time [`Simulator`](crate::Simulator) and the wall-clock
//! `hcq-runtime` executor.
//!
//! Everything here is a pure function of the workload realization — tuple
//! identity, operator position, and the run seed — never of scheduling
//! order, wall-clock time, or which thread executes. That property is what
//! makes the runtime ⇄ simulator differential harness possible: any
//! executor that feeds the same arrivals through these functions produces
//! the same emitted-tuple multiset, no matter how its threads interleave.
//!
//! The *scheduling* half of the boundary is [`hcq_core::Policy`] +
//! [`hcq_core::QueueView`], unchanged: both executors own per-unit FIFO
//! queues, call `on_enqueue`/`on_shed` as tuples move, and `select` to pick
//! the next unit. This module is the *execution* half — what happens to a
//! tuple once a policy has picked it, and which tuple QoS-aware admission
//! sacrifices under overload.

use hcq_common::{det, Nanos, TupleId};
use hcq_core::{PriorityKey, UnitId};
use hcq_plan::OperatorSpec;

use crate::tuple::SimTuple;

/// The §8 extra attribute carried by every arrival: uniform in `[1, 100]`,
/// a pure function of `(seed, arrival ordinal)` so key-predicate outcomes
/// correlate across queries sharing the attribute.
pub fn arrival_key(seed: u64, id: TupleId) -> u64 {
    det::unit_range(det::splitmix64(det::mix2(seed, id.raw())), 1, 100)
}

/// Key-predicate select: pass iff `key ≤ s·100` (the §8 predicate-over-an-
/// attribute realization). Takes the *effective* selectivity so drifting
/// statics shift the threshold.
pub fn key_passes(selectivity: f64, t: &SimTuple) -> bool {
    t.key <= (selectivity * 100.0).round() as u64
}

/// Outcome of one unary operator on one tuple at *effective* selectivity
/// `s`: key predicates consult the tuple's attribute, everything else flips
/// a coin that is a pure function of `(tuple, operator, seed)`.
pub fn unary_passes(
    seed: u64,
    query: usize,
    op: usize,
    spec: &OperatorSpec,
    s: f64,
    t: &SimTuple,
) -> bool {
    if spec.kind.is_key_predicate() {
        key_passes(s, t)
    } else {
        det::coin(
            det::mix3(t.id.raw(), det::mix2(query as u64, op as u64), seed),
            s,
        )
    }
}

/// Join-predicate coin for a candidate pair: symmetric in the pair (the
/// probing order is policy-dependent; the outcome must not be).
pub fn pair_passes(
    seed: u64,
    query: usize,
    op: usize,
    selectivity: f64,
    a: &SimTuple,
    b: &SimTuple,
) -> bool {
    let lo = a.id.raw().min(b.id.raw());
    let hi = a.id.raw().max(b.id.raw());
    det::coin(
        det::mix3(lo, hi, det::mix3(query as u64, op as u64, seed)),
        selectivity,
    )
}

/// §5.1.2 slowdown of an emission at `now`:
/// `H = 1 + (D_actual − D_ideal)/T`, clamped at 1 when the tuple beat its
/// nominal ideal departure (possible under cost jitter).
pub fn slowdown(now: Nanos, ideal_depart: Nanos, ideal_time: Nanos) -> f64 {
    if now > ideal_depart {
        1.0 + (now - ideal_depart).ratio(ideal_time)
    } else {
        1.0
    }
}

/// QoS-aware shed-victim selection: among the non-empty units, the one with
/// the lowest static HNR priority `S/(C̄·T)` (ties broken by lower unit
/// id), provided it is valued strictly below — or tied with and id-before —
/// the arriving unit. `None` means the arriving unit is itself the least
/// valuable and the arrival should be rejected instead.
pub fn shed_victim(nonempty: &[UnitId], shed_priority: &[f64], arriving: UnitId) -> Option<UnitId> {
    let mut victim = arriving;
    let mut lowest = PriorityKey(shed_priority[arriving as usize]);
    for &u in nonempty {
        let p = PriorityKey(shed_priority[u as usize]);
        if p < lowest || (p == lowest && u < victim) {
            victim = u;
            lowest = p;
        }
    }
    (victim != arriving).then_some(victim)
}

/// Fold one emission into an ordering-insensitive fingerprint.
///
/// The differential harness compares runtime and simulator on the
/// *multiset* of emissions `(query, lineage)` — commutative XOR/ADD over a
/// per-emission hash is equal iff the multisets are (up to hash collision),
/// regardless of emission order, which threads interleave freely.
pub fn fold_emission(acc: (u64, u64), query: usize, lineage: TupleId) -> (u64, u64) {
    let h = det::mix3(lineage.raw(), query as u64, 0x00D1_FF00);
    (acc.0 ^ h, acc.1.wrapping_add(h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(id: u64, key: u64) -> SimTuple {
        SimTuple {
            id: TupleId::new(id),
            arrival: Nanos::ZERO,
            ts: Nanos::ZERO,
            key,
            ideal_depart: Nanos::from_millis(10),
            lineage: TupleId::new(id),
        }
    }

    #[test]
    fn key_predicate_thresholds() {
        assert!(key_passes(0.5, &tuple(1, 50)));
        assert!(!key_passes(0.5, &tuple(1, 51)));
        assert!(key_passes(1.0, &tuple(1, 100)));
    }

    #[test]
    fn pair_coin_is_symmetric() {
        let (a, b) = (tuple(3, 10), tuple(9, 20));
        for sel in [0.1, 0.5, 0.9] {
            assert_eq!(
                pair_passes(7, 0, 1, sel, &a, &b),
                pair_passes(7, 0, 1, sel, &b, &a)
            );
        }
    }

    #[test]
    fn slowdown_clamps_at_one() {
        let t = Nanos::from_millis(10);
        assert_eq!(
            slowdown(Nanos::from_millis(5), Nanos::from_millis(8), t),
            1.0
        );
        let s = slowdown(Nanos::from_millis(13), Nanos::from_millis(8), t);
        assert!((s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn shed_victim_prefers_lowest_priority_then_lowest_id() {
        let pri = [3.0, 1.0, 1.0, 0.5];
        // Unit 3 is cheapest among the pending.
        assert_eq!(shed_victim(&[1, 2, 3], &pri, 0), Some(3));
        // Tie between 1 and 2 breaks to the lower id.
        assert_eq!(shed_victim(&[2, 1], &pri, 0), Some(1));
        // The arriving unit is the least valuable: reject the arrival.
        assert_eq!(shed_victim(&[0, 1], &pri, 3), None);
        // Tied with the arriving unit, a higher-id pending unit is spared.
        assert_eq!(shed_victim(&[2], &pri, 1), None);
    }

    #[test]
    fn emission_fingerprint_is_order_insensitive() {
        let a = [(0usize, 1u64), (1, 2), (0, 3)];
        let b = [(0usize, 3u64), (0, 1), (1, 2)];
        let fold = |set: &[(usize, u64)]| {
            set.iter().fold((0, 0), |acc, &(q, l)| {
                fold_emission(acc, q, TupleId::new(l))
            })
        };
        assert_eq!(fold(&a), fold(&b));
        // A different multiset fingerprints differently.
        assert_ne!(fold(&a), fold(&b[..2]));
    }
}
