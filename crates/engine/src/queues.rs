//! Per-unit FIFO input queues with an O(1) non-empty index.

use std::collections::VecDeque;

use hcq_common::Nanos;
use hcq_core::{QueueView, UnitId};

use crate::tuple::SimTuple;

/// The engine's queue state; implements [`QueueView`] for policies.
#[derive(Debug, Default)]
pub struct UnitQueues {
    queues: Vec<VecDeque<SimTuple>>,
    /// Unordered list of units with pending tuples.
    nonempty: Vec<UnitId>,
    /// `pos[u] = i+1` when `nonempty[i] == u`; 0 when absent.
    pos: Vec<u32>,
    pending: usize,
}

impl UnitQueues {
    /// Queues for `n` units.
    ///
    /// Each queue gets a small initial capacity and keeps whatever it grows
    /// to for the rest of the run (`pop` never shrinks), so after a brief
    /// warm-up the steady-state hot path performs no queue allocations.
    pub fn new(n: usize) -> Self {
        UnitQueues {
            queues: (0..n).map(|_| VecDeque::with_capacity(4)).collect(),
            nonempty: Vec::with_capacity(n),
            pos: vec![0; n],
            pending: 0,
        }
    }

    /// Enqueue a tuple.
    pub fn push(&mut self, unit: UnitId, tuple: SimTuple) {
        let q = &mut self.queues[unit as usize];
        if q.is_empty() {
            self.nonempty.push(unit);
            self.pos[unit as usize] = self.nonempty.len() as u32;
        }
        q.push_back(tuple);
        self.pending += 1;
    }

    /// Dequeue the unit's head tuple.
    ///
    /// # Panics
    /// Panics if the queue is empty (a policy/engine contract violation).
    pub fn pop(&mut self, unit: UnitId) -> SimTuple {
        let q = &mut self.queues[unit as usize];
        let t = q.pop_front().expect("pop from empty unit queue");
        self.pending -= 1;
        if q.is_empty() {
            // Swap-remove from the non-empty index.
            let i = (self.pos[unit as usize] - 1) as usize;
            let last = self.nonempty.pop().expect("index tracks nonempty");
            if last != unit {
                self.nonempty[i] = last;
                self.pos[last as usize] = i as u32 + 1;
            }
            self.pos[unit as usize] = 0;
        }
        t
    }

    /// Total pending tuples across all units.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when nothing is pending anywhere.
    pub fn all_empty(&self) -> bool {
        self.pending == 0
    }
}

impl QueueView for UnitQueues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }

    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|t| t.arrival)
    }

    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::TupleId;
    use proptest::prelude::*;

    fn tuple(id: u64, arrival_ms: u64) -> SimTuple {
        SimTuple {
            id: TupleId::new(id),
            arrival: Nanos::from_millis(arrival_ms),
            ts: Nanos::from_millis(arrival_ms),
            key: 1,
            ideal_depart: Nanos::from_millis(arrival_ms),
        }
    }

    #[test]
    fn fifo_order_and_index() {
        let mut q = UnitQueues::new(3);
        assert!(q.all_empty());
        q.push(1, tuple(1, 10));
        q.push(1, tuple(2, 20));
        q.push(0, tuple(3, 30));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.len(1), 2);
        assert_eq!(q.head_arrival(1), Some(Nanos::from_millis(10)));
        let mut ne: Vec<_> = q.nonempty().to_vec();
        ne.sort();
        assert_eq!(ne, vec![0, 1]);
        assert_eq!(q.pop(1).id, TupleId::new(1));
        assert_eq!(q.head_arrival(1), Some(Nanos::from_millis(20)));
        assert_eq!(q.pop(1).id, TupleId::new(2));
        assert_eq!(q.nonempty(), &[0]);
        q.pop(0);
        assert!(q.all_empty());
        assert!(q.nonempty().is_empty());
    }

    #[test]
    #[should_panic(expected = "empty unit queue")]
    fn popping_empty_panics() {
        let mut q = UnitQueues::new(1);
        let _ = q.pop(0);
    }

    proptest! {
        /// The non-empty index always matches the actual queue contents.
        #[test]
        fn nonempty_index_consistent(ops in proptest::collection::vec((0u32..6, any::<bool>()), 1..200)) {
            let mut q = UnitQueues::new(6);
            let mut id = 0u64;
            for (unit, is_push) in ops {
                if is_push || q.len(unit) == 0 {
                    id += 1;
                    q.push(unit, tuple(id, id));
                } else {
                    q.pop(unit);
                }
                let expect: Vec<u32> = (0..6).filter(|&u| q.len(u) > 0).collect();
                let mut got = q.nonempty().to_vec();
                got.sort();
                prop_assert_eq!(got, expect);
                let total: usize = (0..6).map(|u| q.len(u)).sum();
                prop_assert_eq!(total, q.pending());
            }
        }
    }
}
