//! Per-unit FIFO input queues with an O(1) non-empty index.

use std::collections::VecDeque;

use hcq_common::{EngineError, Nanos};
use hcq_core::{QueueView, UnitId};

use crate::tuple::SimTuple;

/// The engine's queue state; implements [`QueueView`] for policies.
#[derive(Debug, Default)]
pub struct UnitQueues {
    queues: Vec<VecDeque<SimTuple>>,
    /// Unordered list of units with pending tuples.
    nonempty: Vec<UnitId>,
    /// `pos[u] = i+1` when `nonempty[i] == u`; 0 when absent.
    pos: Vec<u32>,
    pending: usize,
    /// Per-unit capacity advertised through [`QueueView`]; `None` means
    /// unbounded. The bound is advisory — admission control lives in the
    /// simulator, which may deliberately overfill a queue (QoS shedding
    /// keeps the *global* load bounded, not each queue).
    capacity: Option<usize>,
}

impl UnitQueues {
    /// Unbounded queues for `n` units.
    ///
    /// Each queue gets a small initial capacity and keeps whatever it grows
    /// to for the rest of the run (`pop` never shrinks), so after a brief
    /// warm-up the steady-state hot path performs no queue allocations.
    pub fn new(n: usize) -> Self {
        UnitQueues {
            queues: (0..n).map(|_| VecDeque::with_capacity(4)).collect(),
            nonempty: Vec::with_capacity(n),
            pos: vec![0; n],
            pending: 0,
            capacity: None,
        }
    }

    /// Queues for `n` units advertising a per-unit capacity bound.
    pub fn bounded(n: usize, capacity: usize) -> Self {
        let mut q = UnitQueues::new(n);
        q.capacity = Some(capacity);
        q
    }

    /// Enqueue a tuple.
    pub fn push(&mut self, unit: UnitId, tuple: SimTuple) {
        let q = &mut self.queues[unit as usize];
        if q.is_empty() {
            self.nonempty.push(unit);
            self.pos[unit as usize] = self.nonempty.len() as u32;
        }
        q.push_back(tuple);
        self.pending += 1;
    }

    /// Remove `unit` from the non-empty index once its queue has drained.
    /// Swap-remove: O(1), order not preserved.
    ///
    /// Errors (instead of underflowing `pos - 1` or panicking on an empty
    /// index) when the index slot disagrees with the queue contents — state
    /// corruption, not a caller mistake.
    fn unindex(&mut self, unit: UnitId) -> Result<(), EngineError> {
        let corrupt = EngineError::QueueIndexCorrupt { unit };
        let i = self
            .pos
            .get(unit as usize)
            .copied()
            .and_then(|p| p.checked_sub(1))
            .map(|i| i as usize)
            .filter(|&i| self.nonempty.get(i) == Some(&unit))
            .ok_or(corrupt)?;
        let last = self.nonempty.pop().ok_or(corrupt)?;
        if last != unit {
            self.nonempty[i] = last;
            self.pos[last as usize] = i as u32 + 1;
        }
        self.pos[unit as usize] = 0;
        Ok(())
    }

    /// Reconstruct the non-empty index from the queue contents — the
    /// self-healing path taken when [`UnitQueues::unindex`] detects
    /// corruption on a call that cannot surface an error.
    fn rebuild_index(&mut self) {
        self.nonempty.clear();
        self.pos.iter_mut().for_each(|p| *p = 0);
        for (u, q) in self.queues.iter().enumerate() {
            if !q.is_empty() {
                self.nonempty.push(u as UnitId);
                self.pos[u] = self.nonempty.len() as u32;
            }
        }
    }

    /// Dequeue the unit's head tuple.
    ///
    /// Errors (instead of panicking) on an empty queue or an out-of-range
    /// unit id — both are policy/engine contract violations that a robust
    /// engine surfaces as values.
    pub fn pop(&mut self, unit: UnitId) -> Result<SimTuple, EngineError> {
        let q = self
            .queues
            .get_mut(unit as usize)
            .ok_or(EngineError::UnknownUnit {
                unit,
                unit_count: self.pos.len(),
            })?;
        let t = q.pop_front().ok_or(EngineError::EmptyQueuePop { unit })?;
        self.pending -= 1;
        if self.queues[unit as usize].is_empty() {
            self.unindex(unit)?;
        }
        Ok(t)
    }

    /// Remove and return the unit's *tail* tuple (load shedding: the newest
    /// tuple has waited least, so dropping it costs the least sunk QoS).
    /// Returns `None` when the queue is empty.
    pub fn shed_tail(&mut self, unit: UnitId) -> Option<SimTuple> {
        let t = self.queues.get_mut(unit as usize)?.pop_back()?;
        self.pending -= 1;
        if self.queues[unit as usize].is_empty() && self.unindex(unit).is_err() {
            // `shed_tail` has no error channel; a corrupt index slot heals
            // by rebuilding the whole index from the queues.
            self.rebuild_index();
        }
        Some(t)
    }

    /// Corrupt the unit's index slot — regression-test hook for the
    /// [`EngineError::QueueIndexCorrupt`] paths.
    #[cfg(test)]
    fn corrupt_pos_for_tests(&mut self, unit: UnitId, pos: u32) {
        self.pos[unit as usize] = pos;
    }

    /// Iterate the unit's queued tuples in FIFO order (head first) without
    /// disturbing them — the policy-switch resync path reads the full
    /// backlog to replay it into a freshly built policy.
    pub fn tuples(&self, unit: UnitId) -> impl Iterator<Item = &SimTuple> {
        self.queues[unit as usize].iter()
    }

    /// Total pending tuples across all units.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when nothing is pending anywhere.
    pub fn all_empty(&self) -> bool {
        self.pending == 0
    }
}

impl QueueView for UnitQueues {
    fn len(&self, unit: UnitId) -> usize {
        self.queues[unit as usize].len()
    }

    fn head_arrival(&self, unit: UnitId) -> Option<Nanos> {
        self.queues[unit as usize].front().map(|t| t.arrival)
    }

    fn nonempty(&self) -> &[UnitId] {
        &self.nonempty
    }

    fn capacity(&self, _unit: UnitId) -> Option<usize> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::TupleId;
    use proptest::prelude::*;

    fn tuple(id: u64, arrival_ms: u64) -> SimTuple {
        SimTuple {
            id: TupleId::new(id),
            arrival: Nanos::from_millis(arrival_ms),
            ts: Nanos::from_millis(arrival_ms),
            key: 1,
            ideal_depart: Nanos::from_millis(arrival_ms),
            lineage: TupleId::new(id),
        }
    }

    #[test]
    fn fifo_order_and_index() {
        let mut q = UnitQueues::new(3);
        assert!(q.all_empty());
        q.push(1, tuple(1, 10));
        q.push(1, tuple(2, 20));
        q.push(0, tuple(3, 30));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.len(1), 2);
        assert_eq!(q.head_arrival(1), Some(Nanos::from_millis(10)));
        let mut ne: Vec<_> = q.nonempty().to_vec();
        ne.sort();
        assert_eq!(ne, vec![0, 1]);
        assert_eq!(q.pop(1).unwrap().id, TupleId::new(1));
        assert_eq!(q.head_arrival(1), Some(Nanos::from_millis(20)));
        assert_eq!(q.pop(1).unwrap().id, TupleId::new(2));
        assert_eq!(q.nonempty(), &[0]);
        q.pop(0).unwrap();
        assert!(q.all_empty());
        assert!(q.nonempty().is_empty());
    }

    #[test]
    fn popping_empty_is_a_typed_error() {
        let mut q = UnitQueues::new(1);
        assert_eq!(q.pop(0), Err(EngineError::EmptyQueuePop { unit: 0 }));
    }

    #[test]
    fn popping_unknown_unit_is_a_typed_error() {
        let mut q = UnitQueues::new(2);
        assert_eq!(
            q.pop(7),
            Err(EngineError::UnknownUnit {
                unit: 7,
                unit_count: 2
            })
        );
    }

    #[test]
    fn capacity_surfaces_through_queue_view() {
        let mut q = UnitQueues::bounded(2, 2);
        assert_eq!(q.capacity(0), Some(2));
        assert!(!q.is_full(0));
        q.push(0, tuple(1, 1));
        q.push(0, tuple(2, 2));
        assert!(q.is_full(0));
        assert!(!q.is_full(1));
        // Unbounded queues never report full.
        let u = UnitQueues::new(1);
        assert_eq!(u.capacity(0), None);
        assert!(!u.is_full(0));
    }

    #[test]
    fn shed_tail_removes_newest_and_maintains_index() {
        let mut q = UnitQueues::new(2);
        q.push(0, tuple(1, 10));
        q.push(0, tuple(2, 20));
        q.push(1, tuple(3, 30));
        let shed = q.shed_tail(0).unwrap();
        assert_eq!(shed.id, TupleId::new(2));
        assert_eq!(q.pending(), 2);
        assert_eq!(q.head_arrival(0), Some(Nanos::from_millis(10)));
        // Shedding a queue's last tuple must clear it from the index.
        let shed = q.shed_tail(1).unwrap();
        assert_eq!(shed.id, TupleId::new(3));
        assert_eq!(q.nonempty(), &[0]);
        assert_eq!(q.shed_tail(1), None);
        assert_eq!(q.shed_tail(9), None, "out-of-range unit sheds nothing");
        assert_eq!(q.pop(0).unwrap().id, TupleId::new(1));
        assert!(q.all_empty());
    }

    #[test]
    fn corrupt_index_pop_is_a_typed_error() {
        // A zeroed slot (claims "absent" while the queue holds a tuple)
        // used to underflow `pos - 1`; an out-of-range slot used to panic
        // or clobber a neighbour. Both now surface as a typed error.
        for bad_pos in [0u32, 99] {
            let mut q = UnitQueues::new(2);
            q.push(0, tuple(1, 10));
            q.corrupt_pos_for_tests(0, bad_pos);
            assert_eq!(q.pop(0), Err(EngineError::QueueIndexCorrupt { unit: 0 }));
        }
    }

    #[test]
    fn corrupt_index_shed_self_heals() {
        let mut q = UnitQueues::new(3);
        q.push(0, tuple(1, 10));
        q.push(2, tuple(2, 20));
        q.corrupt_pos_for_tests(0, 0);
        // `shed_tail` has no error channel: it rebuilds the index instead.
        assert_eq!(q.shed_tail(0).unwrap().id, TupleId::new(1));
        assert_eq!(q.nonempty(), &[2]);
        assert_eq!(q.pop(2).unwrap().id, TupleId::new(2));
        assert!(q.all_empty());
        assert!(q.nonempty().is_empty());
    }

    proptest! {
        /// The non-empty index always matches the actual queue contents,
        /// with shedding interleaved among pushes and pops.
        #[test]
        fn nonempty_index_consistent(ops in proptest::collection::vec((0u32..6, 0u8..4), 1..200)) {
            let mut q = UnitQueues::new(6);
            let mut id = 0u64;
            for (unit, op) in ops {
                match op {
                    0 | 1 => {
                        id += 1;
                        q.push(unit, tuple(id, id));
                    }
                    2 => {
                        if q.len(unit) > 0 {
                            q.pop(unit).unwrap();
                        } else {
                            prop_assert!(q.pop(unit).is_err());
                        }
                    }
                    _ => {
                        let had = q.len(unit);
                        prop_assert_eq!(q.shed_tail(unit).is_some(), had > 0);
                    }
                }
                let expect: Vec<u32> = (0..6).filter(|&u| q.len(u) > 0).collect();
                let mut got = q.nonempty().to_vec();
                got.sort();
                prop_assert_eq!(got, expect);
                let total: usize = (0..6).map(|u| q.len(u)).sum();
                prop_assert_eq!(total, q.pending());
            }
        }
    }
}
