//! Compiling a registered workload into schedulable units.

use hcq_common::{HcqError, Nanos, Result, StreamId};
use hcq_core::pdt::{shared_priority, PdtSelection, SharedRank};
use hcq_core::{SharingStrategy, UnitId, UnitStatics};
use hcq_plan::{CompiledQuery, GlobalPlan, LeafIndex, PlanStats, Port, QueryTag, StreamRates};

use crate::config::SchedulingLevel;

/// The next dense unit id for a unit table already holding `len` units.
///
/// `len as UnitId` would silently truncate past `u32::MAX` units and alias
/// existing ids; every unit-table append goes through this check instead.
fn checked_unit_id(len: usize) -> Result<UnitId> {
    UnitId::try_from(len).map_err(|_| {
        HcqError::plan(format!(
            "unit table exhausted the {}-entry unit-id space",
            u32::MAX
        ))
    })
}

/// What a schedulable unit is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// A leaf-to-root operator segment of one query (query-level scheduling;
    /// the §5.2 virtual segments `E_LL`/`E_RR` for join queries).
    Leaf {
        /// Owning query (index into `SimModel::compiled`).
        query: usize,
        /// Which leaf of that query.
        leaf: LeafIndex,
    },
    /// A §7 shared-operator group: executing it runs the shared operator
    /// once plus the PDT members' remainder segments.
    Shared {
        /// Index into `SimModel::groups`.
        group: usize,
    },
    /// The remainder segment `L_x^i` of a non-PDT member: receives the
    /// shared operator's output and is scheduled by its own normalized rate
    /// (§7.2).
    Remainder {
        /// Index into `SimModel::groups`.
        group: usize,
        /// Member position within the group.
        member: usize,
    },
    /// A single operator (operator-level scheduling).
    Operator {
        /// Owning query.
        query: usize,
        /// Operator index within the compiled query.
        op: usize,
    },
}

/// A schedulable unit: its kind plus the statics policies consume.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDesc {
    /// What the unit executes.
    pub kind: UnitKind,
    /// The §2/§5/§7 characterization driving every priority formula.
    pub statics: UnitStatics,
}

/// Runtime form of a §7 sharing group.
#[derive(Debug, Clone)]
pub struct SharedGroupModel {
    /// The stream feeding the shared operator.
    pub stream: StreamId,
    /// Cost of the shared operator (executed once per tuple).
    pub shared_cost: Nanos,
    /// Member queries (indices into `SimModel::compiled`).
    pub members: Vec<usize>,
    /// Member positions executed inline with the shared operator (the PDT;
    /// all members under the Max/Sum strategies).
    pub inline_members: Vec<usize>,
    /// `(member position, remainder unit)` for deferred (non-PDT) members.
    pub deferred: Vec<(usize, UnitId)>,
}

/// Where arrivals on a stream enter the system.
#[derive(Debug, Clone, Copy)]
pub struct EntryRoute {
    /// The unit whose queue receives a copy of the arriving tuple.
    pub unit: UnitId,
    /// Alone-path cost from this entry to the root: the arriving copy's
    /// `ideal_depart = arrival + alone`. (Unused for `Shared` units — their
    /// per-member ideal departures are computed at emission.)
    pub alone: Nanos,
}

/// The compiled workload.
#[derive(Debug, Clone)]
pub struct SimModel {
    /// Flattened plans, one per query.
    pub compiled: Vec<CompiledQuery>,
    /// Derived statistics, one per query.
    pub stats: Vec<PlanStats>,
    /// Classification tags, one per query.
    pub tags: Vec<QueryTag>,
    /// All schedulable units; `UnitId` indexes this.
    pub units: Vec<UnitDesc>,
    /// Arrival routing per stream index.
    pub routes: Vec<Vec<EntryRoute>>,
    /// Sharing groups.
    pub groups: Vec<SharedGroupModel>,
    /// Cheapest operator cost in the whole plan — the §9.2 default cost of
    /// one scheduler operation.
    pub min_op_cost: Nanos,
    /// The scheduling granularity this model was built for.
    pub level: SchedulingLevel,
}

impl SimModel {
    /// Compile a workload for simulation.
    ///
    /// `rates` must cover every stream feeding a window join (see
    /// [`PlanStats::compute`]); `sharing` selects the §9.3 strategy for any
    /// declared groups.
    pub fn build(
        plan: &GlobalPlan,
        rates: &StreamRates,
        level: SchedulingLevel,
        sharing: SharingStrategy,
    ) -> Result<Self> {
        plan.validate()?;
        if plan.is_empty() {
            return Err(HcqError::config("no queries registered"));
        }

        let compiled: Vec<CompiledQuery> =
            plan.queries.iter().map(CompiledQuery::compile).collect();
        let stats = compiled
            .iter()
            .map(|cq| PlanStats::compute(cq, rates))
            .collect::<Result<Vec<_>>>()?;
        let tags: Vec<QueryTag> = plan.queries.iter().map(|q| q.tag).collect();

        for (i, cq) in compiled.iter().enumerate() {
            if cq.join_indices().len() > 1 {
                return Err(HcqError::config(format!(
                    "query Q{i}: the engine executes at most one window join \
                     per query (the evaluated workloads use exactly one)"
                )));
            }
        }

        let mut in_group = vec![false; compiled.len()];
        for g in &plan.sharing {
            for &m in &g.members {
                in_group[m.index()] = true;
            }
        }

        if level == SchedulingLevel::Operator {
            if !plan.sharing.is_empty() {
                return Err(HcqError::config(
                    "operator-level scheduling does not support shared operators",
                ));
            }
            if compiled.iter().any(|cq| !cq.join_indices().is_empty()) {
                return Err(HcqError::config(
                    "operator-level scheduling does not support window joins",
                ));
            }
        }

        let n_streams = plan.streams().last().map(|s| s.index() + 1).unwrap_or(0);
        let mut routes: Vec<Vec<EntryRoute>> = vec![Vec::new(); n_streams];
        let mut units: Vec<UnitDesc> = Vec::new();
        let mut groups: Vec<SharedGroupModel> = Vec::new();

        match level {
            SchedulingLevel::Operator => {
                for (qi, cq) in compiled.iter().enumerate() {
                    let t = stats[qi].ideal_time;
                    let mut first_unit = None;
                    for (oi, _) in cq.ops.iter().enumerate() {
                        let seg = stats[qi].op(oi, Port::Single);
                        let unit = checked_unit_id(units.len())?;
                        if oi == cq.leaves[0].entry.0 {
                            first_unit = Some(unit);
                        }
                        units.push(UnitDesc {
                            kind: UnitKind::Operator { query: qi, op: oi },
                            statics: UnitStatics {
                                selectivity: seg.selectivity,
                                avg_cost_ns: seg.avg_cost_ns,
                                ideal_time_ns: t.as_nanos() as f64,
                            },
                        });
                    }
                    let entry = first_unit.ok_or_else(|| {
                        HcqError::plan(format!("query Q{qi} compiled to no operators"))
                    })?;
                    routes[cq.leaves[0].stream.index()].push(EntryRoute {
                        unit: entry,
                        alone: cq.alone_cost(LeafIndex(0)),
                    });
                }
            }
            SchedulingLevel::Query => {
                // Unshared queries: one unit per leaf.
                for (qi, cq) in compiled.iter().enumerate() {
                    if in_group[qi] {
                        continue;
                    }
                    for (li, leaf) in cq.leaves.iter().enumerate() {
                        let unit = checked_unit_id(units.len())?;
                        units.push(UnitDesc {
                            kind: UnitKind::Leaf {
                                query: qi,
                                leaf: LeafIndex(li),
                            },
                            statics: UnitStatics::from_leaf(&stats[qi].per_leaf[li]),
                        });
                        routes[leaf.stream.index()].push(EntryRoute {
                            unit,
                            alone: cq.alone_cost(LeafIndex(li)),
                        });
                    }
                }
                // Sharing groups.
                for g in &plan.sharing {
                    let group_idx = groups.len();
                    let member_stats: Vec<UnitStatics> = g
                        .members
                        .iter()
                        .map(|&m| UnitStatics::from_leaf(&stats[m.index()].per_leaf[0]))
                        .collect();
                    let hnr = shared_priority(&member_stats, g.op.cost, sharing, SharedRank::Hnr);
                    let bsd = shared_priority(&member_stats, g.op.cost, sharing, SharedRank::Bsd);
                    let shared_unit = checked_unit_id(units.len())?;
                    units.push(UnitDesc {
                        kind: UnitKind::Shared { group: group_idx },
                        statics: synthesize_shared_statics(
                            &member_stats,
                            g.op.cost,
                            &hnr,
                            bsd.priority,
                        ),
                    });
                    routes[g.stream.index()].push(EntryRoute {
                        unit: shared_unit,
                        alone: Nanos::ZERO, // per-member; computed at emission
                    });

                    // Deferred (non-PDT) members get remainder units — unless
                    // their remainder is empty, in which case deferral would
                    // be a no-op and they run inline.
                    let mut inline_members = hnr.members.clone();
                    let mut deferred = Vec::new();
                    for pos in 0..g.members.len() {
                        if inline_members.contains(&pos) {
                            continue;
                        }
                        let qi = g.members[pos].index();
                        if compiled[qi].ops.len() <= 1 {
                            inline_members.push(pos);
                            continue;
                        }
                        let seg = stats[qi].op(1, Port::Single);
                        let unit = checked_unit_id(units.len())?;
                        units.push(UnitDesc {
                            kind: UnitKind::Remainder {
                                group: group_idx,
                                member: pos,
                            },
                            statics: UnitStatics {
                                selectivity: seg.selectivity,
                                avg_cost_ns: seg.avg_cost_ns,
                                ideal_time_ns: stats[qi].ideal_time.as_nanos() as f64,
                            },
                        });
                        deferred.push((pos, unit));
                    }
                    groups.push(SharedGroupModel {
                        stream: g.stream,
                        shared_cost: g.op.cost,
                        members: g.members.iter().map(|m| m.index()).collect(),
                        inline_members,
                        deferred,
                    });
                }
            }
        }

        let min_op_cost = compiled
            .iter()
            .flat_map(|cq| cq.ops.iter().map(|op| op.cost()))
            .min()
            .ok_or_else(|| HcqError::plan("plan has no operators"))?;

        Ok(SimModel {
            compiled,
            stats,
            tags,
            units,
            routes,
            groups,
            min_op_cost,
            level,
        })
    }

    /// All unit statics, in unit order (handed to `Policy::on_register`).
    pub fn unit_statics(&self) -> Vec<UnitStatics> {
        self.units.iter().map(|u| u.statics).collect()
    }

    /// Number of schedulable units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Chain-style static priorities, one per unit: the steepest slope of
    /// the unit's progress chart (Babcock et al., SIGMOD'03 — "Chain" in the
    /// paper's Table 3). A unit's chart starts at (0 cost, size 1); after the
    /// first `k` operators of its path the expected surviving fraction is
    /// `S_entry / S_(rest of path)` at cumulative ideal cost `Σ c`; the
    /// priority is the maximum drop rate `(1 − fraction_k) / cost_k` over
    /// prefixes. Chain minimizes run-time memory, so this pairs with
    /// [`crate::SimReport::avg_pending`] for memory-vs-QoS ablations. Use
    /// with `hcq_core::StaticPolicy::custom("Chain", model.chain_priorities())`.
    ///
    /// Shared groups (no single walkable path) fall back to the aggregate
    /// `(1 − min(S,1))/C̄`. Slopes are clamped positive so expanding
    /// (join-heavy) segments still order deterministically.
    pub fn chain_priorities(&self) -> Vec<f64> {
        self.units
            .iter()
            .map(|unit| {
                let floor = 1e-30;
                let walk = |query: usize, entry: (usize, Port)| -> f64 {
                    let cq = &self.compiled[query];
                    let stats = &self.stats[query];
                    let s_entry = stats.op(entry.0, entry.1).selectivity;
                    let mut cum_cost = 0.0;
                    let mut best = floor;
                    let mut cursor = Some(entry);
                    while let Some((oi, port)) = cursor {
                        let _ = port;
                        cum_cost += cq.ops[oi].cost().as_nanos() as f64;
                        let next = cq.ops[oi].downstream;
                        let remaining = match next {
                            Some((d, p)) => s_entry / stats.op(d, p).selectivity,
                            None => s_entry,
                        };
                        let slope = (1.0 - remaining) / cum_cost;
                        if slope > best {
                            best = slope;
                        }
                        cursor = next;
                    }
                    best
                };
                match &unit.kind {
                    UnitKind::Leaf { query, leaf } => {
                        walk(*query, self.compiled[*query].leaves[leaf.index()].entry)
                    }
                    UnitKind::Remainder { group, member } => {
                        let query = self.groups[*group].members[*member];
                        walk(query, (1, Port::Single))
                    }
                    UnitKind::Operator { query, op } => walk(*query, (*op, Port::Single)),
                    UnitKind::Shared { .. } => {
                        let s = unit.statics.selectivity.min(1.0);
                        ((1.0 - s) / unit.statics.avg_cost_ns).max(floor)
                    }
                }
            })
            .collect()
    }

    /// Expected processing cost per source arrival, summed over every entry
    /// the arrival fans out to — the numerator of §8's utilization formula.
    pub fn expected_cost_per_arrival(&self, stream: StreamId) -> f64 {
        let Some(entries) = self.routes.get(stream.index()) else {
            return 0.0;
        };
        entries
            .iter()
            .map(|r| {
                let u = &self.units[r.unit as usize];
                match &u.kind {
                    UnitKind::Shared { group } => {
                        // The group's true expected work: the shared operator
                        // once, plus every member's remainder scaled by the
                        // shared selectivity — captured exactly by
                        // Σ C̄_i − (N−1)·c_x over *all* members.
                        let g = &self.groups[*group];
                        let sum: f64 = g
                            .members
                            .iter()
                            .map(|&qi| self.stats[qi].per_leaf[0].avg_cost_ns)
                            .sum();
                        sum - (g.members.len() as f64 - 1.0) * g.shared_cost.as_nanos() as f64
                    }
                    _ => u.statics.avg_cost_ns,
                }
            })
            .sum()
    }
}

/// Build `UnitStatics` for a shared group such that the group's HNR priority
/// equals the §7 aggregate `V` and its BSD static factor equals the analogous
/// `Φ` aggregate. Solving `S/(C̄T) = V`, `S/(C̄T²) = Φ` gives `T = V/Φ`; the
/// cost is pinned to the group's true de-duplicated cost `SC̄` and `S`
/// follows.
fn synthesize_shared_statics(
    member_stats: &[UnitStatics],
    shared_cost: Nanos,
    hnr: &PdtSelection,
    bsd_priority: f64,
) -> UnitStatics {
    let c_x = shared_cost.as_nanos() as f64;
    let sc: f64 = hnr
        .members
        .iter()
        .map(|&i| member_stats[i].avg_cost_ns)
        .sum::<f64>()
        - (hnr.members.len() as f64 - 1.0) * c_x;
    let t_eff = hnr.priority / bsd_priority;
    UnitStatics {
        selectivity: hnr.priority * sc * t_eff,
        avg_cost_ns: sc,
        ideal_time_ns: t_eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcq_common::QueryId;
    use hcq_plan::QueryBuilder;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    fn sjp(stream: usize, cost: u64, sel: f64) -> hcq_plan::QueryPlan {
        QueryBuilder::on(StreamId::new(stream))
            .select(ms(cost), sel)
            .stored_join(ms(cost), sel)
            .project(ms(cost))
            .build()
            .unwrap()
    }

    #[test]
    fn unit_id_space_is_checked_not_truncated() {
        // `len as UnitId` used to alias unit 0 at 2^32 — the checked path
        // errors instead of handing out a truncated id.
        assert_eq!(checked_unit_id(0).unwrap(), 0);
        assert_eq!(checked_unit_id(u32::MAX as usize).unwrap(), u32::MAX);
        assert!(checked_unit_id(u32::MAX as usize + 1).is_err());
    }

    #[test]
    fn query_level_units_are_leaves() {
        let mut plan = GlobalPlan::default();
        plan.add_query(sjp(0, 1, 0.5));
        plan.add_query(sjp(0, 2, 0.8));
        let m = SimModel::build(
            &plan,
            &StreamRates::none(),
            SchedulingLevel::Query,
            SharingStrategy::Pdt,
        )
        .unwrap();
        assert_eq!(m.unit_count(), 2);
        assert_eq!(m.routes[0].len(), 2);
        assert_eq!(m.min_op_cost, ms(1));
        assert!(matches!(m.units[0].kind, UnitKind::Leaf { query: 0, .. }));
        // alone = T for single-stream queries.
        assert_eq!(m.routes[0][0].alone, ms(3));
        assert_eq!(m.routes[0][1].alone, ms(6));
    }

    #[test]
    fn operator_level_units_are_operators() {
        let mut plan = GlobalPlan::default();
        plan.add_query(sjp(0, 1, 0.5));
        let m = SimModel::build(
            &plan,
            &StreamRates::none(),
            SchedulingLevel::Operator,
            SharingStrategy::Pdt,
        )
        .unwrap();
        assert_eq!(m.unit_count(), 3);
        assert!(matches!(
            m.units[1].kind,
            UnitKind::Operator { query: 0, op: 1 }
        ));
        // Stream routes to the first operator's unit only.
        assert_eq!(m.routes[0].len(), 1);
        assert_eq!(m.routes[0][0].unit, 0);
    }

    #[test]
    fn join_query_gets_two_units() {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(1), 0.5)
                .window_join(
                    QueryBuilder::on(StreamId::new(1)).select(ms(1), 0.5),
                    ms(2),
                    0.3,
                    Nanos::from_secs(1),
                )
                .project(ms(1))
                .build()
                .unwrap(),
        );
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(10))
            .with(StreamId::new(1), ms(10));
        let m =
            SimModel::build(&plan, &rates, SchedulingLevel::Query, SharingStrategy::Pdt).unwrap();
        assert_eq!(m.unit_count(), 2);
        assert_eq!(m.routes[0].len(), 1);
        assert_eq!(m.routes[1].len(), 1);
        // alone = own chain + c_J + common = 1 + 2 + 1.
        assert_eq!(m.routes[0][0].alone, ms(4));
    }

    #[test]
    fn operator_level_rejects_joins_and_sharing() {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .window_join(
                    QueryBuilder::on(StreamId::new(1)),
                    ms(2),
                    0.3,
                    Nanos::from_secs(1),
                )
                .build()
                .unwrap(),
        );
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(10))
            .with(StreamId::new(1), ms(10));
        assert!(SimModel::build(
            &plan,
            &rates,
            SchedulingLevel::Operator,
            SharingStrategy::Pdt
        )
        .is_err());

        let mut plan2 = GlobalPlan::default();
        let a = plan2.add_query(sjp(0, 1, 0.5));
        let b = plan2.add_query(sjp(0, 1, 0.5));
        plan2.share_first_op(vec![a, b]).unwrap();
        assert!(SimModel::build(
            &plan2,
            &StreamRates::none(),
            SchedulingLevel::Operator,
            SharingStrategy::Pdt
        )
        .is_err());
    }

    #[test]
    fn shared_group_builds_one_unit_when_pdt_keeps_all() {
        let mut plan = GlobalPlan::default();
        let ids: Vec<QueryId> = (0..4).map(|_| plan.add_query(sjp(0, 1, 0.5))).collect();
        plan.share_first_op(ids).unwrap();
        let m = SimModel::build(
            &plan,
            &StreamRates::none(),
            SchedulingLevel::Query,
            SharingStrategy::Pdt,
        )
        .unwrap();
        // Homogeneous members: the PDT keeps all four -> one shared unit.
        assert_eq!(m.unit_count(), 1);
        assert_eq!(m.groups.len(), 1);
        assert_eq!(m.groups[0].inline_members.len(), 4);
        assert!(m.groups[0].deferred.is_empty());
        assert_eq!(m.routes[0].len(), 1);
    }

    #[test]
    fn shared_group_defers_weak_members_under_pdt() {
        let mut plan = GlobalPlan::default();
        // Same shared select, very different downstream weight.
        let strong: Vec<QueryId> = (0..3)
            .map(|_| {
                plan.add_query(
                    QueryBuilder::on(StreamId::new(0))
                        .select(ms(1), 0.9)
                        .project(ms(1))
                        .build()
                        .unwrap(),
                )
            })
            .collect();
        let weak = plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .select(ms(1), 0.9)
                .map(ms(400), 0.01)
                .build()
                .unwrap(),
        );
        let mut members = strong.clone();
        members.push(weak);
        plan.share_first_op(members).unwrap();
        let m = SimModel::build(
            &plan,
            &StreamRates::none(),
            SchedulingLevel::Query,
            SharingStrategy::Pdt,
        )
        .unwrap();
        assert_eq!(m.groups[0].inline_members.len(), 3);
        assert_eq!(m.groups[0].deferred.len(), 1);
        let (pos, unit) = m.groups[0].deferred[0];
        assert_eq!(pos, 3, "the weak member is deferred");
        assert!(matches!(
            m.units[unit as usize].kind,
            UnitKind::Remainder { member: 3, .. }
        ));
        // 1 shared unit + 1 remainder unit.
        assert_eq!(m.unit_count(), 2);
    }

    #[test]
    fn synthesized_shared_statics_reproduce_group_priorities() {
        let member_stats: Vec<UnitStatics> = (1..=3)
            .map(|i| UnitStatics::new(0.5, ms(i + 1), ms(2 * i)))
            .collect();
        let hnr = shared_priority(&member_stats, ms(1), SharingStrategy::Sum, SharedRank::Hnr);
        let bsd = shared_priority(&member_stats, ms(1), SharingStrategy::Sum, SharedRank::Bsd);
        let s = synthesize_shared_statics(&member_stats, ms(1), &hnr, bsd.priority);
        assert!((s.hnr_priority() - hnr.priority).abs() / hnr.priority < 1e-9);
        assert!((s.bsd_static() - bsd.priority).abs() / bsd.priority < 1e-9);
    }

    #[test]
    fn expected_cost_per_arrival_sums_entries() {
        let mut plan = GlobalPlan::default();
        plan.add_query(sjp(0, 1, 0.5));
        plan.add_query(sjp(0, 1, 0.5));
        let m = SimModel::build(
            &plan,
            &StreamRates::none(),
            SchedulingLevel::Query,
            SharingStrategy::Pdt,
        )
        .unwrap();
        // Per query: C̄ = 1 + 0.5·1 + 0.25·1 = 1.75ms; two queries.
        let expect = 2.0 * 1.75e6;
        assert!((m.expected_cost_per_arrival(StreamId::new(0)) - expect).abs() < 1.0);
        assert_eq!(m.expected_cost_per_arrival(StreamId::new(9)), 0.0);
    }

    #[test]
    fn nested_joins_rejected() {
        let mut plan = GlobalPlan::default();
        plan.add_query(
            QueryBuilder::on(StreamId::new(0))
                .window_join(
                    QueryBuilder::on(StreamId::new(1)),
                    ms(1),
                    0.5,
                    Nanos::from_secs(1),
                )
                .window_join(
                    QueryBuilder::on(StreamId::new(2)),
                    ms(1),
                    0.5,
                    Nanos::from_secs(1),
                )
                .build()
                .unwrap(),
        );
        let rates = StreamRates::none()
            .with(StreamId::new(0), ms(10))
            .with(StreamId::new(1), ms(10))
            .with(StreamId::new(2), ms(10));
        let err = SimModel::build(&plan, &rates, SchedulingLevel::Query, SharingStrategy::Pdt)
            .unwrap_err();
        assert!(err.to_string().contains("at most one window join"));
    }
}
